"""Performance benchmarks of the hot computational kernels.

Unlike the figure benches (one-shot regenerations), these are true
timing benchmarks (multiple rounds) guarding the throughput the
statistical machinery depends on: a full sweep evaluates millions of
cell solves, so regressions here multiply directly into experiment
wall-clock.
"""

import numpy as np
import pytest

from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.sram.metrics import OperatingConditions, compute_cell_metrics
from repro.sram.solver import solve_hold_state, solve_read_node
from repro.stats.sampling import importance_sample_dvt
from repro.technology import predictive_70nm
from repro.technology.corners import ProcessCorner

N_CELLS = 20_000


@pytest.fixture(scope="module")
def population():
    tech = predictive_70nm()
    geometry = CellGeometry()
    rng = np.random.default_rng(1)
    dvt = sample_cell_dvt(tech, geometry, rng, N_CELLS)
    return SixTCell(tech, geometry, ProcessCorner(0.0), dvt)


def test_kernel_read_solve(benchmark, population):
    """Single-node read solve over 20k cells."""
    result = benchmark(solve_read_node, population, 1.0)
    assert result.shape == (N_CELLS,)
    assert float(np.mean(result)) < 0.5


def test_kernel_hold_solve(benchmark, population):
    """Two-node standby fixed point over 20k cells (the hot path of
    every retention estimate)."""
    vl, vr = benchmark(solve_hold_state, population, 0.3)
    assert np.all(vl >= vr)


def test_kernel_full_metrics(benchmark, population):
    """All static metrics over 20k cells (one sweep point's work)."""
    conditions = OperatingConditions.nominal(population.tech)
    metrics = benchmark(compute_cell_metrics, population, conditions)
    assert metrics.v_read.shape == (N_CELLS,)


def test_kernel_cell_leakage(benchmark, population):
    """Closed-form leakage decomposition over 20k cells."""
    breakdown = benchmark(cell_leakage, population)
    assert breakdown.total.shape == (N_CELLS,)


def test_kernel_importance_sampling(benchmark):
    """Weighted sample generation for 100k cells."""
    tech = predictive_70nm()
    geometry = CellGeometry()

    def run():
        return importance_sample_dvt(
            tech, geometry, np.random.default_rng(2), 100_000, 2.0
        )

    sample = benchmark(run)
    assert sample.n_samples == 100_000


#: Minimum acceptable metric-engine throughput [cells/s].  Typical
#: hardware delivers 7-30k cells/s; the floor sits ~3x below the
#: slowest machine we run on so only a genuine algorithmic regression
#: (not scheduler jitter or a loaded CI box) can trip it.
THROUGHPUT_FLOOR = 2_000


def test_kernel_throughput_floor(population):
    """Hard floor: the metric engine must stay above THROUGHPUT_FLOOR.

    (Not a pytest-benchmark fixture — a plain guard so a catastrophic
    slowdown fails loudly even in --benchmark-disable runs.)
    """
    import time

    conditions = OperatingConditions.nominal(population.tech)
    start = time.perf_counter()
    compute_cell_metrics(population, conditions)
    elapsed = time.perf_counter() - start
    rate = N_CELLS / elapsed
    assert rate > THROUGHPUT_FLOOR, (
        f"metric engine measured {rate:.0f} cells/s, below the "
        f"{THROUGHPUT_FLOOR} cells/s floor"
    )
