"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure of the paper on the shared
full-accuracy context, asserts the figure's qualitative shape (who
wins, where the bathtub bottoms out, by roughly what factor), prints
the series, and writes it to ``benchmarks/results/<fig>.txt``.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.context import default_context

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx():
    """The shared full-accuracy experiment context.

    Criteria calibration and the interpolated probability tables are
    built once and reused by every figure benchmark.
    """
    return default_context()


@pytest.fixture(scope="session")
def save_result():
    """Writer: persist a figure's rows under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, rows: list[str]) -> None:
        text = "\n".join(rows) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===")
        print(text)

    return _save
