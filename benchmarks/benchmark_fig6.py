"""Fig. 6 — maximum source bias for a target hold-failure probability.

Paper: the source bias a die can tolerate at P_HF = 1e-3 is largest for
nominal dies and shrinks toward both inter-die extremes (leakage droop
on the low-Vt side, the weakening pull-up / rising trip point on the
high-Vt side).
"""

import numpy as np

from repro.experiments import asb


def test_fig6(benchmark, ctx, save_result):
    shifts = np.linspace(-0.1, 0.1, 11)
    result = benchmark.pedantic(
        lambda: asb.fig6(ctx, shifts=shifts, p_target=1e-3),
        rounds=1, iterations=1,
    )
    save_result("fig6", result.rows())

    vsb = result.vsb_max
    # All corners tolerate a substantial bias, none reach the DAC rail.
    assert np.all(vsb > 0.3)
    assert np.all(vsb < 0.635)
    # The maximum sits in the interior (near-nominal corners)...
    best = int(np.argmax(vsb))
    assert 0 < best < len(shifts) - 1
    # ...and the high-Vt extreme tolerates the least.
    assert vsb[-1] < vsb[best]
    assert vsb[0] <= vsb[best]
