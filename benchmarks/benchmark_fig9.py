"""Fig. 9 — distributions of VSB(adaptive) and of standby power.

Paper: (a, inset) the variation of the adaptive source bias across dies
at the *same* inter-die corner is negligible (the array-level order
statistics concentrate); (b) with VSB(adaptive) the standby-power
distribution sits close to the fixed VSB(opt) one and far below the
zero-bias distribution.
"""

import numpy as np
import pytest

from repro.experiments import asb


def test_fig9(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: asb.fig9(ctx, n_bist_dies=12, n_power_dies=400),
        rounds=1, iterations=1,
    )
    save_result("fig9", result.rows())

    # (a) per-corner adaptive spread: a couple of DAC steps at most.
    assert result.vsb_samples.std() < 0.015
    assert np.ptp(result.vsb_samples) < 0.04
    # (b) power orderings: zero >> opt ~ adaptive.
    mean_zero = result.power_zero.mean()
    mean_opt = result.power_opt.mean()
    mean_adaptive = result.power_adaptive.mean()
    assert mean_adaptive < 0.35 * mean_zero
    assert mean_adaptive == pytest.approx(mean_opt, rel=0.25)
