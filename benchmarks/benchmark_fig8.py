"""Fig. 8 — VSB(adaptive) per inter-die corner vs the fixed VSB(opt).

Paper: the BIST-selected source bias tracks the corner (backing off
where retention is fragile), while the fixed design-time VSB(opt) lets
the hold-failure probability grow unchecked away from nominal; the
self-adaptive scheme widens the low-hold-failure window.
"""

import numpy as np

from repro.experiments import asb


def test_fig8(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: asb.fig8(ctx), rounds=1, iterations=1
    )
    save_result("fig8", result.rows())

    # The statistical adaptive bias is within the DAC span and equals
    # VSB(opt) at the nominal corner by construction.
    mid = len(result.shifts) // 2
    assert result.vsb_adaptive[mid] == result.vsb_opt
    # Adaptive never exceeds the fixed optimum by more than a step or
    # two, and backs off where hold is fragile.
    assert np.all(result.vsb_adaptive <= result.vsb_opt + 0.02)
    # Under the fixed bias the hold failure grows toward the high-Vt
    # corner; adaptive keeps it bounded by ~the nominal level.
    assert result.p_hold_opt[-1] > 1.2 * result.p_hold_opt[mid]
    assert result.p_hold_adaptive[-1] <= result.p_hold_opt[-1]
    # The BIST hardware agrees with the statistical model wherever the
    # die is statically repairable (VSB > 0).
    alive = result.vsb_bist > 0.0
    assert np.count_nonzero(alive) >= len(result.shifts) - 2
    assert np.all(
        np.abs(result.vsb_bist[alive] - result.vsb_adaptive[alive]) < 0.05
    )
