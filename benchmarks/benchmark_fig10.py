"""Fig. 10 — leakage yield and hold yield vs sigma, three policies.

Paper headline numbers:
* leakage yield: the adaptive scheme gains 7-25% over zero source bias
  and is essentially indistinguishable from VSB(opt);
* hold yield: the adaptive scheme cuts the number of hold-failing chips
  by 70-85% relative to VSB(opt), losing only 1-5% against the
  zero-bias ideal.
"""

import numpy as np

from repro.experiments import asb


def test_fig10(benchmark, ctx, save_result):
    sigmas = np.linspace(0.02, 0.08, 7)
    result = benchmark.pedantic(
        lambda: asb.fig10(ctx, sigmas=sigmas),
        rounds=1, iterations=1,
    )
    save_result("fig10", result.rows())

    ly, hy = result.leakage_yield, result.hold_yield

    # Leakage yield: adaptive ~ opt >> zero.
    assert np.all(ly["adaptive"] >= ly["zero"])
    gain_vs_zero = ly["adaptive"] - ly["zero"]
    assert gain_vs_zero.max() > 0.07  # the paper's >= 7%
    assert np.all(np.abs(ly["adaptive"] - ly["opt"]) < 0.05)

    # Hold yield: zero is the ideal; adaptive recovers most of what the
    # fixed optimum loses.
    assert np.all(hy["zero"] >= hy["adaptive"] - 1e-9)
    assert np.all(hy["adaptive"] >= hy["opt"] - 1e-9)
    # At the wide-sigma end: the failing-chip reduction is paper-scale.
    fail_opt = 1.0 - hy["opt"][-1]
    fail_adaptive = 1.0 - hy["adaptive"][-1]
    assert fail_adaptive < 0.5 * fail_opt  # >= 50% fewer failing chips
    # Hold-yield loss vs the zero-bias ideal stays single-digit.
    assert hy["zero"][-1] - hy["adaptive"][-1] < 0.12
