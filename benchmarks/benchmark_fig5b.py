"""Fig. 5b — memory leakage spread, ZBB vs self-repairing (64KB).

Paper: applying RBB to leaky dies and FBB to slow dies compresses the
die-to-die leakage distribution toward the nominal corner.
"""

from repro.experiments import repair


def test_fig5b(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: repair.fig5b(ctx, sigma_inter=0.05, n_dies=400),
        rounds=1, iterations=1,
    )
    save_result("fig5b", result.rows())

    # The spread compression is substantial.
    assert result.spread_reduction > 0.3
    # And the worst-case (p95) leakage comes down.
    import numpy as np

    p95_zbb = np.quantile(result.leakage_zbb, 0.95)
    p95_rep = np.quantile(result.leakage_repaired, 0.95)
    assert p95_rep < 0.8 * p95_zbb
