"""Fig. 2b — effect of NMOS body bias on each failure mechanism.

Paper: RBB reduces read and hold failures but increases access and
write failures; FBB does the opposite; with the equal-probability cell
sizing the overall failure is minimal near ZBB for a nominal die.
"""

import numpy as np

from repro.experiments import repair


def test_fig2b(benchmark, ctx, save_result):
    vbody = np.linspace(-0.5, 0.5, 11)
    result = benchmark.pedantic(
        lambda: repair.fig2b(ctx, vbody=vbody),
        rounds=1, iterations=1,
    )
    save_result("fig2b", result.rows())

    p = result.probabilities
    mid = len(vbody) // 2
    # RBB (index 0) vs ZBB vs FBB (index -1) orderings per mechanism.
    assert p["read"][0] < p["read"][mid] < p["read"][-1]
    assert p["hold"][0] < p["hold"][mid] < p["hold"][-1]
    assert p["access"][0] > p["access"][mid] > p["access"][-1]
    assert p["write"][0] > p["write"][mid] > p["write"][-1]
    # Equal-probability sizing: the overall minimum sits near ZBB.
    best = int(np.argmin(p["any"]))
    assert abs(vbody[best]) <= 0.2
