"""Capstone bench: a production lot through the complete flow.

Not a paper figure — the integration of everything the paper proposes:
each die is monitored, body-bias repaired, parametrically tested, and
ASB-calibrated; the lot report shows the yield, the repair rate, and
the standby power of the shipped population.
"""

import numpy as np

from repro.core.body_bias import BodyBiasGenerator, SelfRepairingSRAM
from repro.core.lot import LotSimulator
from repro.experiments.asb import default_asb_organization, hold_table


def test_lot_flow(benchmark, ctx, save_result):
    organization = default_asb_organization()
    pipeline = SelfRepairingSRAM(
        ctx.analyzer(),
        organization,
        generator=BodyBiasGenerator(),
        table_provider=ctx.table,
        seed=ctx.seed + 9,
    )
    simulator = LotSimulator(pipeline, hold_table(ctx))

    def run():
        return simulator.run(n_dies=300, sigma_inter=0.05, seed=17)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = report.rows()
    # Per-bin shipped power for the report.
    for bin_name in ("low_vt", "nominal", "high_vt"):
        shipped = [d for d in report.dies
                   if d.shipped and d.bin.value == bin_name]
        if shipped:
            power = np.mean([d.standby_power for d in shipped])
            rows.append(
                f"  {bin_name:8s}: {len(shipped)} shipped, "
                f"mean standby {power * 1e6:.1f} uW"
            )
    save_result("lot_flow", rows)

    # The flow ships a solid majority of a sigma=50mV lot...
    assert report.yield_fraction > 0.5
    # ...a visible slice of it only thanks to the body-bias repair...
    assert report.repaired_fraction > 0.05
    # ...every shipped die meets the parametric limit and got a real
    # source bias.
    for die in report.dies:
        if die.shipped:
            assert die.p_memory <= simulator.p_memory_limit
            assert die.vsb > 0.3
