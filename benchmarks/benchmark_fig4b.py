"""Fig. 4b — failing cells in a 256KB array, no bias vs self-repairing.

Paper: the self-repairing scheme collapses the number of failures for
dies shifted to either inter-die extreme (the monitor bins them and the
body bias pulls them back toward nominal behaviour).
"""

import numpy as np

from repro.experiments import repair


def test_fig4b(benchmark, ctx, save_result):
    shifts = np.linspace(-0.1, 0.1, 9)
    result = benchmark.pedantic(
        lambda: repair.fig4b(ctx, shifts=shifts, memory_kbytes=256),
        rounds=1, iterations=1,
    )
    save_result("fig4b", result.rows())

    # Huge reduction at the extremes (paper's bars collapse).
    assert result.failures_repaired[0] < 0.05 * result.failures_zbb[0]
    assert result.failures_repaired[-1] < 0.1 * result.failures_zbb[-1]
    # Nominal dies are untouched (ZBB bin).
    mid = len(shifts) // 2
    assert result.failures_repaired[mid] == result.failures_zbb[mid]
    # Unrepaired failures blow up toward the corners.
    assert result.failures_zbb[0] > 100 * result.failures_zbb[mid]
    assert result.failures_zbb[-1] > 100 * result.failures_zbb[mid]
