"""Fig. 2a — cell and memory failure probability vs inter-die Vt shift.

Paper: read/hold failures dominate low-Vt dies, access/write failures
dominate high-Vt dies; the overall cell failure is minimal near the
nominal corner; memory failure (after redundancy) is negligible in a
central region B and ~1 in the outer regions A and C.
"""

import numpy as np

from repro.experiments import repair


def test_fig2a(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: repair.fig2a(ctx, shifts=np.linspace(-0.12, 0.12, 13)),
        rounds=1, iterations=1,
    )
    save_result("fig2a", result.rows())

    p = result.probabilities
    mid = len(result.shifts) // 2

    # Bathtub: both extremes far above the nominal point.
    assert p["any"][0] > 100 * p["any"][mid]
    assert p["any"][-1] > 100 * p["any"][mid]
    # Mechanism asymmetry (the paper's region A vs C).
    assert p["read"][0] > 1e3 * p["read"][-1]
    assert p["access"][-1] > 1e3 * p["access"][0]
    # Hold rises on both sides (leakage left, trip point right).
    assert p["hold"][0] > 3 * p["hold"][mid]
    assert p["hold"][-1] > 1.5 * p["hold"][mid]
    # Memory-level region structure: negligible at nominal, ~1 outside.
    assert result.p_memory[mid] < 1e-6
    assert result.p_memory[0] > 0.99
    assert result.p_memory[-1] > 0.99
