"""Fig. 5a — normalised cell leakage components vs body bias.

Paper: subthreshold leakage falls with RBB and rises with FBB; junction
band-to-band tunnelling rises with RBB; gate leakage is insensitive;
the total has an interior minimum, and strong forward bias is bounded
by the body diode (the "Max FBB" marker).
"""

import numpy as np

from repro.experiments import repair


def test_fig5a(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: repair.fig5a(ctx), rounds=1, iterations=1
    )
    save_result("fig5a", result.rows())

    sub, gate, junction = result.subthreshold, result.gate, result.junction
    vbody = result.vbody
    # Subthreshold monotone increasing in body bias.
    assert np.all(np.diff(sub) > 0)
    # Junction has its *minimum* in the interior and grows toward strong
    # RBB (BTBT) and strong FBB (body diode).
    j_min = int(np.argmin(junction))
    assert 0 < j_min < len(junction) - 1
    assert junction[0] > 3 * junction[j_min]
    assert junction[-1] > 3 * junction[j_min]
    # Gate leakage flat to within a percent of the ZBB total.
    assert np.ptp(gate) < 0.01
    # Total: interior minimum at a moderate reverse bias.
    best = vbody[int(np.argmin(result.total))]
    assert -0.55 < best < -0.05
    # FBB end exceeds the ZBB total by a large factor (the Max FBB bound).
    zbb_index = int(np.argmin(np.abs(vbody)))
    assert result.total[-1] > 3 * result.total[zbb_index]
