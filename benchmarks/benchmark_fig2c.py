"""Fig. 2c — parametric yield vs sigma(Vt_inter), ZBB vs self-repairing.

Paper: for 64KB and 256KB arrays the self-repairing scheme improves
parametric yield by 8-25% over the no-body-bias design across the
realistic sigma range.
"""

import numpy as np

from repro.experiments import repair


def test_fig2c(benchmark, ctx, save_result):
    sigmas = np.linspace(0.02, 0.08, 7)
    result = benchmark.pedantic(
        lambda: repair.fig2c(ctx, sigmas=sigmas, sizes_kbytes=(64, 256)),
        rounds=1, iterations=1,
    )
    save_result("fig2c", result.rows())

    for kbytes in (64, 256):
        zbb = result.yields[(kbytes, "zbb")]
        rep = result.yields[(kbytes, "self_repair")]
        # Yield falls with sigma without repair.
        assert zbb[-1] < zbb[0]
        # Self-repair never loses more than integration noise...
        assert np.all(rep >= zbb - 0.02)
        # ...and recovers a paper-scale chunk somewhere in the sweep
        # (the paper quotes 8-25%).
        improvement = result.improvement(kbytes)
        assert improvement.max() > 8.0
    # The larger memory is (weakly) harder to yield.
    assert np.all(
        result.yields[(256, "zbb")] <= result.yields[(64, "zbb")] + 0.02
    )
