"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — studies of the knobs the paper fixes:

* number of body-bias levels (the paper's 3-bin scheme vs 5 bins);
* March algorithm choice for the ASB calibration (MATS+ / X / C-);
* comparator offset sensitivity of the monitor binning;
* importance-sampling accuracy vs plain Monte Carlo.
"""

import numpy as np

from repro.core.march import MARCH_CM, MARCH_X, MATS_PLUS
from repro.core.monitor import LeakageMonitor
from repro.core.source_bias import BISTController, SelfAdaptiveSourceBias
from repro.experiments.asb import default_asb_organization
from repro.sram.array import FunctionalMemoryArray
from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.stats.integration import dense_expectation
from repro.stats.montecarlo import probability_of
from repro.stats.sampling import importance_sample_dvt
from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution


def test_ablation_bias_levels(benchmark, ctx, save_result):
    """3-bin (paper) vs 5-bin adaptive body bias.

    A finer generator adds +/-0.2 V intermediate levels and picks, per
    corner, the level minimising the cell failure probability (an
    oracle upper bound for any monitor-driven policy at that level set).
    """
    from repro.experiments.repair import _organization, _pipeline

    organization = _organization(64)
    pipeline = _pipeline(ctx, organization)
    levels_3 = (-0.4, 0.0, 0.4)
    levels_5 = (-0.4, -0.2, 0.0, 0.2, 0.4)

    def yield_with_levels(levels, sigma):
        def pass_probability(corner):
            quantised = ProcessCorner(round(corner.dvt_inter, 3))
            best = min(
                levels,
                key=lambda vb: pipeline.cell_failure_probability(
                    quantised, vb
                ),
            )
            return 1.0 - pipeline.memory_failure_probability(quantised, best)

        return dense_expectation(InterDieDistribution(sigma), pass_probability)

    def run():
        rows = ["sigma[mV]  3-bin oracle[%]  5-bin oracle[%]  monitor[%]"]
        data = []
        for sigma in (0.03, 0.05, 0.07):
            y3 = yield_with_levels(levels_3, sigma)
            y5 = yield_with_levels(levels_5, sigma)
            ym = pipeline.parametric_yield(
                InterDieDistribution(sigma), repaired=True
            )
            rows.append(
                f"{sigma * 1e3:8.0f}  {100 * y3:14.1f}  {100 * y5:14.1f}"
                f"  {100 * ym:9.1f}"
            )
            data.append((y3, y5, ym))
        return rows, data

    rows, data = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_bias_levels", rows)
    for y3, y5, ym in data:
        assert y5 >= y3 - 0.01      # more levels never hurt the oracle
        assert ym <= y3 + 0.02      # the 3-bin monitor ~ the 3-bin oracle


def test_ablation_march_choice(benchmark, ctx, save_result):
    """MATS+ vs March X vs March C- for the ASB calibration.

    All three catch the retention faults (the dwell dominates), so the
    selected VSB should agree within a DAC step — the paper's choice of
    test algorithm is not load-bearing.
    """
    organization = default_asb_organization()

    def run():
        rows = ["march      ops/cell  VSB(adaptive)[V]"]
        selected = []
        for march in (MATS_PLUS, MARCH_X, MARCH_CM):
            array = FunctionalMemoryArray(
                ctx.tech, organization, ctx.criteria,
                geometry=ctx.geometry,
                corner=ProcessCorner(0.0),
                conditions=ctx.asb_conditions(),
                rng=np.random.default_rng(1234),
            )
            loop = SelfAdaptiveSourceBias(
                controller=BISTController(march=march)
            )
            result = loop.calibrate_bisect(array)
            rows.append(
                f"{march.name:9s}  {march.operation_count:8d}"
                f"  {result.vsb_adaptive:10.3f}"
            )
            selected.append(result.vsb_adaptive)
        return rows, selected

    rows, selected = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_march_choice", rows)
    assert max(selected) - min(selected) <= 0.011  # within ~2 DAC steps


def test_ablation_monitor_offset(benchmark, ctx, save_result):
    """Comparator offset sensitivity of the corner binning.

    Sweeps an input-referred comparator offset and reports the corner
    range that is misbinned; the decision stays correct for offsets
    well beyond a realistic comparator's.
    """
    n_cells = 64 * 1024 * 8

    def run():
        rows = ["offset[% of ref]  misbinned corner range [mV]"]
        widths = []
        for rel_offset in (0.0, 0.02, 0.10):
            monitor = LeakageMonitor.calibrate_references(
                ctx.tech, ctx.geometry, n_cells, n_samples=8_000
            )
            offset = rel_offset * monitor.lower.vref
            shifted = LeakageMonitor(
                monitor.r_sense,
                monitor.upper.vref,
                monitor.lower.vref,
                comparator_offset=offset,
            )
            # Find where the decisions of the two monitors differ.
            corners = np.linspace(-0.08, 0.08, 81)
            differs = []
            for corner in corners:
                rng = np.random.default_rng(3)
                dvt = sample_cell_dvt(ctx.tech, ctx.geometry, rng, 4000)
                cell = SixTCell(ctx.tech, ctx.geometry,
                                ProcessCorner(float(corner)), dvt)
                leakage = n_cells * float(
                    np.mean(cell_leakage(cell).total)
                )
                if monitor.classify(leakage) is not shifted.classify(leakage):
                    differs.append(corner)
            width = (max(differs) - min(differs)) * 1e3 if differs else 0.0
            rows.append(f"{100 * rel_offset:15.0f}  {width:12.1f}")
            widths.append(width)
        return rows, widths

    rows, widths = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_monitor_offset", rows)
    assert widths[0] == 0.0
    assert widths[1] < 10.0  # a 2% offset moves the bins by < 10 mV


def test_ablation_importance_sampling(benchmark, ctx, save_result):
    """IS accuracy: sigma-scaled estimates vs plain Monte Carlo.

    At a moderately failing corner both estimators resolve the same
    probability; the IS estimate's standard error is far smaller for
    the same sample budget.
    """
    from repro.sram.metrics import compute_cell_metrics

    corner = ProcessCorner(-0.06)
    n = 60_000

    def estimate(scale, seed):
        sample = importance_sample_dvt(
            ctx.tech, ctx.geometry, np.random.default_rng(seed), n, scale
        )
        cell = SixTCell(ctx.tech, ctx.geometry, corner, sample.dvt)
        metrics = compute_cell_metrics(cell, ctx.conditions)
        fails = ctx.criteria.any_fails(metrics)
        weights = None if scale == 1.0 else sample.weights
        return probability_of(fails, weights)

    def run():
        plain = estimate(1.0, 11)
        weighted = estimate(2.0, 12)
        rows = [
            f"plain MC ({n} samples):  p = {plain.estimate:.3e}"
            f" +/- {plain.stderr:.1e}",
            f"IS scale=2 ({n} samples): p = {weighted.estimate:.3e}"
            f" +/- {weighted.stderr:.1e}",
        ]
        return rows, plain, weighted

    rows, plain, weighted = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_importance_sampling", rows)
    assert weighted.within(plain, n_sigma=4.0)
    assert weighted.estimate > 0
