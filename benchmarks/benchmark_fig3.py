"""Fig. 3 — cell vs 1KB-array leakage distributions across corners.

Paper: intra-die RDF makes single-cell leakage distributions from
different inter-die corners overlap, while the 1KB-array totals
(sums of ~8k cells, central limit theorem) separate cleanly — the
justification for array-level leakage monitoring.
"""

from repro.experiments import repair


def test_fig3(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: repair.fig3(ctx, n_cell_samples=30_000, n_arrays=300),
        rounds=1, iterations=1,
    )
    save_result("fig3", result.rows())

    # Cells: a solid fraction of the nominal population is
    # indistinguishable from the corner populations.
    assert result.overlap_fraction("cell") > 0.3
    # Arrays: essentially complete separation.
    assert result.overlap_fraction("array") < 0.005
    # Means are ordered by corner (leakier at low Vt) at both scales.
    corners = sorted(result.corners)
    cell_means = [result.cell_samples[c].mean() for c in corners]
    array_means = [result.array_samples[c].mean() for c in corners]
    assert cell_means[0] > cell_means[1] > cell_means[2]
    assert array_means[0] > array_means[1] > array_means[2]
    # The array total is ~n_cells times the cell mean (CLT consistency).
    ratio = array_means[1] / (cell_means[1] * result.array_cells)
    assert 0.95 < ratio < 1.05
