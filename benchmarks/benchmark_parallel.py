"""Serial-vs-parallel and cold-vs-warm-cache wall-clock benchmarks.

Measures the two levers ``repro.parallel`` adds on a representative
fig2c-style workload (failure-probability tables at several body-bias
levels — the sweep every yield figure sits on):

* **fan-out**: the same sweep through ``ParallelExecutor(workers=4)``
  must produce bit-identical tables, and on a >= 4-core machine cut
  wall-clock by >= 2x (speedup asserts are gated on ``os.cpu_count()``
  so single-core CI still verifies determinism);
* **cache**: a warm rerun from a populated ``cache_dir`` must be
  >= 5x faster than the cold build and numerically identical — and the
  hit/miss counters from ``repro.observability`` must show the warm
  run actually *loaded* every artifact (zero misses), rather than
  inferring warm behaviour from wall-clock alone.

Run directly for a readable report::

    PYTHONPATH=src python benchmarks/benchmark_parallel.py

or through pytest (``pytest benchmarks/benchmark_parallel.py -s``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro import observability
from repro.experiments.context import ExperimentContext

#: Body-bias levels of the sweep (fig2c evaluates tables at ZBB and the
#: repair biases; three levels keep the benchmark representative).
VBODY_LEVELS = (-0.3, 0.0, 0.3)

#: Reduced-accuracy-but-not-trivial sweep: enough Monte-Carlo work per
#: grid point that process fan-out dominates pool overhead.
SWEEP_PARAMS = dict(
    target=1e-4,
    calibration_samples=12_000,
    analysis_samples=10_000,
    table_grid=9,
    seed=11,
)

#: Probe corners for the bit-identity check.
PROBES = (-0.09, -0.03, 0.0, 0.04, 0.09)


def build_sweep(workers: int = 1, cache_dir: str | None = None):
    """Build the full multi-table sweep; returns (context, seconds)."""
    ctx = ExperimentContext(**SWEEP_PARAMS, workers=workers, cache_dir=cache_dir)
    ctx.criteria  # calibrate outside the timed region: shared, not swept
    start = time.perf_counter()
    for vbody in VBODY_LEVELS:
        ctx.table(vbody)
    return ctx, time.perf_counter() - start


def assert_identical(ctx_a: ExperimentContext, ctx_b: ExperimentContext) -> None:
    for vbody in VBODY_LEVELS:
        for probe in PROBES:
            a = ctx_a.table(vbody).probability(probe)
            b = ctx_b.table(vbody).probability(probe)
            assert a == b, f"vbody={vbody} probe={probe}: {a} != {b}"


def test_parallel_sweep_identical_and_faster():
    """workers=4 matches workers=1 bitwise; speedup needs the cores."""
    serial_ctx, serial_s = build_sweep(workers=1)
    parallel_ctx, parallel_s = build_sweep(workers=4)
    assert_identical(serial_ctx, parallel_ctx)
    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    print(
        f"\nserial {serial_s:.1f}s, workers=4 {parallel_s:.1f}s "
        f"-> speedup x{speedup:.2f} on {cores} core(s)"
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x at workers=4 on {cores} cores, got x{speedup:.2f}"
        )
    elif cores == 1:
        # No parallel hardware: the engine must at least not collapse.
        assert speedup > 0.5, f"pool overhead dominated: x{speedup:.2f}"


def _cache_counters() -> tuple[float, float]:
    counters = observability.registry.snapshot()["counters"]
    return counters.get("cache.hits", 0), counters.get("cache.misses", 0)


def test_warm_cache_rerun():
    """A warm rerun loads every table: >= 5x faster, identical values.

    Warm-run behaviour is verified from the observability counters —
    the cold build must miss (and store) every artifact, the warm one
    must hit every lookup and miss none — not just from wall-clock.
    """
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    observability.enable()
    try:
        observability.reset()
        cold_ctx, cold_s = build_sweep(cache_dir=cache_dir)
        cold_hits, cold_misses = _cache_counters()
        observability.reset()
        warm_ctx, warm_s = build_sweep(cache_dir=cache_dir)
        warm_hits, warm_misses = _cache_counters()
        # Criteria + one table per body-bias level = the full artifact set.
        n_artifacts = 1 + len(VBODY_LEVELS)
        print(
            f"\ncache counters: cold {cold_hits:.0f} hits / "
            f"{cold_misses:.0f} misses, warm {warm_hits:.0f} hits / "
            f"{warm_misses:.0f} misses"
        )
        assert cold_misses >= n_artifacts, "cold run should miss everything"
        assert warm_hits >= n_artifacts, "warm run should load every artifact"
        assert warm_misses == 0, "warm run recomputed something"
        assert_identical(cold_ctx, warm_ctx)
        speedup = cold_s / warm_s
        print(f"cold {cold_s:.1f}s, warm {warm_s:.3f}s -> speedup x{speedup:.0f}")
        assert speedup >= 5.0, f"warm rerun only x{speedup:.1f} faster"
    finally:
        observability.disable()
        observability.reset()
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    test_parallel_sweep_identical_and_faster()
    test_warm_cache_rerun()
    print("\nbenchmark_parallel: all checks passed")
