"""Extension benches: the companion-work features beyond the figures.

* ext_delay / ext_temperature — the leakage-vs-delay sensor fusion of
  the companion ITC'05 self-repair work (the paper's reference [4]);
* ext_drv — the data-retention-voltage flow of reference [9];
* ext_performance — the access-time side of the body-bias trade-off.
"""

import numpy as np

from repro.experiments import extensions


def test_ext_delay(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_delay(ctx), rounds=1, iterations=1
    )
    save_result("ext_delay", result.rows())
    assert result.decisions["leakage"] == result.decisions["delay"]
    assert result.hot_decisions["leakage"] == "low_vt"
    assert result.hot_decisions["combined"] != "low_vt"


def test_ext_drv(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_drv(ctx), rounds=1, iterations=1
    )
    save_result("ext_drv", result.rows())
    drv = result.cell_drv[0.0]
    # The retention floor sits far below the nominal supply...
    assert np.median(drv) < 0.5
    # ...but the array-extreme (worst cell per 64Kb die) dominates it.
    assert result.array_quantiles[0.0] > np.median(drv) + 0.05
    assert result.safe_voltage < 1.0


def test_ext_performance(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_performance(ctx), rounds=1, iterations=1
    )
    save_result("ext_performance", result.rows())
    # FBB recovers a measurable slice of the slow-corner access time.
    recovery = 1.0 - result.t_access_repaired[-1] / result.t_access_zbb[-1]
    assert recovery > 0.03
    # RBB costs speed at the fast corner (the price of read stability).
    assert result.t_access_repaired[0] > result.t_access_zbb[0]


def test_ext_temperature(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_temperature(ctx), rounds=1, iterations=1
    )
    save_result("ext_temperature", result.rows())
    # Roughly an order of magnitude of leakage from 0C to 85C.
    assert result.mean_cell_leakage[-1] > 8 * result.mean_cell_leakage[0]
    # The leakage-only monitor is fooled at 85C.
    assert result.leakage_bin[-1] == "low_vt"


def test_ext_ecc(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_ecc(ctx), rounds=1, iterations=1
    )
    save_result("ext_ecc", result.rows())
    mid = len(result.shifts) // 2
    # At equal overhead: redundancy beats ECC for hard parametric faults.
    assert result.p_redundancy[mid] <= result.p_ecc[mid] + 1e-12
    assert result.p_ecc[mid] <= result.p_none[mid] + 1e-12
    # Post-silicon repair widens the usable corner window beyond both.
    assert result.p_repair_plus_redundancy[0] < result.p_redundancy[0]


def test_ext_snm(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_snm(ctx), rounds=1, iterations=1
    )
    save_result("ext_snm", result.rows())
    # RBB widens, FBB narrows the read butterfly (Fig. 2b in margins).
    assert np.all(np.diff(result.read_mean) < 0)
    assert np.all(result.hold_mean > result.read_mean)


def test_ext_8t(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: extensions.ext_8t(ctx), rounds=1, iterations=1
    )
    save_result("ext_8t", result.rows())
    mid = len(result.shifts) // 2
    # The 8T removes the 6T's low-Vt read wall...
    assert result.p8_any[0] < 0.1 * result.p6_any[0]
    # ...and still has a (much gentler) high-Vt wall of its own: its
    # write/hold mechanisms grow with the corner even though the
    # free-sized two-transistor read port postpones the access wall far
    # beyond the 6T's.
    assert result.p8_any[-1] > 5 * result.p8_any[mid]
    assert result.p8_any[-1] < result.p6_any[-1]
