"""Fig. 5c — leakage yield vs sigma(Vt_inter), ZBB vs self-repair (64KB).

Paper: the fraction of dies meeting a total-leakage bound degrades with
inter-die sigma; the self-repairing scheme recovers most of it.
"""

import numpy as np

from repro.experiments import repair


def test_fig5c(benchmark, ctx, save_result):
    sigmas = np.linspace(0.02, 0.08, 7)
    result = benchmark.pedantic(
        lambda: repair.fig5c(ctx, sigmas=sigmas, memory_kbytes=64),
        rounds=1, iterations=1,
    )
    save_result("fig5c", result.rows())

    # ZBB leakage yield falls with sigma.
    assert result.yield_zbb[-1] < result.yield_zbb[0] - 0.1
    # Self-repair dominates and recovers a paper-scale gap.
    assert np.all(result.yield_repaired >= result.yield_zbb - 0.02)
    gain = result.yield_repaired - result.yield_zbb
    assert gain.max() > 0.08
