"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments that lack the ``wheel`` package (pip then falls back
to the legacy ``setup.py develop`` editable install).
"""

from setuptools import setup

setup()
