#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve to real files.

Scans every ``*.md`` under the repo root and ``docs/`` for inline
links/images ``[text](target)`` and verifies each relative target
exists (anchors are stripped; external ``http(s)``/``mailto`` targets
are skipped).  Exits non-zero listing every broken link — run by the
CI docs job and fine to run locally::

    python tools/check_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown link/image: [text](target) — target captured lazily
#: so titles ("target \"title\"") and anchors survive the split below.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository.
EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    files = sorted(root.glob("*.md"))
    for sub in ("docs", ".github"):
        files.extend(sorted((root / sub).rglob("*.md")))
    return files


def broken_links(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    bad = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            bad.append(f"{path.relative_to(root)}: broken link -> {target}")
    return bad


def main() -> int:
    root = pathlib.Path(__file__).resolve().parents[1]
    failures: list[str] = []
    files = markdown_files(root)
    for path in files:
        failures.extend(broken_links(path, root))
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\n{len(failures)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
