#!/usr/bin/env python3
"""End-to-end crash-recovery smoke for ``repro.service``.

Drives a real server process (subprocess, ephemeral port) through the
four lifecycle stories the durable job ledger exists for, asserting on
wire responses, healthz counters, and on-disk artifacts:

1. **Baseline** — an uninterrupted run of the reference job; its
   result is the byte-exact oracle for the recovery scenario.
2. **SIGKILL + recover** — the same job is killed mid-build (after at
   least one checkpoint flush), the server restarts with the same
   ``--state-dir``/``--checkpoint-dir``, and *without resubmission*
   the job is re-enqueued from the ledger, resumes through its
   checkpoints, and completes with a result identical to the
   baseline (``service.jobs_recovered >= 1``, ``jobs_lost == 0``,
   ``telemetry-{id}.json`` attributed to the job).
3. **SIGTERM drain** — a running job finishes inside the drain
   window, the process exits 0, and a reboot on the same state dir
   recovers nothing (the ledger knows the job is terminal).
4. **reject_burst chaos** — with a ``REPRO_FAULT_PLAN`` shedding the
   first submissions, the stock loadgen rides out the 429s on its
   retry policy and the burst still succeeds end to end.

Stdlib only; run from the repo root (CI ``recovery-smoke`` job)::

    PYTHONPATH=src python tools/recovery_smoke.py
"""

from __future__ import annotations

import glob
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

#: The reference job: ~10-20 s of build across 18 grid cells, so a
#: mid-build SIGKILL always lands after checkpoint flushes with work
#: still outstanding.  Deterministic (fixed seed): every completed run
#: must produce byte-identical results.
SLOW_SPEC = {
    "kind": "table",
    "target": 1e-4,
    "calibration_samples": 3000,
    "analysis_samples": 1500,
    "sampler": "adaptive-is",
    "table_grid": 9,
    "seed": 404,
    "vbody_levels": [0.0, 0.3],
}

WAIT_S = 300.0


class SmokeError(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeError(message)


def request(
    method: str, url: str, payload: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict]:
    body = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode()
        try:
            return exc.code, json.loads(raw)
        except json.JSONDecodeError:
            return exc.code, {"raw": raw}


class Server:
    """One ``python -m repro.service`` process on an ephemeral port."""

    def __init__(self, dirs: pathlib.Path, env: dict | None = None,
                 extra: list[str] | None = None) -> None:
        self.dirs = dirs
        cmd = [
            sys.executable, "-m", "repro.service", "--port", "0",
            "--cache-dir", str(dirs / "cache"),
            "--checkpoint-dir", str(dirs / "ckpt"),
            "--state-dir", str(dirs / "state"),
            "--checkpoint-every", "2",
            "--drain-timeout", "120",
        ] + (extra or [])
        full_env = dict(os.environ)
        full_env.setdefault("PYTHONPATH", "src")
        full_env.update(env or {})
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=full_env,
        )
        line = self.proc.stdout.readline().strip()
        check(line.startswith("listening on "),
              f"server did not announce its URL: {line!r}")
        self.base_url = line.split()[-1]

    def healthz(self) -> dict:
        status, body = request("GET", f"{self.base_url}/v1/healthz")
        check(status == 200, f"healthz: HTTP {status}")
        return body

    def counters(self) -> dict:
        return self.healthz()["telemetry"]["metrics"]["counters"]

    def submit(self, spec: dict) -> tuple[int, dict]:
        return request("POST", f"{self.base_url}/v1/jobs", spec)

    def wait_completed(self, job_id: str, timeout: float = WAIT_S) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = request(
                "GET", f"{self.base_url}/v1/jobs/{job_id}"
            )
            check(status == 200, f"job poll: HTTP {status} {body}")
            job = body["job"]
            if job["status"] == "completed":
                return job
            check(job["status"] in ("queued", "running"),
                  f"job reached {job['status']}: {job.get('error')}")
            time.sleep(0.25)
        raise SmokeError(f"job {job_id} not completed within {timeout}s")

    def result(self, job_id: str) -> str:
        """The job result as canonical JSON (the bit-identity oracle)."""
        status, body = request(
            "GET", f"{self.base_url}/v1/jobs/{job_id}/result"
        )
        check(status == 200, f"result: HTTP {status} {body}")
        return json.dumps(body["result"], sort_keys=True)

    def sigterm_and_wait(self, timeout: float = WAIT_S) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


def scenario_baseline(root: pathlib.Path) -> str:
    print("--- baseline: uninterrupted run")
    server = Server(root / "baseline")
    try:
        status, body = server.submit(SLOW_SPEC)
        check(status == 202, f"submit: HTTP {status} {body}")
        job_id = body["job"]["id"]
        server.wait_completed(job_id)
        result = server.result(job_id)
        counters = server.counters()
        check(counters.get("service.jobs_failed", 0) == 0, f"{counters}")
        check(counters.get("service.jobs_lost", 0) == 0, f"{counters}")
        print(f"    baseline job {job_id} completed")
        return result
    finally:
        server.kill()


def scenario_crash_recover(root: pathlib.Path, oracle: str) -> None:
    print("--- SIGKILL mid-build, restart, auto-recover")
    dirs = root / "crash"
    server = Server(dirs)
    status, body = server.submit(SLOW_SPEC)
    check(status == 202, f"submit: HTTP {status} {body}")
    job_id = body["job"]["id"]

    # Let the build make durable progress: at least one checkpoint
    # flush on disk, then one more beat so the kill lands mid-slice.
    deadline = time.monotonic() + WAIT_S
    while not glob.glob(str(dirs / "ckpt" / "*.ckpt.json")):
        check(time.monotonic() < deadline, "no checkpoint flush appeared")
        check(server.proc.poll() is None, "server died on its own")
        time.sleep(0.1)
    time.sleep(0.5)
    status, body = request("GET", f"{server.base_url}/v1/jobs/{job_id}")
    check(body["job"]["status"] == "running",
          f"expected a running job at kill time, got {body['job']['status']}")
    server.proc.send_signal(signal.SIGKILL)
    server.proc.wait(timeout=30)
    print(f"    killed -9 mid-build (job {job_id})")

    server = Server(dirs)  # same cache/ckpt/state dirs
    try:
        # No resubmission: the ledger replay alone must bring the job
        # back, and it must finish from its checkpoints.
        job = server.wait_completed(job_id)
        check(job.get("recovered") is True, f"job not marked recovered: {job}")
        result = server.result(job_id)
        check(result == oracle,
              "recovered result differs from the uninterrupted run")
        counters = server.counters()
        check(counters.get("service.jobs_recovered", 0) >= 1, f"{counters}")
        check(counters.get("service.jobs_lost", 0) == 0, f"{counters}")
        check(counters.get("service.jobs_failed", 0) == 0, f"{counters}")

        # Per-job attribution survived the crash: the telemetry dump
        # is keyed by the job's run scope (run_id == job_id).
        telemetry_path = dirs / "ckpt" / f"telemetry-{job_id[:16]}.json"
        check(telemetry_path.exists(), f"missing {telemetry_path}")
        snapshot = json.loads(telemetry_path.read_text())
        check(snapshot.get("run_id") == job_id,
              f"telemetry run_id {snapshot.get('run_id')!r} != job id")
        print("    recovered: result bit-identical, "
              f"jobs_recovered={int(counters['service.jobs_recovered'])}, "
              "jobs_lost=0, telemetry attributed")
    finally:
        server.kill()


def scenario_drain(root: pathlib.Path) -> None:
    print("--- SIGTERM drain: running job finishes, exit 0, zero lost")
    dirs = root / "drain"
    server = Server(dirs)
    status, body = server.submit(SLOW_SPEC)
    check(status == 202, f"submit: HTTP {status} {body}")
    job_id = body["job"]["id"]

    deadline = time.monotonic() + WAIT_S
    while True:
        status, body = request("GET", f"{server.base_url}/v1/jobs/{job_id}")
        if body["job"]["status"] == "running":
            break
        check(time.monotonic() < deadline, "job never started")
        time.sleep(0.1)

    server.proc.send_signal(signal.SIGTERM)
    # Readiness flips to 503 and new submissions shed immediately,
    # while the running job keeps its drain window.
    deadline = time.monotonic() + 30
    while True:
        status, body = request("GET", f"{server.base_url}/v1/readyz")
        if status == 503:
            check(body.get("draining") is True, f"{body}")
            break
        check(time.monotonic() < deadline, "readyz never flipped to 503")
        time.sleep(0.05)
    rejected_spec = dict(SLOW_SPEC, seed=999)
    status, body = server.submit(rejected_spec)
    check(status == 503, f"draining submit: HTTP {status} {body}")
    check(body["error"]["code"] == "draining", f"{body}")

    code = server.sigterm_and_wait()  # idempotent signal; waits for exit
    check(code == 0, f"drain exit code {code}")
    print("    drained: readyz 503, new submission shed, exit 0")

    # The ledger knows the job finished: a reboot on the same state
    # dir recovers nothing and loses nothing.
    server = Server(dirs)
    try:
        counters = server.counters()
        check(counters.get("service.jobs_recovered", 0) == 0, f"{counters}")
        check(counters.get("service.jobs_lost", 0) == 0, f"{counters}")
        # And the completed surface is served warm on resubmission.
        status, body = server.submit(SLOW_SPEC)
        check(status == 202, f"resubmit: HTTP {status} {body}")
        server.wait_completed(job_id, timeout=60)
        print("    reboot after drain: 0 recovered, 0 lost")
    finally:
        server.kill()


def scenario_reject_burst(root: pathlib.Path) -> None:
    print("--- reject_burst chaos: loadgen retries ride out the 429s")
    dirs = root / "chaos"
    plan = {"specs": [
        {"kind": "reject_burst", "site": "admission", "times": 2},
    ]}
    server = Server(dirs, env={"REPRO_FAULT_PLAN": json.dumps(plan)})
    telemetry_out = root / "loadgen-telemetry.json"
    try:
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service.loadgen",
             "--base-url", server.base_url,
             "--duplicates", "5", "--gets", "10",
             "--telemetry-out", str(telemetry_out)],
            env=env, capture_output=True, text=True, timeout=WAIT_S,
        )
        check(proc.returncode == 0,
              f"loadgen failed under chaos:\n{proc.stdout}\n{proc.stderr}")
        report = json.loads(telemetry_out.read_text())
        retries = report["client_metrics"]["counters"].get(
            "service.client_retries", 0
        )
        check(retries >= 2, f"expected >= 2 client retries, got {retries}")
        counters = server.counters()
        check(counters.get("service.jobs_rejected", 0) == 2, f"{counters}")
        check(counters.get("service.jobs_completed", 0) >= 1, f"{counters}")
        check(counters.get("service.jobs_failed", 0) == 0, f"{counters}")
        print(f"    chaos burst ok: {int(retries)} client retries, "
              "2 shed submissions, job completed")
    finally:
        server.kill()


def main() -> int:
    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-recovery-smoke-"))
    try:
        oracle = scenario_baseline(root)
        scenario_crash_recover(root, oracle)
        scenario_drain(root)
        scenario_reject_burst(root)
    except SmokeError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    print("recovery smoke ok: crash recovery exact, drain clean, "
          "backpressure survivable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
