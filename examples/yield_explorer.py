#!/usr/bin/env python3
"""Design-space exploration: what the paper's Section II motivates.

Pre-silicon knobs (cell sizing, redundancy) only go so far against
inter-die variation — this example quantifies that, then shows the
post-silicon knob (self-repair) recovering the yield that sizing
cannot.

Sweeps:
1. cell ratio (pull-down width) vs read/write trade-off;
2. column redundancy vs parametric yield at fixed sigma;
3. self-repair on top of the best static design.

Run:  python examples/yield_explorer.py   (~2-3 minutes)
"""

from repro import (
    CellFailureAnalyzer,
    CellGeometry,
    ProcessCorner,
    SelfRepairingSRAM,
    calibrate_criteria,
    predictive_70nm,
)
from repro.failures.memory import memory_failure_probability
from repro.sram.array import ArrayOrganization
from repro.sram.metrics import OperatingConditions
from repro.technology.variation import InterDieDistribution


def main() -> None:
    tech = predictive_70nm()
    conditions = OperatingConditions.nominal(tech)

    # --- 1. cell sizing: the static read/write trade-off --------------
    print("cell sizing trade-off (nominal corner, P_fail per mechanism):")
    print("  w_pd[nm]   P_read     P_write    P_access")
    for w_pd in (160e-9, 200e-9, 260e-9):
        geometry = CellGeometry(w_pull_down=w_pd)
        criteria = calibrate_criteria(
            tech, CellGeometry(), conditions, target=1e-4,
            n_samples=12_000, seed=3,
        )
        analyzer = CellFailureAnalyzer(
            tech, criteria, geometry, conditions, n_samples=8_000, seed=4
        )
        probs = analyzer.failure_probabilities(ProcessCorner(0.0))
        print(f"  {w_pd * 1e9:7.0f}  {probs['read'].estimate:9.2e}"
              f"  {probs['write'].estimate:9.2e}"
              f"  {probs['access'].estimate:9.2e}")
    print("  (upsizing the pull-down buys read stability, costs area; the"
          " calibrated design splits the budget evenly)")

    # --- 2. redundancy vs yield ---------------------------------------
    geometry = CellGeometry()
    criteria = calibrate_criteria(
        tech, geometry, conditions, target=1e-4, n_samples=12_000, seed=3
    )
    analyzer = CellFailureAnalyzer(
        tech, criteria, geometry, conditions, n_samples=8_000, seed=4
    )
    sigma = 0.05
    dist = InterDieDistribution(sigma)
    print(f"\nredundancy vs parametric yield "
          f"(8KB, sigma(Vt_inter) = {sigma * 1e3:.0f} mV):")
    pipelines = {}
    for redundancy in (0.02, 0.05, 0.10):
        organization = ArrayOrganization.from_capacity(
            8 * 1024, rows=64, redundancy_fraction=redundancy
        )
        pipeline = SelfRepairingSRAM(
            analyzer, organization, leakage_samples=4_000, table_grid=7
        )
        pipelines[redundancy] = pipeline
        yield_zbb = pipeline.parametric_yield(dist, repaired=False)
        print(f"  {redundancy * 100:4.0f}% spare columns -> "
              f"yield {100 * yield_zbb:5.1f}%")

    # --- 3. post-silicon repair on top ---------------------------------
    print("\nadding post-silicon self-repair (adaptive body bias):")
    for redundancy, pipeline in pipelines.items():
        yield_zbb = pipeline.parametric_yield(dist, repaired=False)
        yield_rep = pipeline.parametric_yield(dist, repaired=True)
        print(f"  {redundancy * 100:4.0f}% redundancy: "
              f"{100 * yield_zbb:5.1f}% -> {100 * yield_rep:5.1f}% "
              f"(+{100 * (yield_rep - yield_zbb):.1f} points)")

    # --- and what a single stuck policy would do -----------------------
    pipeline = pipelines[0.05]
    print("\nwhy *adaptive* (per-die) beats any fixed body bias:")
    for vbody, label in ((-0.4, "always-RBB"), (0.0, "always-ZBB"),
                         (0.4, "always-FBB")):
        def p_mem(corner, vb=vbody):
            return memory_failure_probability(
                pipeline.cell_failure_probability(corner, vb),
                pipeline.organization,
            )
        from repro.stats.integration import dense_expectation

        fixed_yield = dense_expectation(dist, lambda c: 1.0 - p_mem(c))
        print(f"  {label:10s}: yield {100 * fixed_yield:5.1f}%")
    adaptive = pipeline.parametric_yield(dist, repaired=True)
    print(f"  adaptive  : yield {100 * adaptive:5.1f}%")


if __name__ == "__main__":
    main()
