#!/usr/bin/env python3
"""Both knobs together: self-repair, then self-adaptive source bias.

The paper's conclusion argues sub-90 nm memories need *self-repairing
and self-adaptive* systems — this example runs the combined flow on a
small population of dies drawn from the inter-die distribution:

1. the leakage monitor bins each die and applies RBB / ZBB / FBB;
2. with that body bias in place, the BIST calibrates the die's own
   standby source bias.

The punchline table shows each die's corner, the chosen knob settings,
the failure probability before/after, and the standby power it ends up
burning.

Run:  python examples/full_post_silicon_tuning.py   (~2-3 minutes)
"""

import numpy as np

from repro import (
    CellFailureAnalyzer,
    CellGeometry,
    ProcessCorner,
    SelfRepairingSRAM,
    calibrate_criteria,
    predictive_70nm,
)
from repro.core.source_bias import SelfAdaptiveSourceBias, SourceBiasDAC
from repro.core.tuning import PostSiliconTuner
from repro.power.standby import die_standby_power
from repro.sram.array import ArrayOrganization
from repro.sram.metrics import OperatingConditions
from repro.technology.variation import InterDieDistribution


def main() -> None:
    tech = predictive_70nm()
    geometry = CellGeometry()
    conditions = OperatingConditions.nominal(tech)
    print("calibrating failure criteria...")
    criteria = calibrate_criteria(
        tech, geometry, conditions, target=1e-5, n_samples=30_000, seed=1
    )
    analyzer = CellFailureAnalyzer(
        tech, criteria, geometry, conditions, n_samples=10_000, seed=2
    )
    organization = ArrayOrganization.from_capacity(
        2 * 1024, rows=64, redundancy_fraction=0.10
    )
    pipeline = SelfRepairingSRAM(
        analyzer, organization, leakage_samples=5_000, table_grid=9
    )
    tuner = PostSiliconTuner(
        pipeline,
        SelfAdaptiveSourceBias(dac=SourceBiasDAC(bits=6, full_scale=0.63)),
    )

    rng = np.random.default_rng(13)
    shifts = InterDieDistribution(sigma=0.04).sample(rng, 6)
    print(f"\ntuning 6 dies from a sigma=40mV process "
          f"({organization}):\n")
    print("corner[mV]  bin       Vbody[V]  VSB[V]   P_cell before -> after"
          "   standby power[uW]")
    for i, shift in enumerate(sorted(shifts)):
        corner = ProcessCorner(round(float(shift), 3))
        outcome = tuner.tune(corner, np.random.default_rng((17, i)))
        power = die_standby_power(
            tech, geometry, corner, organization.n_cells,
            outcome.standby_conditions, n_samples=4_000,
        ).mean
        repair = outcome.repair
        print(f"{corner.dvt_inter * 1e3:+9.0f}  {repair.bin.value:8s}"
              f"  {outcome.vbody:+7.1f}  {outcome.vsb:6.3f}"
              f"   {repair.p_cell_before:9.2e} -> {repair.p_cell_after:9.2e}"
              f"   {power * 1e6:10.2f}")

    print("\n(leaky dies get RBB and still bank a deep source bias;"
          "\n slow dies get FBB to fix access/write and back off VSB a"
          " step or two)")


if __name__ == "__main__":
    main()
