#!/usr/bin/env python3
"""Self-adaptive source biasing, end to end (paper Section IV, Fig. 7).

Builds a functional 2KB memory array whose faults come from real cell
physics, then runs the BIST calibration loop — March tests with standby
dwells, the faulty-column register bank, and the counter/DAC ramp — to
find VSB(adaptive) for dies at three inter-die corners, and reports the
standby-power saving each die banks.

Run:  python examples/adaptive_source_bias.py   (~1-2 minutes)
"""

import numpy as np

from repro import (
    ProcessCorner,
    SelfAdaptiveSourceBias,
    SourceBiasDAC,
    calibrate_criteria,
    predictive_70nm,
)
from repro.core.march import MARCH_X
from repro.core.source_bias import BISTController
from repro.power.standby import die_standby_power
from repro.sram.array import ArrayOrganization, FunctionalMemoryArray
from repro.sram.cell import CellGeometry
from repro.sram.metrics import OperatingConditions


def main() -> None:
    tech = predictive_70nm()
    geometry = CellGeometry()
    print("calibrating failure criteria...")
    # A deep-ish target: the BIST shares the redundancy between static
    # and retention faults, so the example dies must be statically alive.
    criteria = calibrate_criteria(
        tech, geometry, OperatingConditions.nominal(tech),
        target=1e-5, n_samples=30_000, seed=1,
    )

    organization = ArrayOrganization.from_capacity(
        2 * 1024, rows=64, redundancy_fraction=0.05
    )
    dac = SourceBiasDAC(bits=7, full_scale=0.635)
    loop = SelfAdaptiveSourceBias(
        dac=dac, controller=BISTController(march=MARCH_X)
    )
    print(f"array: {organization}; DAC: {dac.bits}-bit, "
          f"{dac.step * 1e3:.1f} mV/step; March: {MARCH_X.name} "
          f"({MARCH_X.operation_count}N)")

    conditions = OperatingConditions.source_biased_standby(tech)
    for i, shift in enumerate((-0.015, 0.0, 0.015)):
        array = FunctionalMemoryArray(
            tech, organization, criteria,
            geometry=geometry,
            corner=ProcessCorner(shift),
            conditions=conditions,
            rng=np.random.default_rng((7, i)),
        )
        result = loop.calibrate_bisect(array)
        power_zero = die_standby_power(
            tech, geometry, ProcessCorner(shift), organization.n_cells,
            conditions.with_source_bias(0.0), n_samples=5_000,
        ).mean
        power_adapt = die_standby_power(
            tech, geometry, ProcessCorner(shift), organization.n_cells,
            conditions.with_source_bias(result.vsb_adaptive),
            n_samples=5_000,
        ).mean
        saving = 100.0 * (1.0 - power_adapt / power_zero)
        print(f"\ndie at {shift * 1e3:+.0f} mV:")
        print(f"  VSB(adaptive) = {result.vsb_adaptive:.3f} V "
              f"(code {result.code}, {result.faulty_columns} faulty cols "
              f"<= {organization.redundant_columns} spares)")
        print(f"  standby power {power_zero * 1e6:.2f} uW -> "
              f"{power_adapt * 1e6:.2f} uW  ({saving:.0f}% saved)")


if __name__ == "__main__":
    main()
