#!/usr/bin/env python3
"""Margins, diagnostics, and design alternatives.

Three analysis views the library provides beyond the paper's figures:

1. butterfly static noise margins under body bias (the margin-based
   view of the paper's Fig. 2b trade-off);
2. the most-probable-failure-point (FORM) diagnosis of *which
   transistors* each mechanism fails through, checked against Monte
   Carlo;
3. the read-decoupled 8T cell — the architectural alternative to the
   paper's post-silicon read repair — compared across corners.

Run:  python examples/margins_and_alternatives.py   (~2 minutes)
"""

import numpy as np

from repro import (
    CellFailureAnalyzer,
    CellGeometry,
    ProcessCorner,
    SixTCell,
    calibrate_criteria,
    predictive_70nm,
)
from repro.failures.mpfp import MpfpEstimator
from repro.sram.cell import sample_cell_dvt
from repro.sram.eight_t import eight_t_failure_probabilities, sample_eight_t
from repro.sram.metrics import OperatingConditions
from repro.sram.snm import hold_snm, read_snm


def main() -> None:
    tech = predictive_70nm()
    geometry = CellGeometry()
    conditions = OperatingConditions.nominal(tech)

    # --- 1. SNM vs body bias ------------------------------------------
    print("butterfly noise margins of the nominal cell (VDD = 1.0 V):")
    cell = SixTCell(tech, geometry, ProcessCorner(0.0))
    print("  vbody[V]   read SNM[mV]   hold SNM[mV]")
    for vbody in (-0.4, 0.0, 0.25):
        read = float(read_snm(cell, 1.0, vbody_n=vbody)[0])
        hold = float(hold_snm(cell, 1.0, vbody_n=vbody)[0])
        print(f"  {vbody:+7.2f}  {read * 1e3:12.1f}  {hold * 1e3:12.1f}")
    print("  (RBB widens the read butterfly — the paper's read repair;"
          " FBB narrows it)")

    # --- 2. FORM diagnosis ---------------------------------------------
    print("\ncalibrating criteria and running FORM vs Monte Carlo...")
    criteria = calibrate_criteria(
        tech, geometry, conditions, target=1e-4, n_samples=20_000, seed=1
    )
    mpfp = MpfpEstimator(tech, criteria, geometry, conditions)
    analyzer = CellFailureAnalyzer(
        tech, criteria, geometry, conditions, n_samples=20_000, seed=2
    )
    mc = analyzer.failure_probabilities(ProcessCorner(0.0))
    print("  mechanism  beta    P(FORM)    P(MC)      dominant devices")
    for mechanism in ("read", "write", "access"):
        result = mpfp.find_mpfp(mechanism)
        dominant = ", ".join(
            f"{name}:{result.z[name]:+.1f}sigma"
            for name in result.dominant_transistors(2)
        )
        print(f"  {mechanism:9s}  {result.beta:4.2f}"
              f"  {result.probability:9.2e}"
              f"  {mc[mechanism].estimate:9.2e}  {dominant}")
    print("  (the MPFP names the devices each mechanism fails through)")

    # --- 3. 6T vs 8T ----------------------------------------------------
    print("\n6T vs 8T overall cell failure across corners "
          "(8T pays ~33% area for a disturb-free read):")
    print("  shift[mV]   6T overall   8T overall")
    for shift in (-0.08, -0.04, 0.0, 0.04, 0.08):
        corner = ProcessCorner(shift)
        p6 = analyzer.failure_probabilities(corner)["any"].estimate
        rng = np.random.default_rng(int(1000 + shift * 1e4))
        cell8, weights = sample_eight_t(
            tech, rng, 10_000, geometry=geometry, corner=corner, scale=2.0
        )
        p8 = eight_t_failure_probabilities(
            cell8, weights, criteria, conditions
        )["any"].estimate
        print(f"  {shift * 1e3:+9.0f}  {p6:11.2e}  {p8:11.2e}")
    print("  (the low-Vt read wall disappears; the high-Vt access/write"
          " wall remains)")


if __name__ == "__main__":
    main()
