#!/usr/bin/env python3
"""Why the monitor senses the *array*, not a cell (paper Fig. 3).

Samples single-cell and whole-array leakage distributions for dies at
three inter-die corners and shows that intra-die RDF makes cell-level
corner identification hopeless while the array-level distributions
separate cleanly (central limit theorem) — then calibrates the monitor
and confirms its three-way binning on noisy per-die measurements.

Run:  python examples/leakage_monitor_binning.py
"""

import numpy as np

from repro import LeakageMonitor, ProcessCorner, predictive_70nm
from repro.core.monitor import CornerBin
from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.stats.distributions import array_leakage_distribution


def ascii_histogram(samples: np.ndarray, lo: float, hi: float,
                    bins: int = 40) -> str:
    counts, _ = np.histogram(samples, bins=bins, range=(lo, hi))
    peak = max(counts.max(), 1)
    blocks = " .:-=+*#%@"
    return "".join(blocks[min(9, int(9 * c / peak))] for c in counts)


def main() -> None:
    tech = predictive_70nm()
    geometry = CellGeometry()
    n_cells = 8 * 1024 * 8  # an 8KB monitored array
    corners = (-0.035, 0.0, 0.035)
    rng = np.random.default_rng(11)

    print("single-cell leakage [nA] per corner "
          "(heavily overlapping distributions):")
    cell_samples = {}
    for shift in corners:
        dvt = sample_cell_dvt(tech, geometry, rng, 20_000)
        population = SixTCell(tech, geometry, ProcessCorner(shift), dvt)
        cell_samples[shift] = cell_leakage(population).total
    lo = min(s.min() for s in cell_samples.values()) * 1e9
    hi = np.quantile(
        np.concatenate(list(cell_samples.values())), 0.99
    ) * 1e9
    for shift in corners:
        print(f"  {shift * 1e3:+5.0f} mV |"
              f"{ascii_histogram(cell_samples[shift] * 1e9, lo, hi)}|"
              f" mean {cell_samples[shift].mean() * 1e9:6.2f} nA")

    print(f"\narray leakage [uA] per corner "
          f"({n_cells} cells: CLT separates them):")
    array_dists = {
        shift: array_leakage_distribution(cell_samples[shift], n_cells)
        for shift in corners
    }
    lo = min(d.mean - 4 * d.std for d in array_dists.values()) * 1e6
    hi = max(d.mean + 4 * d.std for d in array_dists.values()) * 1e6
    for shift in corners:
        draws = array_dists[shift].sample(rng, 4000) * 1e6
        print(f"  {shift * 1e3:+5.0f} mV |{ascii_histogram(draws, lo, hi)}|"
              f" mean {array_dists[shift].mean * 1e6:7.2f} uA "
              f"(sigma {array_dists[shift].std * 1e6:5.3f})")

    print("\ncalibrating the monitor references at the +/-35 mV bin "
          "boundaries...")
    monitor = LeakageMonitor.calibrate_references(
        tech, geometry, n_cells, bin_boundary=0.035, n_samples=10_000
    )

    print("binning 100 noisy dies per corner:")
    expected = {-0.08: CornerBin.LOW_VT, 0.0: CornerBin.NOMINAL,
                0.08: CornerBin.HIGH_VT}
    for shift, want in expected.items():
        dvt = sample_cell_dvt(tech, geometry, rng, 10_000)
        population = SixTCell(tech, geometry, ProcessCorner(shift), dvt)
        dist = array_leakage_distribution(
            cell_leakage(population).total, n_cells
        )
        draws = dist.sample(rng, 100)
        hits = sum(monitor.classify(float(x)) is want for x in draws)
        print(f"  corner {shift * 1e3:+5.0f} mV -> {want.value:8s}: "
              f"{hits}/100 correct")


if __name__ == "__main__":
    main()
