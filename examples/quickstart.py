#!/usr/bin/env python3
"""Quickstart: from a technology card to a self-repaired die.

Walks the library bottom-up on a deliberately small setup (a few
seconds):

1. build the predictive 70 nm technology and look at a 6T cell;
2. calibrate the failure criteria ("equal probabilities at ZBB");
3. estimate the cell failure bathtub across inter-die corners;
4. run the self-repairing pipeline (leakage monitor -> comparators ->
   body bias) on a leaky and a slow die.

Run:  python examples/quickstart.py
"""

from repro import (
    CellFailureAnalyzer,
    CellGeometry,
    ProcessCorner,
    SelfRepairingSRAM,
    SixTCell,
    calibrate_criteria,
    predictive_70nm,
)
from repro.sram.array import ArrayOrganization
from repro.sram.leakage import cell_leakage
from repro.sram.metrics import OperatingConditions, compute_cell_metrics


def main() -> None:
    tech = predictive_70nm()
    geometry = CellGeometry()
    conditions = OperatingConditions.nominal(tech)
    print(f"technology: {tech.name}, VDD = {tech.vdd} V")

    # --- 1. one nominal cell -----------------------------------------
    cell = SixTCell(tech, geometry, ProcessCorner(0.0))
    metrics = compute_cell_metrics(cell, conditions)
    leakage = cell_leakage(cell)
    print("\nnominal 6T cell:")
    print(f"  read margin   {float(metrics.read_margin[0]) * 1e3:6.1f} mV")
    print(f"  write time    {float(metrics.t_write[0]) * 1e12:6.1f} ps")
    print(f"  access curr.  {float(metrics.i_access[0]) * 1e6:6.1f} uA")
    print(f"  hold margin   {float(metrics.hold_margin[0]) * 1e3:6.1f} mV")
    print(f"  leakage       {float(leakage.total[0]) * 1e9:6.2f} nA "
          f"(sub {float(leakage.subthreshold[0]) * 1e9:.2f}, "
          f"gate {float(leakage.gate[0]) * 1e9:.2f}, "
          f"jn {float(leakage.junction[0]) * 1e9:.2f})")

    # --- 2. calibrated failure criteria ------------------------------
    print("\ncalibrating failure criteria (equal P_fail at ZBB)...")
    criteria = calibrate_criteria(
        tech, geometry, conditions, target=1e-4, n_samples=20_000, seed=1
    )
    print(f"  delta_read    {criteria.delta_read * 1e3:6.1f} mV")
    print(f"  t_write_max   {criteria.t_write_max * 1e12:6.1f} ps")
    print(f"  i_access_min  {criteria.i_access_min * 1e6:6.1f} uA")
    print(f"  hold fraction {criteria.hold_fraction_min:6.3f} of the rail")

    # --- 3. the failure bathtub ---------------------------------------
    analyzer = CellFailureAnalyzer(
        tech, criteria, geometry, conditions, n_samples=10_000, seed=2
    )
    print("\ncell failure probability vs inter-die Vt shift:")
    for shift in (-0.08, -0.04, 0.0, 0.04, 0.08):
        probs = analyzer.failure_probabilities(ProcessCorner(shift))
        print(f"  {shift * 1e3:+5.0f} mV: overall {probs['any'].estimate:9.2e}"
              f"  (read {probs['read'].estimate:8.2e},"
              f" access {probs['access'].estimate:8.2e})")

    # --- 4. self-repair two bad dies ----------------------------------
    organization = ArrayOrganization.from_capacity(
        8 * 1024, rows=64, redundancy_fraction=0.05
    )
    pipeline = SelfRepairingSRAM(
        analyzer, organization, leakage_samples=5_000, table_grid=7
    )
    print(f"\nself-repairing a {organization} array:")
    for shift in (-0.09, 0.09):
        outcome = pipeline.repair(ProcessCorner(shift))
        print(f"  die at {shift * 1e3:+.0f} mV -> bin {outcome.bin.value:8s}"
              f" body bias {outcome.vbody:+.1f} V | "
              f"P_cell {outcome.p_cell_before:.2e} -> "
              f"{outcome.p_cell_after:.2e} | leakage "
              f"{outcome.leakage_before * 1e6:.1f} -> "
              f"{outcome.leakage_after * 1e6:.1f} uA")


if __name__ == "__main__":
    main()
