"""Tests for DC sweeps and inverter characterisation."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    Resistor,
    VoltageSource,
    dc_sweep,
    inverter_vtc,
    switching_threshold,
)
from repro.circuit.sweep import sweep_parameter
from repro.circuit.netlist import GROUND
from repro.devices import make_nmos, make_pmos


def test_dc_sweep_linear_circuit():
    ckt = Circuit("divider")
    src = VoltageSource("in", GROUND, 0.0, name="VIN")
    ckt.add(src)
    ckt.add(Resistor("in", "mid", 1e3))
    ckt.add(Resistor("mid", GROUND, 1e3))
    values = np.linspace(0.0, 2.0, 5)
    out = dc_sweep(ckt, src, values, observe="mid")
    np.testing.assert_allclose(out, values / 2, rtol=1e-6)


def test_dc_sweep_restores_source_value():
    ckt = Circuit("divider")
    src = VoltageSource("in", GROUND, 0.7, name="VIN")
    ckt.add(src)
    ckt.add(Resistor("in", GROUND, 1e3))
    dc_sweep(ckt, src, np.array([0.0, 1.0]), observe="in")
    assert src.voltage == 0.7


def test_vtc_is_monotone_decreasing(tech):
    nmos = make_nmos(tech, width=200e-9)
    pmos = make_pmos(tech, width=100e-9)
    vin = np.linspace(0.0, 1.0, 21)
    vout = inverter_vtc(nmos, pmos, 1.0, vin)
    assert np.all(np.diff(vout) <= 1e-6)
    assert vout[0] > 0.95
    assert vout[-1] < 0.05


def test_switching_threshold_on_vtc(tech):
    nmos = make_nmos(tech, width=200e-9)
    pmos = make_pmos(tech, width=100e-9)
    vm = switching_threshold(nmos, pmos, 1.0)
    # At VM the inverter output equals the input.
    vout = inverter_vtc(nmos, pmos, 1.0, np.array([vm]))
    assert float(vout[0]) == pytest.approx(vm, abs=1e-3)


def test_stronger_pmos_raises_vm(tech):
    nmos = make_nmos(tech, width=200e-9)
    weak_p = make_pmos(tech, width=80e-9)
    strong_p = make_pmos(tech, width=400e-9)
    assert switching_threshold(nmos, strong_p, 1.0) > switching_threshold(
        nmos, weak_p, 1.0
    )


def test_source_bias_raises_vm(tech):
    """Raising the NMOS source rail shifts the trip point up."""
    nmos = make_nmos(tech, width=200e-9)
    pmos = make_pmos(tech, width=100e-9)
    vm0 = switching_threshold(nmos, pmos, 1.0, vss=0.0)
    vm_biased = switching_threshold(nmos, pmos, 1.0, vss=0.2)
    assert vm_biased > vm0 + 0.1


def test_sweep_parameter_builds_fresh_circuits():
    """Each sweep point solves a circuit parameterised by the value."""

    def build(r_bottom: float) -> Circuit:
        ckt = Circuit("divider")
        ckt.add(VoltageSource("in", GROUND, 1.0, name="VIN"))
        ckt.add(Resistor("in", "mid", 1e3))
        ckt.add(Resistor("mid", GROUND, r_bottom))
        return ckt

    values = np.array([1e3, 3e3])
    out = sweep_parameter(build, values, observe="mid")
    np.testing.assert_allclose(out, [0.5, 0.75], rtol=1e-6)
