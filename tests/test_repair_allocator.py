"""Tests for the redundancy repair allocators."""

import numpy as np
import pytest

from repro.failures.memory import memory_failure_probability
from repro.sram.array import ArrayOrganization
from repro.sram.repair import (
    RepairPlan,
    allocate_columns,
    allocate_exhaustive,
    allocate_rows_and_columns,
    repair_yield_monte_carlo,
)


def _map(rows, cols, faults):
    out = np.zeros((rows, cols), dtype=bool)
    for r, c in faults:
        out[r, c] = True
    return out


class TestColumnAllocation:
    def test_empty_map_succeeds(self):
        plan = allocate_columns(np.zeros((4, 4), dtype=bool), 1)
        assert plan.success
        assert plan.columns == ()

    def test_allocates_each_faulty_column(self):
        fail = _map(4, 6, [(0, 1), (2, 1), (3, 4)])
        plan = allocate_columns(fail, spare_columns=2)
        assert plan.success
        assert set(plan.columns) == {1, 4}
        assert plan.covers(fail)

    def test_fails_when_spares_exhausted(self):
        fail = _map(4, 6, [(0, 1), (1, 2), (2, 3)])
        plan = allocate_columns(fail, spare_columns=2)
        assert not plan.success

    def test_negative_spares_rejected(self):
        with pytest.raises(ValueError):
            allocate_columns(np.zeros((2, 2), dtype=bool), -1)


class TestRowColumnAllocation:
    def test_row_fault_cluster_uses_a_row(self):
        # One row carrying 4 faults: must use the row spare.
        fail = _map(4, 6, [(1, 0), (1, 2), (1, 3), (1, 5)])
        plan = allocate_rows_and_columns(fail, spare_rows=1, spare_columns=2)
        assert plan.success
        assert plan.rows == (1,)
        assert plan.covers(fail)

    def test_mixed_cluster(self):
        fail = _map(5, 5, [(0, 0), (1, 0), (2, 0), (4, 1), (4, 3)])
        plan = allocate_rows_and_columns(fail, spare_rows=1, spare_columns=1)
        assert plan.success
        assert plan.covers(fail)

    def test_unrepairable_reported(self):
        fail = np.ones((4, 4), dtype=bool)
        plan = allocate_rows_and_columns(fail, spare_rows=1, spare_columns=1)
        assert not plan.success

    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_matches_exhaustive_when_exhaustive_succeeds(self, seed):
        """Whenever the exact search finds a repair, greedy must too
        (must-repair + greedy is optimal for these small densities)."""
        rng = np.random.default_rng(seed)
        fail = rng.random((8, 8)) < 0.08
        exact = allocate_exhaustive(fail, spare_rows=2, spare_columns=2)
        greedy = allocate_rows_and_columns(fail, spare_rows=2,
                                           spare_columns=2)
        if exact.success:
            assert greedy.success
            assert greedy.covers(fail)
        else:
            # Greedy is a heuristic: it must never claim success when the
            # exhaustive oracle says unrepairable.
            assert not greedy.success

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_rows_and_columns(np.zeros((2, 2), dtype=bool), -1, 0)


class TestRepairYield:
    def test_column_only_matches_analytic(self, rng):
        """With no row spares the MC yield equals the binomial model."""
        rows, cols, spares = 16, 32, 3
        p_cell = 4e-3
        org = ArrayOrganization(rows=rows, columns=cols,
                                redundant_columns=spares)
        analytic = 1.0 - memory_failure_probability(p_cell, org)
        mc = repair_yield_monte_carlo(
            p_cell, rows, cols, spare_rows=0, spare_columns=spares,
            rng=rng, trials=4000,
        )
        assert mc == pytest.approx(analytic, abs=0.03)

    def test_row_spares_add_yield(self, rng):
        p_cell = 6e-3
        base = repair_yield_monte_carlo(
            p_cell, 16, 32, spare_rows=0, spare_columns=2,
            rng=np.random.default_rng(1), trials=3000,
        )
        extra = repair_yield_monte_carlo(
            p_cell, 16, 32, spare_rows=2, spare_columns=2,
            rng=np.random.default_rng(2), trials=3000,
        )
        assert extra > base + 0.02

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            repair_yield_monte_carlo(1e-3, 4, 4, 0, 1, rng, trials=0)


def test_repair_plan_covers():
    fail = _map(3, 3, [(0, 0), (2, 2)])
    assert RepairPlan(True, rows=(0,), columns=(2,)).covers(fail)
    assert not RepairPlan(True, rows=(0,), columns=()).covers(fail)
