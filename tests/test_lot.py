"""Tests for the production-lot flow simulator."""

import numpy as np
import pytest

from repro.core.body_bias import SelfRepairingSRAM
from repro.core.lot import LotSimulator
from repro.core.monitor import CornerBin
from repro.core.source_bias import SourceBiasDAC
from repro.experiments.asb import HoldProbabilityTable
from repro.sram.array import ArrayOrganization
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def simulator():
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(
        target=1e-4, calibration_samples=8_000, analysis_samples=4_000,
        table_grid=7, seed=99,
    )
    organization = ArrayOrganization.from_capacity(
        2 * 1024, rows=64, redundancy_fraction=0.05
    )
    pipeline = SelfRepairingSRAM(
        ctx.analyzer(), organization, table_provider=ctx.table,
        leakage_samples=4_000,
    )
    hold_table = HoldProbabilityTable(
        ctx,
        corner_grid=np.linspace(-0.1, 0.1, 5),
        vsb_grid=np.array([0.0, 0.3, 0.45, 0.55, 0.6, 0.635]),
    )
    return LotSimulator(pipeline, hold_table, dac=SourceBiasDAC(bits=5,
                                                                full_scale=0.62))


def test_lot_report_statistics(simulator):
    report = simulator.run(n_dies=60, sigma_inter=0.04, seed=3)
    assert report.n_dies == 60
    assert 0.2 < report.yield_fraction <= 1.0
    power = report.shipped_power()
    assert power.size == sum(d.shipped for d in report.dies)
    assert np.all(power > 0)
    rows = report.rows()
    assert any("yield" in row for row in rows)
    assert any("corner bins" in row for row in rows)
    # The lot is itself a Monte-Carlo experiment over dies: the
    # headline yield carries its binomial CI, in the report too.
    ci = report.yield_result()
    assert ci.n_samples == 60
    assert ci.ci_low <= report.yield_fraction <= ci.ci_high
    assert any("95% CI" in row for row in rows)


def test_extreme_dies_are_repaired_or_scrapped(simulator):
    rng = np.random.default_rng(5)
    leaky = simulator.process_die(ProcessCorner(-0.09), rng)
    assert leaky.bin is CornerBin.LOW_VT
    assert leaky.vbody < 0
    nominal = simulator.process_die(ProcessCorner(0.0), rng)
    assert nominal.shipped
    assert nominal.vsb > 0.3
    hopeless = simulator.process_die(ProcessCorner(0.2), rng)
    assert not hopeless.shipped
    assert hopeless.vsb == 0.0


def test_shipped_dies_meet_the_memory_limit(simulator):
    report = simulator.run(n_dies=40, sigma_inter=0.05, seed=7)
    for die in report.dies:
        if die.shipped:
            assert die.p_memory <= simulator.p_memory_limit


def test_run_identical_across_workers(simulator):
    """The determinism contract: fan-out must not change a single die."""
    import dataclasses

    from repro.parallel import ParallelExecutor

    serial = simulator.run(n_dies=10, sigma_inter=0.04, seed=21)
    parallel = simulator.run(
        n_dies=10, sigma_inter=0.04, seed=21, executor=ParallelExecutor(2)
    )
    assert [dataclasses.asdict(d) for d in serial.dies] == [
        dataclasses.asdict(d) for d in parallel.dies
    ]


def test_checkpointed_run_matches_plain(simulator, tmp_path):
    """A checkpointed lot run is bit-identical to an unchaperoned one."""
    import dataclasses

    from repro.checkpoint import CheckpointStore

    plain = simulator.run(n_dies=10, sigma_inter=0.04, seed=21)
    store = CheckpointStore(tmp_path, every=3)
    checked = simulator.run(
        n_dies=10, sigma_inter=0.04, seed=21, checkpoint=store
    )
    assert [dataclasses.asdict(d) for d in plain.dies] == [
        dataclasses.asdict(d) for d in checked.dies
    ]
    # Completed cleanly: no checkpoint left behind.
    assert not list(tmp_path.glob("*.ckpt.json"))


def test_killed_run_resumes_exactly(simulator, tmp_path):
    """Resume semantics: a partial checkpoint skips the finished dies
    and the completed report is bit-identical to an uninterrupted run.
    """
    import dataclasses

    from repro.checkpoint import CheckpointStore
    from repro.core import lot as lot_module

    reference = simulator.run(n_dies=9, sigma_inter=0.04, seed=33)

    # "Kill" a run after the first flush by making die 5 explode.
    store = CheckpointStore(tmp_path, every=3)
    original = lot_module._die_task
    calls = {"n": 0}

    def dying_task(task):
        calls["n"] += 1
        if calls["n"] == 6:
            raise KeyboardInterrupt("simulated kill")
        return original(task)

    lot_module._die_task = dying_task
    try:
        with pytest.raises(KeyboardInterrupt):
            simulator.run(
                n_dies=9, sigma_inter=0.04, seed=33, checkpoint=store
            )
    finally:
        lot_module._die_task = original

    ckpt = store.load("lot", simulator._lot_fingerprint(9, 0.04, 33))
    assert 0 < len(ckpt) < 9  # partial progress survived the kill

    resumed = simulator.run(
        n_dies=9, sigma_inter=0.04, seed=33, checkpoint=store
    )
    assert [dataclasses.asdict(d) for d in resumed.dies] == [
        dataclasses.asdict(d) for d in reference.dies
    ]
    assert not list(tmp_path.glob("*.ckpt.json"))


def test_wide_process_yields_less(simulator):
    narrow = simulator.run(n_dies=80, sigma_inter=0.02, seed=11)
    wide = simulator.run(n_dies=80, sigma_inter=0.08, seed=11)
    assert wide.yield_fraction < narrow.yield_fraction


def test_validation(simulator):
    with pytest.raises(ValueError):
        simulator.run(n_dies=0, sigma_inter=0.05)
    from repro.core.lot import LotSimulator as LS

    with pytest.raises(ValueError):
        LS(simulator.pipeline, simulator.hold_table, p_memory_limit=2.0)


def test_empty_report_edges():
    from repro.core.lot import LotReport

    report = LotReport()
    assert report.yield_fraction == 0.0
    assert report.repaired_fraction == 0.0
    assert report.shipped_power().size == 0
