"""Tests for the adaptive rare-event sampling engine.

The samplers are exercised on an analytic linear problem (failure =
half-space, so the true probability is a normal tail) where bias and
calibration can be checked exactly, and on the real cell analyzer for
the integration contracts: strategy dispatch, determinism across
worker counts, and the telemetry surface.
"""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro import observability
from repro.failures.analysis import CellFailureAnalyzer
from repro.parallel.executor import ParallelExecutor
from repro.stats.montecarlo import probability_of
from repro.stats.rare_event import (
    SAMPLER_NAMES,
    AdaptiveIsSampler,
    BlockadeSampler,
    GaussianMixture,
    PlainSampler,
    RareEventSample,
    ScaledSampler,
    _pilot_size,
    balance_heuristic_weights,
    make_sampler,
    per_stage_weights,
    standard_normal_logpdf,
    tuned_scale,
)
from repro.technology.corners import ProcessCorner


class LinearProblem:
    """Analytic reference: mechanism ``m`` fails when ``a . z > beta``.

    With a unit-norm direction the exact failure probability is
    ``Phi(-beta)`` and the exact MPFP is ``beta * a`` — everything a
    sampler test needs in closed form.
    """

    def __init__(self, beta=2.0, dims=4, with_seeds=True):
        self.beta = beta
        self.dims = dims
        self.mechanisms = ("m",)
        direction = np.zeros(dims)
        direction[0] = 0.8
        direction[1] = 0.6
        self.direction = direction  # unit norm
        self.with_seeds = with_seeds
        self.margin_calls = 0

    @property
    def p_true(self):
        return float(sp_stats.norm.sf(self.beta))

    def margins(self, z):
        z = np.atleast_2d(z)
        self.margin_calls += z.shape[0]
        return {"m": self.beta - z @ self.direction}

    def direction_seeds(self):
        if not self.with_seeds:
            return {}
        return {"m": self.beta * self.direction}


def _agrees(sample: RareEventSample, p_true: float, n_sigma=3.0) -> bool:
    result = probability_of(sample.fails["m"], sample.weights)
    return abs(result.estimate - p_true) <= n_sigma * max(
        result.stderr, 1e-12
    )


class TestTunedScale:
    def test_matches_tail_depth(self):
        # beta = Phi^-1(1 - 4e-4) = 3.353 over sqrt(6) dims.
        assert tuned_scale(4e-4, 6) == pytest.approx(1.3688, abs=1e-3)

    def test_clipped_to_bounds(self):
        assert tuned_scale(0.4, 6) == 1.05  # shallow tail -> floor
        assert tuned_scale(1e-12, 1) == 3.0  # deep tail, 1-D -> ceiling

    def test_monotone_in_depth(self):
        assert tuned_scale(1e-6, 6) > tuned_scale(1e-3, 6)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            tuned_scale(1e-4, 0)


class TestGaussianMixture:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture(np.zeros((2, 3)), np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            GaussianMixture(np.zeros((1, 3)), np.array([-1.0]), np.ones(1))
        with pytest.raises(ValueError):
            GaussianMixture(
                np.zeros((2, 3)), np.ones(2), np.array([0.9, 0.3])
            )

    def test_centered_logpdf_is_standard_normal(self, rng):
        mixture = GaussianMixture.centered(5)
        z = rng.standard_normal((40, 5))
        np.testing.assert_allclose(
            mixture.logpdf(z), standard_normal_logpdf(z), rtol=1e-12
        )

    def test_logpdf_matches_scipy(self, rng):
        means = np.array([[1.0, -0.5, 0.0], [-2.0, 0.3, 1.0]])
        scales = np.array([1.3, 0.7])
        alphas = np.array([0.4, 0.6])
        mixture = GaussianMixture(means, scales, alphas)
        z = rng.standard_normal((30, 3)) * 2.0
        expected = np.log(
            alphas[0]
            * sp_stats.multivariate_normal.pdf(
                z, mean=means[0], cov=scales[0] ** 2 * np.eye(3)
            )
            + alphas[1]
            * sp_stats.multivariate_normal.pdf(
                z, mean=means[1], cov=scales[1] ** 2 * np.eye(3)
            )
        )
        np.testing.assert_allclose(mixture.logpdf(z), expected, rtol=1e-10)

    def test_sample_shape_and_determinism(self):
        mixture = GaussianMixture.centered(4, 1.5)
        a = mixture.sample(np.random.default_rng(3), 100)
        b = mixture.sample(np.random.default_rng(3), 100)
        assert a.shape == (100, 4)
        np.testing.assert_array_equal(a, b)


class TestWeighting:
    def test_single_stage_balance_equals_plain_ratio(self, rng):
        proposal = GaussianMixture.centered(3, 2.0)
        z = proposal.sample(rng, 200)
        expected = np.exp(
            standard_normal_logpdf(z) - proposal.logpdf(z)
        )
        np.testing.assert_allclose(
            balance_heuristic_weights([(proposal, z)]), expected,
            rtol=1e-12,
        )

    def test_per_stage_concatenates_own_ratios(self, rng):
        q1 = GaussianMixture.centered(3, 2.0)
        q2 = GaussianMixture.centered(3, 1.2)
        z1, z2 = q1.sample(rng, 50), q2.sample(rng, 70)
        weights = per_stage_weights([(q1, z1), (q2, z2)])
        assert weights.shape == (120,)
        np.testing.assert_allclose(
            weights[:50],
            np.exp(standard_normal_logpdf(z1) - q1.logpdf(z1)),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            weights[50:],
            np.exp(standard_normal_logpdf(z2) - q2.logpdf(z2)),
            rtol=1e-12,
        )

    def test_mean_weight_near_one(self, rng):
        proposal = GaussianMixture.centered(2, 1.5)
        z = proposal.sample(rng, 50_000)
        weights = per_stage_weights([(proposal, z)])
        assert np.mean(weights) == pytest.approx(1.0, abs=0.05)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            balance_heuristic_weights([])
        with pytest.raises(ValueError):
            per_stage_weights([])


class TestPilotSize:
    def test_never_most_of_the_budget(self):
        assert _pilot_size(30) == 30
        assert _pilot_size(300) == 100
        assert _pilot_size(100_000) == 2048


class TestSamplersOnLinearProblem:
    def test_plain_matches_analytic(self):
        problem = LinearProblem(beta=1.0)
        out = PlainSampler().sample(
            problem, np.random.SeedSequence(1), 4000
        )
        assert out.n_solved == out.n_drawn == 4000
        np.testing.assert_array_equal(out.weights, np.ones(4000))
        assert _agrees(out, problem.p_true)

    def test_scaled_fixed_matches_analytic(self):
        problem = LinearProblem(beta=2.5)
        out = ScaledSampler(scale=1.8).sample(
            problem, np.random.SeedSequence(2), 4000
        )
        assert out.info["scale"] == 1.8
        assert _agrees(out, problem.p_true)

    def test_scaled_autotune_reports_and_matches(self):
        problem = LinearProblem(beta=2.5)
        out = ScaledSampler(scale=None).sample(
            problem, np.random.SeedSequence(3), 4000
        )
        assert "tuned_scale" in out.info and "pilot_p_any" in out.info
        assert 1.05 <= out.info["tuned_scale"] <= 3.0
        assert _agrees(out, problem.p_true)

    def test_adaptive_resolves_rare_tail_with_tiny_budget(self):
        # p ~ 2.3e-4: plain MC at this budget would see ~0 failures.
        # The stderr of a rare-tail IS estimate is itself noisy, so a
        # single seed can land outside its own 3-sigma band; require
        # the typical run to agree instead of betting on one draw.
        problem = LinearProblem(beta=3.5)
        agreements = 0
        for seed in range(5):
            out = AdaptiveIsSampler().sample(
                problem, np.random.SeedSequence(seed), 2400
            )
            assert out.info["shift_components"] >= 1
            agreements += _agrees(out, problem.p_true)
        assert agreements >= 4

    def test_adaptive_without_seeds_uses_cross_entropy(self):
        problem = LinearProblem(beta=2.0, with_seeds=False)
        out = AdaptiveIsSampler().sample(
            problem, np.random.SeedSequence(5), 3000
        )
        # The explore-scale pilot sees this tail, so CE shifts engage.
        assert out.info["shift_components"] >= 1
        assert _agrees(out, problem.p_true)

    def test_blockade_filters_and_matches(self):
        problem = LinearProblem(beta=2.0)
        out = BlockadeSampler().sample(
            problem, np.random.SeedSequence(6), 3000
        )
        assert out.n_solved < out.n_drawn  # the classifier blocked some
        assert out.info["blockade_solve_fraction"] < 1.0
        assert _agrees(out, problem.p_true)

    def test_blockade_degenerate_budget_solves_everything(self):
        problem = LinearProblem(beta=1.0)
        out = BlockadeSampler().sample(
            problem, np.random.SeedSequence(7), 5
        )
        assert out.n_solved == out.n_drawn
        assert out.info["blockade_solve_fraction"] == 1.0

    @pytest.mark.parametrize("seed", [11, 12, 13, 14, 15])
    def test_property_adaptive_agrees_with_plain_on_non_rare(self, seed):
        # Deliberately non-rare (p ~ 6.7e-2): plain MC is a sound
        # referee, and the two estimates must agree within 3 sigma of
        # their combined standard errors.
        problem = LinearProblem(beta=1.5)
        plain = PlainSampler().sample(
            problem, np.random.SeedSequence((seed, 0)), 6000
        )
        adaptive = AdaptiveIsSampler().sample(
            problem, np.random.SeedSequence((seed, 1)), 1500
        )
        p = probability_of(plain.fails["m"], plain.weights)
        a = probability_of(adaptive.fails["m"], adaptive.weights)
        assert a.within(p, n_sigma=3.0)

    @pytest.mark.parametrize("name", SAMPLER_NAMES)
    def test_same_seed_is_bit_identical(self, name):
        problem_a = LinearProblem(beta=2.0)
        problem_b = LinearProblem(beta=2.0)
        sampler = make_sampler(name)
        out_a = sampler.sample(problem_a, np.random.SeedSequence(8), 900)
        out_b = sampler.sample(problem_b, np.random.SeedSequence(8), 900)
        np.testing.assert_array_equal(out_a.weights, out_b.weights)
        np.testing.assert_array_equal(
            out_a.fails["any"], out_b.fails["any"]
        )

    def test_budget_validation(self):
        problem = LinearProblem()
        for name in SAMPLER_NAMES:
            with pytest.raises(ValueError):
                make_sampler(name).sample(
                    problem, np.random.SeedSequence(0), 0
                )


class TestMakeSampler:
    def test_dispatch(self):
        assert isinstance(make_sampler("plain"), PlainSampler)
        assert isinstance(make_sampler("scaled", 2.0), ScaledSampler)
        assert isinstance(make_sampler("adaptive-is"), AdaptiveIsSampler)
        assert isinstance(make_sampler("blockade"), BlockadeSampler)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_sampler("metropolis")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ScaledSampler(scale=0.5)
        with pytest.raises(ValueError):
            AdaptiveIsSampler(defensive_alpha=1.5)
        with pytest.raises(ValueError):
            BlockadeSampler(gamma=0.0)


class TestAnalyzerIntegration:
    def test_unknown_sampler_rejected(self, tech, fast_criteria):
        with pytest.raises(ValueError):
            CellFailureAnalyzer(tech, fast_criteria, sampler="bogus")

    @pytest.mark.parametrize("name", ["scaled", "adaptive-is", "blockade"])
    def test_strategy_estimates_agree_with_legacy(
        self, tech, fast_criteria, name
    ):
        # The loose 1e-2 calibration makes failures common enough for
        # small budgets, so every strategy must land on the legacy
        # estimate within combined 3-sigma.
        legacy = CellFailureAnalyzer(
            tech, fast_criteria, n_samples=8000, scale=1.5, seed=21
        )
        strategy = CellFailureAnalyzer(
            tech,
            fast_criteria,
            n_samples=2000,
            scale=None,
            seed=22,
            sampler=name,
        )
        corner = ProcessCorner(0.0)
        reference = legacy.failure_probabilities(corner)
        result = strategy.failure_probabilities(corner)
        for mechanism in ("any", "read"):
            assert result[mechanism].within(
                reference[mechanism], n_sigma=3.0
            ), mechanism

    def test_adaptive_batch_is_bit_identical_across_workers(
        self, tech, fast_criteria
    ):
        analyzer = CellFailureAnalyzer(
            tech,
            fast_criteria,
            n_samples=400,
            scale=None,
            seed=23,
            sampler="adaptive-is",
        )
        corners = [ProcessCorner(c) for c in (-0.05, 0.0, 0.05)]
        serial = analyzer.failure_probabilities_batch(corners)
        fanned = analyzer.failure_probabilities_batch(
            corners, executor=ParallelExecutor(2)
        )
        for s, f in zip(serial, fanned):
            for mechanism in ("read", "write", "access", "hold", "any"):
                assert s[mechanism].estimate == f[mechanism].estimate
                assert s[mechanism].stderr == f[mechanism].stderr

    def test_hold_path_uses_strategy(self, tech, fast_criteria):
        analyzer = CellFailureAnalyzer(
            tech,
            fast_criteria,
            n_samples=1500,
            scale=None,
            seed=24,
            sampler="blockade",
        )
        result = analyzer.hold_failure_probability(ProcessCorner(0.0))
        assert 0.0 <= result.estimate <= 1.0
        assert np.isfinite(result.stderr)

    def test_sampler_fingerprint(self, tech, fast_criteria):
        analyzer = CellFailureAnalyzer(
            tech, fast_criteria, scale=None, sampler="adaptive-is"
        )
        assert analyzer.sampler_fingerprint() == {
            "sampler": "adaptive-is",
            "scale": None,
        }

    def test_autotune_emits_scale_gauge(self, tech, fast_criteria):
        observability.configure(metrics=True)
        try:
            analyzer = CellFailureAnalyzer(
                tech,
                fast_criteria,
                n_samples=1200,
                scale=None,
                seed=25,
                sampler="scaled",
            )
            analyzer.failure_probabilities(ProcessCorner(0.0))
            from repro.observability.metrics import registry

            gauges = registry.snapshot()["gauges"]
            assert 1.05 <= gauges["sampler.tuned_scale"] <= 3.0
            assert "sampler.pilot_p_any" in gauges
        finally:
            observability.disable()
            observability.reset()
