"""Integration tests for the extension experiments."""

import numpy as np
import pytest

from repro.experiments import extensions
from repro.experiments.registry import EXTENSIONS, run_experiment


@pytest.fixture(scope="module")
def ctx():
    from repro.experiments.context import ExperimentContext

    return ExperimentContext(
        target=1e-4,
        calibration_samples=8_000,
        analysis_samples=4_000,
        table_grid=7,
        seed=99,
    )


class TestExtDelay:
    def test_sensors_agree_on_true_corners(self, ctx):
        result = extensions.ext_delay(
            ctx, shifts=np.array([-0.08, 0.0, 0.08]), n_cells=65536
        )
        assert result.decisions["leakage"] == result.decisions["delay"]
        assert result.decisions["combined"] == result.decisions["leakage"]
        assert result.decisions["leakage"] == [
            "low_vt", "nominal", "high_vt"
        ]

    def test_hot_die_fools_leakage_only(self, ctx):
        result = extensions.ext_delay(
            ctx, shifts=np.array([0.0]), n_cells=65536
        )
        assert result.hot_decisions["leakage"] == "low_vt"
        assert result.hot_decisions["combined"] != "low_vt"
        assert any("hot" in row for row in result.rows())


class TestExtDrv:
    def test_drv_statistics(self, ctx):
        result = extensions.ext_drv(ctx, n_samples=2_000, n_cells=16_384)
        drv_zbb = result.cell_drv[0.0]
        assert np.median(drv_zbb) < 0.5
        # Array extremes dominate the cell median.
        assert result.array_quantiles[0.0] > np.median(drv_zbb)
        # The safe supply covers the array distribution.
        assert result.safe_voltage >= result.array_quantiles[0.0]
        assert len(result.rows()) >= 3


class TestExtPerformance:
    def test_fbb_recovers_speed_at_slow_corners(self, ctx):
        result = extensions.ext_performance(
            ctx, shifts=np.linspace(-0.1, 0.1, 5)
        )
        # Unrepaired access time grows monotonically with the corner.
        assert np.all(np.diff(result.t_access_zbb) > 0)
        # At the slow extreme the repair buys back a chunk of speed.
        assert result.t_access_repaired[-1] < result.t_access_zbb[-1]
        # At nominal the policy applies no bias: identical timings.
        mid = len(result.shifts) // 2
        assert result.t_access_repaired[mid] == pytest.approx(
            result.t_access_zbb[mid]
        )

    def test_cycle_exceeds_access(self, ctx):
        result = extensions.ext_performance(ctx, shifts=np.array([0.0]))
        assert result.t_cycle_zbb[0] > result.t_access_zbb[0]


class TestExtTemperature:
    def test_leakage_grows_with_temperature(self, ctx):
        result = extensions.ext_temperature(
            ctx, temperatures_c=np.array([27.0, 85.0]), n_cells=65536
        )
        assert result.mean_cell_leakage[1] > 4 * result.mean_cell_leakage[0]

    def test_leakage_monitor_eventually_misbins(self, ctx):
        result = extensions.ext_temperature(ctx, n_cells=65536)
        temps = result.temperatures_c
        at = {t: i for i, t in enumerate(temps)}
        assert result.leakage_bin[at[27.0]] == "nominal"   # 27C: correct
        assert result.leakage_bin[at[85.0]] == "low_vt"    # 85C: fooled
        # Above the calibration temperature the ring only gets slower —
        # the delay monitor never claims LOW_VT there.  (Below it, cold
        # silicon genuinely *is* fast: mobility beats the Vt increase,
        # and the two sensors disagree in opposite directions, which the
        # combined monitor resolves to NOMINAL.)
        warm = [result.delay_bin[i] for i, t in enumerate(temps) if t >= 27]
        assert all(b != "low_vt" for b in warm)


class TestExtEcc:
    def test_protection_ordering_at_nominal(self, ctx):
        result = extensions.ext_ecc(
            ctx, shifts=np.array([0.0]), memory_kbytes=8
        )
        # none >= ECC >= redundancy at equal overhead for hard faults.
        assert result.p_none[0] >= result.p_ecc[0] - 1e-12
        assert result.p_ecc[0] >= result.p_redundancy[0] - 1e-12

    def test_repair_extends_the_window(self, ctx):
        result = extensions.ext_ecc(
            ctx, shifts=np.array([-0.04]), memory_kbytes=8
        )
        # A leaky die is hopeless for every static scheme but is saved
        # by the post-silicon repair.
        assert result.p_redundancy[0] > 0.99
        assert result.p_repair_plus_redundancy[0] < 0.01


class TestExtSnm:
    def test_rbb_widens_read_butterfly(self, ctx):
        result = extensions.ext_snm(ctx, n_samples=200)
        # Monotone: more reverse bias -> larger read SNM.
        assert np.all(np.diff(result.read_mean) < 0)
        assert np.all(result.read_p01 < result.read_mean)
        assert np.all(result.hold_mean > result.read_mean)


class TestExt8T:
    def test_read_wall_removed(self, ctx):
        result = extensions.ext_8t(
            ctx, shifts=np.array([-0.08, 0.0]), n_samples=5_000
        )
        # At the leaky corner the 6T is read-dominated; the 8T is far
        # better because that mechanism is structurally absent.
        assert result.p6_read[0] > 0.01
        assert result.p8_any[0] < 0.2 * result.p6_any[0]
        assert result.area_overhead == pytest.approx(1 / 3)


class TestExtensionRegistry:
    def test_all_registered(self):
        assert set(EXTENSIONS) == {
            "ext_delay", "ext_drv", "ext_performance", "ext_temperature",
            "ext_ecc", "ext_snm", "ext_8t",
        }

    def test_dispatch(self, ctx):
        result = run_experiment(
            "ext_performance", ctx, shifts=np.array([0.0])
        )
        assert hasattr(result, "rows")
