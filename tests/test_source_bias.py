"""Tests for the self-adaptive source-bias hardware models."""

import numpy as np
import pytest

from repro.core.source_bias import (
    BISTController,
    RegisterBank,
    SelfAdaptiveSourceBias,
    SourceBiasDAC,
)
from repro.failures.criteria import FailureCriteria
from repro.sram.array import ArrayOrganization, FunctionalMemoryArray
from repro.sram.metrics import OperatingConditions


class TestSourceBiasDAC:
    def test_voltage_endpoints(self):
        dac = SourceBiasDAC(bits=6, full_scale=0.63)
        assert dac.voltage(0) == 0.0
        assert dac.voltage(dac.n_codes - 1) == pytest.approx(0.63)

    def test_step(self):
        dac = SourceBiasDAC(bits=6, full_scale=0.63)
        assert dac.step == pytest.approx(0.01)
        assert dac.voltage(10) == pytest.approx(0.1)

    def test_code_for_rounds_down(self):
        dac = SourceBiasDAC(bits=6, full_scale=0.63)
        assert dac.code_for(0.105) == 10
        assert dac.code_for(-1.0) == 0
        assert dac.code_for(99.0) == 63

    def test_out_of_range_code_rejected(self):
        dac = SourceBiasDAC(bits=4)
        with pytest.raises(ValueError):
            dac.voltage(16)
        with pytest.raises(ValueError):
            dac.voltage(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SourceBiasDAC(bits=0)
        with pytest.raises(ValueError):
            SourceBiasDAC(full_scale=-0.1)


class TestRegisterBank:
    def test_record_and_count(self):
        bank = RegisterBank(8)
        fail_map = np.zeros((4, 8), dtype=bool)
        fail_map[1, 2] = True
        fail_map[3, 2] = True
        fail_map[0, 5] = True
        bank.record(fail_map)
        assert bank.faulty_columns == 2

    def test_registers_are_sticky(self):
        bank = RegisterBank(4)
        first = np.zeros((2, 4), dtype=bool)
        first[0, 1] = True
        bank.record(first)
        bank.record(np.zeros((2, 4), dtype=bool))
        assert bank.faulty_columns == 1

    def test_reset(self):
        bank = RegisterBank(4)
        fail = np.ones((1, 4), dtype=bool)
        bank.record(fail)
        bank.reset()
        assert bank.faulty_columns == 0

    def test_shape_mismatch_rejected(self):
        bank = RegisterBank(4)
        with pytest.raises(ValueError):
            bank.record(np.zeros((2, 5), dtype=bool))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RegisterBank(0)


@pytest.fixture()
def marginal_array(tech):
    """An array whose cells fail retention progressively with VSB."""
    criteria = FailureCriteria(
        delta_read=-1.0, t_write_max=1.0, i_access_min=0.0,
        hold_fraction_min=0.93,
    )
    org = ArrayOrganization(rows=16, columns=32, redundant_columns=2)
    return FunctionalMemoryArray(
        tech, org, criteria,
        conditions=OperatingConditions.source_biased_standby(tech),
        rng=np.random.default_rng(8),
    )


class TestCalibration:
    def test_ramp_finds_a_nontrivial_bias(self, marginal_array):
        loop = SelfAdaptiveSourceBias(dac=SourceBiasDAC(bits=5,
                                                        full_scale=0.63))
        result = loop.calibrate(marginal_array)
        assert 0.0 < result.vsb_adaptive < 0.63
        assert result.stopped_at_code is not None
        assert result.faulty_columns <= 2

    def test_bisect_matches_full_ramp(self, marginal_array):
        dac = SourceBiasDAC(bits=5, full_scale=0.63)
        ramp = SelfAdaptiveSourceBias(dac=dac).calibrate(marginal_array)
        fast = SelfAdaptiveSourceBias(dac=dac).calibrate_bisect(marginal_array)
        assert fast.code == ramp.code
        assert fast.vsb_adaptive == pytest.approx(ramp.vsb_adaptive)

    def test_margin_codes_back_off(self, marginal_array):
        dac = SourceBiasDAC(bits=5, full_scale=0.63)
        plain = SelfAdaptiveSourceBias(dac=dac).calibrate(marginal_array)
        guarded = SelfAdaptiveSourceBias(
            dac=dac, margin_codes=2
        ).calibrate(marginal_array)
        assert guarded.code == max(0, plain.code - 2)

    def test_bist_controller_counts_columns(self, marginal_array):
        controller = BISTController()
        bank = RegisterBank(marginal_array.total_columns)
        faulty = controller.test_at(marginal_array, 0.63, bank)
        assert faulty == bank.faulty_columns
        assert faulty > 2  # full-scale bias must exhaust the redundancy

    def test_negative_margin_codes_rejected(self):
        with pytest.raises(ValueError):
            SelfAdaptiveSourceBias(margin_codes=-1)

    def test_trace_is_recorded(self, marginal_array):
        loop = SelfAdaptiveSourceBias(dac=SourceBiasDAC(bits=4,
                                                        full_scale=0.63))
        result = loop.calibrate(marginal_array)
        assert len(result.trace) >= 1
        voltages = [v for v, _ in result.trace]
        assert voltages == sorted(voltages)
