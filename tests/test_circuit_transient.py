"""Tests for the backward-Euler transient engine."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    VoltageSource,
    solve_transient,
)
from repro.circuit.netlist import GROUND


def test_rc_charging_matches_analytic():
    """Charging an RC through a step source: v = V(1 - exp(-t/RC))."""
    r, c = 1e3, 1e-9  # tau = 1 us
    ckt = Circuit("rc")
    ckt.add(VoltageSource("in", GROUND, lambda t: 1.0 if t > 0 else 0.0,
                          name="VIN"))
    ckt.add(Resistor("in", "out", r))
    ckt.add(Capacitor("out", GROUND, c))
    result = solve_transient(ckt, t_stop=5e-6, dt=2e-8)
    tau = r * c
    analytic = 1.0 - np.exp(-result.times[1:] / tau)
    observed = result["out"][1:]
    assert np.max(np.abs(observed - analytic)) < 0.02  # BE is 1st order


def test_capacitor_open_in_dc():
    ckt = Circuit("dc-block")
    ckt.add(VoltageSource("in", GROUND, 1.0, name="VIN"))
    ckt.add(Resistor("in", "out", 1e3))
    ckt.add(Capacitor("out", "blocked", 1e-12))
    ckt.add(Resistor("blocked", GROUND, 1e3))
    result = solve_transient(ckt, t_stop=1e-6, dt=1e-7)
    # Long after the (absent) transient, no current flows: out at 1 V.
    assert result["out"][-1] == pytest.approx(1.0, abs=1e-3)
    assert result["blocked"][-1] == pytest.approx(0.0, abs=1e-3)


def test_crossing_time_interpolates():
    r, c = 1e3, 1e-9
    ckt = Circuit("rc")
    ckt.add(VoltageSource("in", GROUND, lambda t: 1.0 if t > 0 else 0.0,
                          name="VIN"))
    ckt.add(Resistor("in", "out", r))
    ckt.add(Capacitor("out", GROUND, c))
    result = solve_transient(ckt, t_stop=5e-6, dt=2e-8)
    t_half = result.crossing_time("out", 0.5, rising=True)
    assert t_half == pytest.approx(np.log(2) * r * c, rel=0.05)


def test_crossing_time_raises_when_never_crossed():
    ckt = Circuit("flat")
    ckt.add(VoltageSource("in", GROUND, 0.2, name="VIN"))
    ckt.add(Resistor("in", "out", 1e3))
    ckt.add(Capacitor("out", GROUND, 1e-12))
    result = solve_transient(ckt, t_stop=1e-7, dt=1e-8)
    with pytest.raises(ValueError):
        result.crossing_time("out", 0.9, rising=True)


def test_current_source_integrates_linearly():
    """I into C || R with tau >> t gives a near-linear ramp dv/dt = I/C.

    The bleed resistor provides the DC path every nodal solver needs
    (a current source into a floating capacitor is ill-posed in DC,
    exactly as in SPICE).
    """
    ckt = Circuit("integrator")
    ckt.add(CurrentSource(GROUND, "out", lambda t: 1e-6 if t > 0 else 0.0))
    ckt.add(Capacitor("out", GROUND, 1e-9))
    ckt.add(Resistor("out", GROUND, 1e6))  # tau = 1 ms >> 1 us window
    result = solve_transient(ckt, t_stop=1e-6, dt=1e-8)
    slope = (result["out"][-1] - result["out"][0]) / result.times[-1]
    assert slope == pytest.approx(1e-6 / 1e-9, rel=2e-2)


def test_invalid_timing_rejected():
    ckt = Circuit("rc")
    ckt.add(VoltageSource("in", GROUND, 1.0, name="VIN"))
    ckt.add(Resistor("in", GROUND, 1e3))
    with pytest.raises(ValueError):
        solve_transient(ckt, t_stop=0.0, dt=1e-9)
    with pytest.raises(ValueError):
        solve_transient(ckt, t_stop=1e-6, dt=-1e-9)


def test_companion_state_reset_after_run():
    ckt = Circuit("rc")
    cap = Capacitor("out", GROUND, 1e-12)
    ckt.add(VoltageSource("in", GROUND, 1.0, name="VIN"))
    ckt.add(Resistor("in", "out", 1e3))
    ckt.add(cap)
    solve_transient(ckt, t_stop=1e-8, dt=1e-9)
    assert cap.companion is None
