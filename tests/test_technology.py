"""Tests for the technology package: parameters, corners, variation."""

import dataclasses

import numpy as np
import pytest

from repro.technology import (
    InterDieDistribution,
    ProcessCorner,
    RandomDopantFluctuation,
)


class TestParameters:
    def test_default_card_is_consistent(self, tech):
        assert tech.vdd == pytest.approx(1.0)
        assert tech.length == pytest.approx(70e-9)
        assert tech.nmos.vth0 > 0
        assert tech.pmos.vth0 > 0

    def test_cox_from_tox(self, tech):
        # eps0 * 3.9 / 1.6nm ~ 2.16e-2 F/m^2
        assert tech.cox == pytest.approx(2.157e-2, rel=1e-2)

    def test_device_lookup(self, tech):
        assert tech.device("nmos") is tech.nmos
        assert tech.device("pmos") is tech.pmos
        with pytest.raises(ValueError):
            tech.device("finfet")

    def test_junction_area_scales_with_width(self, tech):
        assert tech.junction_area(2e-7) == pytest.approx(
            2 * tech.junction_area(1e-7)
        )

    def test_with_temperature_returns_copy(self, tech):
        hot = tech.with_temperature(400.0)
        assert hot.temperature == 400.0
        assert tech.temperature != 400.0
        assert hot.nmos is tech.nmos

    def test_invalid_parameters_rejected(self, tech):
        with pytest.raises(ValueError):
            dataclasses.replace(tech, vdd=-1.0)
        with pytest.raises(ValueError):
            dataclasses.replace(tech.nmos, vth0=-0.1)
        with pytest.raises(ValueError):
            dataclasses.replace(tech.nmos, n_sub=0.9)


class TestProcessCorner:
    def test_nominal_flags(self):
        corner = ProcessCorner(0.0)
        assert not corner.is_low_vt
        assert not corner.is_high_vt

    def test_low_and_high(self):
        assert ProcessCorner(-0.05).is_low_vt
        assert ProcessCorner(0.05).is_high_vt

    def test_shifted(self):
        assert ProcessCorner(0.02).shifted(0.03).dvt_inter == pytest.approx(0.05)

    def test_str_formats_millivolts(self):
        assert "50.0 mV" in str(ProcessCorner(0.05))


class TestRandomDopantFluctuation:
    def test_pelgrom_scaling(self, tech):
        rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
        sigma_small = rdf.sigma_vt(100e-9, 70e-9)
        sigma_big = rdf.sigma_vt(400e-9, 70e-9)
        assert sigma_small == pytest.approx(2 * sigma_big)

    def test_minimum_device_sigma_about_30mv(self, tech):
        rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
        sigma = rdf.sigma_vt(100e-9, 70e-9)
        assert 0.02 < sigma < 0.04

    def test_sample_statistics(self, tech, rng):
        rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
        samples = rdf.sample(rng, 200e-9, 70e-9, size=50_000)
        sigma = rdf.sigma_vt(200e-9, 70e-9)
        assert np.mean(samples) == pytest.approx(0.0, abs=3 * sigma / 200)
        assert np.std(samples) == pytest.approx(sigma, rel=0.02)

    def test_invalid_geometry_rejected(self, tech):
        rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
        with pytest.raises(ValueError):
            rdf.sigma_vt(-1e-9, 70e-9)


class TestInterDieDistribution:
    def test_sampling_statistics(self, rng):
        dist = InterDieDistribution(sigma=0.05)
        samples = dist.sample(rng, 100_000)
        assert np.std(samples) == pytest.approx(0.05, rel=0.02)

    def test_quadrature_weights_sum_to_one(self):
        dist = InterDieDistribution(sigma=0.03)
        nodes, weights = dist.quadrature(15)
        assert weights.sum() == pytest.approx(1.0)
        assert nodes.size == 15

    def test_quadrature_integrates_moments(self):
        dist = InterDieDistribution(sigma=0.04, mean=0.01)
        nodes, weights = dist.quadrature(21)
        assert np.dot(weights, nodes) == pytest.approx(0.01, abs=1e-12)
        assert np.dot(weights, (nodes - 0.01) ** 2) == pytest.approx(
            0.04**2, rel=1e-10
        )

    def test_pdf_normalisation(self):
        dist = InterDieDistribution(sigma=0.02)
        x = np.linspace(-0.2, 0.2, 20_001)
        integral = np.trapezoid(dist.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_zero_sigma_pdf_rejected(self):
        with pytest.raises(ValueError):
            InterDieDistribution(sigma=0.0).pdf(0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            InterDieDistribution(sigma=-0.01)

    def test_sample_corners_returns_process_corners(self, rng):
        corners = InterDieDistribution(sigma=0.05).sample_corners(rng, 10)
        assert len(corners) == 10
        assert all(isinstance(c, ProcessCorner) for c in corners)
