"""Tests for the EKV-style compact MOSFET model."""

import numpy as np
import pytest

from repro.devices import make_nmos, make_pmos


@pytest.fixture(scope="module")
def nmos(tech=None):
    from repro.technology import predictive_70nm

    return make_nmos(predictive_70nm(), width=200e-9)


@pytest.fixture(scope="module")
def pmos():
    from repro.technology import predictive_70nm

    return make_pmos(predictive_70nm(), width=100e-9)


class TestThreshold:
    def test_body_effect_raises_vth(self, nmos):
        assert nmos.threshold(vsb=0.4) > nmos.threshold(vsb=0.0)

    def test_forward_body_bias_lowers_vth(self, nmos):
        assert nmos.threshold(vsb=-0.4) < nmos.threshold(vsb=0.0)

    def test_body_effect_clamps_under_deep_fbb(self, nmos):
        # The depletion sqrt argument is floored; vth stays finite/real.
        vth = nmos.threshold(vsb=-2.0)
        assert np.isfinite(vth)

    def test_dibl_lowers_vth_with_vds(self, nmos):
        assert nmos.threshold(vds=1.0) < nmos.threshold(vds=0.0)
        expected = nmos.params.dibl * 1.0
        delta = nmos.threshold(vds=0.0) - nmos.threshold(vds=1.0)
        assert delta == pytest.approx(expected)

    def test_dvt_shifts_threshold_directly(self, nmos):
        shifted = nmos.with_dvt(0.05)
        assert shifted.threshold() == pytest.approx(nmos.threshold() + 0.05)


class TestDrainCurrent:
    def test_on_current_magnitude(self, nmos, pmos):
        # Healthy sub-90nm drive strengths: hundreds of uA for these widths.
        assert 50e-6 < float(nmos.on_current(1.0)) < 1e-3
        assert 5e-6 < float(pmos.on_current(1.0)) < 3e-4

    def test_current_increases_with_vgs(self, nmos):
        vgs = np.linspace(0.0, 1.0, 21)
        i = nmos.current(vg=vgs, vd=1.0, vs=0.0, vb=0.0)
        assert np.all(np.diff(i) > 0)

    def test_current_increases_with_vds(self, nmos):
        vds = np.linspace(0.0, 1.0, 21)
        i = nmos.current(vg=1.0, vd=vds, vs=0.0, vb=0.0)
        assert np.all(np.diff(i) > 0)
        assert i[0] == pytest.approx(0.0, abs=1e-15)

    def test_current_odd_in_vds(self, nmos):
        forward = nmos.current(vg=0.8, vd=0.3, vs=0.0, vb=0.0)
        reverse = nmos.current(vg=0.8, vd=0.0, vs=0.3, vb=0.0)
        assert float(forward) == pytest.approx(-float(reverse), rel=1e-9)

    def test_subthreshold_slope(self, nmos):
        """Deep below threshold: one decade per n*Ut*ln10 of Vgs."""
        i1 = float(nmos.current(vg=-0.05, vd=1.0, vs=0.0, vb=0.0))
        i2 = float(nmos.current(vg=-0.10, vd=1.0, vs=0.0, vb=0.0))
        swing = 0.05 / np.log10(i1 / i2)
        expected = nmos.params.n_sub * nmos.ut * np.log(10)
        assert swing == pytest.approx(expected, rel=0.02)

    def test_square_law_in_strong_inversion(self, nmos):
        """Saturation current grows super-linearly with overdrive."""
        i1 = float(nmos.current(vg=0.6, vd=1.2, vs=0.0, vb=0.0))
        i2 = float(nmos.current(vg=1.0, vd=1.2, vs=0.0, vb=0.0))
        ratio = i2 / i1
        assert ratio > 2.0  # more than linear in the ~2.1x overdrive step

    def test_rbb_reduces_off_current(self, nmos):
        off_zbb = float(nmos.subthreshold_current(1.0, vsb=0.0))
        off_rbb = float(nmos.subthreshold_current(1.0, vsb=0.4))
        off_fbb = float(nmos.subthreshold_current(1.0, vsb=-0.4))
        assert off_rbb < off_zbb < off_fbb
        assert off_zbb / off_rbb > 2.0

    def test_pmos_on_current_convention_positive(self, pmos):
        assert float(pmos.on_current(1.0)) > 0.0

    def test_vectorised_dvt(self, nmos):
        population = nmos.with_dvt(np.array([0.0, 0.05, -0.05]))
        i = population.current(vg=1.0, vd=1.0, vs=0.0, vb=0.0)
        assert i.shape == (3,)
        assert i[2] > i[0] > i[1]  # lower Vt -> more current

    def test_width_scaling(self):
        from repro.technology import predictive_70nm

        tech = predictive_70nm()
        narrow = make_nmos(tech, width=100e-9)
        wide = make_nmos(tech, width=400e-9)
        ratio = float(wide.on_current(1.0)) / float(narrow.on_current(1.0))
        assert ratio == pytest.approx(4.0, rel=1e-6)

    def test_invalid_construction(self):
        from repro.technology import predictive_70nm
        from repro.devices import make_mosfet

        tech = predictive_70nm()
        with pytest.raises(ValueError):
            make_mosfet(tech, "nfet", width=100e-9)
        with pytest.raises(ValueError):
            make_nmos(tech, width=-1e-9)
