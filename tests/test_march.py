"""Tests for the March test algorithms."""

import numpy as np
import pytest

from repro.core.march import (
    DOWN,
    EITHER,
    MARCH_B,
    MARCH_CM,
    MARCH_X,
    MATS_PLUS,
    UP,
    MarchElement,
    MarchTest,
)
from repro.failures.criteria import FailureCriteria
from repro.sram.array import ArrayOrganization, FunctionalMemoryArray
from repro.sram.metrics import OperatingConditions


@pytest.fixture()
def clean_array(tech):
    criteria = FailureCriteria(
        delta_read=-1.0, t_write_max=1.0, i_access_min=0.0,
        hold_fraction_min=-2.0,
    )
    org = ArrayOrganization(rows=8, columns=16, redundant_columns=2)
    return FunctionalMemoryArray(
        tech, org, criteria, rng=np.random.default_rng(1)
    )


class TestMarchElement:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarchElement("sideways", (("r", 0),))
        with pytest.raises(ValueError):
            MarchElement(UP, ())
        with pytest.raises(ValueError):
            MarchElement(UP, (("x", 0),))
        with pytest.raises(ValueError):
            MarchElement(UP, (("r", 2),))

    def test_row_order(self):
        up = MarchElement(UP, (("r", 0),))
        down = MarchElement(DOWN, (("r", 0),))
        assert list(up.row_order(4)) == [0, 1, 2, 3]
        assert list(down.row_order(4)) == [3, 2, 1, 0]

    def test_str(self):
        element = MarchElement(UP, (("r", 0), ("w", 1)))
        assert str(element) == "UP(r0,w1)"


class TestStandardAlgorithms:
    def test_operation_counts(self):
        assert MATS_PLUS.operation_count == 5
        assert MARCH_X.operation_count == 6
        assert MARCH_CM.operation_count == 10
        assert MARCH_B.operation_count == 17

    @pytest.mark.parametrize("march", [MATS_PLUS, MARCH_X, MARCH_CM, MARCH_B])
    def test_clean_array_passes(self, march, clean_array):
        fails = march.run(clean_array)
        assert not fails.any()

    @pytest.mark.parametrize("march", [MATS_PLUS, MARCH_X, MARCH_CM, MARCH_B])
    def test_stuck_at_faults_detected(self, march, clean_array):
        """A write-fault cell (can't store 1) is caught by every March."""
        fail_d1, _ = clean_array._static_faults["write"]
        fail_d1[4, 7] = True  # stuck at 0
        fails = march.run(clean_array)
        assert fails[4, 7]
        # ... and nothing else is flagged.
        fails[4, 7] = False
        assert not fails.any()

    @pytest.mark.parametrize("march", [MATS_PLUS, MARCH_X, MARCH_CM, MARCH_B])
    def test_read_disturb_detected(self, march, clean_array):
        disturbed_d1, _ = clean_array._static_faults["read"]
        disturbed_d1[0, 3] = True  # reading a stored 1 flips it
        fails = march.run(clean_array)
        assert fails[0, 3]

    def test_access_fault_detected_on_zero_background(self, clean_array):
        """Sense-to-precharge faults surface when a 0 should be read."""
        access_d1, access_d0 = clean_array._static_faults["access"]
        access_d0[5, 5] = True
        fails = MARCH_X.run(clean_array)
        assert fails[5, 5]


class TestRetentionVariant:
    def test_retention_faults_need_the_dwell(self, tech):
        """A retention-weak cell passes the plain March but fails the
        retention variant at high source bias."""
        criteria = FailureCriteria(
            delta_read=-1.0, t_write_max=1.0, i_access_min=0.0,
            hold_fraction_min=0.97,
        )
        org = ArrayOrganization(rows=8, columns=16, redundant_columns=2)
        array = FunctionalMemoryArray(
            tech, org, criteria,
            conditions=OperatingConditions.source_biased_standby(tech),
            rng=np.random.default_rng(3),
        )
        plain = MARCH_X.run(array)
        assert not plain.any()
        with_dwell = MARCH_X.run_with_retention(array, vsb=0.6)
        assert with_dwell.any()

    def test_zero_bias_dwell_is_harmless(self, clean_array):
        fails = MARCH_X.run_with_retention(clean_array, vsb=0.0)
        assert not fails.any()


def test_custom_march_sequence_runs(clean_array):
    march = MarchTest(
        "toy",
        (
            MarchElement(EITHER, (("w", 1),)),
            MarchElement(DOWN, (("r", 1), ("w", 0), ("r", 0))),
        ),
    )
    assert march.operation_count == 4
    assert not march.run(clean_array).any()
