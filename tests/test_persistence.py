"""Tests for criteria/table persistence."""

import dataclasses

import numpy as np
import pytest

from repro.persistence import (
    load_criteria,
    load_table,
    save_criteria,
    save_table,
    technology_fingerprint,
)
from repro.technology.corners import ProcessCorner


class TestFingerprint:
    def test_stable(self, tech):
        assert technology_fingerprint(tech) == technology_fingerprint(tech)

    def test_sensitive_to_any_parameter(self, tech):
        tweaked = dataclasses.replace(
            tech, nmos=dataclasses.replace(tech.nmos, vth0=0.26)
        )
        assert technology_fingerprint(tweaked) != technology_fingerprint(tech)


class TestCriteriaRoundtrip:
    def test_roundtrip(self, tech, fast_criteria, tmp_path):
        path = tmp_path / "criteria.json"
        save_criteria(fast_criteria, path, tech)
        loaded = load_criteria(path, tech)
        assert loaded == fast_criteria

    def test_strict_fingerprint_check(self, tech, fast_criteria, tmp_path):
        path = tmp_path / "criteria.json"
        save_criteria(fast_criteria, path, tech)
        other = tech.with_temperature(310.0)
        with pytest.raises(ValueError, match="different"):
            load_criteria(path, other)
        # Non-strict loading is allowed, at the caller's risk.
        assert load_criteria(path, other, strict=False) == fast_criteria

    def test_wrong_kind_rejected(self, tech, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"kind": "something-else", "format": 1}')
        with pytest.raises(ValueError, match="not a criteria file"):
            load_criteria(path, tech)

    def test_truncated_file_fails_clearly(self, tech, fast_criteria, tmp_path):
        from repro.durable import CorruptStateError

        path = tmp_path / "criteria.json"
        save_criteria(fast_criteria, path, tech)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CorruptStateError, match="corrupt or truncated"):
            load_criteria(path, tech)

    def test_hand_edited_file_fails_verification(
        self, tech, fast_criteria, tmp_path
    ):
        import json

        from repro.durable import CorruptStateError

        path = tmp_path / "criteria.json"
        save_criteria(fast_criteria, path, tech)
        payload = json.loads(path.read_text())
        payload["criteria"]["delta_read"] = 0.0
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptStateError, match="integrity"):
            load_criteria(path, tech)

    def test_legacy_format1_loads_unverified(
        self, tech, fast_criteria, tmp_path
    ):
        import json

        path = tmp_path / "criteria.json"
        path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "kind": "failure-criteria",
                    "technology": tech.name,
                    "fingerprint": technology_fingerprint(tech),
                    "criteria": dataclasses.asdict(fast_criteria),
                }
            )
        )
        assert load_criteria(path, tech) == fast_criteria


class TestTableRoundtrip:
    def test_roundtrip_preserves_probabilities(self, tech, tmp_path):
        from repro.core.tables import FailureProbabilityTable
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=800,
            seed=31,
        )
        table = FailureProbabilityTable(
            ctx.analyzer(), corner_min=-0.06, corner_max=0.06, n_grid=5
        )
        path = tmp_path / "table.json"
        save_table(table, path, ctx.tech)
        loaded = load_table(path, ctx.tech)
        for dvt in np.linspace(-0.06, 0.06, 11):
            for mechanism in ("read", "access", "any"):
                assert loaded.probability(dvt, mechanism) == pytest.approx(
                    table.probability(dvt, mechanism), rel=1e-9
                )
        # The loaded table also clamps and serves ProcessCorner inputs.
        assert loaded.probability(ProcessCorner(0.5)) == pytest.approx(
            table.probability(0.06)
        )

    def test_table_fingerprint_check(self, tech, tmp_path):
        from repro.core.tables import FailureProbabilityTable
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=800,
            seed=31,
        )
        table = FailureProbabilityTable(
            ctx.analyzer(), corner_min=-0.05, corner_max=0.05, n_grid=4
        )
        path = tmp_path / "table.json"
        save_table(table, path, ctx.tech)
        with pytest.raises(ValueError, match="different"):
            load_table(path, ctx.tech.with_temperature(350.0))
