"""Tests for the ``python -m repro.experiments`` CLI."""

import json

import pytest

from repro import faults, observability
from repro.experiments.__main__ import (
    EXIT_TASK_FAILURE,
    EXIT_UNCONVERGED,
    main,
)
from repro.observability.diagnostics import DiagnosticThresholds


@pytest.fixture(autouse=True)
def clean_observability():
    """CLI runs flip module-level telemetry state; leave it clean."""
    yield
    observability.disable()
    observability.reset()
    observability.diagnostics.recorder.configure(DiagnosticThresholds())
    faults.clear()


@pytest.fixture
def cheap_fast_context(monkeypatch):
    """A seconds-scale context behind the CLI's ``--fast`` flag."""
    import repro.experiments.__main__ as cli
    from repro.experiments.context import ExperimentContext

    monkeypatch.setattr(
        cli, "_fast_context",
        lambda: ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=1_000,
            table_grid=5, seed=99,
        ),
    )


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig2a" in out
    assert "fig10" in out


def test_no_argument_lists(capsys):
    assert main([]) == 0
    assert "paper figures" in capsys.readouterr().out


def test_unknown_figure_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_runs_a_cheap_figure(capsys, monkeypatch):
    """fig5a needs no calibration; run it through the CLI fast path."""
    import repro.experiments.__main__ as cli
    from repro.experiments.context import ExperimentContext

    monkeypatch.setattr(
        cli, "_fast_context",
        lambda: ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=1_000,
            seed=99,
        ),
    )
    assert main(["fig5a", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "vbody" in out
    assert "regenerated" in out


def test_diagnostics_summary_and_report_block(
    tmp_path, capsys, cheap_fast_context
):
    # 1000 weighted samples leave a Kish ESS around 75 on this card;
    # a floor of 50 is what "converged" honestly means at this sizing.
    out_file = tmp_path / "metrics.json"
    assert main(["fig2a", "--fast", "--diagnostics", "--min-ess", "50",
                 "--metrics-out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "estimator-health diagnostics" in out
    assert " ok " in out

    report = json.loads(out_file.read_text())
    block = report["diagnostics"]
    assert block["thresholds"]["min_ess"] == 50.0
    tables = [name for name in block["scopes"] if name.startswith("table[")]
    assert tables, f"no per-table scope in {sorted(block['scopes'])}"
    for name in tables:
        scope = block["scopes"][name]
        assert scope["min_ess"] is not None
        assert scope["max_ci_halfwidth"] is not None
    assert block["unconverged_scopes"] == []


def test_strict_diagnostics_rejects_undersampled_run(
    capsys, cheap_fast_context
):
    # 100 weighted samples leave the Kish ESS far below the 200 floor:
    # the strict gate must refuse to bless the run.
    code = main(["fig2a", "--fast", "--analysis-samples", "100",
                 "--strict-diagnostics"])
    assert code == EXIT_UNCONVERGED
    captured = capsys.readouterr()
    assert "UNCONVERGED" in captured.out
    assert "unconverged" in captured.err


def test_strict_diagnostics_passes_converged_run(cheap_fast_context):
    assert main(["fig2a", "--fast", "--strict-diagnostics",
                 "--min-ess", "50"]) == 0


def test_min_ess_flag_tightens_the_gate(cheap_fast_context):
    # The same run that passes the default floor fails an absurd one.
    assert main(["fig2a", "--fast", "--strict-diagnostics",
                 "--min-ess", "1e9"]) == EXIT_UNCONVERGED


def test_threshold_flags_require_a_consumer():
    with pytest.raises(SystemExit):
        main(["fig5a", "--fast", "--min-ess", "100"])
    with pytest.raises(SystemExit):
        main(["fig5a", "--fast", "--max-ci-halfwidth", "0.1"])


def test_analysis_samples_validated():
    with pytest.raises(SystemExit):
        main(["fig5a", "--fast", "--analysis-samples", "0"])


def test_metrics_out_never_silently_overwrites(tmp_path, cheap_fast_context):
    out_file = tmp_path / "report.json"
    out_file.write_text('{"precious": true}')
    assert main(["fig5a", "--fast", "--metrics-out", str(out_file)]) == 0
    # The pre-existing file is untouched; the report went to a sibling.
    assert json.loads(out_file.read_text()) == {"precious": True}
    diverted = tmp_path / "report.1.json"
    assert diverted.exists()
    assert json.loads(diverted.read_text())["schema"] == observability.SCHEMA
    # A second refusal picks the next free suffix.
    observability.reset()
    assert main(["fig5a", "--fast", "--metrics-out", str(out_file)]) == 0
    assert (tmp_path / "report.2.json").exists()


def test_metrics_overwrite_flag_replaces(tmp_path, cheap_fast_context):
    out_file = tmp_path / "report.json"
    out_file.write_text('{"precious": true}')
    assert main(["fig5a", "--fast", "--metrics-out", str(out_file),
                 "--metrics-overwrite"]) == 0
    assert json.loads(out_file.read_text())["schema"] == observability.SCHEMA
    assert not (tmp_path / "report.1.json").exists()


def test_profile_out_never_silently_overwrites(tmp_path, cheap_fast_context):
    # Regression for the --profile-out collision gap: the same
    # numbered-sibling policy --metrics-out has always had.
    out_file = tmp_path / "profile.pstats"
    out_file.write_bytes(b"precious bytes")
    assert main(["fig5a", "--fast", "--profile-out", str(out_file)]) == 0
    assert out_file.read_bytes() == b"precious bytes"
    diverted = tmp_path / "profile.1.pstats"
    assert diverted.exists() and diverted.stat().st_size > 0


def test_profile_overwrite_flag_replaces(tmp_path, cheap_fast_context):
    import pstats

    out_file = tmp_path / "profile.pstats"
    out_file.write_bytes(b"stale")
    assert main(["fig5a", "--fast", "--profile-out", str(out_file),
                 "--profile-overwrite"]) == 0
    assert not (tmp_path / "profile.1.pstats").exists()
    pstats.Stats(str(out_file))  # replaced with a loadable profile


def test_checkpoint_flags_round_trip(tmp_path, capsys, cheap_fast_context):
    plain = main(["fig2a", "--fast"])
    plain_out = capsys.readouterr().out.splitlines()[:-2]
    assert plain == 0
    ckpt_dir = tmp_path / "ckpt"
    assert main(["fig2a", "--fast", "--checkpoint-dir", str(ckpt_dir),
                 "--checkpoint-every", "2"]) == 0
    ckpt_out = capsys.readouterr().out.splitlines()[:-2]
    # Identical figure rows (the trailing timing line differs), and a
    # completed build leaves no checkpoint behind.
    assert ckpt_out == plain_out
    assert ckpt_dir.is_dir()
    assert not list(ckpt_dir.glob("*.ckpt.json"))


def test_checkpoint_every_validated():
    with pytest.raises(SystemExit):
        main(["fig5a", "--fast", "--checkpoint-every", "0"])


class TestChaosHarness:
    def test_fault_plan_env_is_loud_when_malformed(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "{not json")
        with pytest.raises(SystemExit):
            main(["fig5a", "--fast"])

    def test_worker_crash_recovers_with_identical_output(
        self, tmp_path, capsys, monkeypatch, cheap_fast_context
    ):
        clean = main(["fig2a", "--fast", "--workers", "2"])
        clean_out = capsys.readouterr().out.splitlines()[:-2]
        assert clean == 0

        observability.disable()
        observability.reset()
        monkeypatch.setenv(
            faults.ENV_VAR, '{"specs": [{"kind": "worker_crash"}]}'
        )
        report_file = tmp_path / "chaos.json"
        assert main(["fig2a", "--fast", "--workers", "2",
                     "--metrics-out", str(report_file)]) == 0
        chaos_out = capsys.readouterr().out.splitlines()[:-2]
        assert chaos_out == clean_out  # bit-identical despite the crash

        counters = json.loads(report_file.read_text())["metrics"]["counters"]
        assert counters["executor.retries"] >= 1
        assert counters["executor.task_failures"] == 0
        assert counters["faults.injected"] >= 1

    def test_corrupt_cache_entry_quarantined_on_warm_run(
        self, tmp_path, capsys, monkeypatch, cheap_fast_context
    ):
        cache_dir = tmp_path / "cache"
        # Cold run with a corrupt-write fault on the criteria entry.
        monkeypatch.setenv(
            faults.ENV_VAR,
            '{"specs": [{"kind": "corrupt_write",'
            ' "path_pattern": "criteria-*.json"}]}',
        )
        assert main(["fig2a", "--fast", "--cache-dir", str(cache_dir)]) == 0
        cold_out = capsys.readouterr().out.splitlines()[:-2]

        # Warm, fault-free rerun: the bad entry quarantines to a miss,
        # the result is recomputed, and the figure is identical.
        monkeypatch.delenv(faults.ENV_VAR)
        faults.clear()
        observability.disable()
        observability.reset()
        report_file = tmp_path / "warm.json"
        assert main(["fig2a", "--fast", "--cache-dir", str(cache_dir),
                     "--metrics-out", str(report_file)]) == 0
        warm_out = capsys.readouterr().out.splitlines()[:-2]
        assert warm_out == cold_out

        counters = json.loads(report_file.read_text())["metrics"]["counters"]
        assert counters["cache.quarantined"] == 1
        assert list(cache_dir.glob("*.corrupt-1"))

    def test_exhausted_retries_exit_with_clear_message(
        self, capsys, monkeypatch, cheap_fast_context
    ):
        monkeypatch.setenv(
            faults.ENV_VAR,
            '{"specs": [{"kind": "worker_crash", "times": 99}]}',
        )
        code = main(["fig2a", "--fast", "--workers", "2"])
        assert code == EXIT_TASK_FAILURE
        captured = capsys.readouterr()
        assert "ERROR" in captured.err
        assert "gave up" in captured.err
        assert "regenerated" not in captured.out  # no fake success line
