"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig2a" in out
    assert "fig10" in out


def test_no_argument_lists(capsys):
    assert main([]) == 0
    assert "paper figures" in capsys.readouterr().out


def test_unknown_figure_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_runs_a_cheap_figure(capsys, monkeypatch):
    """fig5a needs no calibration; run it through the CLI fast path."""
    import repro.experiments.__main__ as cli
    from repro.experiments.context import ExperimentContext

    monkeypatch.setattr(
        cli, "_fast_context",
        lambda: ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=1_000,
            seed=99,
        ),
    )
    assert main(["fig5a", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "vbody" in out
    assert "regenerated" in out
