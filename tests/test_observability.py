"""Tests for ``repro.observability``: metrics, tracing, logs, CLI."""

from __future__ import annotations

import json
import time

import pytest

from repro import observability
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    incr,
    observe,
)
from repro.observability.tracing import Tracer, trace, tracer
from repro.parallel.executor import ParallelExecutor


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test starts and ends with collection off and empty."""
    observability.disable()
    observability.disable_profiling()
    observability.reset()
    yield
    observability.disable()
    observability.disable_profiling()
    observability.reset()
    # CLI tests raise the repro log level; drop it back to the default.
    observability.configure_logging(verbosity=0)


# ----------------------------------------------------------------------
# Metrics semantics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert registry.counter("x") is counter

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.0)
        assert registry.snapshot()["gauges"]["g"] == 7.0

    def test_histogram_summary(self):
        hist = Histogram("h")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_histogram_time_context(self):
        hist = Histogram("h")
        with hist.time():
            time.sleep(0.01)
        assert hist.count == 1
        assert hist.max >= 0.01

    def test_histogram_memory_is_bounded(self):
        """A week-long sweep cannot grow the instrument: fixed reservoir."""
        hist = Histogram("h")
        for value in range(10 * Histogram.RESERVOIR_SIZE):
            hist.observe(float(value))
        assert len(hist.samples) == Histogram.RESERVOIR_SIZE
        # Exact streaming stats survive at any volume.
        assert hist.count == 10 * Histogram.RESERVOIR_SIZE
        assert hist.min == 0.0
        assert hist.max == 10 * Histogram.RESERVOIR_SIZE - 1

    def test_histogram_percentiles(self):
        hist = Histogram("h")
        for value in range(100):
            hist.observe(float(value))
        # Below the reservoir cap the quantiles are exact.
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(1.0) == 99.0
        assert hist.percentile(0.5) == pytest.approx(50.0, abs=1.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        assert Histogram("empty").percentile(0.5) is None

    def test_histogram_percentile_degenerate_reservoirs(self):
        # Empty and single-sample reservoirs are explicit guards, not
        # accidents of the interpolation: None before any observation,
        # the lone sample at every q after exactly one.
        empty = Histogram("empty")
        for q in (0.0, 0.5, 0.95, 1.0):
            assert empty.percentile(q) is None
        single = Histogram("single")
        single.observe(3.25)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert single.percentile(q) == 3.25

    def test_histogram_reservoir_estimate_stays_sane(self):
        """Past the cap the reservoir still tracks the distribution."""
        hist = Histogram("h")
        for value in range(10_000):
            hist.observe(float(value))
        assert hist.percentile(0.5) == pytest.approx(5_000, rel=0.15)
        assert hist.percentile(0.95) == pytest.approx(9_500, rel=0.1)

    def test_histogram_merge_carries_reservoir(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in range(50):
            a.histogram("h").observe(float(value))
        for value in range(50, 100):
            b.histogram("h").observe(float(value))
        a.merge(b.snapshot())
        merged = a.histogram("h")
        assert merged.count == 100
        assert merged.mean == pytest.approx(49.5)
        assert merged.percentile(0.5) == pytest.approx(50.0, abs=2.0)
        snap = a.snapshot()["histograms"]["h"]
        assert snap["p50"] is not None and snap["p95"] is not None

    def test_histogram_merge_tolerates_reservoirless_summary(self):
        """Snapshots from older writers (no reservoir key) still merge."""
        hist = Histogram("h")
        hist.merge_summary(
            {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        )
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.samples == []

    def test_name_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_merge_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.histogram("h").observe(5.0)
        b.gauge("g").set(4.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5.0
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["gauges"]["g"] == 4.0

    def test_guarded_helpers_respect_switch(self):
        incr("off.counter")
        observe("off.hist", 1.0)
        assert observability.registry.snapshot()["counters"] == {}
        observability.enable()
        incr("on.counter", 2)
        assert (
            observability.registry.snapshot()["counters"]["on.counter"] == 2.0
        )


# ----------------------------------------------------------------------
# Trace tree
# ----------------------------------------------------------------------
class TestTrace:
    def test_nesting_and_aggregation(self):
        observability.enable()
        with trace("outer"):
            for _ in range(3):
                with trace("inner"):
                    pass
        tree = tracer.snapshot()
        (outer,) = tree["children"]
        assert outer["name"] == "outer"
        assert outer["calls"] == 1
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert inner["calls"] == 3
        assert inner["seconds"] <= outer["seconds"]

    def test_decorator_form(self):
        observability.enable()

        @trace("worked")
        def job(x):
            return x * 2

        assert job(21) == 42
        (node,) = tracer.snapshot()["children"]
        assert node["name"] == "worked"
        assert node["calls"] == 1

    def test_disabled_records_nothing(self):
        with trace("ghost"):
            pass

        @trace("ghost2")
        def job():
            return 1

        job()
        assert tracer.snapshot()["children"] == []

    def test_exception_still_pops(self):
        observability.enable()
        with pytest.raises(RuntimeError):
            with trace("boom"):
                raise RuntimeError("x")
        # The stack is balanced: a sibling span lands at the same depth.
        with trace("after"):
            pass
        names = {c["name"] for c in tracer.snapshot()["children"]}
        assert names == {"boom", "after"}

    def test_merge_grafts_under_current(self):
        observability.enable()
        remote = Tracer()
        remote.push("task")
        remote.pop(1.5)
        with trace("fanout"):
            tracer.merge_at_current(remote.snapshot())
        (fanout,) = tracer.snapshot()["children"]
        (task,) = fanout["children"]
        assert task["name"] == "task"
        assert task["seconds"] == pytest.approx(1.5)

    def test_merge_outside_any_span_grafts_at_root(self):
        """A worker snapshot merged from a bare call site must not
        raise — it lands at the top of the tree."""
        observability.enable()
        remote = Tracer()
        remote.push("task")
        remote.pop(0.5)
        tracer.merge_at_current(remote.snapshot())  # no open trace(...)
        (task,) = tracer.snapshot()["children"]
        assert task["name"] == "task"
        assert task["calls"] == 1

    def test_merge_tolerates_childless_snapshot(self):
        observability.enable()
        tracer.merge_at_current({"name": "run", "calls": 0, "seconds": 0.0})
        assert tracer.snapshot()["children"] == []

    def test_exception_path_closes_span_then_merges_at_root(self):
        """Regression: after an exception unwinds an open span, the
        stack is back at the root and a worker merge grafts there, not
        under the dead span."""
        observability.enable()
        with pytest.raises(ValueError):
            with trace("doomed"):
                raise ValueError("boom")
        remote = Tracer()
        remote.push("late.task")
        remote.pop(0.25)
        tracer.merge_at_current(remote.snapshot())
        children = {c["name"]: c for c in tracer.snapshot()["children"]}
        assert set(children) == {"doomed", "late.task"}
        assert children["doomed"]["children"] == []  # nothing grafted inside

    def test_pop_underflow_still_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().pop(0.1)


# ----------------------------------------------------------------------
# Cross-process merging through ParallelExecutor
# ----------------------------------------------------------------------
def _instrumented_square(task: int) -> int:
    incr("square.calls")
    with trace("square"):
        return task * task


class TestWorkerMerge:
    def test_counters_and_spans_cross_the_pool(self):
        observability.enable()
        executor = ParallelExecutor(workers=2)
        with trace("sweep"):
            results = executor.map(_instrumented_square, list(range(6)))
        assert results == [0, 1, 4, 9, 16, 25]
        counters = observability.registry.snapshot()["counters"]
        assert counters["square.calls"] == 6.0
        (sweep,) = tracer.snapshot()["children"]
        square = {c["name"]: c for c in sweep["children"]}["square"]
        assert square["calls"] == 6

    def test_serial_path_equivalent(self):
        observability.enable()
        with trace("sweep"):
            ParallelExecutor(workers=1).map(_instrumented_square, range(6))
        counters = observability.registry.snapshot()["counters"]
        assert counters["square.calls"] == 6.0

    def test_disabled_parallel_map_unchanged(self):
        executor = ParallelExecutor(workers=2)
        assert executor.map(_instrumented_square, [2, 3]) == [4, 9]
        assert observability.registry.snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# CLI round-trip
# ----------------------------------------------------------------------
class TestMetricsOut:
    def test_fast_cli_run_writes_valid_report(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.__main__ as cli
        from repro.experiments.context import ExperimentContext

        monkeypatch.setattr(
            cli, "_fast_context",
            lambda: ExperimentContext(
                target=1e-2, calibration_samples=2_000,
                analysis_samples=1_000, table_grid=5, seed=99,
            ),
        )
        out_file = tmp_path / "metrics.json"
        profile_file = tmp_path / "fig2a.pstats"
        assert main_ok(cli, ["fig2a", "--fast", "-v",
                             "--metrics-out", str(out_file),
                             "--profile-out", str(profile_file)])
        report = json.loads(out_file.read_text())
        assert report["schema"] == observability.SCHEMA
        assert report["experiment"] == "fig2a"
        assert report["invocation"]["fast"] is True
        # The meta block makes the stored report self-describing
        # (additive under repro.telemetry/1).
        meta = report["meta"]
        assert meta["seed"] == 99
        assert meta["workers"] == 1
        for key in ("git_sha", "python", "numpy", "platform", "cpu_count"):
            assert key in meta
        # --profile-out produced a pstats-loadable per-span profile.
        import pstats

        stats = pstats.Stats(str(profile_file))
        assert stats.total_calls > 0
        counters = report["metrics"]["counters"]
        # Monte-Carlo volume and cache counters are always present.
        assert counters["mc.samples"] > 0
        assert counters["mc.estimates"] > 0
        assert "cache.hits" in counters
        assert "cache.misses" in counters
        # Per-stage wall-time spans: the experiment root and its stages.
        (root,) = report["trace"]["children"]
        assert root["name"] == "fig2a"
        stages = {c["name"] for c in root["children"]}
        assert "criteria.calibrate" in stages
        assert "table.build" in stages

    def test_report_round_trips_with_cache(self, tmp_path, monkeypatch):
        import repro.experiments.__main__ as cli
        from repro.experiments.context import ExperimentContext

        monkeypatch.setattr(
            cli, "_fast_context",
            lambda: ExperimentContext(
                target=1e-2, calibration_samples=2_000,
                analysis_samples=1_000, table_grid=5, seed=99,
            ),
        )
        cache_dir = tmp_path / "cache"
        reports = []
        for name in ("cold.json", "warm.json"):
            out = tmp_path / name
            assert main_ok(cli, [
                "fig2a", "--fast", "--cache-dir", str(cache_dir),
                "--metrics-out", str(out),
            ])
            observability.reset()
            reports.append(json.loads(out.read_text()))
        cold, warm = reports
        assert cold["metrics"]["counters"]["cache.misses"] >= 2
        assert warm["metrics"]["counters"]["cache.hits"] >= 2
        assert warm["metrics"]["counters"]["cache.misses"] == 0
        assert warm["metrics"]["counters"]["mc.samples"] == 0


def main_ok(cli, argv) -> bool:
    return cli.main(argv) == 0


# ----------------------------------------------------------------------
# No-op mode stays free
# ----------------------------------------------------------------------
class TestNoOpOverhead:
    def test_disabled_instruments_leave_no_state(self):
        incr("a")
        observe("b", 1.0)
        with trace("c"):
            pass
        assert observability.registry.snapshot()["counters"] == {}
        assert tracer.snapshot()["children"] == []

    def test_disabled_overhead_is_negligible(self):
        """Guarded calls must stay within an absolute budget.

        100k disabled ``incr`` + ``trace`` pairs complete in well under
        a second on any hardware (measured ~30 ms); the generous bound
        only trips if someone removes the no-op fast path entirely.
        """
        start = time.perf_counter()
        for _ in range(100_000):
            incr("hot.counter")
        incr_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(10_000):
            with trace("hot.span"):
                pass
        trace_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(10_000):
            with observability.profile("hot.profile"):
                pass
        profile_elapsed = time.perf_counter() - start
        assert incr_elapsed < 1.0, f"disabled incr too slow: {incr_elapsed:.3f}s"
        assert trace_elapsed < 1.0, f"disabled trace too slow: {trace_elapsed:.3f}s"
        assert profile_elapsed < 1.0, (
            f"disabled profile too slow: {profile_elapsed:.3f}s"
        )
        assert observability.registry.snapshot()["counters"] == {}
        assert observability.profile_names() == []

    def test_profile_without_arming_is_just_a_span(self):
        """Telemetry on, profiling not armed: profile == trace."""
        observability.enable()
        with observability.profile("stage"):
            pass
        (node,) = observability.tracer.snapshot()["children"]
        assert node["name"] == "stage"
        assert observability.profile_names() == []


# ----------------------------------------------------------------------
# Docs stay in sync with the registry
# ----------------------------------------------------------------------
class TestExperimentsDoc:
    def test_docs_experiments_md_matches_registry(self):
        import pathlib

        from repro.experiments.registry import render_markdown

        doc = pathlib.Path(__file__).resolve().parents[1] / "docs" / "experiments.md"
        assert doc.exists(), "docs/experiments.md is missing"
        assert render_markdown() in doc.read_text(), (
            "docs/experiments.md is stale — regenerate the table with "
            "`PYTHONPATH=src python -m repro.experiments --doc`"
        )
