"""Tests for the interpolated failure-probability tables."""

import numpy as np
import pytest

from repro.core.tables import FailureProbabilityTable
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def table():
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(
        target=1e-2, calibration_samples=6_000, analysis_samples=4_000,
        seed=99,
    )
    return FailureProbabilityTable(
        ctx.analyzer(), corner_min=-0.1, corner_max=0.1, n_grid=9
    )


def test_interpolation_matches_direct_estimates(table):
    """Off-grid interpolation agrees with a direct MC estimate."""
    analyzer = table.analyzer
    for dvt in (-0.055, 0.033):
        direct = analyzer.failure_probabilities(
            ProcessCorner(dvt), table.conditions
        )["any"].estimate
        interpolated = table.probability(dvt, "any")
        assert interpolated == pytest.approx(direct, rel=0.5)


def test_grid_points_are_exact(table):
    """On grid nodes the spline passes through the estimates."""
    analyzer = table.analyzer
    dvt = float(table.grid[2])
    direct = analyzer.failure_probabilities(
        ProcessCorner(dvt), table.conditions
    )["any"].estimate
    assert table.probability(dvt, "any") == pytest.approx(
        max(direct, 1e-12), rel=1e-6
    )


def test_clamps_outside_grid(table):
    inside = table.probability(0.1, "any")
    outside = table.probability(0.5, "any")
    assert outside == pytest.approx(inside)


def test_series_matches_scalar(table):
    shifts = np.array([-0.08, 0.0, 0.08])
    series = table.series(shifts, "any")
    scalars = [table.probability(float(s), "any") for s in shifts]
    np.testing.assert_allclose(series, scalars, rtol=1e-12)


def test_accepts_process_corner(table):
    assert table.probability(ProcessCorner(0.02)) == pytest.approx(
        table.probability(0.02)
    )


def test_unknown_mechanism_rejected(table):
    with pytest.raises(KeyError):
        table.probability(0.0, "latchup")


def test_bathtub_shape_preserved(table):
    assert table.probability(-0.1, "any") > table.probability(0.0, "any")
    assert table.probability(0.1, "any") > table.probability(0.0, "any")


def test_build_attaches_batch_diagnostics(table):
    diag = table.diagnostics
    assert diag is not None
    assert diag.n_estimates == table.grid.size
    assert diag.min_ess is not None and diag.min_ess > 0
    assert 0 < diag.min_ess_ratio <= 1.0
    assert diag.worst_ci_halfwidth is not None
    assert 0 < diag.worst_ci_halfwidth < 1.0
    assert 0 <= diag.unconverged <= diag.n_estimates


def test_constructor_validation():
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(target=1e-2, calibration_samples=2_000,
                            analysis_samples=1_000, seed=99)
    with pytest.raises(ValueError):
        FailureProbabilityTable(ctx.analyzer(), n_grid=2)
    with pytest.raises(ValueError):
        FailureProbabilityTable(ctx.analyzer(), corner_min=0.1,
                                corner_max=-0.1)
