"""Tests for criteria calibration and the failure analyzer."""

import pytest

from repro.failures.analysis import CellFailureAnalyzer
from repro.failures.criteria import calibrate_criteria
from repro.technology.corners import ProcessCorner


class TestCalibration:
    def test_calibration_is_deterministic(self, tech, geometry, conditions):
        a = calibrate_criteria(tech, geometry, conditions, target=1e-2,
                               n_samples=4000, seed=5)
        b = calibrate_criteria(tech, geometry, conditions, target=1e-2,
                               n_samples=4000, seed=5)
        assert a == b

    def test_calibration_equalises_probabilities(
        self, tech, geometry, conditions, fast_criteria
    ):
        """Each mechanism hits its target at the nominal/ZBB point."""
        analyzer = CellFailureAnalyzer(
            tech, fast_criteria, geometry, conditions,
            n_samples=30_000, scale=1.5, seed=21,
        )
        probs = analyzer.failure_probabilities(ProcessCorner(0.0))
        for name in ("read", "write", "access", "hold"):
            estimate = probs[name].estimate
            assert 0.3e-2 < estimate < 3e-2, f"{name}: {estimate}"

    def test_tighter_target_tightens_thresholds(self, tech, geometry,
                                                conditions):
        loose = calibrate_criteria(tech, geometry, conditions, target=3e-2,
                                   n_samples=4000, seed=5)
        tight = calibrate_criteria(tech, geometry, conditions, target=3e-3,
                                   n_samples=12_000, seed=5)
        assert tight.delta_read < loose.delta_read
        assert tight.t_write_max > loose.t_write_max
        assert tight.i_access_min < loose.i_access_min

    def test_invalid_targets_rejected(self, tech, geometry, conditions):
        with pytest.raises(ValueError):
            calibrate_criteria(tech, geometry, conditions, target=0.0)
        with pytest.raises(ValueError):
            calibrate_criteria(tech, geometry, conditions, target=0.9)
        with pytest.raises(ValueError):
            calibrate_criteria(tech, geometry, conditions, target=1e-2,
                               hold_target=0.9)


class TestAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self, tech, geometry, conditions, fast_criteria):
        return CellFailureAnalyzer(
            tech, fast_criteria, geometry, conditions,
            n_samples=20_000, scale=1.5, seed=31,
        )

    def test_bathtub_over_corners(self, analyzer):
        """Failure probability rises at both inter-die extremes."""
        low = analyzer.failure_probabilities(ProcessCorner(-0.08))
        mid = analyzer.failure_probabilities(ProcessCorner(0.0))
        high = analyzer.failure_probabilities(ProcessCorner(0.08))
        assert low["any"].estimate > 3 * mid["any"].estimate
        assert high["any"].estimate > 3 * mid["any"].estimate

    def test_mechanism_asymmetry(self, analyzer):
        """Read dominates the low-Vt corner, access the high-Vt corner."""
        low = analyzer.failure_probabilities(ProcessCorner(-0.08))
        high = analyzer.failure_probabilities(ProcessCorner(0.08))
        assert low["read"].estimate > low["access"].estimate
        assert high["access"].estimate > high["read"].estimate

    def test_union_bounds_components(self, analyzer):
        probs = analyzer.failure_probabilities(ProcessCorner(0.02))
        union = probs["any"].estimate
        for name in ("read", "write", "access", "hold"):
            assert union >= probs[name].estimate * 0.999

    def test_rbb_helps_low_vt_die(self, analyzer, conditions):
        corner = ProcessCorner(-0.08)
        zbb = analyzer.failure_probabilities(corner)
        rbb = analyzer.failure_probabilities(
            corner, conditions.with_body_bias(-0.4)
        )
        assert rbb["any"].estimate < 0.3 * zbb["any"].estimate

    def test_fbb_helps_high_vt_die(self, analyzer, conditions):
        corner = ProcessCorner(0.08)
        zbb = analyzer.failure_probabilities(corner)
        fbb = analyzer.failure_probabilities(
            corner, conditions.with_body_bias(0.4)
        )
        assert fbb["any"].estimate < 0.5 * zbb["any"].estimate

    def test_reproducible_per_point(self, analyzer):
        a = analyzer.failure_probabilities(ProcessCorner(0.03))
        b = analyzer.failure_probabilities(ProcessCorner(0.03))
        assert a["any"].estimate == b["any"].estimate

    def test_hold_shortcut_matches_full(self, analyzer):
        corner = ProcessCorner(-0.05)
        full = analyzer.failure_probabilities(corner)["hold"].estimate
        short = analyzer.hold_failure_probability(corner).estimate
        assert short == pytest.approx(full, rel=1e-9)

    def test_unknown_mechanism_rejected(self, analyzer):
        probs = analyzer.failure_probabilities(ProcessCorner(0.0))
        with pytest.raises(KeyError):
            probs["latchup"]

    def test_as_dict(self, analyzer):
        probs = analyzer.failure_probabilities(ProcessCorner(0.0))
        d = probs.as_dict()
        assert set(d) == {"read", "write", "access", "hold", "any"}
