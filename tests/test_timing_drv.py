"""Tests for the array timing and DRV analysis modules."""

import numpy as np
import pytest

from repro.sram.array import ArrayOrganization
from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.drv import array_drv, cell_drv, retention_ok, safe_standby_voltage
from repro.sram.timing import (
    BitlineModel,
    access_time,
    read_cycle_time,
    write_cycle_time,
)
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def org():
    return ArrayOrganization(rows=256, columns=64, redundant_columns=3)


@pytest.fixture(scope="module")
def nominal_cell():
    from repro.technology import predictive_70nm

    return SixTCell(predictive_70nm(), CellGeometry(), ProcessCorner(0.0))


class TestTiming:
    def test_bitline_capacitance_scales_with_rows(self):
        model = BitlineModel()
        assert model.capacitance(256) > model.capacitance(64)
        assert model.capacitance(256) == pytest.approx(
            model.c_fixed + 256 * model.c_cell
        )
        with pytest.raises(ValueError):
            model.capacitance(0)

    def test_access_time_magnitude(self, nominal_cell, org):
        t = float(np.atleast_1d(access_time(nominal_cell, org, 1.0))[0])
        # A 256-row bitline at ~100 uA: a few hundred ps.
        assert 1e-10 < t < 2e-9

    def test_more_rows_slower_access(self, nominal_cell):
        small = ArrayOrganization(rows=64, columns=64, redundant_columns=3)
        big = ArrayOrganization(rows=512, columns=64, redundant_columns=3)
        t_small = float(np.atleast_1d(access_time(nominal_cell, small, 1.0))[0])
        t_big = float(np.atleast_1d(access_time(nominal_cell, big, 1.0))[0])
        assert t_big > 2 * t_small

    def test_fbb_speeds_the_access(self, nominal_cell, org):
        t_zbb = float(np.atleast_1d(access_time(nominal_cell, org, 1.0, 0.0))[0])
        t_fbb = float(
            np.atleast_1d(access_time(nominal_cell, org, 1.0, 0.25))[0]
        )
        assert t_fbb < t_zbb

    def test_high_vt_corner_slower(self, nominal_cell, org):
        slow = nominal_cell.at_corner(ProcessCorner(0.08))
        assert float(np.atleast_1d(access_time(slow, org, 1.0))[0]) > float(
            np.atleast_1d(access_time(nominal_cell, org, 1.0))[0]
        )

    def test_cycle_time_includes_overhead(self, nominal_cell, org):
        t_access = float(np.atleast_1d(access_time(nominal_cell, org, 1.0))[0])
        t_cycle = float(
            np.atleast_1d(read_cycle_time(nominal_cell, org, 1.0))[0]
        )
        assert t_cycle == pytest.approx(t_access / 0.4)
        with pytest.raises(ValueError):
            read_cycle_time(nominal_cell, org, 1.0, overhead_fraction=1.0)

    def test_write_cycle(self, nominal_cell):
        t = float(np.atleast_1d(write_cycle_time(nominal_cell, 1.0))[0])
        assert t > 0
        with pytest.raises(ValueError):
            write_cycle_time(nominal_cell, 1.0, overhead_fraction=-0.1)


class TestDRV:
    @pytest.fixture(scope="class")
    def population(self):
        from repro.technology import predictive_70nm

        tech = predictive_70nm()
        geometry = CellGeometry()
        rng = np.random.default_rng(3)
        dvt = sample_cell_dvt(tech, geometry, rng, 2000)
        return SixTCell(tech, geometry, ProcessCorner(0.0), dvt)

    def test_retention_monotone_in_supply(self, nominal_cell, fast_criteria):
        low = retention_ok(nominal_cell, 0.10, fast_criteria)
        high = retention_ok(nominal_cell, 0.60, fast_criteria)
        assert bool(np.all(high >= low))

    def test_cell_drv_distribution(self, population, fast_criteria):
        drv = cell_drv(population, fast_criteria, n_levels=21)
        assert drv.shape == (2000,)
        # Every cell retains somewhere inside the scanned range.
        assert drv.max() < 1.0
        assert drv.min() >= 0.05
        # The typical DRV sits well below the nominal supply.
        assert np.median(drv) < 0.5

    def test_drv_is_monotone_in_criteria(self, population, fast_criteria):
        """A stricter retention margin demands a higher supply."""
        import dataclasses

        strict = dataclasses.replace(
            fast_criteria,
            hold_fraction_min=min(0.99, fast_criteria.hold_fraction_min + 0.04),
        )
        drv_base = cell_drv(population, fast_criteria, n_levels=15)
        drv_strict = cell_drv(population, strict, n_levels=15)
        assert np.mean(drv_strict) >= np.mean(drv_base)

    def test_rbb_does_not_hurt_typical_drv(self, population, fast_criteria):
        """Cutting the NMOS leakage keeps retention at least as easy for
        the typical cell."""
        drv_zbb = cell_drv(population, fast_criteria, n_levels=15)
        drv_rbb = cell_drv(population, fast_criteria, vbody_n=-0.4,
                           n_levels=15)
        assert np.median(drv_rbb) <= np.median(drv_zbb) + 0.05

    def test_array_drv_is_extreme_value(self, population, fast_criteria, rng):
        drv = cell_drv(population, fast_criteria, n_levels=15)
        maxima = array_drv(drv, n_cells=16_384, rng=rng, n_arrays=200)
        assert maxima.shape == (200,)
        assert maxima.mean() > np.quantile(drv, 0.99)

    def test_safe_standby_voltage(self, population, fast_criteria, rng):
        drv = cell_drv(population, fast_criteria, n_levels=15)
        safe = safe_standby_voltage(drv, n_cells=16_384, rng=rng)
        assert drv.max() - 0.05 <= safe <= 1.0

    def test_validation(self, population, fast_criteria, rng):
        with pytest.raises(ValueError):
            cell_drv(population, fast_criteria, v_min=0.8, v_max=0.3)
        with pytest.raises(ValueError):
            cell_drv(population, fast_criteria, n_levels=1)
        with pytest.raises(ValueError):
            array_drv(np.array([0.2]), 0, rng)
        with pytest.raises(ValueError):
            array_drv(np.array([]), 100, rng)
