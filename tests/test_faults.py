"""Tests for the chaos harness and the durable-state layer.

Covers the fault-plan semantics (deterministic budgets, task/write
targeting, the environment hook), the sealed-envelope invariants
(atomic writes, checksum verification, quarantine), and the
checkpoint store (resume, corruption containment, exact clearing).
"""

import json

import pytest

from repro import checkpoint as checkpoint_mod
from repro import durable, faults
from repro.faults import ENV_VAR, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def disarm_faults():
    """No test leaks a process-wide fault plan into its neighbours."""
    yield
    faults.clear()


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_write_kind_needs_pattern(self):
        with pytest.raises(ValueError, match="path_pattern"):
            FaultSpec(kind="torn_write")

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="worker_crash", times=0)


class TestFaultPlan:
    def test_budget_consumed_exactly(self):
        plan = FaultPlan([FaultSpec(kind="worker_crash", times=2)])
        assert plan.task_action(0)["kind"] == "worker_crash"
        assert plan.task_action(1)["kind"] == "worker_crash"
        assert plan.task_action(2) is None
        assert plan.exhausted

    def test_task_index_targeting(self):
        plan = FaultPlan([FaultSpec(kind="task_slow", task_index=3)])
        assert plan.task_action(0) is None
        assert plan.task_action(3)["kind"] == "task_slow"
        assert plan.task_action(3) is None  # budget spent

    def test_write_action_matches_name_and_path(self, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec(kind="torn_write", path_pattern="criteria-*.json"),
                FaultSpec(kind="corrupt_write", path_pattern="*/deep/*"),
            ]
        )
        assert plan.write_action(tmp_path / "criteria-abc.json") == "torn_write"
        assert plan.write_action(tmp_path / "criteria-abc.json") is None
        assert (
            plan.write_action(tmp_path / "deep" / "x.json") == "corrupt_write"
        )
        assert plan.write_action(tmp_path / "unrelated.json") is None

    def test_json_roundtrip(self):
        plan = FaultPlan(
            [
                FaultSpec(kind="worker_crash", task_index=1, times=2),
                FaultSpec(kind="torn_write", path_pattern="*.json"),
                FaultSpec(kind="service_crash", site="ledger.started"),
            ]
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.specs == plan.specs

    def test_service_action_matches_site_and_consumes_budget(self):
        plan = FaultPlan(
            [
                FaultSpec(kind="service_crash", site="ledger.*", times=2),
                FaultSpec(kind="reject_burst", site="admission"),
            ]
        )
        # Site patterns are fnmatch globs over the lifecycle site name.
        assert plan.service_action("service_crash", "admission") is None
        hit = plan.service_action("service_crash", "ledger.accepted")
        assert hit is not None and hit.kind == "service_crash"
        assert plan.service_action("service_crash", "ledger.started") is not None
        assert plan.service_action("service_crash", "ledger.started") is None
        assert plan.service_action("reject_burst", "admission") is not None
        assert plan.service_action("reject_burst", "admission") is None
        assert plan.exhausted

    def test_service_action_site_none_matches_everywhere(self):
        plan = FaultPlan([FaultSpec(kind="job_deadline", seconds=0.5)])
        hit = plan.service_action("job_deadline", "job.start")
        assert hit is not None and hit.seconds == 0.5

    def test_service_action_rejects_non_service_kinds(self):
        plan = FaultPlan([FaultSpec(kind="worker_crash")])
        with pytest.raises(ValueError, match="not a service fault kind"):
            plan.service_action("worker_crash", "admission")

    def test_dict_specs_accepted(self):
        plan = FaultPlan([{"kind": "task_slow", "seconds": 0.01}])
        assert plan.specs[0] == FaultSpec(kind="task_slow", seconds=0.01)


class TestPlanFromEnv:
    def test_unset_means_no_plan(self):
        assert faults.plan_from_env({}) is None

    def test_inline_json(self):
        env = {ENV_VAR: '{"specs": [{"kind": "worker_crash"}]}'}
        plan = faults.plan_from_env(env)
        assert plan.specs == [FaultSpec(kind="worker_crash")]

    def test_file_reference(self, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('{"specs": [{"kind": "task_slow"}]}')
        plan = faults.plan_from_env({ENV_VAR: f"@{plan_file}"})
        assert plan.specs[0].kind == "task_slow"

    def test_malformed_plan_fails_loudly(self):
        with pytest.raises(ValueError, match=ENV_VAR):
            faults.plan_from_env({ENV_VAR: "{not json"})
        with pytest.raises(ValueError):
            faults.plan_from_env(
                {ENV_VAR: '{"specs": [{"kind": "meteor_strike"}]}'}
            )

    def test_inline_crash_raises_not_exits(self):
        with pytest.raises(faults.FaultInjected):
            faults.apply_task_action(
                {"kind": "worker_crash", "exit_code": 13}, in_worker=False
            )


class TestDurable:
    def test_seal_verify_roundtrip(self):
        sealed = durable.seal({"a": 1, "b": [1.5, 2.5]})
        durable.verify(sealed)  # does not raise
        durable.verify(json.loads(json.dumps(sealed)))  # survives JSON

    def test_verify_detects_tamper(self):
        sealed = durable.seal({"a": 1})
        sealed["a"] = 2
        with pytest.raises(durable.CorruptStateError, match="mismatch"):
            durable.verify(sealed)
        with pytest.raises(durable.CorruptStateError, match="checksum"):
            durable.verify({"a": 1})

    def test_write_read_sealed_roundtrip(self, tmp_path):
        path = tmp_path / "artifact.json"
        durable.write_sealed(path, {"format": 1, "value": 42})
        payload = durable.read_sealed(path)
        assert payload["value"] == 42
        assert not list(tmp_path.glob("*.tmp.*"))  # rename cleaned up

    def test_read_sealed_rejects_truncation(self, tmp_path):
        path = tmp_path / "artifact.json"
        durable.write_sealed(path, {"value": list(range(50))})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(durable.CorruptStateError):
            durable.read_sealed(path)

    def test_quarantine_numbering(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("junk")
        assert durable.quarantine(path).name == "bad.json.corrupt-1"
        path.write_text("more junk")
        assert durable.quarantine(path).name == "bad.json.corrupt-2"
        assert durable.quarantine(path) is None  # already gone

    def test_torn_write_injection(self, tmp_path):
        faults.install(
            FaultPlan([FaultSpec(kind="torn_write", path_pattern="*.json")])
        )
        path = tmp_path / "artifact.json"
        durable.write_sealed(path, {"value": list(range(100))})
        with pytest.raises(durable.CorruptStateError):
            durable.read_sealed(path)
        # Budget spent: the rewrite lands intact.
        durable.write_sealed(path, {"value": list(range(100))})
        assert durable.read_sealed(path)["value"] == list(range(100))

    def test_corrupt_write_injection(self, tmp_path):
        faults.install(
            FaultPlan(
                [FaultSpec(kind="corrupt_write", path_pattern="*.json")]
            )
        )
        path = tmp_path / "artifact.json"
        durable.write_sealed(path, {"value": 7})
        with pytest.raises(durable.CorruptStateError):
            durable.read_sealed(path)


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path)
        store.save("lot", "abc123", {0: {"x": 1.5}, 3: {"x": -2.0}})
        assert store.load("lot", "abc123") == {0: {"x": 1.5}, 3: {"x": -2.0}}

    def test_absent_is_empty(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path)
        assert store.load("lot", "nothing") == {}

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path)
        path = store.save("lot", "abc123", {0: 1})
        path.write_text("{torn")
        assert store.load("lot", "abc123") == {}
        assert list(tmp_path.glob("*.corrupt-1"))

    def test_fingerprint_mismatch_ignored(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path)
        path = store.save("lot", "abc123", {0: 1})
        # Same file served under a different fingerprint: refused.
        path.rename(store.path("lot", "zzz999"))
        assert store.load("lot", "zzz999") == {}

    def test_clear_is_idempotent(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path)
        store.save("lot", "abc123", {0: 1})
        store.clear("lot", "abc123")
        store.clear("lot", "abc123")
        assert store.load("lot", "abc123") == {}

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            checkpoint_mod.CheckpointStore(tmp_path, every=0)
        occupied = tmp_path / "file"
        occupied.write_text("x")
        with pytest.raises(NotADirectoryError):
            checkpoint_mod.CheckpointStore(occupied)

    def test_resumable_map_computes_and_clears(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path, every=2)
        seen = []

        def compute(indices):
            seen.append(list(indices))
            return [i * i for i in indices]

        results = store.resumable_map(
            "squares", "fp1", 5, compute, lambda v: v, lambda v: v
        )
        assert results == [0, 1, 4, 9, 16]
        assert seen == [[0, 1], [2, 3], [4]]  # flush-sized slices
        assert not store.path("squares", "fp1").exists()  # cleared

    def test_resumable_map_resumes_without_recompute(self, tmp_path):
        store = checkpoint_mod.CheckpointStore(tmp_path, every=2)
        store.save("squares", "fp1", {0: 0, 1: 1, 3: 9})
        computed = []

        def compute(indices):
            computed.extend(indices)
            return [i * i for i in indices]

        results = store.resumable_map(
            "squares", "fp1", 5, compute, lambda v: v, lambda v: v
        )
        assert results == [0, 1, 4, 9, 16]
        assert computed == [2, 4]  # only the missing cells ran

    def test_resumable_map_stops_at_slice_boundary_when_cancelled(
        self, tmp_path
    ):
        from repro import cancellation

        store = checkpoint_mod.CheckpointStore(tmp_path, every=2)
        token = cancellation.CancelToken()
        computed = []

        def compute(indices):
            computed.extend(indices)
            token.cancel()  # operator cancels mid-build
            return [i * i for i in indices]

        with cancellation.active(token):
            with pytest.raises(cancellation.JobCancelled):
                store.resumable_map(
                    "squares", "fp9", 6, compute, lambda v: v, lambda v: v
                )
        # Exactly one slice ran, and its flush is durable: a retry
        # resumes from the checkpoint instead of restarting.
        assert computed == [0, 1]
        assert store.load("squares", "fp9") == {0: 0, 1: 1}

        fresh_token = cancellation.CancelToken()
        with cancellation.active(fresh_token):
            results = store.resumable_map(
                "squares", "fp9", 6,
                lambda idx: [i * i for i in idx],
                lambda v: v, lambda v: v,
            )
        assert results == [0, 1, 4, 9, 16, 25]
