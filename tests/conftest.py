"""Shared fixtures.

Heavy artifacts (calibrated criteria, analyzers) are built once per
session at reduced accuracy: the calibration target is loosened to 1e-2
so small Monte-Carlo populations resolve it, keeping the suite fast
while exercising the full code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.context import ExperimentContext
from repro.failures.criteria import calibrate_criteria
from repro.sram.cell import CellGeometry
from repro.sram.metrics import OperatingConditions
from repro.technology.parameters import predictive_70nm


@pytest.fixture(scope="session")
def tech():
    """The predictive 70 nm technology card."""
    return predictive_70nm()


@pytest.fixture(scope="session")
def geometry():
    """The default 6T cell geometry."""
    return CellGeometry()


@pytest.fixture(scope="session")
def conditions(tech):
    """Nominal operating conditions."""
    return OperatingConditions.nominal(tech)


@pytest.fixture()
def rng():
    """A fresh, seeded random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def fast_criteria(tech, geometry, conditions):
    """Criteria calibrated to a loose 1e-2 target (fast, well resolved)."""
    return calibrate_criteria(
        tech,
        geometry,
        conditions,
        target=1e-2,
        n_samples=8_000,
        seed=99,
    )


@pytest.fixture(scope="session")
def small_ctx():
    """A reduced-accuracy experiment context for integration tests.

    The calibration target stays at 1e-4 (not the loose 1e-2 of
    ``fast_criteria``) because memory-level yield only makes sense when
    the redundancy can absorb the nominal cell failure rate; importance
    sampling resolves the 1e-4 quantiles even from 8k samples.
    """
    return ExperimentContext(
        target=1e-4,
        calibration_samples=8_000,
        analysis_samples=4_000,
        table_grid=7,
        seed=99,
    )
