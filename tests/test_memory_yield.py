"""Tests for the cell -> column -> memory yield chain."""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.failures.memory import (
    column_failure_probability,
    memory_failure_probability,
    parametric_yield,
)
from repro.sram.array import ArrayOrganization
from repro.technology.variation import InterDieDistribution


class TestColumnProbability:
    def test_matches_direct_formula(self):
        p = column_failure_probability(1e-3, rows=256)
        assert p == pytest.approx(1.0 - (1.0 - 1e-3) ** 256, rel=1e-9)

    def test_stable_for_tiny_probabilities(self):
        p = column_failure_probability(1e-15, rows=256)
        assert p == pytest.approx(256e-15, rel=1e-6)

    def test_edge_cases(self):
        assert column_failure_probability(0.0, rows=64) == 0.0
        assert column_failure_probability(1.0, rows=64) == 1.0

    def test_vectorised(self):
        p = column_failure_probability(np.array([0.0, 1e-3, 1.0]), rows=16)
        assert p.shape == (3,)
        assert p[0] == 0.0 and p[2] == 1.0

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            column_failure_probability(1e-3, rows=0)


class TestMemoryProbability:
    def test_zero_cell_failure_means_zero(self):
        org = ArrayOrganization(rows=64, columns=256, redundant_columns=13)
        assert memory_failure_probability(0.0, org) == 0.0

    def test_certain_cell_failure_means_one(self):
        org = ArrayOrganization(rows=64, columns=256, redundant_columns=13)
        assert memory_failure_probability(1.0, org) == pytest.approx(1.0)

    def test_matches_binomial_survival(self):
        org = ArrayOrganization(rows=64, columns=100, redundant_columns=5)
        p_cell = 2e-4
        p_col = 1.0 - (1.0 - p_cell) ** 64
        expected = float(sp_stats.binom.sf(5, 100, p_col))
        assert memory_failure_probability(p_cell, org) == pytest.approx(
            expected, rel=1e-9
        )

    def test_matches_monte_carlo(self, rng):
        """Analytic memory failure equals brute-force column sampling."""
        org = ArrayOrganization(rows=16, columns=50, redundant_columns=2)
        p_cell = 5e-3
        p_col = 1.0 - (1.0 - p_cell) ** 16
        trials = 40_000
        faulty_columns = rng.binomial(org.columns, p_col, size=trials)
        empirical = np.mean(faulty_columns > org.redundant_columns)
        analytic = memory_failure_probability(p_cell, org)
        assert analytic == pytest.approx(empirical, abs=4 * np.sqrt(
            empirical * (1 - empirical) / trials
        ))

    def test_more_redundancy_helps(self):
        small = ArrayOrganization(rows=64, columns=256, redundant_columns=2)
        large = ArrayOrganization(rows=64, columns=256, redundant_columns=20)
        p_cell = 1e-4
        assert memory_failure_probability(p_cell, large) < \
            memory_failure_probability(p_cell, small)


class TestParametricYield:
    def test_flat_failure_rate(self):
        org = ArrayOrganization(rows=64, columns=100, redundant_columns=5)
        dist = InterDieDistribution(sigma=0.05)
        y = parametric_yield(lambda corner: 0.0, org, dist)
        assert y == pytest.approx(1.0)

    def test_bathtub_yield_decreases_with_sigma(self):
        """Wider inter-die spread puts more dies in the failing regions."""
        org = ArrayOrganization(rows=64, columns=100, redundant_columns=5)

        def p_cell(corner):
            return min(1.0, 1e-6 * np.exp(abs(corner.dvt_inter) / 0.01))

        y_narrow = parametric_yield(p_cell, org, InterDieDistribution(0.02))
        y_wide = parametric_yield(p_cell, org, InterDieDistribution(0.06))
        assert y_wide < y_narrow


class TestArrayOrganization:
    def test_from_capacity(self):
        org = ArrayOrganization.from_capacity(64 * 1024, rows=256,
                                              redundancy_fraction=0.05)
        assert org.rows == 256
        assert org.columns == 2048
        assert org.redundant_columns == round(2048 * 0.05)
        assert org.capacity_bytes == 64 * 1024
        assert org.n_cells == 64 * 1024 * 8

    def test_from_capacity_requires_divisibility(self):
        with pytest.raises(ValueError):
            ArrayOrganization.from_capacity(1000, rows=256)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayOrganization(rows=0, columns=10, redundant_columns=1)
        with pytest.raises(ValueError):
            ArrayOrganization(rows=10, columns=10, redundant_columns=-1)

    def test_str_mentions_capacity(self):
        org = ArrayOrganization.from_capacity(2 * 1024, rows=64)
        assert "2KB" in str(org)
