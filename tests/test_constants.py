"""Tests for repro.constants."""

import pytest

from repro.constants import (
    ROOM_TEMPERATURE_K,
    celsius_to_kelvin,
    thermal_voltage,
)


def test_thermal_voltage_at_room_temperature():
    assert thermal_voltage(ROOM_TEMPERATURE_K) == pytest.approx(0.02587, abs=1e-4)


def test_thermal_voltage_scales_linearly():
    assert thermal_voltage(600.0) == pytest.approx(2 * thermal_voltage(300.0))


def test_thermal_voltage_rejects_nonpositive():
    with pytest.raises(ValueError):
        thermal_voltage(0.0)
    with pytest.raises(ValueError):
        thermal_voltage(-10.0)


def test_celsius_conversion():
    assert celsius_to_kelvin(27.0) == pytest.approx(300.15)
    assert celsius_to_kelvin(-273.0) == pytest.approx(0.15)


def test_celsius_below_absolute_zero_rejected():
    with pytest.raises(ValueError):
        celsius_to_kelvin(-300.0)
