"""Tests for the experiment context, netlist plumbing, and misc edges."""

import numpy as np
import pytest

from repro.circuit.exceptions import CircuitError, ConvergenceError
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.elements import Resistor, VoltageSource, Capacitor
from repro.experiments.context import ExperimentContext
from repro.technology.corners import ProcessCorner


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def tiny_ctx(self):
        return ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=1_000,
            table_grid=5, seed=123,
        )

    def test_criteria_is_lazy_and_cached(self, tiny_ctx):
        assert tiny_ctx._criteria is None
        first = tiny_ctx.criteria
        second = tiny_ctx.criteria
        assert first is second

    def test_tables_cached_per_bias(self, tiny_ctx):
        table_a = tiny_ctx.table(0.0)
        table_b = tiny_ctx.table(0.0)
        table_c = tiny_ctx.table(-0.4)
        assert table_a is table_b
        assert table_a is not table_c

    def test_analyzer_carries_settings(self, tiny_ctx):
        analyzer = tiny_ctx.analyzer()
        assert analyzer.n_samples == 1_000
        assert analyzer.criteria is tiny_ctx.criteria

    def test_asb_conditions(self, tiny_ctx):
        conditions = tiny_ctx.asb_conditions(0.3)
        assert conditions.vsb == 0.3
        assert conditions.vdd_standby == pytest.approx(0.8)

    def test_scratch_cache(self, tiny_ctx):
        tiny_ctx.cache["thing"] = 42
        assert tiny_ctx.cache["thing"] == 42


class TestNetlistPlumbing:
    def test_nodes_track_registration_order(self):
        ckt = Circuit("order")
        ckt.add(Resistor("a", "b", 1.0))
        ckt.add(Resistor("b", "c", 1.0))
        assert ckt.nodes == [GROUND, "a", "b", "c"]
        assert ckt.unknown_nodes == ["a", "b", "c"]

    def test_repr_mentions_size(self):
        ckt = Circuit("thing")
        ckt.add(Resistor("a", "0", 1.0))
        text = repr(ckt)
        assert "thing" in text
        assert "1 elements" in text

    def test_validate_rejects_empty(self):
        with pytest.raises(CircuitError):
            Circuit("empty").validate()

    def test_capacitor_and_source_listings(self):
        ckt = Circuit("mixed")
        ckt.add(VoltageSource("a", GROUND, 1.0, name="V1"))
        cap = Capacitor("a", GROUND, 1e-12)
        ckt.add(cap)
        assert ckt.capacitors == [cap]
        assert len(ckt.voltage_sources) == 1

    def test_bad_element_values(self):
        with pytest.raises(ValueError):
            Resistor("a", "b", -1.0)
        with pytest.raises(ValueError):
            Capacitor("a", "b", 0.0)

    def test_convergence_error_payload(self):
        error = ConvergenceError("nope", residual=1e-3, iterations=42)
        assert error.residual == 1e-3
        assert error.iterations == 42
        assert "42" in str(error)


class TestResultHelpers:
    def test_fig2c_improvement_and_rows(self):
        from repro.experiments.repair import Fig2cResult

        result = Fig2cResult(
            sigmas=np.array([0.02, 0.04]),
            yields={
                (64, "zbb"): np.array([0.9, 0.5]),
                (64, "self_repair"): np.array([0.95, 0.7]),
            },
        )
        np.testing.assert_allclose(result.improvement(64), [5.0, 20.0])
        rows = result.rows()
        assert len(rows) == 3
        assert "sigma" in rows[0]

    def test_fig5b_spread_reduction(self):
        from repro.experiments.repair import Fig5bResult

        rng = np.random.default_rng(0)
        wide = rng.normal(1.0, 0.5, 500)
        narrow = rng.normal(1.0, 0.2, 500)
        result = Fig5bResult(
            leakage_zbb=np.abs(wide) + 0.1,
            leakage_repaired=np.abs(narrow) + 0.1,
            sigma_inter=0.05,
        )
        assert 0.4 < result.spread_reduction < 0.8
        assert any("spread reduction" in row for row in result.rows())

    def test_monitor_readout_repr_fields(self):
        from repro.core.monitor import CornerBin, MonitorReadout

        readout = MonitorReadout(leakage=1e-3, vout=1.5,
                                 bin=CornerBin.NOMINAL)
        assert readout.bin is CornerBin.NOMINAL
        assert readout.vout == 1.5


class TestCornersMisc:
    def test_table_rejects_unknown_grid(self):
        from repro.core.tables import FailureProbabilityTable

        ctx = ExperimentContext(
            target=1e-2, calibration_samples=2_000, analysis_samples=500,
            seed=5,
        )
        table = FailureProbabilityTable(
            ctx.analyzer(), corner_min=-0.05, corner_max=0.05, n_grid=5
        )
        # clamps, never raises, for any float
        assert 0.0 <= table.probability(ProcessCorner(99.0)) <= 1.0
