"""Tests for the ring oscillator and delay-based corner binning."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    MOSFETElement,
    VoltageSource,
)
from repro.circuit.netlist import GROUND
from repro.circuit.transient import solve_transient
from repro.core.delay_monitor import (
    CombinedMonitor,
    DelayMonitor,
    RingOscillator,
)
from repro.core.monitor import CornerBin, LeakageMonitor
from repro.devices import make_nmos, make_pmos
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def oscillator():
    from repro.technology import predictive_70nm

    return RingOscillator(predictive_70nm())


class TestRingOscillator:
    def test_construction_validation(self, tech):
        with pytest.raises(ValueError):
            RingOscillator(tech, n_stages=4)
        with pytest.raises(ValueError):
            RingOscillator(tech, n_stages=1)
        with pytest.raises(ValueError):
            RingOscillator(tech, c_load=-1e-15)

    def test_high_vt_corner_is_slower(self, oscillator):
        nominal = oscillator.period(ProcessCorner(0.0))
        slow = oscillator.period(ProcessCorner(0.1))
        fast = oscillator.period(ProcessCorner(-0.1))
        assert fast < nominal < slow
        assert slow > 1.1 * nominal

    def test_fbb_speeds_the_ring_up(self, oscillator):
        zbb = oscillator.period(ProcessCorner(0.0), vbody_n=0.0)
        fbb = oscillator.period(ProcessCorner(0.0), vbody_n=0.25)
        rbb = oscillator.period(ProcessCorner(0.0), vbody_n=-0.4)
        assert fbb < zbb < rbb

    def test_frequency_is_inverse_period(self, oscillator):
        corner = ProcessCorner(0.02)
        assert oscillator.frequency(corner) == pytest.approx(
            1.0 / oscillator.period(corner)
        )

    def test_matches_transient_ring_simulation(self, tech):
        """The analytic period agrees with a simulated 3-stage ring.

        The MNA engine integrates the actual cross-coupled ring (load
        capacitors per stage) from a perturbed start; the period is
        measured between successive rising crossings of VDD/2.
        """
        oscillator = RingOscillator(tech, n_stages=3, wn=200e-9,
                                    wp=400e-9, c_load=2e-15)
        ckt = Circuit("ring3")
        ckt.add(VoltageSource("vdd", GROUND, 1.0, name="VDD"))
        nmos = make_nmos(tech, 200e-9)
        pmos = make_pmos(tech, 400e-9)
        nodes = ["n0", "n1", "n2"]
        for i in range(3):
            inp, out = nodes[i], nodes[(i + 1) % 3]
            ckt.add(MOSFETElement(inp, out, GROUND, GROUND, nmos,
                                  name=f"MN{i}"))
            ckt.add(MOSFETElement(inp, out, "vdd", "vdd", pmos,
                                  name=f"MP{i}"))
            ckt.add(Capacitor(out, GROUND, 2e-15))
        # The ring's DC operating point is the metastable midpoint; a
        # brief startup current kick knocks it into oscillation (real
        # rings start from noise).
        ckt.add(CurrentSource(
            GROUND, "n0", lambda t: 100e-6 if 0 < t < 5e-12 else 0.0,
            name="KICK",
        ))
        result = solve_transient(
            ckt, t_stop=300e-12, dt=0.25e-12,
            initial={"vdd": 1.0, "n0": 0.45, "n1": 0.45, "n2": 0.45},
        )
        wave = result["n0"]
        crossings = np.nonzero((wave[:-1] < 0.5) & (wave[1:] >= 0.5))[0]
        assert crossings.size >= 3
        periods = np.diff(result.times[crossings])
        simulated = float(np.median(periods))
        analytic = oscillator.period(ProcessCorner(0.0))
        assert analytic == pytest.approx(simulated, rel=0.15)


class TestDelayMonitor:
    @pytest.fixture(scope="class")
    def monitor(self, oscillator):
        return DelayMonitor.calibrate(oscillator.tech, bin_boundary=0.035,
                                      oscillator=oscillator)

    def test_reference_ordering(self, monitor):
        assert monitor.period_fast < monitor.period_slow
        with pytest.raises(ValueError):
            DelayMonitor(monitor.oscillator, 2e-10, 1e-10)

    def test_classification(self, monitor):
        assert monitor.classify(ProcessCorner(-0.08)) is CornerBin.LOW_VT
        assert monitor.classify(ProcessCorner(0.0)) is CornerBin.NOMINAL
        assert monitor.classify(ProcessCorner(0.08)) is CornerBin.HIGH_VT

    def test_agrees_with_leakage_monitor(self, monitor, tech, geometry):
        """Both sensors bin true-corner dies identically."""
        from repro.sram.cell import SixTCell, sample_cell_dvt
        from repro.sram.leakage import cell_leakage

        n_cells = 8192
        leakage_monitor = LeakageMonitor.calibrate_references(
            tech, geometry, n_cells, n_samples=4000
        )
        for shift in (-0.08, 0.0, 0.08):
            rng = np.random.default_rng(5)
            dvt = sample_cell_dvt(tech, geometry, rng, 4000)
            cell = SixTCell(tech, geometry, ProcessCorner(shift), dvt)
            leakage = n_cells * float(np.mean(cell_leakage(cell).total))
            assert leakage_monitor.classify(leakage) is monitor.classify(
                ProcessCorner(shift)
            )


class TestCombinedMonitor:
    @pytest.fixture(scope="class")
    def combined(self, tech, geometry, oscillator):
        leakage = LeakageMonitor.calibrate_references(
            tech, geometry, 8192, n_samples=4000
        )
        delay = DelayMonitor.calibrate(tech, oscillator=oscillator)
        return CombinedMonitor(leakage, delay)

    def test_agreement_passes_through(self, combined, oscillator):
        period = oscillator.period(ProcessCorner(0.08))
        leaky = combined.leakage_monitor.lower.vref / \
            combined.leakage_monitor.r_sense * 0.5
        assert combined.classify(leaky, period) is CornerBin.HIGH_VT

    def test_disagreement_defaults_to_nominal(self, combined, oscillator):
        """A hot die: leaky *and* slow-ish — conflicting evidence."""
        period_nominal = oscillator.period(ProcessCorner(0.0))
        very_leaky = combined.leakage_monitor.upper.vref / \
            combined.leakage_monitor.r_sense * 2.0
        assert combined.classify(very_leaky, period_nominal) is \
            CornerBin.NOMINAL

    def test_temperature_robustness(self, tech, geometry):
        """An 85C nominal die fools the leakage monitor but not the
        combined one — the reason the companion work fuses sensors."""
        from repro.sram.cell import SixTCell, sample_cell_dvt
        from repro.sram.leakage import cell_leakage

        hot_tech = tech.with_temperature(273.15 + 85.0)
        n_cells = 8192
        leakage_monitor = LeakageMonitor.calibrate_references(
            tech, geometry, n_cells, n_samples=4000
        )
        delay = DelayMonitor.calibrate(tech)
        combined = CombinedMonitor(leakage_monitor, delay)

        rng = np.random.default_rng(6)
        dvt = sample_cell_dvt(hot_tech, geometry, rng, 4000)
        hot_die = SixTCell(hot_tech, geometry, ProcessCorner(0.0), dvt)
        hot_leakage = n_cells * float(np.mean(cell_leakage(hot_die).total))
        # Leakage alone misbins the hot nominal die as LOW_VT...
        assert leakage_monitor.classify(hot_leakage) is CornerBin.LOW_VT
        # ...but the hot ring is *slower*, not faster, so fusion refuses.
        hot_ring = RingOscillator(hot_tech)
        hot_period = hot_ring.period(ProcessCorner(0.0))
        assert combined.classify(hot_leakage, hot_period) is not \
            CornerBin.LOW_VT
