"""Tests for ``repro.observability.export`` and its CLI/report surface.

The Prometheus renderer is checked the only way that means anything:
round-tripping its output through an independent strict parser
(:mod:`tests.prometheus_parser`) and comparing the recovered values to
the registry snapshot that produced them.  Timeline recording and the
Chrome-trace document get the same treatment — structural validation
plus determinism, the property everything in this repo leans on.
"""

from __future__ import annotations

import json
import math
import multiprocessing

import pytest

from repro import observability
from repro.observability import __main__ as obs_cli
from repro.observability.export import (
    chrome_trace,
    escape_label_value,
    format_value,
    render_prometheus,
    sanitize_metric_name,
    span_rows,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Timeline, trace, tracer
from repro.parallel.executor import ParallelExecutor
from tests.prometheus_parser import ExpositionError, parse_exposition


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test starts and ends with collection and timeline off."""
    observability.disable()
    observability.disable_timeline()
    observability.reset()
    yield
    observability.disable()
    observability.disable_timeline()
    observability.reset()


# ----------------------------------------------------------------------
# Name sanitisation and value formatting
# ----------------------------------------------------------------------
class TestSanitisation:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("mc.samples", "mc_samples"),
            ("service.jobs_accepted", "service_jobs_accepted"),
            ("a-b.c", "a_b_c"),
            ("already_fine", "already_fine"),
            ("9lives", "_9lives"),
            (".", "_"),
            (":colons:ok", ":colons:ok"),
        ],
    )
    def test_mapping(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    def test_format_value_specials(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(None) == "NaN"
        assert format_value(3.5) == "3.5"

    def test_label_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


# ----------------------------------------------------------------------
# Exposition rendering, validated by round-trip through the parser
# ----------------------------------------------------------------------
class TestRenderPrometheus:
    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("mc.samples").inc(4096)
        registry.counter("solver.calls").inc(17)
        registry.gauge("service.queue_depth").set(3.0)
        hist = registry.histogram("service.request_seconds")
        for i in range(100):
            hist.observe(i / 100.0)
        snap = registry.snapshot()

        page = render_prometheus(snap)
        families = parse_exposition(page)

        assert families["mc_samples"].type == "counter"
        assert families["mc_samples"].value() == 4096.0
        assert families["solver_calls"].value() == 17.0
        assert families["service_queue_depth"].type == "gauge"
        assert families["service_queue_depth"].value() == 3.0
        summary = families["service_request_seconds"]
        assert summary.type == "summary"
        assert summary.value("_count") == 100.0
        assert summary.value("_sum") == pytest.approx(sum(
            i / 100.0 for i in range(100)
        ))
        p50 = summary.value("", {"quantile": "0.5"})
        p95 = summary.value("", {"quantile": "0.95"})
        assert 0.3 <= p50 <= 0.7  # reservoir estimate of the median
        assert p95 >= p50

    def test_nan_and_inf_gauges_render_and_parse(self):
        metrics = {
            "gauges": {
                "g.nan": float("nan"),
                "g.pinf": float("inf"),
                "g.ninf": float("-inf"),
            }
        }
        page = render_prometheus(metrics)
        assert "g_nan NaN" in page
        assert "g_pinf +Inf" in page
        assert "g_ninf -Inf" in page
        families = parse_exposition(page)
        assert math.isnan(families["g_nan"].value())
        assert families["g_pinf"].value() == math.inf
        assert families["g_ninf"].value() == -math.inf

    def test_empty_reservoir_histogram_has_no_quantiles(self):
        metrics = {
            "histograms": {
                "h.empty": {"count": 0, "total": 0.0, "reservoir": []}
            }
        }
        page = render_prometheus(metrics)
        assert "quantile" not in page
        families = parse_exposition(page)
        family = families["h_empty"]
        assert family.type == "summary"
        assert family.value("_count") == 0.0
        assert family.value("_sum") == 0.0

    def test_name_collision_keeps_first_and_stays_parseable(self):
        # '.' sorts before '/', so mc.samples claims the family.
        metrics = {"counters": {"mc.samples": 1.0, "mc/samples": 2.0}}
        page = render_prometheus(metrics)
        assert "# skipped" in page
        families = parse_exposition(page)  # must not raise
        assert families["mc_samples"].value() == 1.0

    def test_summary_suffix_collision_skips_histogram(self):
        # A counter that owns 'h_count' blocks the histogram family 'h',
        # whose _count sample would otherwise be a duplicate.
        metrics = {
            "counters": {"h_count": 5.0},
            "histograms": {
                "h": {"count": 2, "total": 3.0, "reservoir": [1.0, 2.0]}
            },
        }
        page = render_prometheus(metrics)
        assert "# skipped" in page
        families = parse_exposition(page)
        assert families["h_count"].value() == 5.0
        assert "h" not in families

    def test_empty_snapshot_renders_empty_page(self):
        assert render_prometheus({}) == ""
        assert parse_exposition("") == {}


# ----------------------------------------------------------------------
# The test-suite parser is itself strict
# ----------------------------------------------------------------------
class TestParserStrictness:
    @pytest.mark.parametrize(
        "text",
        [
            "bad-name 1.0\n",
            "x 1.0\nx 2.0\n",  # duplicate sample
            "# TYPE x counter\n# TYPE x counter\nx 1.0\n",
            "# TYPE x wibble\nx 1.0\n",
            "x notanumber\n",
            'x{l="unterminated} 1.0\n',
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_label_unescaping(self):
        families = parse_exposition('x{l="a\\"b\\\\c\\nd"} 1.0\n')
        (_, labels, value) = families["x"].samples[0]
        assert labels == {"l": 'a"b\\c\nd'}
        assert value == 1.0


# ----------------------------------------------------------------------
# Timeline: bounded, deterministic, mergeable
# ----------------------------------------------------------------------
class TestTimeline:
    def test_reservoir_is_bounded_and_counts_everything(self):
        timeline = Timeline(capacity=16)
        for i in range(100):
            timeline.record(f"span{i}", float(i), 0.5)
        snap = timeline.snapshot()
        assert len(snap["events"]) == 16
        assert snap["seen"] == 100
        assert snap["capacity"] == 16

    def test_reservoir_is_deterministic(self):
        def build():
            timeline = Timeline(capacity=16)
            for i in range(500):
                timeline.record(f"span{i % 7}", float(i), 0.25)
            return timeline.snapshot()["events"]

        assert build() == build()

    def test_merge_assigns_fresh_track_and_keeps_durations(self):
        parent = Timeline(capacity=64)
        parent.record("local", 0.0, 1.0)
        worker = Timeline(capacity=64)
        worker.record("remote.a", 0.0, 0.5)
        worker.record("remote.b", 0.5, 0.25)
        parent.merge(worker.snapshot())

        events = parent.snapshot()["events"]
        remote = [e for e in events if e[3] == 1]
        assert {e[0] for e in remote} == {"remote.a", "remote.b"}
        durs = {name: dur for name, _, dur, _ in remote}
        assert durs["remote.a"] == 0.5
        assert durs["remote.b"] == 0.25
        # Relative spacing survives the clock-domain shift.
        starts = {name: start for name, start, _, _ in remote}
        assert starts["remote.b"] - starts["remote.a"] == pytest.approx(0.5)
        assert parent.snapshot()["seen"] == 3

    def test_merge_accounts_for_dropped_worker_events(self):
        parent = Timeline(capacity=64)
        worker = Timeline(capacity=4)
        for i in range(20):
            worker.record("w", float(i), 0.1)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert len(snap["events"]) == 4
        assert snap["seen"] == 20  # includes the 16 the worker dropped

    def test_tracer_records_spans_only_while_armed(self):
        observability.enable()
        with trace("unarmed"):
            pass
        assert tracer.timeline is None
        assert observability.timeline_snapshot() is None

        observability.enable_timeline()
        with trace("outer"):
            with trace("inner"):
                pass
        snap = observability.timeline_snapshot()
        names = [event[0] for event in snap["events"]]
        # inner pops (and records) before outer.
        assert names == ["inner", "outer"]
        inner, outer = snap["events"]
        assert inner[1] >= outer[1]  # inner starts after outer
        assert inner[2] <= outer[2]  # and is contained in it

        observability.disable_timeline()
        assert observability.timeline_snapshot() is None

    def test_reset_rearms_a_fresh_timeline(self):
        observability.enable()
        observability.enable_timeline(capacity=7)
        with trace("before"):
            pass
        observability.reset()
        snap = observability.timeline_snapshot()
        assert snap is not None, "reset must re-arm, not disarm"
        assert snap["capacity"] == 7
        assert snap["events"] == []


@trace("task.square")
def _square(x: int) -> int:
    return x * x


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker timeline inheritance requires the fork start method",
)
def test_worker_timelines_merge_across_processes():
    observability.enable()
    observability.enable_timeline()
    executor = ParallelExecutor(workers=2)
    assert executor.map(_square, [0, 1, 2, 3]) == [0, 1, 4, 9]
    snap = observability.timeline_snapshot()
    worker_events = [e for e in snap["events"] if e[3] > 0]
    assert worker_events, "expected merged worker spans on tracks > 0"
    assert {e[0] for e in worker_events} == {"task.square"}


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_document_structure(self):
        timeline = Timeline(capacity=64)
        timeline.record("a", 0.001, 0.002)
        timeline.record("b", 0.004, 0.001, track=1)
        doc = chrome_trace(timeline.snapshot(), meta={"experiment": "fig2c"})

        json.loads(json.dumps(doc))  # strictly JSON-serialisable
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["ph"] for e in events} == {"M", "X"}
        assert {e["name"] for e in metas} == {"process_name", "thread_name"}
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in metas
            if e["name"] == "thread_name"
        }
        assert thread_names == {0: "main", 1: "task-1"}
        by_name = {e["name"]: e for e in spans}
        assert by_name["a"]["ts"] == pytest.approx(1000.0)  # µs
        assert by_name["a"]["dur"] == pytest.approx(2000.0)
        assert by_name["b"]["tid"] == 1
        other = doc["otherData"]
        assert other["schema"] == "repro.trace/1"
        assert other["spans_recorded"] == 2
        assert other["experiment"] == "fig2c"

    def test_empty_timeline_still_names_the_main_track(self):
        doc = chrome_trace({"capacity": 8, "seen": 0, "events": []})
        names = [e["name"] for e in doc["traceEvents"]]
        assert "process_name" in names
        assert "thread_name" in names
        assert all(e["ph"] == "M" for e in doc["traceEvents"])


# ----------------------------------------------------------------------
# span_rows and the report command
# ----------------------------------------------------------------------
_SNAPSHOT = {
    "schema": "repro.telemetry/1",
    "experiment": "fig2a",
    "elapsed_seconds": 12.5,
    "meta": {"git_sha": "abc1234", "seed": 2006, "workers": 2},
    "metrics": {
        "counters": {"mc.samples": 4096.0, "solver.calls": 17.0},
        "gauges": {},
        "histograms": {},
    },
    "trace": {
        "name": "run",
        "calls": 1,
        "seconds": 12.0,
        "children": [
            {
                "name": "build",
                "calls": 1,
                "seconds": 10.0,
                "children": [
                    {
                        "name": "solve",
                        "calls": 5,
                        "seconds": 8.0,
                        "children": [],
                    }
                ],
            }
        ],
    },
    "diagnostics": {
        "thresholds": {"min_ess": 50.0},
        "scopes": {
            "cell0": {"converged": True, "n_estimates": 3, "min_ess": 210.0},
            "cell1": {"converged": False, "n_estimates": 2, "min_ess": 12.0},
        },
        "unconverged_scopes": ["cell1"],
    },
}


class TestSpanRows:
    def test_self_time_subtracts_children(self):
        rows = {r["path"]: r for r in span_rows(_SNAPSHOT["trace"])}
        assert rows["build"]["self_seconds"] == pytest.approx(2.0)
        assert rows["build/solve"]["self_seconds"] == pytest.approx(8.0)
        assert "run" not in rows  # root excluded

    def test_self_time_clamped_at_zero(self):
        tree = {
            "children": [
                {
                    "name": "jittery",
                    "calls": 1,
                    "seconds": 1.0,
                    "children": [
                        {
                            "name": "child",
                            "calls": 1,
                            "seconds": 1.001,
                            "children": [],
                        }
                    ],
                }
            ]
        }
        (parent, _child) = span_rows(tree)
        assert parent["self_seconds"] == 0.0


class TestReportCommand:
    def test_renders_all_sections(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(_SNAPSHOT))
        assert obs_cli.main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out
        assert "slowest spans" in out
        assert "build/solve" in out
        assert "mc.samples" in out
        assert "4096" in out
        assert "UNCONVERGED" in out
        assert "1/2 scope(s) converged" in out

    def test_rejects_non_snapshot_json(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"not": "telemetry"}))
        assert obs_cli.main(["report", str(path)]) == 1
        assert "metrics" in capsys.readouterr().err

    def test_rejects_missing_file(self, tmp_path):
        assert obs_cli.main(["report", str(tmp_path / "nope.json")]) == 1

    def test_json_format_mirrors_the_text_report(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        snapshot = dict(_SNAPSHOT, run_id="smoke")
        path.write_text(json.dumps(snapshot))
        assert obs_cli.main(["report", str(path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == "repro.report/1"
        assert summary["snapshot_schema"] == "repro.telemetry/1"
        assert summary["experiment"] == "fig2a"
        assert summary["run_id"] == "smoke"
        # Same selection and ordering as the text renderer: spans by
        # self time, counters by value.
        assert [r["path"] for r in summary["slowest_spans"]] == [
            "build/solve", "build"
        ]
        assert summary["top_counters"][0] == {
            "name": "mc.samples", "value": 4096.0
        }
        assert summary["diagnostics"]["unconverged_scopes"] == ["cell1"]
        assert set(summary["diagnostics"]["scopes"]) == {"cell0", "cell1"}

    def test_json_format_respects_top(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(_SNAPSHOT))
        assert obs_cli.main(
            ["report", str(path), "--format", "json", "--top", "1"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert len(summary["slowest_spans"]) == 1
        assert len(summary["top_counters"]) == 1
