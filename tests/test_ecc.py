"""Tests for the SEC-DED ECC and its yield model."""

import numpy as np
import pytest
from scipy import stats as sp_stats

from repro.sram.ecc import (
    HammingSecDed,
    memory_failure_with_ecc,
    word_failure_probability,
)


@pytest.fixture(scope="module")
def code():
    return HammingSecDed(64)


class TestCodeStructure:
    def test_72_64_geometry(self, code):
        assert code.k == 64
        assert code.r == 7
        assert code.n == 72
        assert code.overhead == pytest.approx(8 / 64)

    def test_small_codes(self):
        # Classic (8, 4) extended Hamming.
        small = HammingSecDed(4)
        assert small.n == 8
        with pytest.raises(ValueError):
            HammingSecDed(0)


class TestEncodeDecode:
    def test_roundtrip_clean(self, code, rng):
        data = (rng.random((50, 64)) < 0.5).astype(np.uint8)
        decoded = code.decode(code.encode(data))
        np.testing.assert_array_equal(decoded.data, data)
        assert not decoded.corrected.any()
        assert not decoded.detected.any()

    def test_single_error_corrected_everywhere(self, code, rng):
        """Flip every codeword position in turn; all must correct."""
        data = (rng.random(64) < 0.5).astype(np.uint8)
        word = code.encode(data)
        block = np.tile(word, (code.n, 1))
        block[np.arange(code.n), np.arange(code.n)] ^= 1
        decoded = code.decode(block)
        np.testing.assert_array_equal(
            decoded.data, np.tile(data, (code.n, 1))
        )
        assert not decoded.detected.any()

    def test_double_errors_detected_not_miscorrected(self, code, rng):
        data = (rng.random(64) < 0.5).astype(np.uint8)
        word = code.encode(data)
        flagged = 0
        trials = 200
        for _ in range(trials):
            i, j = rng.choice(code.n, size=2, replace=False)
            corrupted = word.copy()
            corrupted[i] ^= 1
            corrupted[j] ^= 1
            decoded = code.decode(corrupted[None, :])
            flagged += bool(decoded.detected[0])
        assert flagged == trials  # SEC-DED guarantees double detection

    def test_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(63, dtype=np.uint8))
        with pytest.raises(ValueError):
            code.decode(np.zeros(71, dtype=np.uint8))


class TestYieldModel:
    def test_word_probability_matches_binomial(self):
        p = 1e-3
        direct = word_failure_probability(p, 72)
        expected = float(sp_stats.binom.sf(1, 72, p))
        assert direct == pytest.approx(expected)

    def test_word_probability_matches_decoder(self, code, rng):
        """The statistical model agrees with hammering the real decoder."""
        p = 0.01
        trials = 30_000
        errors = rng.random((trials, code.n)) < p
        # A word fails iff it has >= 2 hard errors (the decoder corrects
        # exactly one).
        data = np.zeros((trials, 64), dtype=np.uint8)
        words = code.encode(data) ^ errors.astype(np.uint8)
        decoded = code.decode(words)
        wrong = (decoded.data != 0).any(axis=-1) | decoded.detected
        empirical = wrong.mean()
        analytic = word_failure_probability(p, code.n)
        assert empirical == pytest.approx(analytic, rel=0.15)

    def test_memory_failure_scales_with_words(self):
        p = 1e-4
        one = memory_failure_with_ecc(p, 1)
        many = memory_failure_with_ecc(p, 1000)
        assert many == pytest.approx(1 - (1 - one) ** 1000, rel=1e-9)

    def test_ecc_beats_nothing_but_loses_to_redundancy_on_hard_faults(self):
        """At equal 12.5% overhead, column redundancy beats SEC-DED for
        *hard* parametric faults — ECC burns its single correction on
        the permanent defect."""
        from repro.failures.memory import memory_failure_probability
        from repro.sram.array import ArrayOrganization

        p_cell = 2e-5
        n_cells = 64 * 1024 * 8
        # ECC: 72-bit words covering the same data capacity.
        p_ecc = memory_failure_with_ecc(p_cell, n_cells // 64, word_bits=72)
        # Redundancy at the same 12.5% overhead.
        org = ArrayOrganization(rows=256, columns=2048,
                                redundant_columns=256)
        p_red = memory_failure_probability(p_cell, org)
        # No protection.
        p_none = 1 - (1 - p_cell) ** n_cells
        assert p_ecc < p_none
        assert p_red < p_ecc

    def test_validation(self):
        with pytest.raises(ValueError):
            word_failure_probability(1e-3, 0)
        with pytest.raises(ValueError):
            memory_failure_with_ecc(1e-3, 0)
