"""Tests for the standby power models."""

import pytest

from repro.power.standby import die_standby_power, standby_power_per_cell
from repro.sram.cell import SixTCell
from repro.sram.metrics import OperatingConditions
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def nominal_cell():
    from repro.sram.cell import CellGeometry
    from repro.technology import predictive_70nm

    return SixTCell(predictive_70nm(), CellGeometry(), ProcessCorner(0.0))


def test_power_decreases_with_source_bias(tech, nominal_cell):
    powers = []
    for vsb in (0.0, 0.2, 0.4):
        conditions = OperatingConditions.source_biased_standby(tech, vsb)
        powers.append(float(standby_power_per_cell(nominal_cell, conditions)[0]))
    assert powers[0] > powers[1] > powers[2]
    assert powers[2] < 0.25 * powers[0]


def test_power_scale_is_rail_times_leakage(tech, nominal_cell):
    from repro.sram.leakage import cell_leakage

    conditions = OperatingConditions.source_biased_standby(tech, 0.3)
    power = float(standby_power_per_cell(nominal_cell, conditions)[0])
    leakage = float(
        cell_leakage(nominal_cell, vdd=conditions.vdd_standby, vsb=0.3).total[0]
    )
    assert power == pytest.approx(conditions.vdd_standby * leakage)


def test_die_power_clt(tech, geometry):
    conditions = OperatingConditions.source_biased_standby(tech, 0.0)
    dist = die_standby_power(
        tech, geometry, ProcessCorner(0.0), n_cells=16_384,
        conditions=conditions, n_samples=4_000,
    )
    assert dist.mean > 0
    assert dist.std < 0.05 * dist.mean  # array-level concentration


def test_leaky_corner_burns_more(tech, geometry):
    conditions = OperatingConditions.source_biased_standby(tech, 0.0)
    low = die_standby_power(tech, geometry, ProcessCorner(-0.08), 4096,
                            conditions, n_samples=3_000)
    high = die_standby_power(tech, geometry, ProcessCorner(0.08), 4096,
                             conditions, n_samples=3_000)
    assert low.mean > 3 * high.mean


def test_invalid_cells_rejected(tech, geometry):
    conditions = OperatingConditions.source_biased_standby(tech, 0.0)
    with pytest.raises(ValueError):
        die_standby_power(tech, geometry, ProcessCorner(0.0), 0, conditions)
