"""Cross-validation: vectorised cell solvers vs the general MNA engine.

The statistical machinery rides entirely on the fast solvers in
:mod:`repro.sram.solver`; these tests rebuild the same cell problems as
explicit netlists and check both engines agree to sub-millivolt level,
including under body bias and for randomly perturbed cells.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, MOSFETElement, VoltageSource, solve_dc
from repro.circuit.netlist import GROUND
from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.solver import (
    solve_hold_state,
    solve_read_node,
    solve_read_trip,
    solve_write_node,
)
from repro.technology.corners import ProcessCorner

VDD = 1.0


def _read_circuit(cell: SixTCell, vbody: float) -> Circuit:
    """The read divider: AXR from the precharged bitline against NR."""
    ckt = Circuit("read")
    ckt.add(VoltageSource("vdd", GROUND, VDD, name="VDD"))
    ckt.add(VoltageSource("vb", GROUND, vbody, name="VB"))
    ckt.add(MOSFETElement("vdd", "vdd", "r", "vb", cell.device("axr"),
                          name="AXR"))
    ckt.add(MOSFETElement("vdd", "r", GROUND, "vb", cell.device("nr"),
                          name="NR"))
    return ckt


def _write_circuit(cell: SixTCell, vbody: float) -> Circuit:
    """The write divider: PL (gate low) against AXL pulling to BL=0."""
    ckt = Circuit("write")
    ckt.add(VoltageSource("vdd", GROUND, VDD, name="VDD"))
    ckt.add(VoltageSource("vb", GROUND, vbody, name="VB"))
    ckt.add(MOSFETElement(GROUND, "l", "vdd", "vdd", cell.device("pl"),
                          name="PL"))
    ckt.add(MOSFETElement("vdd", "l", GROUND, "vb", cell.device("axl"),
                          name="AXL"))
    return ckt


def _hold_circuit(cell: SixTCell, vdd_standby: float, vsb: float) -> Circuit:
    """The full standby cell: both inverters plus access leakage paths."""
    ckt = Circuit("hold")
    ckt.add(VoltageSource("vdd", GROUND, vdd_standby, name="VDD"))
    ckt.add(VoltageSource("vsl", GROUND, vsb, name="VSL"))
    ckt.add(MOSFETElement("r", "l", "vdd", "vdd", cell.device("pl"), name="PL"))
    ckt.add(MOSFETElement("r", "l", "vsl", GROUND, cell.device("nl"), name="NL"))
    ckt.add(MOSFETElement("l", "r", "vdd", "vdd", cell.device("pr"), name="PR"))
    ckt.add(MOSFETElement("l", "r", "vsl", GROUND, cell.device("nr"), name="NR"))
    ckt.add(MOSFETElement(GROUND, "vdd", "l", GROUND, cell.device("axl"),
                          name="AXL"))
    ckt.add(MOSFETElement(GROUND, "vdd", "r", GROUND, cell.device("axr"),
                          name="AXR"))
    return ckt


@pytest.fixture(scope="module")
def cells(tech=None, geometry=None):
    """A nominal cell plus a few randomly perturbed cells."""
    from repro.sram.cell import CellGeometry
    from repro.technology import predictive_70nm

    tech = predictive_70nm()
    geometry = CellGeometry()
    rng = np.random.default_rng(7)
    dvt = sample_cell_dvt(tech, geometry, rng, 3)
    out = [SixTCell(tech, geometry, ProcessCorner(0.0))]
    for i in range(3):
        single = {k: np.array([v[i]]) for k, v in dvt.items()}
        out.append(SixTCell(tech, geometry, ProcessCorner(0.0), single))
    return out


@pytest.mark.parametrize("vbody", [0.0, -0.4, 0.4])
def test_read_node_matches_mna(cells, vbody):
    for cell in cells:
        fast = float(np.atleast_1d(solve_read_node(cell, VDD, vbody))[0])
        sol = solve_dc(_read_circuit(cell, vbody),
                       initial={"vdd": VDD, "r": 0.2})
        assert fast == pytest.approx(sol["r"], abs=1e-4)


@pytest.mark.parametrize("vbody", [0.0, -0.4])
def test_write_node_matches_mna(cells, vbody):
    for cell in cells:
        fast = float(np.atleast_1d(solve_write_node(cell, VDD, vbody))[0])
        sol = solve_dc(_write_circuit(cell, vbody),
                       initial={"vdd": VDD, "l": 0.1})
        assert fast == pytest.approx(sol["l"], abs=1e-4)


def test_read_trip_matches_inverter_threshold(cells):
    """The vectorised trip solve equals the MNA switching threshold."""
    from repro.circuit import switching_threshold

    for cell in cells[:2]:
        fast = float(np.atleast_1d(solve_read_trip(cell, VDD))[0])
        vm = switching_threshold(
            cell.device("nl"), cell.device("pl"), VDD
        )
        assert fast == pytest.approx(vm, abs=1e-3)


@pytest.mark.parametrize("vsb", [0.0, 0.3])
def test_hold_state_matches_mna(cells, vsb):
    vdd_standby = 0.8
    for cell in cells:
        vl_fast, vr_fast = solve_hold_state(cell, vdd_standby, vsb=vsb)
        sol = solve_dc(
            _hold_circuit(cell, vdd_standby, vsb),
            initial={"vdd": vdd_standby, "vsl": vsb,
                     "l": vdd_standby, "r": vsb},
        )
        assert float(np.atleast_1d(vl_fast)[0]) == pytest.approx(
            sol["l"], abs=2e-4
        )
        assert float(np.atleast_1d(vr_fast)[0]) == pytest.approx(
            sol["r"], abs=2e-4
        )
