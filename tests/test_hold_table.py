"""Tests for the ASB hold-probability surface and its policies."""

import numpy as np
import pytest

from repro.core.source_bias import SourceBiasDAC
from repro.experiments.asb import HoldProbabilityTable, default_asb_organization


@pytest.fixture(scope="module")
def table():
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(
        target=1e-3, calibration_samples=4_000, analysis_samples=2_000,
        seed=55,
    )
    return HoldProbabilityTable(
        ctx,
        corner_grid=np.linspace(-0.08, 0.08, 3),
        vsb_grid=np.array([0.0, 0.3, 0.5, 0.6, 0.635]),
    )


def test_probability_monotone_in_vsb(table):
    for corner in (-0.08, 0.0, 0.08):
        values = [table.probability(corner, v) for v in
                  (0.0, 0.3, 0.5, 0.6)]
        assert values == sorted(values)


def test_probability_clamps_outside_grid(table):
    inside = table.probability(0.08, 0.635)
    outside = table.probability(0.5, 2.0)
    assert outside == pytest.approx(inside)


def test_vsb_for_target_inverse_property(table):
    """The returned bias meets the target; one step more violates it."""
    target = 1e-3
    vsb = table.vsb_for_target(0.0, target)
    assert table.probability(0.0, vsb) <= target
    if vsb < 0.63:
        assert table.probability(0.0, vsb + 0.02) >= target * 0.5


def test_vsb_for_target_extremes(table):
    # An impossible target pins to the bottom of the grid.
    assert table.vsb_for_target(0.0, 1e-30) == pytest.approx(0.0, abs=1e-3)
    # A trivial target pins to the top.
    assert table.vsb_for_target(0.0, 1.0) == pytest.approx(0.635)


def test_adaptive_vsb_policy(table):
    org = default_asb_organization()
    dac = SourceBiasDAC(bits=5, full_scale=0.62)
    vsb = table.adaptive_vsb(0.0, org, dac)
    # A real, DAC-quantised value.
    assert vsb in {dac.voltage(code) for code in range(dac.n_codes)}
    assert vsb > 0.3
    # The selected code keeps the expected faulty columns within the
    # budgeted share of the redundancy.
    p_cell = table.probability(0.0, vsb)
    p_col = 1.0 - (1.0 - p_cell) ** org.rows
    assert org.columns * p_col <= 0.7 * org.redundant_columns + 1e-9


def test_adaptive_vsb_share_validation(table):
    org = default_asb_organization()
    dac = SourceBiasDAC(bits=4)
    with pytest.raises(ValueError):
        table.adaptive_vsb(0.0, org, dac, redundancy_share=0.0)
    # A smaller share is never more aggressive.
    conservative = table.adaptive_vsb(0.0, org, dac, redundancy_share=0.3)
    standard = table.adaptive_vsb(0.0, org, dac, redundancy_share=0.7)
    assert conservative <= standard
