"""Tests for the functional memory array and its fault semantics."""

import numpy as np
import pytest

from repro.failures.criteria import FailureCriteria
from repro.sram.array import ArrayOrganization, FunctionalMemoryArray
from repro.sram.metrics import OperatingConditions


@pytest.fixture(scope="module")
def small_org():
    return ArrayOrganization(rows=8, columns=16, redundant_columns=2)


@pytest.fixture(scope="module")
def perfect_criteria():
    """Criteria no realistic cell can violate: a fault-free array."""
    return FailureCriteria(
        delta_read=-1.0,       # margins are always > -1 V
        t_write_max=1.0,       # writes always finish within a second
        i_access_min=0.0,      # any positive current passes
        hold_fraction_min=-2.0,
    )


@pytest.fixture(scope="module")
def harsh_hold_criteria():
    """Criteria that make marginal cells fail retention under bias."""
    return FailureCriteria(
        delta_read=-1.0,
        t_write_max=1.0,
        i_access_min=0.0,
        hold_fraction_min=0.97,
    )


def _array(tech, org, criteria, seed=0, conditions=None):
    return FunctionalMemoryArray(
        tech,
        org,
        criteria,
        conditions=conditions,
        rng=np.random.default_rng(seed),
    )


class TestFaultFreeBehaviour:
    def test_write_read_roundtrip(self, tech, small_org, perfect_criteria):
        array = _array(tech, small_org, perfect_criteria)
        array.write_all(True)
        assert np.all(array.read_all())
        array.write_all(False)
        assert not np.any(array.read_all())

    def test_pattern_write(self, tech, small_org, perfect_criteria):
        array = _array(tech, small_org, perfect_criteria)
        pattern = np.zeros(array.shape, dtype=bool)
        pattern[::2] = True
        array.write_all(pattern)
        np.testing.assert_array_equal(array.read_all(), pattern)

    def test_row_operations(self, tech, small_org, perfect_criteria):
        array = _array(tech, small_org, perfect_criteria)
        array.write_all(False)
        array.write_row(3, True)
        observed = array.read_row(3)
        assert np.all(observed)
        assert not np.any(array.read_row(2))

    def test_standby_dwell_preserves_data_at_zero_bias(
        self, tech, small_org, perfect_criteria
    ):
        array = _array(tech, small_org, perfect_criteria)
        array.write_all(True)
        array.standby_dwell(vsb=0.0)
        assert np.all(array.read_all())


class TestRetentionFaults:
    def test_high_bias_corrupts_marginal_cells(
        self, tech, small_org, harsh_hold_criteria
    ):
        conditions = OperatingConditions.source_biased_standby(tech)
        array = _array(tech, small_org, harsh_hold_criteria, seed=3,
                       conditions=conditions)
        array.write_all(True)
        array.standby_dwell(vsb=0.6)
        # At a punishing source bias with a strict retention criterion,
        # at least one cell of a 128-cell array should corrupt.
        assert not np.all(array.data)

    def test_retention_fail_map_monotone_in_vsb(
        self, tech, small_org, harsh_hold_criteria
    ):
        conditions = OperatingConditions.source_biased_standby(tech)
        array = _array(tech, small_org, harsh_hold_criteria, seed=3,
                       conditions=conditions)
        array.write_all(True)
        low = array.retention_fails(0.3).sum()
        high = array.retention_fails(0.6).sum()
        assert high >= low

    def test_retention_cache_reused(self, tech, small_org, harsh_hold_criteria):
        conditions = OperatingConditions.source_biased_standby(tech)
        array = _array(tech, small_org, harsh_hold_criteria,
                       conditions=conditions)
        array.write_all(True)
        array.retention_fails(0.5)
        assert len(array._retention_cache) == 1
        array.retention_fails(0.5)
        assert len(array._retention_cache) == 1


class TestInjectedStaticFaults:
    def test_write_fault_blocks_update(self, tech, small_org, perfect_criteria):
        array = _array(tech, small_org, perfect_criteria)
        array.write_all(False)
        # Inject a write fault for the data-1 orientation at (0, 0).
        fail_d1, fail_d0 = array._static_faults["write"]
        fail_d1[0, 0] = True
        array.write_all(True)
        assert not array.data[0, 0]
        assert array.data[0, 1]

    def test_read_disturb_flips_cell(self, tech, small_org, perfect_criteria):
        array = _array(tech, small_org, perfect_criteria)
        array.write_all(True)
        fail_d1, fail_d0 = array._static_faults["read"]
        fail_d1[2, 5] = True
        observed = array.read_all()
        assert not observed[2, 5]  # destructive read returned flipped value
        assert not array.data[2, 5]

    def test_access_fault_returns_precharge(self, tech, small_org,
                                            perfect_criteria):
        array = _array(tech, small_org, perfect_criteria)
        array.write_all(False)
        fail_d1, fail_d0 = array._static_faults["access"]
        fail_d0[1, 1] = True
        observed = array.read_all()
        assert observed[1, 1]  # sense failure reads the precharge '1'
        assert not array.data[1, 1]  # content untouched


def test_total_columns(tech, small_org, perfect_criteria):
    array = _array(tech, small_org, perfect_criteria)
    assert array.total_columns == 18
    assert array.shape == (8, 18)
    assert array.column_of(19) == 1
