"""Cross-validation: quasi-static write time vs a transient simulation.

``solve_write_time`` computes the write duration as a charge integral
over the static I-V curves.  Here the same write event — the access
transistor discharging the '1' node against the pull-up into a 2 fF
node capacitance — is simulated with the backward-Euler transient
engine, and the time to cross the write trip point is compared.
"""

import numpy as np
import pytest

from repro.circuit import Capacitor, Circuit, MOSFETElement, VoltageSource
from repro.circuit.netlist import GROUND
from repro.circuit.transient import solve_transient
from repro.sram.cell import CellGeometry, SixTCell
from repro.sram.solver import solve_write_time, solve_write_trip
from repro.technology import predictive_70nm
from repro.technology.corners import ProcessCorner

VDD = 1.0
C_NODE = 2e-15


def _simulate_write(cell: SixTCell) -> float:
    """Transient write-0: time [s] for node L to fall below V_TRIPWR."""
    ckt = Circuit("write-transient")
    ckt.add(VoltageSource("vdd", GROUND, VDD, name="VDD"))
    # Wordline steps high at t=0 via the access transistor's gate.
    ckt.add(
        VoltageSource("wl", GROUND, lambda t: VDD if t > 0 else 0.0,
                      name="WL")
    )
    ckt.add(MOSFETElement(GROUND, "l", "vdd", "vdd", cell.device("pl"),
                          name="PL"))
    ckt.add(MOSFETElement("wl", "l", GROUND, GROUND, cell.device("axl"),
                          name="AXL"))
    ckt.add(Capacitor("l", GROUND, C_NODE))
    result = solve_transient(
        ckt, t_stop=60e-12, dt=0.2e-12, initial={"l": VDD, "vdd": VDD}
    )
    v_stop = float(np.atleast_1d(solve_write_trip(cell, VDD))[0])
    return result.crossing_time("l", v_stop, rising=False)


@pytest.mark.parametrize("corner", [0.0, 0.06])
def test_write_time_matches_transient(corner):
    tech = predictive_70nm()
    cell = SixTCell(tech, CellGeometry(), ProcessCorner(corner))
    quasi_static = float(
        np.atleast_1d(solve_write_time(cell, VDD, node_capacitance=C_NODE))[0]
    )
    transient = _simulate_write(cell)
    # Backward Euler is first order and the initial operating point sees
    # the node already pinned at VDD, so agree to ~15%.
    assert quasi_static == pytest.approx(transient, rel=0.15)


def test_rbb_slows_transient_write_too():
    """The body-bias trend holds in the full transient, not just the
    quasi-static integral."""
    tech = predictive_70nm()
    cell = SixTCell(tech, CellGeometry(), ProcessCorner(0.0))

    def simulate(vbody: float) -> float:
        ckt = Circuit("write-transient")
        ckt.add(VoltageSource("vdd", GROUND, VDD, name="VDD"))
        ckt.add(VoltageSource("vb", GROUND, vbody, name="VB"))
        ckt.add(
            VoltageSource("wl", GROUND, lambda t: VDD if t > 0 else 0.0,
                          name="WL")
        )
        ckt.add(MOSFETElement(GROUND, "l", "vdd", "vdd",
                              cell.device("pl"), name="PL"))
        ckt.add(MOSFETElement("wl", "l", GROUND, "vb",
                              cell.device("axl"), name="AXL"))
        ckt.add(Capacitor("l", GROUND, C_NODE))
        result = solve_transient(
            ckt, t_stop=80e-12, dt=0.2e-12,
            initial={"l": VDD, "vdd": VDD, "vb": vbody},
        )
        v_stop = float(
            np.atleast_1d(solve_write_trip(cell, VDD, vbody))[0]
        )
        return result.crossing_time("l", v_stop, rising=False)

    assert simulate(-0.4) > simulate(0.0)
