"""Tests for the closed-form leakage components."""

import numpy as np
import pytest

from repro.constants import thermal_voltage
from repro.devices import (
    gate_leakage,
    junction_leakage,
    junction_leakage_magnitude,
    make_nmos,
    subthreshold_leakage,
)


@pytest.fixture(scope="module")
def ut():
    return thermal_voltage()


class TestGateLeakage:
    def test_scales_with_area(self, tech):
        one = gate_leakage(tech.nmos, 100e-9, 70e-9, 1.0)
        four = gate_leakage(tech.nmos, 200e-9, 140e-9, 1.0)
        assert float(four) == pytest.approx(4 * float(one))

    def test_exponential_in_oxide_voltage(self, tech):
        low = float(gate_leakage(tech.nmos, 100e-9, 70e-9, 0.5))
        high = float(gate_leakage(tech.nmos, 100e-9, 70e-9, 1.0))
        expected_ratio = np.exp(0.5 / tech.nmos.v0_gate)
        assert high / low == pytest.approx(expected_ratio, rel=1e-9)

    def test_symmetric_in_sign(self, tech):
        assert float(gate_leakage(tech.nmos, 1e-7, 7e-8, -0.8)) == pytest.approx(
            float(gate_leakage(tech.nmos, 1e-7, 7e-8, 0.8))
        )


class TestJunctionLeakage:
    def test_reverse_bias_grows_btbt(self, tech, ut):
        area = tech.junction_area(200e-9)
        i1 = float(junction_leakage(tech.nmos, area, 1.0, ut))
        i2 = float(junction_leakage(tech.nmos, area, 1.4, ut))
        assert i2 > 2 * i1

    def test_zero_bias_zero_current_nearly(self, tech, ut):
        area = tech.junction_area(200e-9)
        i = float(junction_leakage(tech.nmos, area, 0.0, ut))
        # Only the (tiny) BTBT extrapolation remains at zero bias.
        assert abs(i) < 1e-10

    def test_forward_bias_negative_and_explosive(self, tech, ut):
        area = tech.junction_area(200e-9)
        i_small = float(junction_leakage(tech.nmos, area, -0.3, ut))
        i_large = float(junction_leakage(tech.nmos, area, -0.55, ut))
        assert i_small < 0 and i_large < 0
        assert abs(i_large) > 50 * abs(i_small)

    def test_forward_exponent_clipped(self, tech, ut):
        area = tech.junction_area(200e-9)
        i = float(junction_leakage(tech.nmos, area, -5.0, ut))
        assert np.isfinite(i)

    def test_magnitude_wrapper(self, tech, ut):
        area = tech.junction_area(200e-9)
        assert float(
            junction_leakage_magnitude(tech.nmos, area, -0.5, ut)
        ) == pytest.approx(-float(junction_leakage(tech.nmos, area, -0.5, ut)))


class TestSubthresholdLeakage:
    def test_matches_device_off_current(self, tech):
        device = make_nmos(tech, width=200e-9)
        direct = float(device.subthreshold_current(1.0))
        wrapped = float(subthreshold_leakage(device, 1.0))
        assert wrapped == pytest.approx(direct)

    def test_rbb_suppression(self, tech):
        device = make_nmos(tech, width=200e-9)
        assert float(subthreshold_leakage(device, 1.0, vsb=0.4)) < float(
            subthreshold_leakage(device, 1.0, vsb=0.0)
        )
