"""Tests for the self-repairing SRAM pipeline."""

import numpy as np
import pytest

from repro.core.body_bias import BodyBiasGenerator, SelfRepairingSRAM
from repro.core.monitor import CornerBin
from repro.sram.array import ArrayOrganization
from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution


class TestBodyBiasGenerator:
    def test_bias_levels(self):
        generator = BodyBiasGenerator(rbb=-0.4, fbb=0.4)
        assert generator.bias_for(CornerBin.LOW_VT) == -0.4
        assert generator.bias_for(CornerBin.HIGH_VT) == 0.4
        assert generator.bias_for(CornerBin.NOMINAL) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BodyBiasGenerator(rbb=0.1, fbb=0.4)
        with pytest.raises(ValueError):
            BodyBiasGenerator(rbb=-0.4, fbb=-0.1)


@pytest.fixture(scope="module")
def pipeline(small_ctx=None):
    from repro.experiments.context import ExperimentContext

    # Target 1e-4: deep enough that the 5% redundancy keeps nominal
    # dies alive (memory yield would be identically zero at 1e-2).
    ctx = ExperimentContext(
        target=1e-4, calibration_samples=8_000, analysis_samples=5_000,
        table_grid=7, seed=99,
    )
    organization = ArrayOrganization.from_capacity(
        8 * 1024, rows=64, redundancy_fraction=0.05
    )
    return SelfRepairingSRAM(
        ctx.analyzer(),
        organization,
        table_provider=ctx.table,
        leakage_samples=4_000,
    )


class TestDecision:
    def test_leaky_die_gets_rbb(self, pipeline):
        vbody, bin, _ = pipeline.decide_bias(ProcessCorner(-0.09))
        assert bin is CornerBin.LOW_VT
        assert vbody < 0

    def test_slow_die_gets_fbb(self, pipeline):
        vbody, bin, _ = pipeline.decide_bias(ProcessCorner(0.09))
        assert bin is CornerBin.HIGH_VT
        assert vbody > 0

    def test_nominal_die_unbiased(self, pipeline):
        vbody, bin, _ = pipeline.decide_bias(ProcessCorner(0.0))
        assert bin is CornerBin.NOMINAL
        assert vbody == 0.0

    def test_noisy_measurement_mode(self, pipeline):
        rng = np.random.default_rng(3)
        vbody, bin, measured = pipeline.decide_bias(
            ProcessCorner(-0.09), rng
        )
        assert measured > 0
        assert bin is CornerBin.LOW_VT  # CLT noise is tiny at array scale


class TestRepairOutcomes:
    def test_repair_reduces_failure_at_leaky_corner(self, pipeline):
        outcome = pipeline.repair(ProcessCorner(-0.09))
        assert outcome.vbody < 0
        assert outcome.p_cell_after < outcome.p_cell_before
        assert outcome.p_memory_after <= outcome.p_memory_before

    def test_repair_reduces_leakage_at_leaky_corner(self, pipeline):
        outcome = pipeline.repair(ProcessCorner(-0.09))
        assert outcome.leakage_after < outcome.leakage_before

    def test_fbb_raises_leakage_back_toward_nominal(self, pipeline):
        """FBB trades leakage for speed on a slow die: leakage goes up,
        toward (but not beyond a few x of) the nominal level."""
        outcome = pipeline.repair(ProcessCorner(0.09))
        assert outcome.leakage_after > outcome.leakage_before
        nominal = pipeline.array_leakage(ProcessCorner(0.0), 0.0).mean
        assert outcome.leakage_after < 5 * nominal

    def test_nominal_die_untouched(self, pipeline):
        outcome = pipeline.repair(ProcessCorner(0.0))
        assert outcome.vbody == 0.0
        assert outcome.p_cell_after == outcome.p_cell_before


class TestYields:
    def test_repaired_yield_dominates_zbb(self, pipeline):
        for sigma in (0.03, 0.05):
            dist = InterDieDistribution(sigma)
            zbb = pipeline.parametric_yield(dist, repaired=False)
            rep = pipeline.parametric_yield(dist, repaired=True)
            assert rep >= zbb - 0.02  # allow tiny integration noise

    def test_yield_decreases_with_sigma(self, pipeline):
        narrow = pipeline.parametric_yield(
            InterDieDistribution(0.02), repaired=False
        )
        wide = pipeline.parametric_yield(
            InterDieDistribution(0.06), repaired=False
        )
        assert wide < narrow

    def test_leakage_yield_improves_with_repair(self, pipeline):
        dist = InterDieDistribution(0.05)
        l_max = 2.0 * pipeline.array_leakage(ProcessCorner(0.0), 0.0).mean
        zbb = pipeline.leakage_yield(dist, l_max, repaired=False)
        rep = pipeline.leakage_yield(dist, l_max, repaired=True)
        assert rep > zbb

    def test_leakage_spread_compression(self, pipeline):
        """Repaired corner leakages sit closer to nominal than unbiased."""
        nominal = pipeline.array_leakage(ProcessCorner(0.0), 0.0).mean
        spread_zbb = []
        spread_rep = []
        for corner in (ProcessCorner(-0.09), ProcessCorner(0.09)):
            vbody = pipeline.decide_bias(corner)[0]
            spread_zbb.append(
                abs(np.log(pipeline.array_leakage(corner, 0.0).mean / nominal))
            )
            spread_rep.append(
                abs(np.log(pipeline.array_leakage(corner, vbody).mean / nominal))
            )
        assert sum(spread_rep) < sum(spread_zbb)
