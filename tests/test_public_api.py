"""Guard the public API surface: every documented export must exist."""

import importlib

import pytest

#: Package -> names its __all__ must expose.
EXPECTED = {
    "repro": [
        "predictive_70nm", "ProcessCorner", "InterDieDistribution",
        "CellGeometry", "SixTCell", "OperatingConditions",
        "ArrayOrganization", "FunctionalMemoryArray",
        "FailureCriteria", "calibrate_criteria", "CellFailureAnalyzer",
        "LeakageMonitor", "BodyBiasGenerator", "SelfRepairingSRAM",
        "SourceBiasDAC", "BISTController", "SelfAdaptiveSourceBias",
        "PostSiliconTuner", "LotSimulator", "LotReport", "MpfpEstimator",
        "ParallelExecutor", "ResultCache",
    ],
    "repro.parallel": [
        "ParallelExecutor", "ResultCache", "fingerprint", "spawn_seeds",
    ],
    "repro.technology": [
        "TechnologyParameters", "DeviceParameters", "predictive_70nm",
        "ProcessCorner", "RandomDopantFluctuation", "InterDieDistribution",
    ],
    "repro.devices": [
        "MOSFET", "make_nmos", "make_pmos", "subthreshold_leakage",
        "gate_leakage", "junction_leakage",
    ],
    "repro.circuit": [
        "Circuit", "Resistor", "Capacitor", "CurrentSource",
        "VoltageSource", "Diode", "MOSFETElement", "solve_dc",
        "solve_transient", "dc_sweep", "inverter_vtc",
        "switching_threshold", "ConvergenceError",
    ],
    "repro.sram": [
        "CellGeometry", "SixTCell", "sample_cell_dvt", "CellMetrics",
        "OperatingConditions", "compute_cell_metrics", "cell_leakage",
        "ArrayOrganization", "FunctionalMemoryArray", "cell_drv",
        "array_drv", "safe_standby_voltage", "RepairPlan",
        "allocate_columns", "allocate_rows_and_columns", "BitlineModel",
        "access_time", "read_cycle_time", "hold_snm", "read_snm",
        "butterfly_snm", "EightTCell", "EightTGeometry",
        "sample_eight_t", "eight_t_failure_probabilities",
    ],
    "repro.stats": [
        "probability_of", "MonteCarloResult", "weighted_quantile",
        "sobol_cell_dvt", "importance_sample_dvt", "lognormal_fit",
        "array_leakage_distribution", "expect_over_corners",
        "leakage_yield",
    ],
    "repro.failures": [
        "FailureCriteria", "calibrate_criteria", "CellFailureAnalyzer",
        "column_failure_probability", "memory_failure_probability",
        "parametric_yield", "MpfpEstimator", "MpfpResult",
    ],
    "repro.core": [
        "LeakageMonitor", "Comparator", "BodyBiasGenerator",
        "SelfRepairingSRAM", "MarchTest", "MATS_PLUS", "MARCH_X",
        "MARCH_CM", "MARCH_B", "SourceBiasDAC", "BISTController",
        "SelfAdaptiveSourceBias", "FailureProbabilityTable",
        "RingOscillator", "DelayMonitor", "CombinedMonitor",
        "PostSiliconTuner", "LotSimulator", "LotReport", "DieRecord",
    ],
    "repro.experiments": [
        "ExperimentContext", "default_context", "EXPERIMENTS",
        "EXTENSIONS", "run_experiment", "fig2a", "fig10", "ext_delay",
    ],
}


@pytest.mark.parametrize("package", sorted(EXPECTED))
def test_exports_exist(package):
    module = importlib.import_module(package)
    for name in EXPECTED[package]:
        assert hasattr(module, name), f"{package} is missing {name}"
        assert name in module.__all__, f"{name} not in {package}.__all__"


@pytest.mark.parametrize("package", sorted(EXPECTED))
def test_all_entries_resolve(package):
    """Everything a package advertises in __all__ must be importable."""
    module = importlib.import_module(package)
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (
            f"{package}.__all__ lists {name} but it does not resolve"
        )


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
