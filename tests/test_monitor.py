"""Tests for the leakage monitor and corner binning."""

import numpy as np
import pytest

from repro.core.monitor import Comparator, CornerBin, LeakageMonitor
from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.technology.corners import ProcessCorner


class TestComparator:
    def test_basic_compare(self):
        comparator = Comparator(vref=0.5)
        assert comparator.compare(0.6)
        assert not comparator.compare(0.4)

    def test_offset_shifts_decision(self):
        comparator = Comparator(vref=0.5, offset=0.2)
        assert not comparator.compare(0.6)
        assert comparator.compare(0.75)


class TestLeakageMonitor:
    def test_classification_bands(self):
        monitor = LeakageMonitor(
            r_sense=1e4, vref_low_vt=2.0, vref_high_vt=1.0
        )
        assert monitor.classify(3e-4) is CornerBin.LOW_VT   # vout = 3.0
        assert monitor.classify(1.5e-4) is CornerBin.NOMINAL
        assert monitor.classify(0.5e-4) is CornerBin.HIGH_VT

    def test_readout_contains_everything(self):
        monitor = LeakageMonitor(
            r_sense=1e4, vref_low_vt=2.0, vref_high_vt=1.0
        )
        readout = monitor.read(1.5e-4)
        assert readout.leakage == 1.5e-4
        assert readout.vout == pytest.approx(1.5)
        assert readout.bin is CornerBin.NOMINAL

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            LeakageMonitor(r_sense=1e4, vref_low_vt=1.0, vref_high_vt=2.0)
        with pytest.raises(ValueError):
            LeakageMonitor(r_sense=-1.0, vref_low_vt=2.0, vref_high_vt=1.0)

    def test_comparator_offset_moves_boundaries(self):
        plain = LeakageMonitor(1e4, 2.0, 1.0)
        offset = LeakageMonitor(1e4, 2.0, 1.0, comparator_offset=0.5)
        leakage = 2.2e-4  # vout = 2.2
        assert plain.classify(leakage) is CornerBin.LOW_VT
        assert offset.classify(leakage) is CornerBin.NOMINAL


class TestCalibratedMonitor:
    @pytest.fixture(scope="class")
    def monitor(self, tech, geometry):
        return LeakageMonitor.calibrate_references(
            tech, geometry, n_cells=8192, bin_boundary=0.035,
            n_samples=4000,
        )

    def test_reference_ordering(self, monitor):
        assert monitor.upper.vref > monitor.lower.vref

    def test_classifies_true_corner_leakage(self, tech, geometry, monitor):
        """Mean array leakage at clearly shifted corners bins correctly."""
        for dvt_inter, expected in (
            (-0.08, CornerBin.LOW_VT),
            (0.0, CornerBin.NOMINAL),
            (0.08, CornerBin.HIGH_VT),
        ):
            rng = np.random.default_rng(5)
            dvt = sample_cell_dvt(tech, geometry, rng, 4000)
            cell = SixTCell(tech, geometry, ProcessCorner(dvt_inter), dvt)
            mean_leakage = 8192 * float(np.mean(cell_leakage(cell).total))
            assert monitor.classify(mean_leakage) is expected

    def test_separation_under_intra_die_noise(self, tech, geometry, monitor):
        """Per-die array leakage (CLT draws) still bins reliably — the
        paper's Fig. 3 point: array-level monitoring beats cell-level."""
        from repro.stats.distributions import array_leakage_distribution

        rng = np.random.default_rng(17)
        misclassified = 0
        trials = 50
        for dvt_inter, expected in ((-0.08, CornerBin.LOW_VT),
                                    (0.08, CornerBin.HIGH_VT)):
            dvt = sample_cell_dvt(tech, geometry, rng, 4000)
            cell = SixTCell(tech, geometry, ProcessCorner(dvt_inter), dvt)
            dist = array_leakage_distribution(
                cell_leakage(cell).total, 8192
            )
            draws = dist.sample(rng, trials)
            for value in draws:
                if monitor.classify(float(value)) is not expected:
                    misclassified += 1
        assert misclassified == 0

    def test_invalid_cell_count(self, tech, geometry):
        with pytest.raises(ValueError):
            LeakageMonitor.calibrate_references(tech, geometry, n_cells=0)
