"""Tests for the MNA DC solver."""

import pytest

from repro.circuit import (
    Circuit,
    CurrentSource,
    Diode,
    MOSFETElement,
    Resistor,
    VoltageSource,
    solve_dc,
)
from repro.circuit.netlist import GROUND
from repro.devices import make_nmos, make_pmos


def test_resistor_divider():
    ckt = Circuit("divider")
    ckt.add(VoltageSource("vdd", GROUND, 1.2, name="VDD"))
    ckt.add(Resistor("vdd", "mid", 2e3))
    ckt.add(Resistor("mid", GROUND, 1e3))
    sol = solve_dc(ckt)
    assert sol["mid"] == pytest.approx(0.4, rel=1e-6)
    # Branch current flows out of the + terminal through the circuit.
    assert sol.branch_currents["VDD"] == pytest.approx(-1.2 / 3e3, rel=1e-6)


def test_current_source_into_resistor():
    ckt = Circuit("norton")
    ckt.add(CurrentSource(GROUND, "out", 1e-3))
    ckt.add(Resistor("out", GROUND, 1e3))
    sol = solve_dc(ckt)
    assert sol["out"] == pytest.approx(1.0, rel=1e-6)


def test_diode_clamp():
    ckt = Circuit("diode")
    ckt.add(VoltageSource("vin", GROUND, 5.0, name="VIN"))
    ckt.add(Resistor("vin", "out", 10e3))
    ckt.add(Diode("out", GROUND, saturation_current=1e-14))
    sol = solve_dc(ckt)
    # The diode clamps around 0.6-0.8 V.
    assert 0.5 < sol["out"] < 0.9


def test_nmos_inverter_logic_levels(tech):
    nmos = make_nmos(tech, width=200e-9)
    pmos = make_pmos(tech, width=200e-9)
    for vin, expect_high in ((0.0, True), (1.0, False)):
        ckt = Circuit("inv")
        ckt.add(VoltageSource("vdd", GROUND, 1.0, name="VDD"))
        ckt.add(VoltageSource("in", GROUND, vin, name="VIN"))
        ckt.add(MOSFETElement("in", "out", GROUND, GROUND, nmos, name="MN"))
        ckt.add(MOSFETElement("in", "out", "vdd", "vdd", pmos, name="MP"))
        sol = solve_dc(ckt, initial={"vdd": 1.0, "out": 0.5})
        if expect_high:
            assert sol["out"] > 0.95
        else:
            assert sol["out"] < 0.05


def test_kcl_residual_is_satisfied(tech):
    """Currents into every node of a solved nonlinear circuit sum to ~0."""
    nmos = make_nmos(tech, width=140e-9)
    ckt = Circuit("follower")
    ckt.add(VoltageSource("vdd", GROUND, 1.0, name="VDD"))
    ckt.add(MOSFETElement("vdd", "vdd", "out", GROUND, nmos, name="MN"))
    ckt.add(Resistor("out", GROUND, 1e6))
    sol = solve_dc(ckt)
    i_res = sol["out"] / 1e6
    i_mos = float(
        nmos.current(vg=1.0, vd=1.0, vs=sol["out"], vb=0.0)
    )
    assert i_mos == pytest.approx(i_res, rel=1e-3)


def test_empty_circuit_rejected():
    from repro.circuit.exceptions import CircuitError

    with pytest.raises(CircuitError):
        solve_dc(Circuit("empty"))


def test_bistable_latch_follows_initial_guess(tech):
    """A cross-coupled inverter pair settles to the seeded state."""
    nmos = make_nmos(tech, width=200e-9)
    pmos = make_pmos(tech, width=100e-9)
    ckt = Circuit("latch")
    ckt.add(VoltageSource("vdd", GROUND, 1.0, name="VDD"))
    ckt.add(MOSFETElement("r", "l", GROUND, GROUND, nmos, name="MNL"))
    ckt.add(MOSFETElement("r", "l", "vdd", "vdd", pmos, name="MPL"))
    ckt.add(MOSFETElement("l", "r", GROUND, GROUND, nmos, name="MNR"))
    ckt.add(MOSFETElement("l", "r", "vdd", "vdd", pmos, name="MPR"))
    sol = solve_dc(ckt, initial={"vdd": 1.0, "l": 1.0, "r": 0.0})
    assert sol["l"] > 0.9 and sol["r"] < 0.1
    sol = solve_dc(ckt, initial={"vdd": 1.0, "l": 0.0, "r": 1.0})
    assert sol["l"] < 0.1 and sol["r"] > 0.9


def test_time_dependent_source_evaluated_at_t():
    ckt = Circuit("ramp")
    ckt.add(VoltageSource("in", GROUND, lambda t: 2.0 * t, name="VIN"))
    ckt.add(Resistor("in", GROUND, 1e3))
    sol = solve_dc(ckt, t=0.25)
    assert sol["in"] == pytest.approx(0.5, rel=1e-9)
