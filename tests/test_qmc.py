"""Tests for the Sobol quasi-Monte-Carlo sampler."""

import numpy as np
import pytest

from repro.sram.cell import TRANSISTORS, SixTCell, cell_sigma_vt, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.stats.qmc import sobol_cell_dvt
from repro.technology.corners import ProcessCorner


def test_structure_and_marginals(tech, geometry):
    dvt = sobol_cell_dvt(tech, geometry, 4096, seed=3)
    sigmas = cell_sigma_vt(tech, geometry)
    assert set(dvt) == set(TRANSISTORS)
    for name in TRANSISTORS:
        assert dvt[name].shape == (4096,)
        assert np.std(dvt[name]) == pytest.approx(sigmas[name], rel=0.03)
        assert abs(np.mean(dvt[name])) < 0.1 * sigmas[name]


def test_size_not_power_of_two(tech, geometry):
    dvt = sobol_cell_dvt(tech, geometry, 1000, seed=1)
    assert dvt["nl"].shape == (1000,)


def test_invalid_size(tech, geometry):
    with pytest.raises(ValueError):
        sobol_cell_dvt(tech, geometry, 0)


def test_qmc_beats_mc_on_smooth_statistic(tech, geometry):
    """Mean cell leakage: Sobol error << independent-sampling error.

    The reference is a large independent-MC estimate; at n = 1024 the
    Sobol estimate should land several times closer to it than the
    typical plain-MC estimate of the same size.
    """
    def mean_leakage(dvt) -> float:
        cell = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        return float(np.mean(cell_leakage(cell).total))

    reference = mean_leakage(
        sample_cell_dvt(tech, geometry, np.random.default_rng(0), 400_000)
    )
    n = 1024
    qmc_errors = [
        abs(mean_leakage(sobol_cell_dvt(tech, geometry, n, seed=s))
            - reference)
        for s in range(8)
    ]
    mc_errors = [
        abs(mean_leakage(
            sample_cell_dvt(tech, geometry, np.random.default_rng(100 + s), n)
        ) - reference)
        for s in range(8)
    ]
    assert np.mean(qmc_errors) < 0.5 * np.mean(mc_errors)


def test_deterministic_given_seed(tech, geometry):
    a = sobol_cell_dvt(tech, geometry, 256, seed=9)
    b = sobol_cell_dvt(tech, geometry, 256, seed=9)
    for name in TRANSISTORS:
        np.testing.assert_array_equal(a[name], b[name])
