"""Tests for the cooperative-cancellation primitives.

The :class:`~repro.cancellation.CancelToken` is the safe-point stop
mechanism the service's ``DELETE /v1/jobs/{id}`` and ``deadline_s``
ride on; these tests pin its semantics (idempotent cancel, injectable
clock for deadlines, explicit-cancel-wins) and the ambient contextvar
plumbing that lets checkpoint code poll without threading a token
through every signature.
"""

from __future__ import annotations

import threading

import pytest

from repro import cancellation
from repro.cancellation import (
    CancelledError,
    CancelToken,
    DeadlineExceeded,
    JobCancelled,
)


class TestCancelToken:
    def test_inert_by_default(self):
        token = CancelToken()
        assert not token.cancelled
        assert not token.expired
        token.check()  # no raise

    def test_cancel_raises_at_check(self):
        token = CancelToken()
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        with pytest.raises(JobCancelled) as excinfo:
            token.check()
        assert excinfo.value.code == "cancelled"
        assert isinstance(excinfo.value, CancelledError)

    def test_deadline_expiry_with_injected_clock(self):
        now = [100.0]
        token = CancelToken(clock=lambda: now[0])
        token.set_deadline(5.0)
        token.check()  # 100.0 < 105.0
        now[0] = 104.999
        assert not token.expired
        now[0] = 105.0
        assert token.expired
        with pytest.raises(DeadlineExceeded) as excinfo:
            token.check()
        assert excinfo.value.code == "deadline-exceeded"

    def test_set_deadline_replaces_previous(self):
        now = [0.0]
        token = CancelToken(clock=lambda: now[0])
        token.set_deadline(1.0)
        token.set_deadline(10.0)
        now[0] = 5.0
        token.check()  # the rearmed deadline governs

    def test_explicit_cancel_wins_over_expiry(self):
        token = CancelToken(clock=lambda: 10.0)
        token.set_deadline(-1.0)  # already expired
        token.cancel()
        with pytest.raises(JobCancelled):
            token.check()

    def test_cancel_from_another_thread(self):
        token = CancelToken()
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join(timeout=10)
        with pytest.raises(JobCancelled):
            token.check()


class TestAmbientToken:
    def test_no_token_is_a_no_op(self):
        assert cancellation.current() is None
        cancellation.check_active()  # never raises outside a job scope

    def test_active_installs_and_restores(self):
        token = CancelToken()
        with cancellation.active(token) as installed:
            assert installed is token
            assert cancellation.current() is token
            cancellation.check_active()
        assert cancellation.current() is None

    def test_check_active_raises_for_the_installed_token(self):
        token = CancelToken()
        token.cancel()
        with cancellation.active(token):
            with pytest.raises(JobCancelled):
                cancellation.check_active()
        cancellation.check_active()  # token uninstalled again

    def test_nested_scopes_restore_outer(self):
        outer, inner = CancelToken(), CancelToken()
        with cancellation.active(outer):
            with cancellation.active(inner):
                assert cancellation.current() is inner
            assert cancellation.current() is outer

    def test_wire_codes_are_stable(self):
        # The service maps these 1:1 onto HTTP error payloads.
        assert JobCancelled("x").code == "cancelled"
        assert DeadlineExceeded("x").code == "deadline-exceeded"
