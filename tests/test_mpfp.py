"""Tests for the FORM / most-probable-failure-point estimator."""

import numpy as np
import pytest

from repro.failures.analysis import CellFailureAnalyzer
from repro.failures.mpfp import MpfpEstimator
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def estimator():
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(
        target=1e-3, calibration_samples=8_000, analysis_samples=6_000,
        seed=99,
    )
    return ctx, MpfpEstimator(
        ctx.tech, ctx.criteria, ctx.geometry, ctx.conditions
    )


@pytest.mark.parametrize("mechanism", ["read", "write", "access"])
def test_form_matches_monte_carlo(estimator, mechanism):
    """FORM beta agrees with the importance-sampled probability.

    The calibration puts each mechanism at ~1e-3 (beta ~ 3.1); FORM is
    first-order, so agreement within a factor ~2 in probability (a few
    tenths of a sigma in beta) is the expected accuracy.
    """
    ctx, mpfp = estimator
    result = mpfp.find_mpfp(mechanism)
    analyzer = CellFailureAnalyzer(
        ctx.tech, ctx.criteria, ctx.geometry, ctx.conditions,
        n_samples=40_000, scale=1.5, seed=13,
    )
    mc = analyzer.failure_probabilities(ProcessCorner(0.0))[mechanism]
    assert result.converged
    assert 2.0 < result.beta < 4.5
    from scipy.stats import norm

    beta_mc = float(norm.isf(max(mc.estimate, 1e-12)))
    assert result.beta == pytest.approx(beta_mc, abs=0.45)


def test_mpfp_identifies_the_failing_transistors(estimator):
    """Read failures are driven by the right-side divider devices."""
    _, mpfp = estimator
    result = mpfp.find_mpfp("read")
    dominant = set(result.dominant_transistors(3))
    # The read disturb is set by AXR (stronger => worse, so negative z)
    # and NR (weaker => worse, positive z), with the PL/NL trip point
    # also participating.
    assert dominant & {"axr", "nr"}
    assert result.z["nr"] > 0 or result.z["axr"] < 0


def test_beta_shrinks_at_the_hostile_corner(estimator):
    """Moving toward the low-Vt corner brings the read MPFP closer."""
    _, mpfp = estimator
    nominal = mpfp.find_mpfp("read", ProcessCorner(0.0))
    hostile = mpfp.find_mpfp("read", ProcessCorner(-0.05))
    assert hostile.beta < nominal.beta


def test_failing_origin_reports_negative_beta(estimator):
    """Deep in region A even the nominal cell fails: beta <= 0."""
    _, mpfp = estimator
    result = mpfp.find_mpfp("read", ProcessCorner(-0.15))
    assert result.probability > 0.5


def test_unknown_mechanism_rejected(estimator):
    _, mpfp = estimator
    with pytest.raises(KeyError):
        mpfp.find_mpfp("latchup")


def test_hold_is_explicitly_unsupported(estimator):
    """The hold limit state is a bistability cliff — FORM refuses."""
    _, mpfp = estimator
    with pytest.raises(KeyError, match="bistability"):
        mpfp.find_mpfp("hold")
