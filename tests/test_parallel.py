"""Tests for the parallel execution engine and the result cache.

Covers the determinism contract (``workers=N`` bit-identical to
``workers=1``), warm-vs-cold cache equality, and fingerprint
invalidation when the technology card or criteria change.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.context import ExperimentContext
from repro.parallel import ParallelExecutor, ResultCache, fingerprint, spawn_seeds
from repro.technology.corners import ProcessCorner

#: Cheap context parameters shared by every cache/determinism test.
CTX_PARAMS = dict(
    target=1e-2,
    calibration_samples=3_000,
    analysis_samples=1_500,
    table_grid=5,
    seed=7,
)


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _draw(seed_seq):
    """One deterministic draw from a task-embedded seed."""
    return float(np.random.default_rng(seed_seq).normal())


class TestExecutor:
    def test_serial_map_preserves_order(self):
        assert ParallelExecutor(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        tasks = list(range(20))
        serial = ParallelExecutor(1).map(_square, tasks)
        parallel = ParallelExecutor(2).map(_square, tasks)
        assert serial == parallel

    def test_seeded_tasks_identical_at_any_worker_count(self):
        seeds = spawn_seeds(42, 8)
        serial = ParallelExecutor(1).map(_draw, seeds)
        parallel = ParallelExecutor(3).map(_draw, spawn_seeds(42, 8))
        assert serial == parallel

    def test_spawn_seeds_stable_and_distinct(self):
        a = [_draw(s) for s in spawn_seeds(5, 4)]
        b = [_draw(s) for s in spawn_seeds(5, 4)]
        assert a == b
        assert len(set(a)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_workers_clamp_to_cores(self):
        import os

        executor = ParallelExecutor(10_000)
        assert executor.workers <= (os.cpu_count() or 1)
        assert executor.requested_workers == 10_000
        assert not executor.is_serial

    def test_executor_is_picklable(self):
        import pickle

        executor = pickle.loads(pickle.dumps(ParallelExecutor(4)))
        assert executor.requested_workers == 4


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"a": 1, "b": [1.0, 2.0]}
        assert cache.get("thing", key) is None
        cache.put("thing", key, {"value": 3.5})
        assert cache.get("thing", key) == {"value": 3.5}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_different_key_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("thing", {"a": 1}, {"v": 1})
        assert cache.get("thing", {"a": 2}) is None
        assert cache.get("other", {"a": 1}) is None

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("thing", {"a": 1}, {"v": 1})
        path.write_text("{not json")
        assert cache.get("thing", {"a": 1}) is None

    def test_cache_dir_collides_with_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(NotADirectoryError):
            ResultCache(target)

    def test_fingerprint_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})
        assert fingerprint({"x": np.float64(1.5)}) == fingerprint({"x": 1.5})


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(**CTX_PARAMS)

    def test_batch_matches_pointwise(self, ctx):
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.06, 0.0, 0.06)]
        batch = analyzer.failure_probabilities_batch(corners)
        for corner, probs in zip(corners, batch):
            assert probs.as_dict() == analyzer.failure_probabilities(corner).as_dict()

    def test_batch_identical_across_workers(self, ctx):
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.05, 0.0, 0.05)]
        serial = analyzer.failure_probabilities_batch(corners)
        parallel = analyzer.failure_probabilities_batch(
            corners, executor=ParallelExecutor(4)
        )
        for s, p in zip(serial, parallel):
            assert s.as_dict() == p.as_dict()

    def test_hold_batch_identical_across_workers(self, ctx):
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.05, 0.05)]
        conditions = [ctx.asb_conditions(0.2), ctx.asb_conditions(0.4)]
        serial = analyzer.hold_failure_probability_batch(corners, conditions)
        parallel = analyzer.hold_failure_probability_batch(
            corners, conditions, executor=ParallelExecutor(2)
        )
        assert [r.estimate for r in serial] == [r.estimate for r in parallel]

    def test_batch_length_mismatch_rejected(self, ctx):
        analyzer = ctx.analyzer()
        with pytest.raises(ValueError):
            analyzer.failure_probabilities_batch(
                [ProcessCorner(0.0)], [None, None]
            )
        with pytest.raises(ValueError):
            analyzer.hold_failure_probability_batch(
                [ProcessCorner(0.0)], [None, None]
            )

    def test_parallel_table_matches_serial(self, ctx):
        serial = ExperimentContext(**CTX_PARAMS)
        parallel = ExperimentContext(**CTX_PARAMS, workers=2)
        for dvt in (-0.07, 0.0, 0.07):
            assert serial.table().probability(dvt) == parallel.table().probability(dvt)


class TestDiskCache:
    def test_warm_table_equals_cold(self, tmp_path):
        cold = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        cold_table = cold.table(0.0)
        assert cold.result_cache.hits == 0

        warm = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        warm_table = warm.table(0.0)
        assert warm.result_cache.hits >= 2  # criteria + table
        for dvt in (-0.07, -0.02, 0.0, 0.05):
            for mechanism in ("read", "write", "access", "hold", "any"):
                assert warm_table.probability(dvt, mechanism) == cold_table.probability(
                    dvt, mechanism
                )

    def test_technology_change_invalidates(self, tmp_path):
        base = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        base.table(0.0)
        tweaked_tech = dataclasses.replace(base.tech, vdd=base.tech.vdd * 1.01)
        tweaked = ExperimentContext(tech=tweaked_tech, **CTX_PARAMS,
                                    cache_dir=tmp_path)
        tweaked.table(0.0)
        assert tweaked.result_cache.hits == 0
        assert tweaked.result_cache.misses >= 2

    def test_criteria_change_invalidates(self, tmp_path):
        params = dict(CTX_PARAMS)
        base = ExperimentContext(**params, cache_dir=tmp_path)
        base.table(0.0)
        params["target"] = 3e-2
        retargeted = ExperimentContext(**params, cache_dir=tmp_path)
        retargeted.table(0.0)
        assert retargeted.result_cache.hits == 0

    def test_cached_criteria_skip_recalibration(self, tmp_path, monkeypatch):
        first = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        calibrated = first.criteria

        import repro.experiments.context as context_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("calibration ran despite a warm cache")

        monkeypatch.setattr(context_module, "calibrate_criteria", boom)
        second = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        assert second.criteria == calibrated

    def test_configure_execution_after_creation(self, tmp_path):
        ctx = ExperimentContext(**CTX_PARAMS)
        assert ctx.workers == 1 and ctx.result_cache is None
        ctx.configure_execution(workers=2, cache_dir=tmp_path)
        assert ctx.workers == 2
        ctx.table(0.0)
        assert ctx.result_cache.misses >= 1
        warm = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        warm.table(0.0)
        assert warm.result_cache.hits >= 2
