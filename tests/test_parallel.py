"""Tests for the parallel execution engine and the result cache.

Covers the determinism contract (``workers=N`` bit-identical to
``workers=1``), warm-vs-cold cache equality, fingerprint invalidation
when the technology card or criteria change, and the fault-tolerance
layer: retries, pool recovery, serial degradation, quarantined cache
entries, and the crash-then-retry bit-identity property.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.context import ExperimentContext
from repro.faults import FaultPlan, FaultSpec
from repro.parallel import (
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    TaskError,
    TaskFailure,
    fingerprint,
    spawn_seeds,
)
from repro.technology.corners import ProcessCorner

#: Cheap context parameters shared by every cache/determinism test.
CTX_PARAMS = dict(
    target=1e-2,
    calibration_samples=3_000,
    analysis_samples=1_500,
    table_grid=5,
    seed=7,
)


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _draw(seed_seq):
    """One deterministic draw from a task-embedded seed."""
    return float(np.random.default_rng(seed_seq).normal())


class TestExecutor:
    def test_serial_map_preserves_order(self):
        assert ParallelExecutor(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        tasks = list(range(20))
        serial = ParallelExecutor(1).map(_square, tasks)
        parallel = ParallelExecutor(2).map(_square, tasks)
        assert serial == parallel

    def test_seeded_tasks_identical_at_any_worker_count(self):
        seeds = spawn_seeds(42, 8)
        serial = ParallelExecutor(1).map(_draw, seeds)
        parallel = ParallelExecutor(3).map(_draw, spawn_seeds(42, 8))
        assert serial == parallel

    def test_spawn_seeds_stable_and_distinct(self):
        a = [_draw(s) for s in spawn_seeds(5, 4)]
        b = [_draw(s) for s in spawn_seeds(5, 4)]
        assert a == b
        assert len(set(a)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_workers_clamp_to_cores(self):
        import os

        executor = ParallelExecutor(10_000)
        assert executor.workers <= (os.cpu_count() or 1)
        assert executor.requested_workers == 10_000
        assert not executor.is_serial

    def test_executor_is_picklable(self):
        import pickle

        executor = pickle.loads(pickle.dumps(ParallelExecutor(4)))
        assert executor.requested_workers == 4


#: A fast-failing retry policy so resilience tests don't sleep.
_FAST_RETRY = RetryPolicy(backoff_base=0.001, backoff_max=0.01)


class TestExecutorResilience:
    def test_inline_crash_retries_and_succeeds(self):
        plan = FaultPlan(
            [FaultSpec(kind="worker_crash", task_index=1, times=1)]
        )
        executor = ParallelExecutor(1, retry=_FAST_RETRY, fault_plan=plan)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.retries == 1
        assert executor.task_failures == 0

    def test_inline_exhausted_retries_raise_task_error(self):
        plan = FaultPlan(
            [FaultSpec(kind="worker_crash", task_index=0, times=5)]
        )
        retry = RetryPolicy(max_attempts=2, backoff_base=0.001)
        executor = ParallelExecutor(1, retry=retry, fault_plan=plan)
        with pytest.raises(TaskError, match="task 0 gave up"):
            executor.map(_square, [1, 2])
        assert executor.task_failures == 1

    def test_return_failures_keeps_survivors(self):
        plan = FaultPlan(
            [FaultSpec(kind="worker_crash", task_index=1, times=5)]
        )
        retry = RetryPolicy(max_attempts=2, backoff_base=0.001)
        executor = ParallelExecutor(1, retry=retry, fault_plan=plan)
        results = executor.map(_square, [1, 2, 3], return_failures=True)
        assert results[0] == 1 and results[2] == 9
        assert isinstance(results[1], TaskFailure)
        assert results[1].index == 1
        assert results[1].attempts == 2

    def test_pool_worker_crash_recovers(self):
        plan = FaultPlan([FaultSpec(kind="worker_crash", times=1)])
        executor = ParallelExecutor(2, retry=_FAST_RETRY, fault_plan=plan)
        assert executor.map(_square, list(range(8))) == [
            i * i for i in range(8)
        ]
        assert executor.pool_respawns == 1
        assert executor.retries >= 1
        assert executor.task_failures == 0

    def test_pool_hang_times_out_and_recovers(self):
        plan = FaultPlan(
            [FaultSpec(kind="task_hang", task_index=0, seconds=5.0, times=1)]
        )
        retry = RetryPolicy(timeout=1.0, backoff_base=0.001)
        executor = ParallelExecutor(2, retry=retry, fault_plan=plan)
        assert executor.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert executor.retries >= 1
        assert executor.task_failures == 0

    def test_second_pool_break_degrades_to_serial(self):
        # Task 0's first two attempts crash a worker; the pool breaks
        # twice, so the survivors must finish on the inline path.
        plan = FaultPlan(
            [
                FaultSpec(kind="worker_crash", task_index=0, times=1),
                FaultSpec(kind="worker_crash", task_index=0, times=1),
            ]
        )
        executor = ParallelExecutor(2, retry=_FAST_RETRY, fault_plan=plan)
        assert executor.map(_square, list(range(6))) == [
            i * i for i in range(6)
        ]
        assert executor.pool_respawns == 1
        assert executor.serial_degrades == 1
        assert executor.task_failures == 0

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.backoff_delay(3, 1) == policy.backoff_delay(3, 1)
        assert policy.backoff_delay(3, 1) != policy.backoff_delay(4, 1)
        assert policy.backoff_delay(3, 2) <= policy.backoff_max * 1.5

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"a": 1, "b": [1.0, 2.0]}
        assert cache.get("thing", key) is None
        cache.put("thing", key, {"value": 3.5})
        assert cache.get("thing", key) == {"value": 3.5}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_different_key_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("thing", {"a": 1}, {"v": 1})
        assert cache.get("thing", {"a": 2}) is None
        assert cache.get("other", {"a": 1}) is None

    def test_corrupt_file_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("thing", {"a": 1}, {"v": 1})
        path.write_text("{not json")
        assert cache.get("thing", {"a": 1}) is None

    def test_truncated_entry_is_quarantined_miss(self, tmp_path):
        # Regression: a hand-truncated entry (simulating a torn write
        # or disk-full crash) must degrade to a counted miss and be
        # moved aside, never raise or serve partial data.
        cache = ResultCache(tmp_path)
        path = cache.put("thing", {"a": 1}, {"v": 1})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get("thing", {"a": 1}) is None
        assert cache.quarantined == 1
        assert cache.misses == 1
        assert list(tmp_path.glob("*.corrupt-1"))
        # The slot is reusable: a fresh put serves again.
        cache.put("thing", {"a": 1}, {"v": 2})
        assert cache.get("thing", {"a": 1}) == {"v": 2}

    def test_tampered_value_is_quarantined_miss(self, tmp_path):
        # Valid JSON whose body no longer matches its checksum.
        import json

        cache = ResultCache(tmp_path)
        path = cache.put("thing", {"a": 1}, {"v": 1})
        stored = json.loads(path.read_text())
        stored["value"]["v"] = 999
        path.write_text(json.dumps(stored))
        assert cache.get("thing", {"a": 1}) is None
        assert cache.quarantined == 1

    def test_unversioned_legacy_entry_is_quarantined(self, tmp_path):
        # A pre-checksum (format 1) file cannot be verified: miss.
        import json

        cache = ResultCache(tmp_path)
        path = cache.put("thing", {"a": 1}, {"v": 1})
        stored = json.loads(path.read_text())
        stored["format"] = 1
        path.write_text(json.dumps(stored))
        assert cache.get("thing", {"a": 1}) is None
        assert cache.quarantined == 1

    def test_cache_dir_collides_with_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(NotADirectoryError):
            ResultCache(target)

    def test_fingerprint_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})
        assert fingerprint({"x": np.float64(1.5)}) == fingerprint({"x": 1.5})


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(**CTX_PARAMS)

    def test_batch_matches_pointwise(self, ctx):
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.06, 0.0, 0.06)]
        batch = analyzer.failure_probabilities_batch(corners)
        for corner, probs in zip(corners, batch):
            assert probs.as_dict() == analyzer.failure_probabilities(corner).as_dict()

    def test_batch_identical_across_workers(self, ctx):
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.05, 0.0, 0.05)]
        serial = analyzer.failure_probabilities_batch(corners)
        parallel = analyzer.failure_probabilities_batch(
            corners, executor=ParallelExecutor(4)
        )
        for s, p in zip(serial, parallel):
            assert s.as_dict() == p.as_dict()

    def test_hold_batch_identical_across_workers(self, ctx):
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.05, 0.05)]
        conditions = [ctx.asb_conditions(0.2), ctx.asb_conditions(0.4)]
        serial = analyzer.hold_failure_probability_batch(corners, conditions)
        parallel = analyzer.hold_failure_probability_batch(
            corners, conditions, executor=ParallelExecutor(2)
        )
        assert [r.estimate for r in serial] == [r.estimate for r in parallel]

    def test_batch_length_mismatch_rejected(self, ctx):
        analyzer = ctx.analyzer()
        with pytest.raises(ValueError):
            analyzer.failure_probabilities_batch(
                [ProcessCorner(0.0)], [None, None]
            )
        with pytest.raises(ValueError):
            analyzer.hold_failure_probability_batch(
                [ProcessCorner(0.0)], [None, None]
            )

    def test_crash_then_retry_bit_identical_to_serial(self, ctx):
        # The headline robustness property: a 4-worker run that loses a
        # worker mid-sweep (crash injected, task retried on the
        # respawned pool) produces *bit-identical* estimates to a
        # serial, fault-free run — retries recompute from the same
        # task-embedded seeds.
        analyzer = ctx.analyzer()
        corners = [ProcessCorner(x) for x in (-0.06, -0.02, 0.02, 0.06)]
        serial = analyzer.failure_probabilities_batch(corners)
        chaotic = ParallelExecutor(
            4,
            retry=_FAST_RETRY,
            fault_plan=FaultPlan([FaultSpec(kind="worker_crash", times=1)]),
        )
        recovered = analyzer.failure_probabilities_batch(
            corners, executor=chaotic
        )
        assert chaotic.retries >= 1
        assert chaotic.task_failures == 0
        for s, p in zip(serial, recovered):
            assert s.as_dict() == p.as_dict()

    def test_parallel_table_matches_serial(self, ctx):
        serial = ExperimentContext(**CTX_PARAMS)
        parallel = ExperimentContext(**CTX_PARAMS, workers=2)
        for dvt in (-0.07, 0.0, 0.07):
            assert serial.table().probability(dvt) == parallel.table().probability(dvt)


class TestCheckpointedBuilds:
    def test_checkpointed_table_matches_plain(self, tmp_path):
        plain = ExperimentContext(**CTX_PARAMS).table(0.0)
        ctx = ExperimentContext(
            **CTX_PARAMS, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        table = ctx.table(0.0)
        for dvt in (-0.07, 0.0, 0.07):
            for mechanism in ("read", "write", "access", "hold", "any"):
                assert table.probability(dvt, mechanism) == plain.probability(
                    dvt, mechanism
                )
        # Build completed: the checkpoint was cleared.
        assert not list(tmp_path.glob("*.ckpt.json"))

    def test_partial_checkpoint_resumes_without_recompute(self, tmp_path):
        # Build once with clearing disabled so the finished checkpoint
        # survives, then rebuild: every cell must come from the file.
        ctx = ExperimentContext(
            **CTX_PARAMS, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        store = ctx.checkpoint_store
        store.clear = lambda *a, **k: None
        reference = ctx.table(0.0)

        resumed_ctx = ExperimentContext(
            **CTX_PARAMS, checkpoint_dir=tmp_path, checkpoint_every=2
        )

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("recomputed despite a full checkpoint")

        analyzer_factory = resumed_ctx.analyzer

        def patched_analyzer(*args, **kwargs):
            analyzer = analyzer_factory(*args, **kwargs)
            analyzer.failure_probabilities_batch = boom
            return analyzer

        resumed_ctx.analyzer = patched_analyzer
        resumed = resumed_ctx.table(0.0)
        for dvt in (-0.07, 0.0, 0.07):
            assert resumed.probability(dvt) == reference.probability(dvt)


class TestDiskCache:
    def test_warm_table_equals_cold(self, tmp_path):
        cold = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        cold_table = cold.table(0.0)
        assert cold.result_cache.hits == 0

        warm = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        warm_table = warm.table(0.0)
        assert warm.result_cache.hits >= 2  # criteria + table
        for dvt in (-0.07, -0.02, 0.0, 0.05):
            for mechanism in ("read", "write", "access", "hold", "any"):
                assert warm_table.probability(dvt, mechanism) == cold_table.probability(
                    dvt, mechanism
                )

    def test_technology_change_invalidates(self, tmp_path):
        base = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        base.table(0.0)
        tweaked_tech = dataclasses.replace(base.tech, vdd=base.tech.vdd * 1.01)
        tweaked = ExperimentContext(tech=tweaked_tech, **CTX_PARAMS,
                                    cache_dir=tmp_path)
        tweaked.table(0.0)
        assert tweaked.result_cache.hits == 0
        assert tweaked.result_cache.misses >= 2

    def test_criteria_change_invalidates(self, tmp_path):
        params = dict(CTX_PARAMS)
        base = ExperimentContext(**params, cache_dir=tmp_path)
        base.table(0.0)
        params["target"] = 3e-2
        retargeted = ExperimentContext(**params, cache_dir=tmp_path)
        retargeted.table(0.0)
        assert retargeted.result_cache.hits == 0

    def test_cached_criteria_skip_recalibration(self, tmp_path, monkeypatch):
        first = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        calibrated = first.criteria

        import repro.experiments.context as context_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("calibration ran despite a warm cache")

        monkeypatch.setattr(context_module, "calibrate_criteria", boom)
        second = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        assert second.criteria == calibrated

    def test_configure_execution_after_creation(self, tmp_path):
        ctx = ExperimentContext(**CTX_PARAMS)
        assert ctx.workers == 1 and ctx.result_cache is None
        ctx.configure_execution(workers=2, cache_dir=tmp_path)
        assert ctx.workers == 2
        ctx.table(0.0)
        assert ctx.result_cache.misses >= 1
        warm = ExperimentContext(**CTX_PARAMS, cache_dir=tmp_path)
        warm.table(0.0)
        assert warm.result_cache.hits >= 2
