"""Tests for ``repro.observability.diagnostics``: intervals, weight
health, the convergence recorder, and the diagnostics the stats stack
attaches to its results."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import observability
from repro.observability.diagnostics import (
    BatchDiagnostics,
    DiagnosticThresholds,
    DiagnosticsRecorder,
    assess,
    clopper_pearson_interval,
    summarize,
    weight_diagnostics,
    wilson_interval,
)
from repro.stats.montecarlo import MonteCarloResult, probability_of


@pytest.fixture(autouse=True)
def clean_observability():
    observability.disable()
    observability.reset()
    observability.diagnostics.recorder.configure(DiagnosticThresholds())
    yield
    observability.disable()
    observability.reset()
    observability.diagnostics.recorder.configure(DiagnosticThresholds())


# ----------------------------------------------------------------------
# Interval estimators
# ----------------------------------------------------------------------
class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high
        assert 0.0 <= low and high <= 1.0

    def test_zero_information_is_uninformative(self):
        # No samples constrain nothing: the interval must be [0, 1],
        # never NaN (satellite: N = 0 draws is well-defined).
        for n in (0, -1, float("nan"), float("inf")):
            assert wilson_interval(0, n) == (0.0, 1.0)

    def test_zero_successes_still_bounds_above(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert 0.0 < high < 0.01  # rule-of-three scale: ~3.8/n

    def test_all_successes_still_bounds_below(self):
        low, high = wilson_interval(1000, 1000)
        assert high == 1.0
        assert 0.99 < low < 1.0

    def test_fractional_effective_counts_accepted(self):
        # Evaluated at an ESS: fractional successes and n are legal.
        low, high = wilson_interval(2.5, 17.3)
        assert 0.0 <= low < 2.5 / 17.3 < high <= 1.0

    def test_narrows_with_n(self):
        widths = [
            np.diff(wilson_interval(n // 10, n))[0]
            for n in (100, 10_000, 1_000_000)
        ]
        assert widths[0] > widths[1] > widths[2]

    def test_rejects_nonpositive_z(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 10, z=0.0)


class TestClopperPearson:
    def test_exact_interval_covers_wilson_point(self):
        low, high = clopper_pearson_interval(30, 100)
        assert low < 0.3 < high

    def test_conservative_vs_wilson(self):
        # Exact interval is at least as wide as the score interval.
        w_low, w_high = wilson_interval(3, 50)
        c_low, c_high = clopper_pearson_interval(3, 50)
        assert c_high - c_low >= w_high - w_low - 1e-12

    def test_edges_are_closed_form(self):
        assert clopper_pearson_interval(0, 10)[0] == 0.0
        assert clopper_pearson_interval(10, 10)[1] == 1.0
        assert clopper_pearson_interval(0, 0) == (0.0, 1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            clopper_pearson_interval(1, 10, alpha=1.5)


# ----------------------------------------------------------------------
# Weight health (satellite: IS edge cases are well-defined, never NaN)
# ----------------------------------------------------------------------
class TestWeightDiagnostics:
    def test_uniform_weights_are_plain_mc(self):
        health = weight_diagnostics(np.ones(500))
        assert health.n_draws == 500
        assert health.ess == pytest.approx(500.0)
        assert health.ess_ratio == pytest.approx(1.0)
        assert health.max_weight_fraction == pytest.approx(1 / 500)

    def test_zero_draws(self):
        health = weight_diagnostics(np.array([]))
        assert (health.n_draws, health.ess, health.ess_ratio,
                health.max_weight_fraction) == (0, 0.0, 0.0, 0.0)

    def test_all_zero_weights(self):
        health = weight_diagnostics(np.zeros(100))
        assert health.ess == 0.0
        assert health.ess_ratio == 0.0
        assert health.max_weight_fraction == 0.0
        assert all(
            math.isfinite(v)
            for v in (health.ess, health.ess_ratio,
                      health.max_weight_fraction)
        )

    def test_single_dominant_weight(self):
        weights = np.full(1000, 1e-12)
        weights[3] = 1.0
        health = weight_diagnostics(weights)
        assert health.ess == pytest.approx(1.0, rel=1e-6)
        assert health.max_weight_fraction == pytest.approx(1.0, rel=1e-6)

    def test_nonfinite_total_degrades_gracefully(self):
        health = weight_diagnostics(np.array([1.0, np.inf]))
        assert health.ess == 0.0


# ----------------------------------------------------------------------
# MonteCarloResult diagnostic surface
# ----------------------------------------------------------------------
class TestResultDiagnostics:
    def test_unweighted_estimate_carries_ci_and_ess(self):
        indicator = np.zeros(1000, dtype=bool)
        indicator[:100] = True
        result = probability_of(indicator)
        assert result.ess == 1000.0
        assert result.ess_ratio == pytest.approx(1.0)
        assert result.ci_low < 0.1 < result.ci_high
        assert result.ci_halfwidth == pytest.approx(
            0.5 * (result.ci_high - result.ci_low)
        )
        assert result.max_weight_fraction == pytest.approx(1e-3)

    def test_weighted_ci_evaluated_at_ess(self):
        rng = np.random.default_rng(5)
        indicator = rng.random(4000) < 0.2
        skewed = np.exp(rng.normal(0, 1.5, 4000))
        result = probability_of(indicator, weights=skewed)
        assert 0 < result.ess < 4000
        # The interval at n_eff = ESS is wider than the raw-n interval.
        raw_low, raw_high = wilson_interval(
            result.estimate * 4000, 4000.0
        )
        assert (result.ci_high - result.ci_low) > (raw_high - raw_low)

    def test_collapsed_weights_report_uninformative_ci(self):
        indicator = np.ones(50, dtype=bool)
        result = probability_of(indicator, weights=np.zeros(50))
        assert result.ess == 0.0
        assert (result.ci_low, result.ci_high) == (0.0, 1.0)
        assert not math.isnan(result.estimate)

    def test_from_binomial(self):
        result = MonteCarloResult.from_binomial(7, 10)
        assert result.estimate == pytest.approx(0.7)
        assert result.ess == 10.0
        assert result.ci_low < 0.7 < result.ci_high

    def test_from_binomial_zero_trials(self):
        result = MonteCarloResult.from_binomial(0, 0)
        assert result.estimate == 0.0
        assert result.ess == 0.0
        assert (result.ci_low, result.ci_high) == (0.0, 1.0)

    def test_from_binomial_rejects_negative_n(self):
        with pytest.raises(ValueError):
            MonteCarloResult.from_binomial(0, -1)

    def test_legacy_results_have_no_diagnostics(self):
        # Positional construction (old call sites, old pickles) still
        # works and reports "no diagnostics" rather than lying.
        legacy = MonteCarloResult(0.5, 0.01, 100)
        assert legacy.ess is None
        assert legacy.ci_halfwidth is None
        assert legacy.ess_ratio is None


# ----------------------------------------------------------------------
# Thresholds and assessment
# ----------------------------------------------------------------------
class TestAssess:
    def test_converged_estimate_passes(self):
        result = MonteCarloResult.from_binomial(500, 10_000)
        assert assess(result, DiagnosticThresholds()) == []

    def test_low_ess_flagged(self):
        result = MonteCarloResult.from_binomial(5, 50)
        reasons = assess(result, DiagnosticThresholds(min_ess=200.0))
        assert len(reasons) == 1 and "ess" in reasons[0]

    def test_wide_ci_flagged_when_ceiling_set(self):
        result = MonteCarloResult.from_binomial(5, 10)
        thresholds = DiagnosticThresholds(
            min_ess=1.0, max_ci_halfwidth=1e-3
        )
        reasons = assess(result, thresholds)
        assert len(reasons) == 1 and "half-width" in reasons[0]

    def test_result_without_diagnostics_passes(self):
        assert assess(MonteCarloResult(0.5, 0.1, 3),
                      DiagnosticThresholds()) == []


class TestSummarize:
    def test_batch_summary(self):
        results = [
            MonteCarloResult.from_binomial(500, 10_000),
            MonteCarloResult.from_binomial(5, 50),  # ess 50 < 200
        ]
        batch = summarize(results, DiagnosticThresholds())
        assert batch.n_estimates == 2
        assert batch.unconverged == 1
        assert batch.min_ess == 50.0
        assert batch.worst_ci_halfwidth == pytest.approx(
            max(r.ci_halfwidth for r in results)
        )

    def test_round_trips_through_dict(self):
        batch = summarize([MonteCarloResult.from_binomial(1, 10)],
                          DiagnosticThresholds())
        assert BatchDiagnostics.from_dict(batch.as_dict()) == batch

    def test_empty_batch(self):
        batch = summarize([], DiagnosticThresholds())
        assert batch.n_estimates == 0
        assert batch.worst_ci_halfwidth is None


# ----------------------------------------------------------------------
# The recorder: scopes, thresholds, snapshot, merge
# ----------------------------------------------------------------------
class TestRecorder:
    def test_scope_aggregates_worst_case(self):
        recorder = DiagnosticsRecorder()
        recorder.record("a", MonteCarloResult.from_binomial(500, 10_000))
        recorder.record("a", MonteCarloResult.from_binomial(5, 1_000))
        snap = recorder.snapshot()
        scope = snap["scopes"]["a"]
        assert scope["n_estimates"] == 2
        assert scope["min_ess"] == 1_000.0
        assert scope["converged"]
        assert snap["unconverged_scopes"] == []

    def test_unconverged_scope_flagged(self):
        recorder = DiagnosticsRecorder()
        recorder.configure(DiagnosticThresholds(min_ess=200.0))
        recorder.record("weak", MonteCarloResult.from_binomial(1, 20))
        assert list(recorder.unconverged()) == ["weak"]
        snap = recorder.snapshot()
        assert snap["unconverged_scopes"] == ["weak"]
        assert not snap["scopes"]["weak"]["converged"]

    def test_merge_recomputes_against_local_thresholds(self):
        # A worker with lax thresholds cannot launder a weak estimate
        # past a stricter parent: verdicts are recomputed on merge.
        worker = DiagnosticsRecorder()
        worker.configure(DiagnosticThresholds(min_ess=1.0))
        worker.record("s", MonteCarloResult.from_binomial(1, 20))
        assert worker.snapshot()["unconverged_scopes"] == []

        parent = DiagnosticsRecorder()
        parent.configure(DiagnosticThresholds(min_ess=200.0))
        parent.merge(worker.snapshot())
        assert parent.snapshot()["unconverged_scopes"] == ["s"]

    def test_merge_combines_aggregates(self):
        a = DiagnosticsRecorder()
        a.record("s", MonteCarloResult.from_binomial(50, 1_000))
        b = DiagnosticsRecorder()
        b.record("s", MonteCarloResult.from_binomial(5, 500))
        a.merge(b.snapshot())
        scope = a.snapshot()["scopes"]["s"]
        assert scope["n_estimates"] == 2
        assert scope["min_ess"] == 500.0

    def test_reset_keeps_thresholds(self):
        recorder = DiagnosticsRecorder()
        recorder.configure(DiagnosticThresholds(min_ess=7.0))
        recorder.record("s", MonteCarloResult.from_binomial(1, 10))
        recorder.reset()
        assert recorder.snapshot()["scopes"] == {}
        assert recorder.thresholds.min_ess == 7.0

    def test_record_batch_restores_stored_health(self):
        # A cache-restored table re-records its persisted summary, so
        # a warm run's verdict matches the cold run that built it.
        recorder = DiagnosticsRecorder()
        stored = BatchDiagnostics(
            n_estimates=45, unconverged=0,
            worst_ci_halfwidth=0.04, min_ess=640.2, min_ess_ratio=0.08,
        )
        recorder.record_batch("table[vbody=+0.000]", stored)
        scope = recorder.snapshot()["scopes"]["table[vbody=+0.000]"]
        assert scope["n_estimates"] == 45
        assert scope["min_ess"] == 640.2
        assert scope["max_ci_halfwidth"] == 0.04
        assert scope["converged"]

        weak = BatchDiagnostics(
            n_estimates=5, unconverged=5,
            worst_ci_halfwidth=0.5, min_ess=4.0, min_ess_ratio=0.04,
        )
        recorder.record_batch("hold_table", weak)
        assert "hold_table" in recorder.snapshot()["unconverged_scopes"]

    def test_module_record_batch_is_noop_while_disabled(self):
        from repro.observability import diagnostics as diag

        batch = BatchDiagnostics(1, 0, 0.1, 10.0, 0.1)
        diag.record_batch("off", batch)
        assert diag.recorder.snapshot()["scopes"] == {}
        observability.enable()
        diag.record_batch("on", None)  # None batch is also a no-op
        diag.record_batch("on", batch)
        assert diag.recorder.snapshot()["scopes"]["on"]["n_estimates"] == 1

    def test_module_record_is_noop_while_disabled(self):
        from repro.observability import diagnostics as diag

        diag.record("off", MonteCarloResult.from_binomial(1, 10))
        assert diag.recorder.snapshot()["scopes"] == {}
        observability.enable()
        diag.record("on", MonteCarloResult.from_binomial(1, 10))
        assert "on" in diag.recorder.snapshot()["scopes"]


# ----------------------------------------------------------------------
# Integration: the snapshot and the worker boundary
# ----------------------------------------------------------------------
class TestSnapshotIntegration:
    def test_telemetry_snapshot_has_diagnostics_block(self):
        observability.enable()
        from repro.observability import diagnostics as diag

        diag.record("scope", MonteCarloResult.from_binomial(500, 10_000))
        report = observability.snapshot()
        assert report["schema"] == "repro.telemetry/1"
        block = report["diagnostics"]
        assert "scope" in block["scopes"]
        assert block["thresholds"]["min_ess"] == pytest.approx(
            diag.recorder.thresholds.min_ess
        )

    def test_worker_snapshot_round_trip(self):
        from repro.observability import diagnostics as diag

        # Worker side: isolated scope, one estimate, shipped snapshot.
        observability.worker_begin()
        diag.record("worker.scope", MonteCarloResult.from_binomial(9, 900))
        shipped = observability.worker_snapshot()
        assert "worker.scope" in shipped["diagnostics"]["scopes"]
        # Parent side: fresh collectors absorb the shipped delta.
        observability.reset()
        observability.enable()
        observability.merge_worker(shipped)
        merged = diag.recorder.snapshot()["scopes"]
        assert "worker.scope" in merged
        assert merged["worker.scope"]["n_estimates"] == 1

    def test_analysis_records_per_mechanism_scopes(self):
        # The failure-analysis layer feeds the recorder one scope per
        # mechanism when collection is on.
        observability.enable()
        from repro.observability import diagnostics as diag
        from repro.experiments.context import ExperimentContext
        from repro.technology.corners import ProcessCorner

        ctx = ExperimentContext(
            target=1e-4,
            calibration_samples=1_500,
            analysis_samples=800,
            table_grid=3,
        )
        analyzer = ctx.analyzer()
        analyzer.failure_probabilities(ProcessCorner(0.0))
        scopes = diag.recorder.snapshot()["scopes"]
        assert any(name.startswith("analysis.") for name in scopes)
        named = next(s for n, s in scopes.items()
                     if n.startswith("analysis."))
        assert named["min_ess"] is not None
        assert named["max_ci_halfwidth"] is not None
