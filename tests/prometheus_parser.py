"""A strict, minimal parser for the Prometheus text exposition format.

The test suite round-trips :func:`repro.observability.export.render_prometheus`
output through this parser, and the CI ``scrape-smoke`` step feeds it a
live ``GET /v1/metrics`` page.  It deliberately implements only the
subset the renderer emits (version 0.0.4: ``# HELP`` / ``# TYPE``
comments, optionally-labelled samples, ``NaN`` / ``+Inf`` / ``-Inf``
values) and raises :class:`ExpositionError` on anything malformed —
a lenient parser would defeat the point of the round-trip check.

Not a repro package module on purpose: the exposition *writer* ships in
``repro.observability.export``; keeping the only reader out-of-tree
guarantees the rendered text is validated against an independent
reading of the spec, not against the writer's own assumptions.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = frozenset({"counter", "gauge", "summary", "histogram", "untyped"})


class ExpositionError(ValueError):
    """The text violates the exposition format."""


@dataclass
class Family:
    """One metric family: its declared type/help and its samples."""

    name: str
    type: str | None = None
    help: str | None = None
    #: ``(sample_name, labels, value)`` in page order.  For summaries the
    #: sample name may be ``<name>_sum`` / ``<name>_count``.
    samples: list[tuple[str, dict, float]] = field(default_factory=list)

    def value(
        self, suffix: str = "", labels: dict | None = None
    ) -> float:
        """The single sample matching ``name+suffix`` and ``labels``."""
        wanted = labels or {}
        matches = [
            v
            for (n, l, v) in self.samples
            if n == self.name + suffix and l == wanted
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} samples match {self.name + suffix}"
                f"{wanted or ''}"
            )
        return matches[0]


def _parse_value(token: str, lineno: int) -> float:
    if token == "NaN":
        return math.nan
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        raise ExpositionError(
            f"line {lineno}: unparseable sample value {token!r}"
        ) from None


def _parse_labels(block: str, lineno: int) -> dict:
    """Parse the ``k="v",...`` inside one ``{...}`` label block."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(block):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', block[i:])
        if not match:
            raise ExpositionError(
                f"line {lineno}: malformed label block at {block[i:]!r}"
            )
        name = match.group(1)
        i += match.end()
        value_chars: list[str] = []
        while True:
            if i >= len(block):
                raise ExpositionError(
                    f"line {lineno}: unterminated label value"
                )
            ch = block[i]
            if ch == "\\":
                if i + 1 >= len(block):
                    raise ExpositionError(
                        f"line {lineno}: dangling escape in label value"
                    )
                esc = block[i + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise ExpositionError(
                        f"line {lineno}: bad escape \\{esc} in label value"
                    )
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            value_chars.append(ch)
            i += 1
        if name in labels:
            raise ExpositionError(
                f"line {lineno}: duplicate label {name!r}"
            )
        labels[name] = "".join(value_chars)
        if i < len(block):
            if block[i] != ",":
                raise ExpositionError(
                    f"line {lineno}: expected ',' between labels, "
                    f"got {block[i]!r}"
                )
            i += 1
    return labels


def _family_of(sample_name: str, families: dict[str, Family]) -> str:
    """Resolve ``_sum`` / ``_count`` samples onto their summary family."""
    for suffix in ("_sum", "_count"):
        base = sample_name.removesuffix(suffix)
        if base != sample_name and base in families and families[
            base
        ].type in ("summary", "histogram"):
            return base
    return sample_name


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse an exposition page into ``{family_name: Family}``.

    Raises :class:`ExpositionError` on: illegal metric or label names,
    unknown ``# TYPE`` values, a second ``# TYPE`` for the same family,
    unparseable values, malformed label blocks, or two samples with the
    same name *and* labels.
    """
    families: dict[str, Family] = {}
    seen_samples: set[tuple[str, tuple]] = set()

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                kind, name = parts[1], parts[2]
                rest = parts[3] if len(parts) > 3 else ""
                if not _NAME_RE.match(name):
                    raise ExpositionError(
                        f"line {lineno}: illegal metric name {name!r}"
                    )
                family = families.setdefault(name, Family(name))
                if kind == "TYPE":
                    if rest not in _TYPES:
                        raise ExpositionError(
                            f"line {lineno}: unknown type {rest!r}"
                        )
                    if family.type is not None:
                        raise ExpositionError(
                            f"line {lineno}: duplicate TYPE for {name!r}"
                        )
                    if family.samples:
                        raise ExpositionError(
                            f"line {lineno}: TYPE for {name!r} after its "
                            "samples"
                        )
                    family.type = rest
                else:
                    family.help = rest
            continue  # other comments (keepalives, skip notices) ignored

        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                         r"(\s+-?\d+)?$", line)
        if not match:
            raise ExpositionError(
                f"line {lineno}: malformed sample line {line!r}"
            )
        sample_name = match.group(1)
        labels = (
            _parse_labels(match.group(3), lineno)
            if match.group(2) and match.group(3)
            else {}
        )
        for label_name in labels:
            if not _LABEL_NAME_RE.match(label_name):
                raise ExpositionError(
                    f"line {lineno}: illegal label name {label_name!r}"
                )
        value = _parse_value(match.group(4), lineno)
        key = (sample_name, tuple(sorted(labels.items())))
        if key in seen_samples:
            raise ExpositionError(
                f"line {lineno}: duplicate sample {sample_name}{labels}"
            )
        seen_samples.add(key)
        family_name = _family_of(sample_name, families)
        family = families.setdefault(family_name, Family(family_name))
        family.samples.append((sample_name, labels, value))

    return families
