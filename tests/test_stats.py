"""Tests for the statistics package."""

import numpy as np
import pytest

from repro.stats.distributions import (
    NormalDistribution,
    array_leakage_distribution,
    lognormal_fit,
    normal_cdf,
)
from repro.stats.integration import dense_expectation, expect_over_corners
from repro.stats.montecarlo import (
    MonteCarloResult,
    probability_of,
    weighted_quantile,
)
from repro.stats.yield_model import leakage_yield, parametric_yield_from_pfail
from repro.technology.variation import InterDieDistribution


class TestProbabilityOf:
    def test_unweighted_estimate(self):
        indicator = np.array([True] * 25 + [False] * 75)
        result = probability_of(indicator)
        assert result.estimate == pytest.approx(0.25)
        assert result.stderr == pytest.approx(
            np.sqrt(0.25 * 0.75 / 100)
        )

    def test_weighted_estimate(self):
        indicator = np.array([True, False, True, False])
        weights = np.array([2.0, 1.0, 0.5, 0.5])
        result = probability_of(indicator, weights)
        assert result.estimate == pytest.approx(2.5 / 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            probability_of(np.array([], dtype=bool))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            probability_of(np.array([True, False]), np.array([1.0]))

    def test_within_helper(self):
        a = MonteCarloResult(0.10, 0.01, 100)
        b = MonteCarloResult(0.12, 0.01, 100)
        assert a.within(b, n_sigma=3.0)
        c = MonteCarloResult(0.50, 0.01, 100)
        assert not a.within(c, n_sigma=3.0)

    def test_relative_error(self):
        assert MonteCarloResult(0.0, 0.1, 10).relative_error == float("inf")
        assert MonteCarloResult(0.5, 0.05, 10).relative_error == pytest.approx(0.1)


class TestWeightedQuantile:
    def test_uniform_weights_match_plain_quantile(self, rng):
        values = rng.normal(size=20_001)
        weights = np.ones_like(values)
        for q in (0.1, 0.5, 0.9):
            assert weighted_quantile(values, weights, q) == pytest.approx(
                np.quantile(values, q), abs=0.02
            )

    def test_importance_weights_recover_target_quantile(self, rng):
        """Samples from N(0,2) weighted back to N(0,1) quantiles."""
        scale = 2.0
        x = rng.normal(0.0, scale, size=400_000)
        log_w = np.log(scale) - 0.5 * x * x * (1.0 - 1.0 / scale**2)
        w = np.exp(log_w)
        from scipy.stats import norm

        for q in (0.001, 0.01, 0.5):
            assert weighted_quantile(x, w, q) == pytest.approx(
                norm.ppf(q), abs=0.03
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0]), np.array([1.0]), 1.5)
        with pytest.raises(ValueError):
            weighted_quantile(np.array([]), np.array([]), 0.5)
        with pytest.raises(ValueError):
            weighted_quantile(np.array([1.0, 2.0]), np.array([1.0]), 0.5)

    def test_zero_total_weight_rejected(self):
        # An all-zero weight batch (every importance sample missed the
        # target region) carries no distributional information — it
        # must raise, not silently divide by zero.
        values = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="positive total weight"):
            weighted_quantile(values, np.zeros(3), 0.5)
        with pytest.raises(ValueError, match="positive total weight"):
            weighted_quantile(values, np.array([1.0, -1.0, 0.0]), 0.5)
        with pytest.raises(ValueError, match="positive total weight"):
            weighted_quantile(values, np.array([np.nan, 1.0, 1.0]), 0.5)

    def test_single_sample(self):
        # Any quantile of one weighted sample is that sample.
        for q in (0.01, 0.5, 0.99):
            assert weighted_quantile(
                np.array([4.2]), np.array([0.3]), q
            ) == 4.2


class TestFromBinomial:
    def test_zero_trials_is_uninformative(self):
        result = MonteCarloResult.from_binomial(0, 0)
        assert result.estimate == 0.0
        assert result.stderr == float("inf")
        assert result.ess == 0.0
        assert (result.ci_low, result.ci_high) == (0.0, 1.0)

    def test_all_failures(self):
        result = MonteCarloResult.from_binomial(50, 50)
        assert result.estimate == 1.0
        assert result.stderr == 0.0
        # The Wilson interval stays strictly inside [0, 1) below and
        # pins the upper bound — 50/50 is still not proof of p = 1.
        assert 0.9 < result.ci_low < 1.0
        assert result.ci_high == pytest.approx(1.0)

    def test_single_sample(self):
        result = MonteCarloResult.from_binomial(1, 1)
        assert result.estimate == 1.0
        assert result.ess == 1.0
        assert result.max_weight_fraction == 1.0
        # One observation leaves the interval nearly uninformative.
        assert result.ci_low < 0.6
        assert result.ci_high == pytest.approx(1.0)

    def test_matches_unweighted_probability_of(self):
        indicator = np.array([True] * 7 + [False] * 93)
        via_counts = MonteCarloResult.from_binomial(7, 100)
        via_samples = probability_of(indicator)
        assert via_counts.estimate == via_samples.estimate
        assert via_counts.stderr == via_samples.stderr
        assert via_counts.ci_low == via_samples.ci_low
        assert via_counts.ci_high == via_samples.ci_high

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloResult.from_binomial(0, -1)


class TestDistributions:
    def test_lognormal_fit_roundtrip(self, rng):
        samples = rng.lognormal(mean=-18.0, sigma=0.8, size=100_000)
        fit = lognormal_fit(samples)
        assert fit.mu == pytest.approx(-18.0, abs=0.02)
        assert fit.sigma == pytest.approx(0.8, rel=0.02)
        assert fit.mean == pytest.approx(np.mean(samples), rel=0.05)
        assert fit.std == pytest.approx(np.std(samples), rel=0.10)

    def test_lognormal_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lognormal_fit(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            lognormal_fit(np.array([]))

    def test_array_distribution_clt_scaling(self, rng):
        cells = rng.lognormal(-18.0, 0.8, size=50_000)
        n = 1024
        dist = array_leakage_distribution(cells, n)
        assert dist.mean == pytest.approx(n * cells.mean(), rel=1e-9)
        assert dist.std == pytest.approx(
            np.sqrt(n) * cells.std(ddof=1), rel=1e-9
        )

    def test_array_distribution_matches_explicit_sums(self, rng):
        """The CLT Gaussian agrees with brute-force array sums."""
        cells = rng.lognormal(-18.0, 0.8, size=200_000)
        n = 2000
        dist = array_leakage_distribution(cells[:50_000], n)
        sums = cells[: (200_000 // n) * n].reshape(-1, n).sum(axis=1)
        assert sums.mean() == pytest.approx(dist.mean, rel=0.02)
        assert sums.std() == pytest.approx(dist.std, rel=0.25)

    def test_normal_distribution_cdf(self):
        dist = NormalDistribution(1.0, 0.5)
        assert dist.cdf(1.0) == pytest.approx(0.5)
        assert dist.cdf(2.0) == pytest.approx(float(normal_cdf(2.0)))

    def test_zero_std_cdf_is_step(self):
        dist = NormalDistribution(1.0, 0.0)
        assert float(dist.cdf(0.5)) == 0.0
        assert float(dist.cdf(1.5)) == 1.0


class TestIntegration:
    def test_expectation_of_polynomial(self):
        dist = InterDieDistribution(sigma=0.05)
        value = expect_over_corners(
            dist, lambda c: c.dvt_inter**2, order=15
        )
        assert value == pytest.approx(0.05**2, rel=1e-8)

    def test_zero_sigma_shortcut(self):
        dist = InterDieDistribution(sigma=0.0, mean=0.02)
        value = expect_over_corners(dist, lambda c: c.dvt_inter * 10)
        assert value == pytest.approx(0.2)

    def test_dense_matches_quadrature_on_smooth_function(self):
        dist = InterDieDistribution(sigma=0.04)
        f = lambda c: np.exp(-((c.dvt_inter / 0.05) ** 2))
        smooth = expect_over_corners(dist, f, order=31)
        dense = dense_expectation(dist, f, n_points=161)
        assert dense == pytest.approx(smooth, rel=1e-3)

    def test_dense_handles_step_function_better(self):
        """A step policy: dense integration nails the mass split."""
        dist = InterDieDistribution(sigma=0.05)
        step = lambda c: 1.0 if c.dvt_inter > 0 else 0.0
        dense = dense_expectation(dist, step, n_points=401)
        assert dense == pytest.approx(0.5, abs=0.01)


class TestYieldModel:
    def test_leakage_yield_with_constant_distribution(self):
        from repro.stats.distributions import NormalDistribution

        dist = InterDieDistribution(sigma=0.03)
        array_leakage = lambda c: NormalDistribution(
            1e-3 * np.exp(-c.dvt_inter / 0.05), 1e-5
        )
        y_loose = leakage_yield(dist, array_leakage, l_max=1e-1)
        y_tight = leakage_yield(dist, array_leakage, l_max=1e-3)
        assert y_loose == pytest.approx(1.0, abs=1e-6)
        assert 0.3 < y_tight < 0.7

    def test_leakage_yield_rejects_nonpositive_bound(self):
        dist = InterDieDistribution(sigma=0.03)
        with pytest.raises(ValueError):
            leakage_yield(dist, lambda c: None, l_max=0.0)

    def test_parametric_yield_passthrough(self):
        dist = InterDieDistribution(sigma=0.05)
        yield_value = parametric_yield_from_pfail(
            dist, lambda c: 0.25
        )
        assert yield_value == pytest.approx(0.75)
