"""Tests for the cell leakage decomposition and array sampling."""

import numpy as np
import pytest

from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage, sample_array_leakage
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def nominal_cell():
    from repro.sram.cell import CellGeometry
    from repro.technology import predictive_70nm

    return SixTCell(predictive_70nm(), CellGeometry(), ProcessCorner(0.0))


class TestComponents:
    def test_all_components_positive(self, nominal_cell):
        breakdown = cell_leakage(nominal_cell)
        assert float(breakdown.subthreshold[0]) > 0
        assert float(breakdown.gate[0]) > 0
        assert float(breakdown.junction[0]) > 0
        assert float(breakdown.total[0]) == pytest.approx(
            float(breakdown.subthreshold[0] + breakdown.gate[0]
                  + breakdown.junction[0])
        )

    def test_nominal_magnitude_na_range(self, nominal_cell):
        """Nominal cell leakage sits in the Fig. 3a nA decade."""
        total = float(cell_leakage(nominal_cell).total[0])
        assert 1e-9 < total < 1e-7

    def test_rbb_cuts_subthreshold_raises_junction(self, nominal_cell):
        zbb = cell_leakage(nominal_cell, vbody_n=0.0)
        rbb = cell_leakage(nominal_cell, vbody_n=-0.4)
        assert float(rbb.subthreshold[0]) < float(zbb.subthreshold[0])
        assert float(rbb.junction[0]) > float(zbb.junction[0])

    def test_fbb_raises_subthreshold(self, nominal_cell):
        zbb = cell_leakage(nominal_cell, vbody_n=0.0)
        fbb = cell_leakage(nominal_cell, vbody_n=0.4)
        assert float(fbb.subthreshold[0]) > float(zbb.subthreshold[0])

    def test_gate_leakage_insensitive_to_body_bias(self, nominal_cell):
        zbb = float(cell_leakage(nominal_cell, vbody_n=0.0).gate[0])
        rbb = float(cell_leakage(nominal_cell, vbody_n=-0.4).gate[0])
        assert rbb == pytest.approx(zbb)

    def test_total_has_interior_minimum_vs_body_bias(self, nominal_cell):
        """Fig. 5a: the total is minimised at a moderate RBB."""
        vbody = np.linspace(-0.6, 0.4, 21)
        totals = np.array(
            [float(cell_leakage(nominal_cell, vbody_n=v).total[0])
             for v in vbody]
        )
        best = vbody[np.argmin(totals)]
        assert -0.55 < best < -0.05
        assert totals[0] > totals.min()
        assert totals[-1] > totals.min()

    def test_source_bias_suppresses_leakage(self, nominal_cell):
        unbiased = float(cell_leakage(nominal_cell, vsb=0.0).total[0])
        biased = float(cell_leakage(nominal_cell, vsb=0.3).total[0])
        assert biased < 0.5 * unbiased

    def test_low_vt_corner_leaks_more(self, nominal_cell):
        leaky = nominal_cell.at_corner(ProcessCorner(-0.1))
        assert float(cell_leakage(leaky).total[0]) > 3 * float(
            cell_leakage(nominal_cell).total[0]
        )

    def test_scaled_helper(self, nominal_cell):
        breakdown = cell_leakage(nominal_cell)
        doubled = breakdown.scaled(2.0)
        assert float(doubled.total[0]) == pytest.approx(
            2 * float(breakdown.total[0])
        )


class TestPopulationStatistics:
    def test_lognormal_shape(self, tech, geometry, rng):
        """Cell leakage under RDF is heavily right-skewed (lognormal-ish)."""
        dvt = sample_cell_dvt(tech, geometry, rng, 20_000)
        cell = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        totals = cell_leakage(cell).total
        # The total is a sum of three lognormal-ish paths, so the skew is
        # diluted but still clearly positive.
        assert np.mean(totals) > 1.05 * np.median(totals)
        from scipy.stats import skew

        assert skew(totals) > 1.0

    def test_array_sampling_clt(self, tech, geometry, rng):
        """Array sums concentrate: relative sigma shrinks ~ 1/sqrt(N)."""
        template = SixTCell(tech, geometry, ProcessCorner(0.0))
        arrays = sample_array_leakage(template, cells_per_array=2048,
                                      n_arrays=100, rng=rng)
        rel_sigma = arrays.std() / arrays.mean()
        # Single-cell relative sigma is O(1); the array's should be tiny.
        assert rel_sigma < 0.05

    def test_array_sampling_validation(self, tech, geometry, rng):
        template = SixTCell(tech, geometry)
        with pytest.raises(ValueError):
            sample_array_leakage(template, 0, 10, rng)

    def test_chunking_is_equivalent(self, tech, geometry):
        """Chunked and unchunked sampling agree statistically."""
        template = SixTCell(tech, geometry, ProcessCorner(0.0))
        a = sample_array_leakage(
            template, 512, 40, np.random.default_rng(4), chunk_cells=4000
        )
        b = sample_array_leakage(
            template, 512, 40, np.random.default_rng(5), chunk_cells=100_000
        )
        assert a.mean() == pytest.approx(b.mean(), rel=0.02)
