"""Property-based tests (hypothesis) on core physical invariants.

These lock in the *monotonicities* everything else rests on: the device
model, the cell solvers, the statistics.  Each property is checked over
randomly drawn (but bounded, physical) parameter ranges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import make_nmos, make_pmos
from repro.failures.memory import (
    column_failure_probability,
    memory_failure_probability,
)
from repro.sram.array import ArrayOrganization
from repro.sram.cell import CellGeometry, SixTCell
from repro.sram.solver import (
    bisect_monotone,
    solve_read_node,
    solve_write_time,
)
from repro.stats.montecarlo import weighted_quantile
from repro.technology import predictive_70nm
from repro.technology.corners import ProcessCorner

TECH = predictive_70nm()

voltages = st.floats(min_value=0.0, max_value=1.2)
biases = st.floats(min_value=-0.4, max_value=0.4)
shifts = st.floats(min_value=-0.12, max_value=0.12)
widths = st.floats(min_value=80e-9, max_value=500e-9)


class TestDeviceProperties:
    @given(vg=voltages, vd=voltages, vb=biases)
    @settings(max_examples=60, deadline=None)
    def test_nmos_current_sign_follows_vds(self, vg, vd, vb):
        """Channel current is zero at vds=0 and has the sign of vds."""
        nmos = make_nmos(TECH, width=200e-9)
        i = float(nmos.current(vg=vg, vd=vd, vs=0.0, vb=vb))
        if vd > 1e-9:
            assert i > 0
        elif vd < -1e-9:
            assert i < 0

    @given(vg=voltages, vb=biases)
    @settings(max_examples=40, deadline=None)
    def test_current_monotone_in_vd(self, vg, vb):
        nmos = make_nmos(TECH, width=200e-9)
        vd = np.linspace(0.0, 1.2, 25)
        i = nmos.current(vg=vg, vd=vd, vs=0.0, vb=vb)
        assert np.all(np.diff(i) >= -1e-18)

    @given(vd=st.floats(min_value=0.05, max_value=1.2), vb=biases)
    @settings(max_examples=40, deadline=None)
    def test_current_monotone_in_vg(self, vd, vb):
        nmos = make_nmos(TECH, width=140e-9)
        vg = np.linspace(-0.2, 1.2, 25)
        i = nmos.current(vg=vg, vd=vd, vs=0.0, vb=vb)
        assert np.all(np.diff(i) > 0)

    @given(dvt=shifts, vsb=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=40, deadline=None)
    def test_off_current_decreases_with_vth(self, dvt, vsb):
        base = make_nmos(TECH, width=200e-9, dvt=dvt)
        higher = make_nmos(TECH, width=200e-9, dvt=dvt + 0.02)
        assert float(higher.subthreshold_current(1.0, vsb)) < float(
            base.subthreshold_current(1.0, vsb)
        )

    @given(w=widths)
    @settings(max_examples=30, deadline=None)
    def test_current_proportional_to_width(self, w):
        narrow = make_pmos(TECH, width=w)
        wide = make_pmos(TECH, width=2 * w)
        ratio = float(wide.on_current(1.0)) / float(narrow.on_current(1.0))
        assert ratio == pytest.approx(2.0, rel=1e-9)


class TestSolverProperties:
    @given(targets=st.lists(
        st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=8
    ))
    @settings(max_examples=40, deadline=None)
    def test_bisection_solves_affine_families(self, targets):
        arr = np.array(targets)
        roots = bisect_monotone(lambda v: arr - v, 0.0, 1.0, arr.shape)
        np.testing.assert_allclose(roots, arr, atol=1e-7)

    @given(dvt_ax=st.floats(min_value=-0.08, max_value=0.08))
    @settings(max_examples=20, deadline=None)
    def test_stronger_access_raises_v_read(self, dvt_ax):
        """Lowering only the access transistor's Vt raises the disturb."""
        base = {k: np.array([0.0]) for k in
                ("pl", "pr", "nl", "nr", "axl", "axr")}
        weaker = dict(base)
        weaker["axr"] = np.array([dvt_ax])
        geometry = CellGeometry()
        cell_a = SixTCell(TECH, geometry, ProcessCorner(0.0), base)
        cell_b = SixTCell(TECH, geometry, ProcessCorner(0.0), weaker)
        v_a = float(np.atleast_1d(solve_read_node(cell_a, 1.0))[0])
        v_b = float(np.atleast_1d(solve_read_node(cell_b, 1.0))[0])
        if dvt_ax < -1e-4:
            assert v_b > v_a  # stronger access -> bigger disturb
        elif dvt_ax > 1e-4:
            assert v_b < v_a

    @given(shift=st.floats(min_value=0.0, max_value=0.1))
    @settings(max_examples=15, deadline=None)
    def test_write_time_monotone_in_corner(self, shift):
        geometry = CellGeometry()
        fast = SixTCell(TECH, geometry, ProcessCorner(0.0))
        slow = SixTCell(TECH, geometry, ProcessCorner(shift))
        t_fast = float(np.atleast_1d(solve_write_time(fast, 1.0))[0])
        t_slow = float(np.atleast_1d(solve_write_time(slow, 1.0))[0])
        assert t_slow >= t_fast


class TestStatisticsProperties:
    @given(
        p=st.floats(min_value=1e-9, max_value=0.5),
        rows=st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=60, deadline=None)
    def test_column_probability_bounds(self, p, rows):
        p_col = float(column_failure_probability(p, rows))
        assert p <= p_col + 1e-15
        assert p_col <= min(1.0, rows * p) + 1e-12

    @given(
        p=st.floats(min_value=1e-8, max_value=0.2),
        redundancy=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_memory_probability_monotone_in_redundancy(self, p, redundancy):
        a = ArrayOrganization(rows=64, columns=128,
                              redundant_columns=redundancy)
        b = ArrayOrganization(rows=64, columns=128,
                              redundant_columns=redundancy + 1)
        assert memory_failure_probability(p, b) <= \
            memory_failure_probability(p, a) + 1e-15

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=2, max_size=50
        ),
        q=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_quantile_is_a_sample_value(self, values, q):
        arr = np.array(values)
        w = np.ones_like(arr)
        result = weighted_quantile(arr, w, q)
        assert result in arr

    @given(
        q1=st.floats(min_value=0.05, max_value=0.45),
        q2=st.floats(min_value=0.55, max_value=0.95),
    )
    @settings(max_examples=30, deadline=None)
    def test_weighted_quantile_monotone_in_q(self, q1, q2):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        w = rng.uniform(0.5, 2.0, size=1000)
        assert weighted_quantile(values, w, q1) <= weighted_quantile(
            values, w, q2
        )


class TestEccProperties:
    @given(
        data=st.lists(st.integers(min_value=0, max_value=1),
                      min_size=64, max_size=64),
        position=st.integers(min_value=0, max_value=71),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_flip_is_corrected(self, data, position):
        from repro.sram.ecc import HammingSecDed

        code = HammingSecDed(64)
        word = code.encode(np.array(data, dtype=np.uint8))
        corrupted = word.copy()
        corrupted[position] ^= 1
        decoded = code.decode(corrupted[None, :])
        np.testing.assert_array_equal(decoded.data[0], data)
        assert not decoded.detected[0]

    @given(
        data=st.lists(st.integers(min_value=0, max_value=1),
                      min_size=64, max_size=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_clean_words_pass_untouched(self, data):
        from repro.sram.ecc import HammingSecDed

        code = HammingSecDed(64)
        word = code.encode(np.array(data, dtype=np.uint8))
        decoded = code.decode(word[None, :])
        np.testing.assert_array_equal(decoded.data[0], data)
        assert not decoded.corrected[0]


class TestTimingProperties:
    @given(rows=st.integers(min_value=16, max_value=1024))
    @settings(max_examples=20, deadline=None)
    def test_access_time_monotone_in_rows(self, rows):
        from repro.sram.array import ArrayOrganization
        from repro.sram.timing import access_time

        cell = SixTCell(TECH, CellGeometry(), ProcessCorner(0.0))
        small = ArrayOrganization(rows=rows, columns=8, redundant_columns=1)
        large = ArrayOrganization(rows=rows + 64, columns=8,
                                  redundant_columns=1)
        t_small = float(np.atleast_1d(access_time(cell, small, 1.0))[0])
        t_large = float(np.atleast_1d(access_time(cell, large, 1.0))[0])
        assert t_large > t_small


class TestRepairProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        density=st.floats(min_value=0.0, max_value=0.15),
    )
    @settings(max_examples=40, deadline=None)
    def test_successful_plans_always_cover(self, seed, density):
        from repro.sram.repair import allocate_rows_and_columns

        rng = np.random.default_rng(seed)
        fail_map = rng.random((10, 10)) < density
        plan = allocate_rows_and_columns(fail_map, spare_rows=2,
                                         spare_columns=2)
        if plan.success:
            assert plan.covers(fail_map)
            assert len(plan.rows) <= 2
            assert len(plan.columns) <= 2
