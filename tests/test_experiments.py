"""Integration tests: every paper-figure experiment at reduced scale.

These run the actual experiment entry points on the (shared, small)
context and assert the *qualitative shapes* the paper reports — who
wins, where the bathtub bottoms out, which policy trades what.
"""

import numpy as np
import pytest

from repro.experiments import asb, repair
from repro.experiments.registry import EXPERIMENTS, run_experiment

SHIFTS = np.linspace(-0.1, 0.1, 7)
SIGMAS = np.array([0.02, 0.05])


@pytest.fixture(scope="module")
def ctx(small_ctx=None):
    from repro.experiments.context import ExperimentContext

    return ExperimentContext(
        target=1e-4,
        calibration_samples=8_000,
        analysis_samples=4_000,
        table_grid=7,
        seed=99,
    )


class TestRepairFamily:
    def test_fig2a_bathtub(self, ctx):
        result = repair.fig2a(ctx, shifts=SHIFTS, memory_kbytes=64)
        overall = result.probabilities["any"]
        middle = len(SHIFTS) // 2
        assert overall[0] > 10 * overall[middle]
        assert overall[-1] > 10 * overall[middle]
        # Mechanism asymmetry: read left, access right.
        assert result.probabilities["read"][0] > \
            result.probabilities["access"][0]
        assert result.probabilities["access"][-1] > \
            result.probabilities["read"][-1]
        assert len(result.rows()) == len(SHIFTS) + 1

    def test_fig2b_body_bias_tradeoff(self, ctx):
        result = repair.fig2b(ctx, vbody=np.array([-0.4, 0.0, 0.4]))
        read = result.probabilities["read"]
        access = result.probabilities["access"]
        assert read[0] < read[1] < read[2]      # RBB helps read
        assert access[0] > access[1] > access[2]  # RBB hurts access

    def test_fig2c_repair_improves_yield(self, ctx):
        result = repair.fig2c(ctx, sigmas=SIGMAS, sizes_kbytes=(8,))
        zbb = result.yields[(8, "zbb")]
        rep = result.yields[(8, "self_repair")]
        assert np.all(rep >= zbb - 0.02)
        assert rep[-1] > zbb[-1]  # clear gain at large sigma
        assert result.improvement(8).shape == SIGMAS.shape

    def test_fig3_clt_separation(self, ctx):
        result = repair.fig3(ctx, n_cell_samples=4_000, n_arrays=60)
        assert result.overlap_fraction("cell") > 0.3
        assert result.overlap_fraction("array") < 0.01
        assert any("overlap" in row for row in result.rows())

    def test_fig4b_failures_reduced(self, ctx):
        result = repair.fig4b(ctx, shifts=SHIFTS, memory_kbytes=8)
        # At the extreme corners self-repair removes most failures.  The
        # RBB side collapses; the FBB side improves less (NMOS-only FBB
        # cannot fix the slow PMOS), and the loose test calibration
        # amplifies the residual, hence the asymmetric thresholds.
        assert result.failures_repaired[0] < 0.1 * result.failures_zbb[0]
        assert result.failures_repaired[-1] < 0.5 * result.failures_zbb[-1]

    def test_fig5a_component_shapes(self, ctx):
        result = repair.fig5a(ctx)
        sub, junction = result.subthreshold, result.junction
        gate = result.gate
        assert sub[-1] > sub[0]       # FBB inflates subthreshold
        assert junction[0] > junction[len(junction) // 2]  # RBB inflates BTBT
        assert np.ptp(gate) < 0.01    # gate ~ flat
        interior = result.total[1:-1].min()
        assert result.total[0] > interior
        assert result.total[-1] > interior

    def test_fig5b_spread_compression(self, ctx):
        result = repair.fig5b(ctx, sigma_inter=0.05, n_dies=60,
                              memory_kbytes=8)
        assert result.spread_reduction > 0.2

    def test_fig5c_leakage_yield_recovered(self, ctx):
        result = repair.fig5c(ctx, sigmas=SIGMAS, memory_kbytes=8)
        assert np.all(result.yield_repaired >= result.yield_zbb - 0.02)
        assert result.yield_repaired[-1] > result.yield_zbb[-1]


class TestAsbFamily:
    def test_fig6_safe_bias_band(self, ctx):
        result = asb.fig6(ctx, shifts=np.linspace(-0.08, 0.08, 5))
        assert np.all(result.vsb_max > 0.3)
        assert np.all(result.vsb_max < 0.635)
        # The high-Vt corner tolerates less source bias than nominal.
        assert result.vsb_max[-1] <= result.vsb_max[len(result.vsb_max) // 2]

    def test_fig8_adaptive_tracks_corner(self, ctx):
        # Generous redundancy: at the loose small-context calibration the
        # static fault rate is high, and this test is about the BIST/
        # model agreement, not about static repairability.
        from repro.sram.array import ArrayOrganization

        org = ArrayOrganization.from_capacity(
            2 * 1024, rows=64, redundancy_fraction=0.15
        )
        result = asb.fig8(ctx, shifts=np.linspace(-0.015, 0.015, 3),
                          organization=org)
        assert result.vsb_opt > 0.3
        assert np.all(result.vsb_adaptive > 0.3)
        # The BIST lands within a few DAC steps of the statistical model.
        assert np.all(np.abs(result.vsb_bist - result.vsb_adaptive) < 0.05)

    def test_fig9_distributions(self, ctx):
        result = asb.fig9(ctx, n_bist_dies=3, n_power_dies=40)
        # Per-corner adaptive spread is negligible (paper's inset).
        assert result.vsb_samples.std() < 0.02
        # Source bias saves big standby power vs VSB=0.
        assert result.power_adaptive.mean() < 0.5 * result.power_zero.mean()

    def test_fig10_policy_tradeoffs(self, ctx):
        result = asb.fig10(ctx, sigmas=SIGMAS)
        for i in range(len(SIGMAS)):
            # Leakage yield: biased policies beat zero bias.
            assert result.leakage_yield["opt"][i] >= \
                result.leakage_yield["zero"][i]
            assert result.leakage_yield["adaptive"][i] >= \
                result.leakage_yield["zero"][i]
            # Hold yield: zero bias is the ideal; adaptive beats opt.
            assert result.hold_yield["zero"][i] >= \
                result.hold_yield["adaptive"][i] - 1e-9
            assert result.hold_yield["adaptive"][i] >= \
                result.hold_yield["opt"][i] - 1e-9


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {"fig2a", "fig2b", "fig2c", "fig3", "fig4b", "fig5a",
                    "fig5b", "fig5c", "fig6", "fig8", "fig9", "fig10"}
        assert set(EXPERIMENTS) == expected

    def test_run_experiment_dispatches(self, ctx):
        result = run_experiment("fig5a", ctx)
        assert hasattr(result, "rows")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
