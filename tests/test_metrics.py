"""Tests for CellMetrics and OperatingConditions."""

import numpy as np
import pytest

from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.metrics import (
    OperatingConditions,
    compute_cell_metrics,
    compute_hold_margin,
)
from repro.technology.corners import ProcessCorner


class TestOperatingConditions:
    def test_nominal_preset(self, tech):
        cond = OperatingConditions.nominal(tech)
        assert cond.vdd == tech.vdd
        assert cond.vdd_standby == pytest.approx(0.3 * tech.vdd)
        assert cond.vsb == 0.0

    def test_asb_preset(self, tech):
        cond = OperatingConditions.source_biased_standby(tech, vsb=0.4)
        assert cond.vdd_standby == pytest.approx(0.8 * tech.vdd)
        assert cond.vsb == 0.4

    def test_with_body_bias_copies(self, tech):
        cond = OperatingConditions.nominal(tech)
        biased = cond.with_body_bias(-0.4)
        assert biased.vbody_n == -0.4
        assert cond.vbody_n == 0.0
        assert biased.vdd == cond.vdd

    def test_with_source_bias_copies(self, tech):
        cond = OperatingConditions.nominal(tech)
        biased = cond.with_source_bias(0.3)
        assert biased.vsb == 0.3
        assert cond.vsb == 0.0


class TestMetricComputation:
    def test_shapes_follow_population(self, tech, geometry, conditions, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 64)
        cell = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        metrics = compute_cell_metrics(cell, conditions)
        for field in ("v_read", "v_trip_read", "v_write", "v_trip_write",
                      "t_write", "i_access", "v_hold_one", "v_hold_zero",
                      "v_trip_hold"):
            assert getattr(metrics, field).shape == (64,)

    def test_margins_positive_for_healthy_cells(self, tech, geometry,
                                                conditions):
        cell = SixTCell(tech, geometry, ProcessCorner(0.0))
        metrics = compute_cell_metrics(cell, conditions)
        assert float(metrics.read_margin[0]) > 0
        assert float(metrics.write_margin[0]) > 0
        assert float(metrics.hold_margin[0]) > 0

    def test_hold_margin_fraction_normalisation(self, tech, geometry):
        cond = OperatingConditions(vdd=1.0, vdd_standby=0.5, vsb=0.1)
        cell = SixTCell(tech, geometry, ProcessCorner(0.0))
        metrics = compute_cell_metrics(cell, cond)
        assert metrics.hold_rail == pytest.approx(0.4)
        np.testing.assert_allclose(
            metrics.hold_margin_fraction,
            metrics.hold_margin / 0.4,
        )

    def test_hold_shortcut_equals_full_metrics(self, tech, geometry,
                                               conditions, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 32)
        cell = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        full = compute_cell_metrics(cell, conditions)
        short = compute_hold_margin(cell, conditions)
        np.testing.assert_allclose(short, full.hold_margin, atol=1e-6)
