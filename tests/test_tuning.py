"""Tests for the combined post-silicon tuner (repair + ASB)."""

import numpy as np
import pytest

from repro.core.body_bias import SelfRepairingSRAM
from repro.core.source_bias import SourceBiasDAC, SelfAdaptiveSourceBias
from repro.core.tuning import PostSiliconTuner
from repro.sram.array import ArrayOrganization
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def tuner():
    from repro.experiments.context import ExperimentContext

    ctx = ExperimentContext(
        target=1e-4, calibration_samples=8_000, analysis_samples=5_000,
        table_grid=7, seed=99,
    )
    organization = ArrayOrganization.from_capacity(
        2 * 1024, rows=64, redundancy_fraction=0.10
    )
    pipeline = SelfRepairingSRAM(
        ctx.analyzer(), organization, table_provider=ctx.table,
        leakage_samples=4_000,
    )
    return PostSiliconTuner(
        pipeline,
        SelfAdaptiveSourceBias(dac=SourceBiasDAC(bits=5, full_scale=0.62)),
    )


def test_nominal_die_gets_zbb_and_a_real_source_bias(tuner):
    outcome = tuner.tune(ProcessCorner(0.0), np.random.default_rng(1))
    assert outcome.vbody == 0.0
    assert outcome.vsb > 0.3
    assert outcome.standby_conditions.vsb == outcome.vsb
    assert outcome.standby_conditions.vbody_n == 0.0


def test_leaky_die_gets_rbb_then_calibrates(tuner):
    # -60 mV: leaky enough to bin LOW_VT, mild enough that the RBB'd die
    # is statically repairable at this loose test calibration.
    outcome = tuner.tune(ProcessCorner(-0.06), np.random.default_rng(2))
    assert outcome.vbody < 0.0
    # RBB'd retention is at least as robust: the calibrated source bias
    # is a genuine (non-zero) value.
    assert outcome.vsb > 0.0
    assert outcome.calibration.faulty_columns <= \
        tuner.repair_pipeline.organization.redundant_columns


def test_fast_and_full_ramps_agree(tuner):
    fast = tuner.tune(ProcessCorner(0.0), np.random.default_rng(3),
                      fast=True)
    full = tuner.tune(ProcessCorner(0.0), np.random.default_rng(3),
                      fast=False)
    assert fast.vsb == pytest.approx(full.vsb)
    assert fast.vbody == full.vbody


def test_deterministic_given_rng(tuner):
    a = tuner.tune(ProcessCorner(0.02), np.random.default_rng(7))
    b = tuner.tune(ProcessCorner(0.02), np.random.default_rng(7))
    assert a.vsb == b.vsb
    assert a.vbody == b.vbody
