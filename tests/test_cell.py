"""Tests for the 6T cell description and variation sampling."""

import numpy as np
import pytest

from repro.sram.cell import (
    POLARITY,
    TRANSISTORS,
    CellGeometry,
    SixTCell,
    cell_sigma_vt,
    sample_cell_dvt,
)
from repro.technology.corners import ProcessCorner


class TestCellGeometry:
    def test_default_ratioing(self, geometry):
        # Classic read-stable sizing: PD > AX > PU.
        assert geometry.w_pull_down > geometry.w_access > geometry.w_pull_up

    def test_width_lookup(self, geometry):
        assert geometry.width("nl") == geometry.w_pull_down
        assert geometry.width("axr") == geometry.w_access
        assert geometry.width("pr") == geometry.w_pull_up
        with pytest.raises(KeyError):
            geometry.width("nx")

    def test_cell_ratio(self, geometry):
        assert geometry.cell_ratio == pytest.approx(
            geometry.w_pull_down / geometry.w_access
        )

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            CellGeometry(w_pull_down=-1e-9)


class TestSampling:
    def test_sample_keys_and_shapes(self, tech, geometry, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 1000)
        assert set(dvt) == set(TRANSISTORS)
        assert all(v.shape == (1000,) for v in dvt.values())

    def test_sample_sigma_matches_pelgrom(self, tech, geometry, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 100_000)
        sigmas = cell_sigma_vt(tech, geometry)
        for name in TRANSISTORS:
            assert np.std(dvt[name]) == pytest.approx(sigmas[name], rel=0.03)

    def test_narrower_transistor_has_larger_sigma(self, tech, geometry):
        sigmas = cell_sigma_vt(tech, geometry)
        assert sigmas["pl"] > sigmas["nl"]  # pull-up is the narrowest

    def test_sigma_scale(self, tech, geometry, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 50_000, sigma_scale=2.0)
        sigmas = cell_sigma_vt(tech, geometry)
        assert np.std(dvt["nl"]) == pytest.approx(2 * sigmas["nl"], rel=0.05)


class TestSixTCell:
    def test_device_polarity(self, tech, geometry):
        cell = SixTCell(tech, geometry)
        for name in TRANSISTORS:
            assert cell.device(name).polarity == POLARITY[name]

    def test_corner_shift_applied_to_devices(self, tech, geometry):
        cell = SixTCell(tech, geometry, ProcessCorner(0.05))
        assert float(cell.device("nl").dvt) == pytest.approx(0.05)
        assert float(cell.device("pl").dvt) == pytest.approx(0.05)

    def test_corner_plus_intra_die(self, tech, geometry, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 10)
        cell = SixTCell(tech, geometry, ProcessCorner(0.03), dvt)
        np.testing.assert_allclose(
            cell.device("nr").dvt, 0.03 + dvt["nr"]
        )

    def test_population_size(self, tech, geometry, rng):
        assert SixTCell(tech, geometry).population == 1
        dvt = sample_cell_dvt(tech, geometry, rng, 42)
        assert SixTCell(tech, geometry, dvt=dvt).population == 42

    def test_at_corner_preserves_samples(self, tech, geometry, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 5)
        cell = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        moved = cell.at_corner(ProcessCorner(-0.07))
        assert moved.corner.dvt_inter == pytest.approx(-0.07)
        assert moved.dvt is dvt

    def test_with_dvt_requires_all_transistors(self, tech, geometry):
        cell = SixTCell(tech, geometry)
        with pytest.raises(ValueError):
            cell.with_dvt({"nl": np.zeros(3)})

    def test_devices_returns_all_six(self, tech, geometry):
        assert set(SixTCell(tech, geometry).devices()) == set(TRANSISTORS)
