"""Tests for the vectorised cell solvers, including their physics trends."""

import numpy as np
import pytest

from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.solver import (
    bisect_monotone,
    solve_access_current,
    solve_hold_state,
    solve_inverter_trip,
    solve_read_node,
    solve_read_trip,
    solve_write_node,
    solve_write_time,
    solve_write_trip,
)
from repro.technology.corners import ProcessCorner


def scalar(value):
    """Collapse a size-1 solver output to a Python float."""
    return float(np.asarray(value).reshape(-1)[0])


class TestBisection:
    def test_linear_root(self):
        root = bisect_monotone(lambda v: 0.5 - v, 0.0, 1.0, (1,))
        assert root[0] == pytest.approx(0.5, abs=1e-8)

    def test_vectorised_roots(self):
        targets = np.array([0.1, 0.4, 0.9])
        roots = bisect_monotone(lambda v: targets - v, 0.0, 1.0, (3,))
        np.testing.assert_allclose(roots, targets, atol=1e-8)

    def test_clamps_to_bracket_when_no_sign_change(self):
        high = bisect_monotone(lambda v: np.full_like(v, 1.0), 0.0, 1.0, (1,))
        low = bisect_monotone(lambda v: np.full_like(v, -1.0), 0.0, 1.0, (1,))
        assert high[0] == pytest.approx(1.0, abs=1e-6)
        assert low[0] == pytest.approx(0.0, abs=1e-6)


@pytest.fixture(scope="module")
def nominal_cell():
    from repro.sram.cell import CellGeometry
    from repro.technology import predictive_70nm

    return SixTCell(predictive_70nm(), CellGeometry(), ProcessCorner(0.0))


class TestReadSolves:
    def test_v_read_between_rails(self, nominal_cell):
        v = solve_read_node(nominal_cell, 1.0)
        assert 0.0 < scalar(v) < 0.5  # a healthy cell keeps the disturb low

    def test_v_read_below_trip(self, nominal_cell):
        v_read = scalar(solve_read_node(nominal_cell, 1.0))
        v_trip = scalar(solve_read_trip(nominal_cell, 1.0))
        assert v_read < v_trip

    def test_stronger_pull_down_lowers_v_read(self, tech):
        from repro.sram.cell import CellGeometry

        weak = SixTCell(tech, CellGeometry(w_pull_down=150e-9))
        strong = SixTCell(tech, CellGeometry(w_pull_down=300e-9))
        assert scalar(solve_read_node(strong, 1.0)) < scalar(
            solve_read_node(weak, 1.0)
        )

    def test_rbb_reduces_v_read(self, nominal_cell):
        zbb = scalar(solve_read_node(nominal_cell, 1.0, vbody_n=0.0))
        rbb = scalar(solve_read_node(nominal_cell, 1.0, vbody_n=-0.4))
        assert rbb < zbb

    def test_rbb_raises_read_trip(self, nominal_cell):
        zbb = scalar(solve_read_trip(nominal_cell, 1.0, vbody_n=0.0))
        rbb = scalar(solve_read_trip(nominal_cell, 1.0, vbody_n=-0.4))
        assert rbb > zbb


class TestWriteSolves:
    def test_write_node_below_trip(self, nominal_cell):
        v_write = scalar(solve_write_node(nominal_cell, 1.0))
        v_trip = scalar(solve_write_trip(nominal_cell, 1.0))
        assert v_write < v_trip

    def test_write_time_positive_and_finite(self, nominal_cell):
        t = scalar(solve_write_time(nominal_cell, 1.0))
        assert 0.0 < t < 1e-9

    def test_rbb_slows_the_write(self, nominal_cell):
        t_zbb = scalar(solve_write_time(nominal_cell, 1.0, vbody_n=0.0))
        t_rbb = scalar(solve_write_time(nominal_cell, 1.0, vbody_n=-0.4))
        assert t_rbb > t_zbb

    def test_high_vt_corner_slows_the_write(self, nominal_cell):
        slow = nominal_cell.at_corner(ProcessCorner(0.1))
        assert scalar(solve_write_time(slow, 1.0)) > scalar(
            solve_write_time(nominal_cell, 1.0)
        )

    def test_static_write_failure_is_infinite(self, tech):
        """A huge pull-up against a sliver of an access device: no write."""
        from repro.sram.cell import CellGeometry

        unwritable = SixTCell(
            tech, CellGeometry(w_pull_up=2000e-9, w_access=40e-9)
        )
        assert np.isinf(scalar(solve_write_time(unwritable, 1.0)))

    def test_odd_point_count_required(self, nominal_cell):
        with pytest.raises(ValueError):
            solve_write_time(nominal_cell, 1.0, n_points=8)


class TestAccessSolve:
    def test_access_current_magnitude(self, nominal_cell):
        i = scalar(solve_access_current(nominal_cell, 1.0))
        assert 1e-5 < i < 1e-3

    def test_rbb_reduces_access_current(self, nominal_cell):
        assert scalar(solve_access_current(nominal_cell, 1.0, -0.4)) < scalar(
            solve_access_current(nominal_cell, 1.0, 0.0)
        )

    def test_high_vt_corner_reduces_access_current(self, nominal_cell):
        slow = nominal_cell.at_corner(ProcessCorner(0.1))
        assert scalar(solve_access_current(slow, 1.0)) < scalar(
            solve_access_current(nominal_cell, 1.0)
        )


class TestHoldSolve:
    def test_healthy_cell_retains_full_rail(self, nominal_cell):
        vl, vr = solve_hold_state(nominal_cell, vdd_standby=0.8)
        assert scalar(vl) > 0.75
        assert scalar(vr) < 0.05

    def test_source_bias_raises_zero_node(self, nominal_cell):
        _, vr = solve_hold_state(nominal_cell, vdd_standby=0.8, vsb=0.3)
        assert scalar(vr) == pytest.approx(0.3, abs=0.05)

    def test_differential_shrinks_with_source_bias(self, nominal_cell):
        margins = []
        for vsb in (0.0, 0.3, 0.5):
            vl, vr = solve_hold_state(nominal_cell, 0.8, vsb=vsb)
            margins.append(scalar(vl - vr))
        assert margins[0] > margins[1] > margins[2]

    def test_leaky_cell_droops(self, tech, geometry):
        """A strongly low-Vt NL leaks the '1' node down at low standby."""
        dvt = {name: np.array([0.0]) for name in
               ("pl", "pr", "nl", "nr", "axl", "axr")}
        dvt["nl"] = np.array([-0.15])
        dvt["pl"] = np.array([+0.15])  # weak pull-up, leaky pull-down
        frail = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        healthy = SixTCell(tech, geometry, ProcessCorner(0.0))
        vl_frail, _ = solve_hold_state(frail, vdd_standby=0.3)
        vl_ok, _ = solve_hold_state(healthy, vdd_standby=0.3)
        assert scalar(vl_frail) < scalar(vl_ok) - 0.02

    def test_vectorised_population(self, tech, geometry, rng):
        dvt = sample_cell_dvt(tech, geometry, rng, 500)
        cell = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        vl, vr = solve_hold_state(cell, vdd_standby=0.3)
        assert vl.shape == (500,)
        assert np.all(vl > vr)  # at nominal 0.3 V nearly all cells retain

    def test_inverter_trip_between_rails(self, nominal_cell):
        vm = solve_inverter_trip(
            nominal_cell.device("pl"), nominal_cell.device("nl"), 1.0
        )
        assert 0.1 < scalar(vm) < 0.9
