"""Tests for the read-decoupled 8T cell."""

import numpy as np
import pytest

from repro.sram.eight_t import (
    EightTCell,
    EightTGeometry,
    eight_t_failure_probabilities,
    sample_eight_t,
)
from repro.sram.cell import CellGeometry, SixTCell
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def tech8():
    from repro.technology import predictive_70nm

    return predictive_70nm()


class TestGeometry:
    def test_defaults(self):
        buffer = EightTGeometry()
        assert buffer.area_overhead == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            EightTGeometry(w_read_driver=-1e-9)


class TestReadStack:
    def test_stack_current_magnitude(self, tech8):
        cell = EightTCell(SixTCell(tech8, CellGeometry()), EightTGeometry())
        i = float(np.atleast_1d(cell.read_stack_current(1.0))[0])
        # A two-NMOS stack: below a single device's on-current but still
        # a healthy read current.
        single = float(
            np.atleast_1d(
                SixTCell(tech8, CellGeometry()).device("nl").on_current(1.0)
            )[0]
        )
        assert 0.1 * single < i < single

    def test_fbb_strengthens_the_stack(self, tech8):
        cell = EightTCell(SixTCell(tech8, CellGeometry()), EightTGeometry())
        zbb = float(np.atleast_1d(cell.read_stack_current(1.0, 0.0))[0])
        fbb = float(np.atleast_1d(cell.read_stack_current(1.0, 0.25))[0])
        rbb = float(np.atleast_1d(cell.read_stack_current(1.0, -0.4))[0])
        assert rbb < zbb < fbb

    def test_high_vt_corner_weakens_the_stack(self, tech8):
        nominal = EightTCell(
            SixTCell(tech8, CellGeometry(), ProcessCorner(0.0)),
            EightTGeometry(),
        )
        slow = EightTCell(
            SixTCell(tech8, CellGeometry(), ProcessCorner(0.08)),
            EightTGeometry(),
        )
        assert float(np.atleast_1d(slow.read_stack_current(1.0))[0]) < float(
            np.atleast_1d(nominal.read_stack_current(1.0))[0]
        )


class TestFailureComparison:
    def test_read_failures_eliminated(self, tech8, conditions, fast_criteria):
        rng = np.random.default_rng(5)
        cell, weights = sample_eight_t(tech8, rng, 3_000)
        probs = eight_t_failure_probabilities(
            cell, weights, fast_criteria, conditions
        )
        assert probs["read"].estimate == 0.0
        assert probs["any"].estimate >= probs["write"].estimate

    def test_8t_beats_6t_at_the_leaky_corner(self, tech8, conditions,
                                             fast_criteria):
        """The paper's low-Vt read wall disappears with the 8T cell."""
        from repro.failures.analysis import CellFailureAnalyzer

        corner = ProcessCorner(-0.08)
        analyzer = CellFailureAnalyzer(
            tech8, fast_criteria, CellGeometry(), conditions,
            n_samples=4_000, scale=1.5, seed=77,
        )
        p6 = analyzer.failure_probabilities(corner)
        rng = np.random.default_rng(6)
        cell, weights = sample_eight_t(
            tech8, rng, 4_000, corner=corner, scale=1.5
        )
        p8 = eight_t_failure_probabilities(
            cell, weights, fast_criteria, conditions
        )
        # Read dominated the 6T at this corner; the 8T removes it.
        assert p6["read"].estimate > 0.05
        assert p8["any"].estimate < 0.5 * p6["any"].estimate

    def test_write_and_hold_are_shared_with_the_core(self, tech8, conditions,
                                                     fast_criteria):
        """8T write/hold equal the 6T values for the same core samples."""
        from repro.sram.metrics import compute_cell_metrics

        rng = np.random.default_rng(7)
        cell, weights = sample_eight_t(tech8, rng, 2_000)
        p8 = eight_t_failure_probabilities(
            cell, weights, fast_criteria, conditions
        )
        metrics = compute_cell_metrics(cell.core, conditions)
        from repro.stats.montecarlo import probability_of

        expected_write = probability_of(
            fast_criteria.write_fails(metrics), weights
        )
        assert p8["write"].estimate == pytest.approx(
            expected_write.estimate, rel=1e-12
        )
