"""Tests for the yield-analysis service (``repro.service``).

Layered like the package: spec validation and fingerprinting are unit
tests; job lifecycle (dedupe, failure, retry) runs against a
:class:`JobManager` with an injected runner; the HTTP surface runs a
real in-process :class:`BackgroundServer` over a tiny real build; and
the kill-and-restart test drives an actual ``python -m repro.service``
subprocess through SIGKILL and checkpoint resume.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import cancellation, observability
from repro.service.jobs import (
    DrainingError,
    JobManager,
    QueueFullError,
)
from repro.service.journal import EventJournal
from repro.service.ledger import JobLedger
from repro.service.loadgen import (
    ClientRetryPolicy,
    _follow,
    _retry_after_seconds,
    run_load,
)
from repro.service.server import BackgroundServer
from repro.service.spec import (
    SpecError,
    job_cells,
    normalize_spec,
    spec_fingerprint,
)
from tests.prometheus_parser import parse_exposition

#: Seconds-scale spec exercising the full real pipeline.
TINY_SPEC = {
    "kind": "table",
    "target": 1e-2,
    "calibration_samples": 2_000,
    "analysis_samples": 600,
    "sampler": "adaptive-is",
    "table_grid": 5,
    "seed": 2006,
    "vbody_levels": [0.0],
}


def request(
    method: str, url: str, payload: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict]:
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def fetch_raw(
    url: str, headers: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict, str]:
    """GET a non-JSON endpoint; returns (status, headers, body text)."""
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


def read_sse(
    url: str,
    last_event_id: int | None = None,
    timeout: float = 120.0,
    stop=None,
) -> list[tuple[int | None, str | None, dict]]:
    """Read an SSE stream into ``(id, event, payload)`` messages.

    Reads until the server closes the stream (per-job streams close
    after the terminal event) or ``stop(message)`` returns True — the
    escape hatch for the never-ending global stream.
    """
    headers = {"Accept": "text/event-stream"}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    req = urllib.request.Request(url, headers=headers)
    messages: list[tuple[int | None, str | None, dict]] = []
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        assert "text/event-stream" in resp.headers.get("Content-Type", "")
        event_id: int | None = None
        event_type: str | None = None
        data_lines: list[str] = []
        for raw in resp:
            line = raw.decode().rstrip("\r\n")
            if not line:
                if event_type is not None or data_lines:
                    payload = (
                        json.loads("\n".join(data_lines)) if data_lines else {}
                    )
                    message = (event_id, event_type, payload)
                    messages.append(message)
                    if stop is not None and stop(message):
                        break
                event_id, event_type, data_lines = None, None, []
                continue
            if line.startswith(":"):
                continue  # comment / keepalive
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "id":
                event_id = int(value)
            elif field == "event":
                event_type = value
            elif field == "data":
                data_lines.append(value)
    return messages


def wait_for(predicate, timeout: float = 60.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {predicate}")
        time.sleep(interval)


# ----------------------------------------------------------------------
# Spec validation and identity
# ----------------------------------------------------------------------
class TestSpec:
    def test_defaults_are_materialised(self):
        spec = normalize_spec({"kind": "table"})
        assert spec["sampler"] == "adaptive-is"
        assert spec["target"] == 1e-5
        assert spec["vbody_levels"] == [0.0]
        assert spec["table_grid"] == 9

    def test_hold_surface_defaults(self):
        spec = normalize_spec({"kind": "hold-surface"})
        assert spec["corner_points"] == 5
        assert spec["vsb_levels"] == [0.0, 0.2, 0.4, 0.6]
        assert job_cells(spec) == 5 * 4

    def test_job_cells_table(self):
        spec = normalize_spec(
            {"kind": "table", "table_grid": 7, "vbody_levels": [0.0, 0.3]}
        )
        assert job_cells(spec) == 14

    def test_fingerprint_ignores_field_order_and_spelling(self):
        a = normalize_spec({"kind": "table", "seed": 7, "target": 1e-5})
        b = normalize_spec({"target": 0.00001, "kind": "table", "seed": 7})
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_fingerprint_changes_with_any_field(self):
        base = normalize_spec({"kind": "table"})
        for raw in (
            {"kind": "table", "seed": 2007},
            {"kind": "table", "sampler": "plain"},
            {"kind": "table", "vbody_levels": [0.1]},
            {"kind": "hold-surface"},
        ):
            assert spec_fingerprint(normalize_spec(raw)) != spec_fingerprint(
                base
            )

    @pytest.mark.parametrize(
        "raw, code",
        [
            ([1, 2], "invalid-spec"),
            ({}, "invalid-spec"),
            ({"kind": "fig99"}, "unknown-kind"),
            ({"kind": "table", "smapler": "plain"}, "unknown-field"),
            # hold-surface fields are unknown on a table spec.
            ({"kind": "table", "vsb_levels": [0.1, 0.2]}, "unknown-field"),
            ({"kind": "table", "sampler": "magic"}, "invalid-value"),
            ({"kind": "table", "target": 2.0}, "invalid-value"),
            ({"kind": "table", "target": "tiny"}, "invalid-value"),
            ({"kind": "table", "calibration_samples": 10}, "invalid-value"),
            ({"kind": "table", "table_grid": 3}, "invalid-value"),
            ({"kind": "table", "seed": -1}, "invalid-value"),
            ({"kind": "table", "vbody_levels": []}, "invalid-value"),
            ({"kind": "table", "vbody_levels": [0.3, 0.0]}, "invalid-value"),
            ({"kind": "table", "vbody_levels": [0.0, True]}, "invalid-value"),
            ({"kind": "hold-surface", "vsb_levels": [0.4]}, "invalid-value"),
            ({"kind": "hold-surface", "corner_points": 1}, "invalid-value"),
            ({"kind": "table", "deadline_s": 0}, "invalid-value"),
            ({"kind": "table", "deadline_s": -5}, "invalid-value"),
            ({"kind": "table", "deadline_s": "soon"}, "invalid-value"),
            ({"kind": "table", "deadline_s": 1e9}, "invalid-value"),
        ],
    )
    def test_rejections_carry_wire_codes(self, raw, code):
        with pytest.raises(SpecError) as excinfo:
            normalize_spec(raw)
        assert excinfo.value.code == code

    def test_deadline_is_execution_only(self):
        # Validated and carried in the normalized spec, but excluded
        # from the job id: the same surface with a different budget
        # must dedupe onto the in-flight job, and pre-deadline job
        # ids (and their cache entries) must be unchanged.
        bare = normalize_spec({"kind": "table"})
        bounded = normalize_spec({"kind": "table", "deadline_s": 30})
        assert bare["deadline_s"] is None
        assert bounded["deadline_s"] == 30.0
        assert spec_fingerprint(bounded) == spec_fingerprint(bare)


# ----------------------------------------------------------------------
# Job lifecycle against an injected runner (no HTTP, no real builds)
# ----------------------------------------------------------------------
@pytest.fixture
def metrics_on():
    observability.reset()
    observability.enable()
    yield
    observability.disable()
    observability.reset()


class TestJobManager:
    def test_inflight_dedupe_and_queued_state(self, metrics_on):
        started, release = threading.Event(), threading.Event()

        def runner(spec, **_opts):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}

        manager = JobManager(runner=runner)
        try:
            job, created = manager.submit(dict(TINY_SPEC))
            assert created
            assert started.wait(timeout=10)
            dup, dup_created = manager.submit(dict(TINY_SPEC))
            assert not dup_created
            assert dup.id == job.id
            assert dup.submissions == 2
            assert manager.get(job.id).status == "running"
            assert manager.queue_depth() == 1
            release.set()
            wait_for(lambda: manager.get(job.id).status == "completed")
            assert manager.get(job.id).result == {"ok": True}
            assert manager.queue_depth() == 0
        finally:
            release.set()
            manager.shutdown()

    def test_failed_job_reports_error_and_retries(self, metrics_on):
        attempts = []

        def runner(spec, **_opts):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("solver exploded")
            return {"ok": True}

        manager = JobManager(runner=runner)
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "failed")
            assert "solver exploded" in manager.get(job.id).error
            # A failed job is retried under the same id, not deduped.
            retry, created = manager.submit(dict(TINY_SPEC))
            assert created
            assert retry.id == job.id
            wait_for(lambda: manager.get(job.id).status == "completed")
            assert manager.get(job.id).error is None
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_failed"] == 1
            assert counters["service.jobs_completed"] == 1
            assert counters["service.jobs_accepted"] == 2
        finally:
            manager.shutdown()

    def test_progress_counts_cells(self, metrics_on):
        manager = JobManager(runner=lambda spec, **_opts: {"ok": True})
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "completed")
            progress = manager.get(job.id).progress()
            assert progress["cells_total"] == job_cells(job.spec)
            assert progress["cells_done"] == progress["cells_total"]
            assert set(progress["counters"]) >= {"mc.samples", "solver.calls"}
        finally:
            manager.shutdown()


def _blocking_runner(started: threading.Event, release: threading.Event):
    """A runner that parks at a cancellation safe point until released."""

    def runner(spec, **_opts):
        started.set()
        deadline = time.monotonic() + 60
        while not release.is_set() and time.monotonic() < deadline:
            cancellation.check_active()
            time.sleep(0.01)
        return {"ok": True}

    return runner


class TestJobLedger:
    def test_record_replay_folds_latest_state(self, tmp_path):
        ledger = JobLedger(tmp_path)
        spec = normalize_spec(TINY_SPEC)
        ledger.record(
            "accepted", "job-a", spec=spec, submissions=2, created_at=10.0
        )
        ledger.record("started", "job-a")
        ledger.record("accepted", "job-b", spec=spec, created_at=11.0)
        ledger.record("started", "job-b")
        ledger.record("completed", "job-b")
        states, skipped = ledger.replay()
        assert skipped == 0
        assert states["job-a"]["status"] == "started"
        assert states["job-a"]["spec"] == spec
        assert states["job-a"]["submissions"] == 2
        assert states["job-a"]["created_at"] == 10.0
        assert states["job-b"]["status"] == "completed"

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        ledger = JobLedger(tmp_path)
        spec = normalize_spec(TINY_SPEC)
        ledger.record(
            "accepted", "job-a", spec=spec, submissions=1, created_at=1.0
        )
        with open(ledger.path, "a") as fh:
            fh.write("{ torn line\n")  # undecodable JSON
            fh.write('{"type": "started", "job_id": "job-a"}\n')  # no seal
        ledger.record("started", "job-a")
        states, skipped = ledger.replay()
        assert skipped == 2
        assert states["job-a"]["status"] == "started"
        assert states["job-a"]["spec"] == spec

    def test_compact_bounds_the_file(self, tmp_path):
        ledger = JobLedger(tmp_path)
        spec = normalize_spec(TINY_SPEC)
        for _ in range(5):
            ledger.record(
                "accepted", "job-a", spec=spec, submissions=1, created_at=1.0
            )
        ledger.record("accepted", "gone", spec=spec, created_at=2.0)
        ledger.record("completed", "gone")
        states, _ = ledger.replay()
        live = {"job-a": states["job-a"]}
        ledger.compact(live)
        assert len(ledger.path.read_text().splitlines()) == 1
        states, skipped = ledger.replay()
        assert skipped == 0
        assert set(states) == {"job-a"}
        assert states["job-a"]["status"] == "accepted"
        assert states["job-a"]["spec"] == spec

    def test_unknown_record_type_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown ledger record type"):
            JobLedger(tmp_path).record("paused", "job-a")


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(
            runner=_blocking_runner(started, release),
            max_queue_depth=1,
            retry_after_s=2.5,
        )
        try:
            manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(dict(TINY_SPEC, seed=31))
            assert excinfo.value.code == "queue-full"
            assert excinfo.value.retry_after == 2.5
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_rejected"] == 1
            # The shed spec was never registered as a job.
            assert manager.queue_depth() == 1
        finally:
            release.set()
            manager.shutdown()

    def test_dedupe_is_never_rejected(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(
            runner=_blocking_runner(started, release), max_queue_depth=1
        )
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            # The queue is at its bound, but a retrying client must be
            # able to re-attach to its own in-flight job.
            dup, created = manager.submit(dict(TINY_SPEC))
            assert not created
            assert dup.id == job.id
        finally:
            release.set()
            manager.shutdown()

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError):
            JobManager(runner=lambda s, **_o: {}, max_queue_depth=0)


class TestCancellationAndDeadline:
    def test_cancel_queued_job_is_terminal(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(
            runner=_blocking_runner(started, release), job_workers=1
        )
        try:
            manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            queued, _ = manager.submit(dict(TINY_SPEC, seed=31))
            assert manager.get(queued.id).status == "queued"
            job, outcome = manager.cancel(queued.id)
            assert outcome == "cancelled"
            assert job.status == "cancelled"
            assert job.error_code == "cancelled"
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_cancelled"] == 1
        finally:
            release.set()
            manager.shutdown()

    def test_cancel_running_job_stops_at_safe_point(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(runner=_blocking_runner(started, release))
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            _, outcome = manager.cancel(job.id)
            assert outcome == "cancelling"
            # The runner's next check_active() raises: the job lands
            # terminally cancelled without being released.
            wait_for(lambda: manager.get(job.id).status == "cancelled")
            assert manager.get(job.id).error_code == "cancelled"
        finally:
            release.set()
            manager.shutdown()

    def test_cancel_terminal_and_missing(self, metrics_on):
        manager = JobManager(runner=lambda spec, **_o: {"ok": True})
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "completed")
            _, outcome = manager.cancel(job.id)
            assert outcome == "terminal"
            assert manager.get(job.id).status == "completed"  # untouched
            assert manager.cancel("no-such-job") == (None, "missing")
        finally:
            manager.shutdown()

    def test_cancelled_job_can_be_retried(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(
            runner=_blocking_runner(started, release), job_workers=1
        )
        try:
            manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            queued, _ = manager.submit(dict(TINY_SPEC, seed=31))
            manager.cancel(queued.id)
            release.set()
            retry, created = manager.submit(dict(TINY_SPEC, seed=31))
            assert created  # a cancelled job is retried, not deduped
            assert retry.id == queued.id
            wait_for(lambda: manager.get(retry.id).status == "completed")
            assert manager.get(retry.id).error is None
        finally:
            release.set()
            manager.shutdown()

    def test_deadline_exceeded_fails_with_wire_code(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(runner=_blocking_runner(started, release))
        try:
            job, _ = manager.submit(dict(TINY_SPEC, deadline_s=0.2))
            assert started.wait(timeout=10)
            wait_for(lambda: manager.get(job.id).status == "failed")
            assert manager.get(job.id).error_code == "deadline-exceeded"
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_deadline_exceeded"] == 1
            assert counters["service.jobs_failed"] == 1
        finally:
            release.set()
            manager.shutdown()


class TestDrain:
    def test_drain_rejects_new_work_but_dedupes(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(runner=_blocking_runner(started, release))
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            manager.begin_drain()
            assert manager.draining
            with pytest.raises(DrainingError) as excinfo:
                manager.submit(dict(TINY_SPEC, seed=31))
            assert excinfo.value.code == "draining"
            dup, created = manager.submit(dict(TINY_SPEC))
            assert not created and dup.id == job.id
            gauges = observability.registry.snapshot()["gauges"]
            assert gauges["service.draining"] == 1
        finally:
            release.set()
            manager.shutdown()

    def test_drain_waits_for_running_jobs(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(runner=_blocking_runner(started, release))
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            done = []
            thread = threading.Thread(
                target=lambda: done.append(manager.drain(timeout=30))
            )
            thread.start()
            time.sleep(0.1)
            assert not done  # still waiting on the running job
            release.set()
            thread.join(timeout=30)
            assert done == [True]
            assert manager.get(job.id).status == "completed"
        finally:
            release.set()
            manager.shutdown()

    def test_drain_timeout_reports_stragglers(self, metrics_on):
        started, release = threading.Event(), threading.Event()
        manager = JobManager(runner=_blocking_runner(started, release))
        try:
            manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            assert manager.drain(timeout=0.2) is False
        finally:
            release.set()
            manager.shutdown()


class TestRecovery:
    def test_boot_recovers_accepted_jobs(self, metrics_on, tmp_path):
        spec = normalize_spec(TINY_SPEC)
        job_id = spec_fingerprint(spec)
        ledger = JobLedger(tmp_path)
        ledger.record(
            "accepted", job_id, spec=spec, submissions=2, created_at=10.0
        )
        ledger.record("started", job_id)

        manager = JobManager(
            runner=lambda s, **_o: {"ok": True}, state_dir=str(tmp_path)
        )
        try:
            job = manager.get(job_id)
            assert job is not None and job.recovered
            assert job.submissions == 2
            wait_for(lambda: manager.get(job_id).status == "completed")
            assert manager.get(job_id).result == {"ok": True}
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_recovered"] == 1
            assert counters.get("service.jobs_lost", 0) == 0
        finally:
            manager.shutdown()
        # The completion was journaled: a third boot recovers nothing.
        states, _ = JobLedger(tmp_path).replay()
        assert states[job_id]["status"] == "completed"

    def test_terminal_jobs_are_not_recovered(self, metrics_on, tmp_path):
        spec = normalize_spec(TINY_SPEC)
        job_id = spec_fingerprint(spec)
        ledger = JobLedger(tmp_path)
        ledger.record("accepted", job_id, spec=spec, created_at=1.0)
        ledger.record("completed", job_id)
        manager = JobManager(
            runner=lambda s, **_o: {"ok": True}, state_dir=str(tmp_path)
        )
        try:
            assert manager.get(job_id) is None
            counters = observability.registry.snapshot()["counters"]
            assert counters.get("service.jobs_recovered", 0) == 0
        finally:
            manager.shutdown()

    def test_unrecoverable_job_counts_lost(self, metrics_on, tmp_path):
        # A "started" record without any intact "accepted" line: the
        # spec is gone, so the job cannot be re-run — it must be
        # surfaced as lost, not silently dropped.
        ledger = JobLedger(tmp_path)
        ledger.record("started", "deadbeef" * 3)
        manager = JobManager(
            runner=lambda s, **_o: {"ok": True}, state_dir=str(tmp_path)
        )
        try:
            assert manager.get("deadbeef" * 3) is None
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_lost"] == 1
            assert counters.get("service.jobs_recovered", 0) == 0
        finally:
            manager.shutdown()

    def test_recovery_preserves_submission_order(self, metrics_on, tmp_path):
        spec_a = normalize_spec(TINY_SPEC)
        spec_b = normalize_spec(dict(TINY_SPEC, seed=31))
        ledger = JobLedger(tmp_path)
        # Written out of order; created_at must decide execution order.
        ledger.record(
            "accepted", spec_fingerprint(spec_b), spec=spec_b,
            created_at=20.0,
        )
        ledger.record(
            "accepted", spec_fingerprint(spec_a), spec=spec_a,
            created_at=10.0,
        )
        ran = []
        manager = JobManager(
            runner=lambda s, **_o: ran.append(s["seed"]) or {"ok": True},
            state_dir=str(tmp_path),
            job_workers=1,
        )
        try:
            wait_for(lambda: len(ran) == 2)
            assert ran == [spec_a["seed"], spec_b["seed"]]
        finally:
            manager.shutdown()


# ----------------------------------------------------------------------
# Event journal, flight recorder, uptime (no HTTP)
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_ring_eviction_and_truncation(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.append("job.progress", job_id="j", i=i)
        assert journal.last_seq == 5
        assert journal.dropped == 2
        events, truncated = journal.after(0)
        assert truncated  # seqs 1-2 were evicted
        assert [e.seq for e in events] == [3, 4, 5]
        events, truncated = journal.after(3)
        assert not truncated
        assert [e.seq for e in events] == [4, 5]

    def test_per_job_filter_and_wire_shape(self):
        journal = EventJournal(capacity=16)
        journal.append("job.accepted", job_id="a")
        journal.append("job.accepted", job_id="b")
        journal.append("job.completed", job_id="a", run_id="a", seconds=1.5)
        events, truncated = journal.after(0, job_id="a")
        assert not truncated
        assert [e.type for e in events] == ["job.accepted", "job.completed"]
        wire = events[-1].wire()
        assert wire["job_id"] == "a"
        assert wire["run_id"] == "a"
        assert wire["data"] == {"seconds": 1.5}
        assert set(wire) == {"seq", "ts", "type", "job_id", "run_id", "data"}

    def test_overflow_counts_drops(self, metrics_on):
        journal = EventJournal(capacity=1)
        journal.append("job.accepted")
        journal.append("job.accepted")
        counters = observability.registry.snapshot()["counters"]
        assert counters["service.events"] == 2.0
        assert counters["service.events_dropped"] == 1.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


class TestFlightRecorder:
    def test_failed_job_dumps_journal_to_disk(self, metrics_on, tmp_path):
        def runner(spec, **_opts):
            raise RuntimeError("solver exploded")

        manager = JobManager(runner=runner, flight_dir=str(tmp_path))
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "failed")
            flights = wait_for(
                lambda: list(tmp_path.glob("flight-*.json")) or None,
                timeout=10,
            )
        finally:
            manager.shutdown()
        [path] = flights
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.flight/1"
        assert doc["job"]["id"] == job.id
        assert doc["job"]["status"] == "failed"
        assert doc["dropped_events"] == 0
        types = [event["type"] for event in doc["events"]]
        assert "job.accepted" in types
        assert "job.started" in types
        assert types[-1] == "job.failed"
        assert "solver exploded" in doc["events"][-1]["data"]["error"]

    def test_no_flight_dir_means_no_dump(self, metrics_on, tmp_path):
        def runner(spec, **_opts):
            raise RuntimeError("boom")

        manager = JobManager(runner=runner)
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "failed")
        finally:
            manager.shutdown()
        assert not list(tmp_path.glob("flight-*.json"))


def test_uptime_is_monotonic(metrics_on):
    manager = JobManager(runner=lambda spec, **_opts: {"ok": True})
    try:
        first = manager.uptime_seconds()
        assert first >= 0
        time.sleep(0.02)
        assert manager.uptime_seconds() > first
    finally:
        manager.shutdown()


# ----------------------------------------------------------------------
# HTTP surface over a real in-process build
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_server():
    observability.reset()
    observability.enable()
    manager = JobManager()
    background = BackgroundServer(manager)
    url = background.start()
    yield url
    background.stop()
    observability.disable()
    observability.reset()


def completed_job_id(base_url: str) -> str:
    """Submit TINY_SPEC and wait until it is completed (idempotent)."""
    status, body = request("POST", f"{base_url}/v1/jobs", TINY_SPEC)
    assert status in (200, 202), body
    job_id = body["job"]["id"]
    wait_for(
        lambda: request("GET", f"{base_url}/v1/jobs/{job_id}")[1]["job"][
            "status"
        ]
        == "completed",
        timeout=120,
    )
    return job_id


class TestHttpApi:
    def test_submit_poll_result_roundtrip(self, live_server):
        status, body = request("POST", f"{live_server}/v1/jobs", TINY_SPEC)
        assert status in (200, 202)
        assert body["job"]["kind"] == "table"
        job_id = body["job"]["id"]
        assert job_id == spec_fingerprint(normalize_spec(TINY_SPEC))

        job_id = completed_job_id(live_server)
        status, view = request("GET", f"{live_server}/v1/jobs/{job_id}")
        assert status == 200
        progress = view["job"]["progress"]
        assert progress["cells_done"] == progress["cells_total"] == 5
        assert view["job"]["elapsed_seconds"] > 0

        status, result = request(
            "GET", f"{live_server}/v1/jobs/{job_id}/result"
        )
        assert status == 200
        surface = result["result"]
        assert surface["kind"] == "table"
        assert len(surface["corner_grid"]) == 5
        [per_vbody] = surface["surfaces"]
        assert per_vbody["vbody"] == 0.0
        curve = per_vbody["log10_probability"]["any"]
        assert len(curve) == 5
        assert all(isinstance(v, float) and v <= 0.0 for v in curve)

    def test_duplicate_submission_dedupes_without_solver_calls(
        self, live_server
    ):
        job_id = completed_job_id(live_server)

        def healthz_counters():
            return request("GET", f"{live_server}/v1/healthz")[1][
                "telemetry"
            ]["metrics"]["counters"]

        before = healthz_counters()
        status, body = request("POST", f"{live_server}/v1/jobs", TINY_SPEC)
        assert status == 200
        assert body["deduped"] is True
        assert body["job"]["id"] == job_id
        after = healthz_counters()
        assert after["solver.calls"] == before["solver.calls"]
        assert after["mc.samples"] == before["mc.samples"]
        assert (
            after["service.jobs_deduped"]
            == before["service.jobs_deduped"] + 1
        )
        assert after["service.jobs_accepted"] == before["service.jobs_accepted"]

    def test_result_before_completion_is_409(self, live_server):
        # A fresh fingerprint that will sit queued behind nothing but
        # still be running when we ask: use a heavier seed variant and
        # ask for the result immediately after submitting.
        spec = dict(TINY_SPEC, seed=31)
        status, body = request("POST", f"{live_server}/v1/jobs", spec)
        assert status == 202
        job_id = body["job"]["id"]
        status, error = request(
            "GET", f"{live_server}/v1/jobs/{job_id}/result"
        )
        if status == 409:  # still queued/running (the usual path)
            assert error["error"]["code"] == "not-completed"
        else:  # finished before we asked; result must then be served
            assert status == 200

    @pytest.mark.parametrize(
        "payload, code",
        [
            ({"kind": "fig99"}, "unknown-kind"),
            ({"kind": "table", "smapler": "plain"}, "unknown-field"),
            ({"kind": "table", "target": 7}, "invalid-value"),
            ([1, 2, 3], "invalid-spec"),
        ],
    )
    def test_malformed_specs_are_400(self, live_server, payload, code):
        status, body = request("POST", f"{live_server}/v1/jobs", payload)
        assert status == 400
        assert body["error"]["code"] == code

    def test_undecodable_body_is_invalid_json(self, live_server):
        req = urllib.request.Request(
            f"{live_server}/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        assert (
            json.loads(excinfo.value.read().decode())["error"]["code"]
            == "invalid-json"
        )

    def test_unknown_job_and_route_are_404(self, live_server):
        status, body = request("GET", f"{live_server}/v1/jobs/deadbeef")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"
        status, body = request("GET", f"{live_server}/v2/jobs")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_wrong_method_is_405(self, live_server):
        status, body = request("GET", f"{live_server}/v1/jobs")
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"

    def test_healthz_contract(self, live_server):
        status, health = request("GET", f"{live_server}/v1/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert set(health["jobs"]) == {
            "queued", "running", "completed", "failed", "cancelled",
        }
        telemetry = health["telemetry"]
        assert telemetry["schema"] == "repro.telemetry/1"
        counters = telemetry["metrics"]["counters"]
        # Baseline contract: the service keys exist even at zero.
        for name in (
            "service.jobs_accepted",
            "service.jobs_deduped",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.jobs_cancelled",
            "service.jobs_recovered",
            "service.jobs_rejected",
            "service.jobs_deadline_exceeded",
            "service.jobs_lost",
            "service.requests",
        ):
            assert name in counters, name
        assert "service.queue_depth" in telemetry["metrics"]["gauges"]
        assert "service.draining" in telemetry["metrics"]["gauges"]
        summaries = telemetry["metrics"]["histograms"]
        assert "service.request_seconds" in summaries
        # Healthz keeps the summary but drops the raw reservoir.
        assert "reservoir" not in summaries["service.request_seconds"]


# ----------------------------------------------------------------------
# SSE event streams
# ----------------------------------------------------------------------
class TestEventStreams:
    def test_job_stream_replays_full_lifecycle(self, live_server):
        spec = dict(TINY_SPEC, seed=53)
        status, body = request("POST", f"{live_server}/v1/jobs", spec)
        assert status in (200, 202)
        job_id = body["job"]["id"]

        messages = read_sse(f"{live_server}/v1/jobs/{job_id}/events")
        # The framing snapshot opens the stream, un-id'd (it is not a
        # journal event, so a reconnect must not resume past it).
        first_id, first_type, first_payload = messages[0]
        assert first_type == "job.state"
        assert first_id is None
        assert first_payload["id"] == job_id

        ids = [i for i, _, _ in messages[1:]]
        types = [t for _, t, _ in messages[1:]]
        assert types[0] == "job.accepted"
        assert "job.started" in types
        assert "job.progress" in types
        assert types[-1] == "job.completed"
        assert ids == sorted(ids)  # seqs strictly ordered
        assert len(set(ids)) == len(ids)
        assert all(p["job_id"] == job_id for _, _, p in messages[1:])
        assert messages[-1][2]["data"]["seconds"] > 0

    def test_resume_with_last_event_id_skips_replay(self, live_server):
        spec = dict(TINY_SPEC, seed=59)
        status, body = request("POST", f"{live_server}/v1/jobs", spec)
        assert status in (200, 202)
        job_id = body["job"]["id"]
        url = f"{live_server}/v1/jobs/{job_id}/events"

        full = read_sse(url)
        started_seq = next(
            i for i, t, _ in full if t == "job.started"
        )
        resumed = read_sse(url, last_event_id=started_seq)
        assert resumed[0][1] == "job.state"
        types = [t for _, t, _ in resumed[1:]]
        assert "job.accepted" not in types
        assert "job.started" not in types
        assert types[-1] == "job.completed"
        assert all(i > started_seq for i, _, _ in resumed[1:])

    def test_resume_past_the_end_closes_on_the_snapshot(self, live_server):
        job_id = completed_job_id(live_server)
        messages = read_sse(
            f"{live_server}/v1/jobs/{job_id}/events",
            last_event_id=10**9,
            timeout=30,
        )
        [(event_id, event_type, payload)] = messages
        assert event_id is None
        assert event_type == "job.state"
        assert payload["status"] == "completed"

    def test_invalid_last_event_id_is_400(self, live_server):
        job_id = completed_job_id(live_server)
        req = urllib.request.Request(
            f"{live_server}/v1/jobs/{job_id}/events",
            headers={"Last-Event-ID": "banana"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        assert (
            json.loads(excinfo.value.read().decode())["error"]["code"]
            == "invalid-last-event-id"
        )

    def test_stream_for_unknown_job_is_404(self, live_server):
        status, body = request(
            "GET", f"{live_server}/v1/jobs/deadbeef/events"
        )
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

    def test_global_stream_carries_every_job(self, live_server):
        completed_job_id(live_server)
        # The global stream never terminates; replay the journal from
        # the start and hang up once a terminal event arrives.
        messages = read_sse(
            f"{live_server}/v1/events",
            last_event_id=0,
            timeout=30,
            stop=lambda m: m[1] == "job.completed",
        )
        types = [t for _, t, _ in messages]
        assert "job.accepted" in types
        assert types[-1] == "job.completed"

    def test_events_endpoint_is_get_only(self, live_server):
        status, body = request("POST", f"{live_server}/v1/events", {})
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"

    def test_loadgen_follow_rides_the_stream(self, live_server):
        summary = run_load(
            live_server,
            spec=dict(TINY_SPEC, seed=61),
            duplicates=2,
            result_gets=2,
            follow=True,
        )
        # At minimum: accepted, started, one progress, completed (the
        # framing snapshot too, unless the job outran the connect).
        assert summary["follow_events"] >= 4


# ----------------------------------------------------------------------
# Prometheus scrape endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_page_parses_and_matches_healthz(self, live_server):
        completed_job_id(live_server)
        _, health = request("GET", f"{live_server}/v1/healthz")
        status, headers, page = fetch_raw(f"{live_server}/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )

        families = parse_exposition(page)
        counters = health["telemetry"]["metrics"]["counters"]
        # Nothing submits between the two reads, so job counters agree
        # exactly; service.requests only ever moves up (the healthz GET
        # itself is counted by the time the scrape renders).
        for name in (
            "service.jobs_accepted",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.events_dropped",
        ):
            family = families[name.replace(".", "_")]
            assert family.type == "counter", name
            assert family.value() == counters[name], name
        assert (
            families["service_requests"].value()
            >= counters["service.requests"]
        )
        assert families["service_uptime_seconds"].type == "gauge"
        assert families["service_uptime_seconds"].value() >= 0
        summary = families["service_request_seconds"]
        assert summary.type == "summary"
        assert summary.value("_count") > 0
        assert summary.value("_sum") > 0
        assert summary.value("", {"quantile": "0.5"}) >= 0

    def test_scrape_is_get_only(self, live_server):
        status, body = request("POST", f"{live_server}/v1/metrics", {})
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"


# ----------------------------------------------------------------------
# Lifecycle over HTTP: cancellation, backpressure, drain
# ----------------------------------------------------------------------
# NOTE: placed after the module-scoped ``live_server`` tests on purpose.
# The ``lifecycle_server`` fixture resets the global metrics registry,
# which would otherwise erase the counters the live server registered.
def request_raw(
    method: str, url: str, payload: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict, dict]:
    """Like :func:`request` but also returns the response headers."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return (
                resp.status,
                dict(resp.headers),
                json.loads(resp.read().decode()),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read().decode())


@pytest.fixture
def lifecycle_server():
    """A server over a controlled runner: jobs park until released."""
    observability.reset()
    observability.enable()
    started, release = threading.Event(), threading.Event()
    manager = JobManager(
        runner=_blocking_runner(started, release),
        job_workers=1,
        max_queue_depth=2,
    )
    background = BackgroundServer(manager)
    url = background.start()
    yield url, manager, started, release
    release.set()
    background.stop()
    observability.disable()
    observability.reset()


class TestLifecycleHttp:
    def test_delete_semantics(self, lifecycle_server):
        url, manager, started, release = lifecycle_server
        status, body = request("DELETE", f"{url}/v1/jobs/deadbeef")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

        status, body = request("POST", f"{url}/v1/jobs", TINY_SPEC)
        assert status == 202
        running_id = body["job"]["id"]
        assert started.wait(timeout=10)
        status, body = request(
            "POST", f"{url}/v1/jobs", dict(TINY_SPEC, seed=31)
        )
        queued_id = body["job"]["id"]

        # Queued: cancellation is immediate and terminal (200).
        status, body = request("DELETE", f"{url}/v1/jobs/{queued_id}")
        assert status == 200
        assert body["cancelling"] is False
        assert body["job"]["status"] == "cancelled"
        status, body = request("GET", f"{url}/v1/jobs/{queued_id}/result")
        assert status == 409
        assert body["error"]["code"] == "cancelled"
        # Terminal: a second DELETE is refused (409).
        status, body = request("DELETE", f"{url}/v1/jobs/{queued_id}")
        assert status == 409
        assert body["error"]["code"] == "job-terminal"

        # Running: cancellation is cooperative (202), lands at the
        # runner's next safe point.
        status, body = request("DELETE", f"{url}/v1/jobs/{running_id}")
        assert status == 202
        assert body["cancelling"] is True
        wait_for(
            lambda: request("GET", f"{url}/v1/jobs/{running_id}")[1][
                "job"
            ]["status"]
            == "cancelled"
        )

    def test_queue_full_is_429_with_retry_after(self, lifecycle_server):
        url, manager, started, release = lifecycle_server
        request("POST", f"{url}/v1/jobs", TINY_SPEC)
        assert started.wait(timeout=10)
        request("POST", f"{url}/v1/jobs", dict(TINY_SPEC, seed=31))
        # Depth 2/2 (one running, one queued): the next new spec sheds.
        status, headers, body = request_raw(
            "POST", f"{url}/v1/jobs", dict(TINY_SPEC, seed=32)
        )
        assert status == 429
        assert body["error"]["code"] == "queue-full"
        assert int(headers["Retry-After"]) >= 1
        # Duplicates of admitted work still dedupe at full depth.
        status, body = request("POST", f"{url}/v1/jobs", TINY_SPEC)
        assert status == 200
        assert body["deduped"] is True

    def test_readyz_flips_on_drain(self, lifecycle_server):
        url, manager, started, release = lifecycle_server
        status, body = request("GET", f"{url}/v1/readyz")
        assert status == 200
        assert body["status"] == "ready"
        assert body["draining"] is False

        manager.begin_drain()
        status, body = request("GET", f"{url}/v1/readyz")
        assert status == 503
        assert body["status"] == "draining"
        assert body["draining"] is True
        status, headers, body = request_raw(
            "POST", f"{url}/v1/jobs", TINY_SPEC
        )
        assert status == 503
        assert body["error"]["code"] == "draining"
        assert int(headers["Retry-After"]) >= 1
        # Liveness stays green while draining: the process is healthy,
        # it just will not take new work.
        status, _ = request("GET", f"{url}/v1/healthz")
        assert status == 200

    def test_jobs_path_allows_get_and_delete(self, lifecycle_server):
        url, *_ = lifecycle_server
        status, headers, body = request_raw(
            "PUT", f"{url}/v1/jobs/deadbeef"
        )
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"
        assert set(headers["Allow"].split(", ")) == {"GET", "DELETE"}


# ----------------------------------------------------------------------
# Kill-and-restart: a SIGKILLed build resumes from its checkpoint
# ----------------------------------------------------------------------
#: Slow enough (~1 s per grid cell) to be killed mid-build reliably.
RESUME_SPEC = {
    "kind": "table",
    "target": 1e-2,
    "calibration_samples": 2_000,
    "analysis_samples": 8_000,
    "sampler": "plain",
    "table_grid": 9,
    "seed": 13,
    "vbody_levels": [0.0],
}


def start_server(tmp_path: pathlib.Path) -> tuple[subprocess.Popen, str]:
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--state-dir", str(tmp_path / "state"),
            "--checkpoint-every", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith("listening on "), line
    return proc, line.split()[-1].strip()


@pytest.mark.slow
def test_kill_and_restart_recovers_from_ledger(tmp_path):
    proc, url = start_server(tmp_path)
    try:
        status, body = request("POST", f"{url}/v1/jobs", RESUME_SPEC)
        assert status == 202
        job_id = body["job"]["id"]

        def flushes() -> float:
            _, view = request("GET", f"{url}/v1/jobs/{job_id}")
            assert view["job"]["status"] in ("queued", "running"), (
                "build finished before it could be killed - slow the "
                "RESUME_SPEC down"
            )
            return view["job"]["progress"]["counters"]["checkpoint.flushes"]

        # Wait one flush beyond what we rely on: the counter ticks as
        # a flush starts, so SIGKILL right after the Nth observation
        # may lose that flush's cell (atomic-rename not yet done).
        wait_for(lambda: flushes() >= 3, timeout=60)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

    # The checkpoint directory holds the flushed cells and the state
    # directory the accepted/started ledger records.
    assert any((tmp_path / "ckpt").iterdir())
    assert (tmp_path / "state" / "jobs-ledger.jsonl").exists()

    proc, url = start_server(tmp_path)
    try:
        # No resubmission: the ledger replay alone re-enqueues the
        # killed job, and the build resumes from its checkpoints.
        status, view = request("GET", f"{url}/v1/jobs/{job_id}")
        assert status == 200
        assert view["job"]["recovered"] is True
        wait_for(
            lambda: request("GET", f"{url}/v1/jobs/{job_id}")[1]["job"][
                "status"
            ]
            == "completed",
            timeout=120,
        )
        _, view = request("GET", f"{url}/v1/jobs/{job_id}")
        counters = view["job"]["progress"]["counters"]
        assert counters["checkpoint.resumed_cells"] >= 1
        status, result = request("GET", f"{url}/v1/jobs/{job_id}/result")
        assert status == 200
        [surface] = result["result"]["surfaces"]
        assert len(surface["log10_probability"]["any"]) == 9
        status, health = request("GET", f"{url}/v1/healthz")
        health_counters = health["telemetry"]["metrics"]["counters"]
        assert health_counters["service.jobs_recovered"] >= 1
        assert health_counters["service.jobs_lost"] == 0
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)


# ----------------------------------------------------------------------
# Client resilience: retry policy, Retry-After, stream fallback
# ----------------------------------------------------------------------
def _canned_http_server(responses: list[bytes]):
    """Serve each canned raw response to one connection, in order.

    Returns ``(base_url, thread)``; the thread exits after the last
    response (or on accept timeout) and must be joined by the caller.
    """
    import socket

    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(30)
    port = listener.getsockname()[1]

    def serve() -> None:
        try:
            for response in responses:
                conn, _ = listener.accept()
                conn.settimeout(10)
                conn.recv(65536)
                conn.sendall(response)
                conn.close()
        except OSError:
            pass
        finally:
            listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return f"http://127.0.0.1:{port}", thread


def _json_response(status_line: str, payload: dict, extra: str = "") -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"{status_line}\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n{extra}Connection: close\r\n\r\n"
    ).encode() + body


class TestClientResilience:
    def test_retry_policy_is_deterministic_and_bounded(self):
        policy = ClientRetryPolicy()
        first = policy.delay("http://host/v1/jobs", 0)
        assert first == policy.delay("http://host/v1/jobs", 0)
        # base_delay * jitter, jitter in [0.5, 1.0).
        assert 0.1 <= first < 0.2
        # Exponential growth stays capped at max_delay.
        for attempt in range(12):
            delay = policy.delay("key", attempt)
            assert 0 < delay <= policy.max_delay
        # Different request keys decorrelate (no lockstep burst).
        assert policy.delay("a", 0) != policy.delay("b", 0)

    def test_retry_after_parsing(self):
        import email.message

        def exc(headers: dict) -> urllib.error.HTTPError:
            message = email.message.Message()
            for key, value in headers.items():
                message[key] = value
            return urllib.error.HTTPError(
                "http://x", 429, "too many", message, None
            )

        assert _retry_after_seconds(exc({"Retry-After": "3"})) == 3.0
        assert _retry_after_seconds(exc({"Retry-After": "bogus"})) == 0.0
        assert _retry_after_seconds(exc({})) == 0.0

    def test_request_retries_through_429(self, metrics_on):
        from repro.service.loadgen import _request

        url, thread = _canned_http_server([
            _json_response(
                "HTTP/1.1 429 Too Many Requests",
                {"error": {"code": "queue-full"}},
                extra="Retry-After: 0\r\n",
            ),
            _json_response("HTTP/1.1 200 OK", {"ok": True}),
        ])
        policy = ClientRetryPolicy(
            attempts=3, base_delay=0.01, max_delay=0.02
        )
        status, body = _request("GET", f"{url}/v1/x", retry=policy)
        thread.join(timeout=10)
        assert status == 200
        assert body == {"ok": True}
        counters = observability.registry.snapshot()["counters"]
        assert counters["service.client_retries"] == 1

    def test_request_without_policy_surfaces_the_429(self):
        from repro.service.loadgen import _request

        url, thread = _canned_http_server([
            _json_response(
                "HTTP/1.1 429 Too Many Requests",
                {"error": {"code": "queue-full"}},
                extra="Retry-After: 1\r\n",
            ),
        ])
        status, body = _request("GET", f"{url}/v1/x", retry=None)
        thread.join(timeout=10)
        assert status == 429
        assert body["error"]["code"] == "queue-full"

    def test_follow_falls_back_on_eof_midstream(self, metrics_on):
        # The server dies with the stream open: headers and a couple of
        # events arrive, then EOF without a terminal event.  _follow
        # must hand control back to the poll loop (None), not raise.
        url, thread = _canned_http_server([
            (
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Connection: close\r\n\r\n"
                b"event: job.progress\r\ndata: {\"seq\": 1}\r\n\r\n"
            ),
        ])
        assert _follow(url, "some-job", timeout=10) is None
        thread.join(timeout=10)
        counters = observability.registry.snapshot()["counters"]
        assert counters["service.client_stream_fallbacks"] == 1

    def test_follow_falls_back_on_connection_refused(self, metrics_on):
        import socket

        # Grab a port that is certainly closed.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert _follow(f"http://127.0.0.1:{port}", "j", timeout=5) is None


# ----------------------------------------------------------------------
# Run-scoped attribution: journal under concurrency, per-job telemetry,
# and concurrent execution (--job-workers) vs. the serial baseline
# ----------------------------------------------------------------------
class TestJournalConcurrency:
    def _interleave(self, journal, per_job=50):
        """Two threads, each emitting ``per_job`` events for its own job
        from inside that job's RunContext, started on a barrier so the
        appends genuinely interleave."""
        barrier = threading.Barrier(2)

        def emit(job_id: str) -> None:
            with observability.RunContext(job_id):
                barrier.wait(timeout=10)
                for i in range(per_job):
                    journal.append("job.progress", job_id=job_id, i=i)

        threads = [
            threading.Thread(target=emit, args=(job,))
            for job in ("job-a", "job-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

    def test_interleaved_seqs_stay_unique_and_monotone(self):
        journal = EventJournal(capacity=256)
        self._interleave(journal)
        events, truncated = journal.after(0)
        assert not truncated
        assert len(events) == 100
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 100

    def test_per_job_filter_sees_only_its_run(self):
        journal = EventJournal(capacity=256)
        self._interleave(journal)
        for job in ("job-a", "job-b"):
            events, truncated = journal.after(0, job_id=job)
            assert not truncated
            assert len(events) == 50
            # Ambient stamping: the run scope active on the emitting
            # thread supplied the run_id, no explicit argument.
            assert all(e.run_id == job for e in events)
            assert [e.data["i"] for e in events] == list(range(50))

    def test_per_job_resume_has_no_spurious_truncation_gap(self):
        # A job's events are sparse in the global sequence space (the
        # gaps belong to the other job).  Resuming from the last seen
        # seq must not read those gaps as eviction loss.
        journal = EventJournal(capacity=256)
        self._interleave(journal, per_job=20)
        events, _ = journal.after(0, job_id="job-a")
        midpoint = events[9].seq
        resumed, truncated = journal.after(midpoint, job_id="job-a")
        assert not truncated
        assert [e.data["i"] for e in resumed] == list(range(10, 20))

    def test_resume_after_eviction_flags_the_gap(self):
        journal = EventJournal(capacity=8)
        self._interleave(journal, per_job=20)  # 40 appends, 32 evicted
        assert journal.dropped == 32
        events, truncated = journal.after(0, job_id="job-a")
        assert truncated  # resume-from-zero lost events: flagged
        # Resuming from a still-buffered position is clean even though
        # earlier events (of both jobs) were evicted.
        all_events, _ = journal.after(0)
        events, truncated = journal.after(all_events[0].seq - 1)
        assert not truncated
        assert [e.seq for e in events] == [e.seq for e in all_events]
        # One seq earlier crosses the eviction boundary.
        events, truncated = journal.after(all_events[0].seq - 2)
        assert truncated


def _scope_probe_runner(barrier=None):
    """An injected runner with deterministic instrumentation: counter
    and span volume derived from the spec, so two different specs have
    provably different (and predictable) telemetry."""

    def runner(spec, **_opts):
        if barrier is not None:
            barrier.wait(timeout=60)
        from repro.observability.metrics import incr
        from repro.observability.tracing import trace

        with trace("probe.job"):
            for _ in range(spec["table_grid"]):
                with trace("probe.cell"):
                    incr("probe.cells")
            incr("mc.samples", spec["analysis_samples"])
        return {"grid": spec["table_grid"]}

    return runner


def _canon_trace(node):
    return {
        "name": node["name"],
        "calls": node["calls"],
        "children": [_canon_trace(child) for child in node["children"]],
    }


def _canon_telemetry(snapshot):
    """A telemetry snapshot with every timing stripped: identical for
    identical work, regardless of scheduling."""
    return {
        "schema": snapshot["schema"],
        "run_id": snapshot["run_id"],
        "counters": snapshot["metrics"]["counters"],
        "gauges": snapshot["metrics"]["gauges"],
        "trace": _canon_trace(snapshot["trace"]),
        "diagnostics": sorted(snapshot["diagnostics"].get("scopes", {})),
    }


class TestConcurrentJobs:
    SPEC_A = dict(TINY_SPEC, table_grid=5)
    SPEC_B = dict(TINY_SPEC, table_grid=7, seed=777)

    def _run_jobs(self, manager, specs):
        jobs = [manager.submit(dict(spec))[0] for spec in specs]
        for job in jobs:
            wait_for(lambda j=job: manager.get(j.id).status == "completed")
        return jobs

    def test_concurrent_results_and_telemetry_match_serial(self, metrics_on):
        serial = JobManager(runner=_scope_probe_runner(), job_workers=1)
        try:
            baseline = {
                job.id: (job.result, _canon_telemetry(job.telemetry_snapshot()))
                for job in self._run_jobs(serial, [self.SPEC_A, self.SPEC_B])
            }
        finally:
            serial.shutdown()

        observability.reset()
        observability.enable()
        # The barrier holds each job until BOTH occupy a worker slot:
        # the two jobs provably execute concurrently.
        barrier = threading.Barrier(2)
        concurrent = JobManager(
            runner=_scope_probe_runner(barrier), job_workers=2
        )
        try:
            jobs = self._run_jobs(concurrent, [self.SPEC_A, self.SPEC_B])
            assert {job.id for job in jobs} == set(baseline)
            for job in jobs:
                want_result, want_telemetry = baseline[job.id]
                assert job.result == want_result
                assert _canon_telemetry(job.telemetry_snapshot()) == want_telemetry
            counters = observability.registry.snapshot()["counters"]
            assert counters.get("service.jobs_failed", 0.0) == 0.0
            assert counters["service.jobs_completed"] == 2.0
            assert counters.get("service.events_dropped", 0.0) == 0.0
        finally:
            concurrent.shutdown()

    def test_attribution_is_disjoint_and_exact(self, metrics_on):
        barrier = threading.Barrier(2)
        manager = JobManager(
            runner=_scope_probe_runner(barrier), job_workers=2
        )
        try:
            job_a, job_b = self._run_jobs(manager, [self.SPEC_A, self.SPEC_B])
            telem_a = manager.get(job_a.id).telemetry_snapshot()
            telem_b = manager.get(job_b.id).telemetry_snapshot()
        finally:
            manager.shutdown()
        # Each scope holds exactly its own job's work — not a share of
        # the global totals, not a delta polluted by the neighbour.
        assert telem_a["run_id"] == job_a.id
        assert telem_b["run_id"] == job_b.id
        assert telem_a["metrics"]["counters"]["probe.cells"] == 5.0
        assert telem_b["metrics"]["counters"]["probe.cells"] == 7.0
        assert telem_a["metrics"]["counters"]["mc.samples"] == 600.0
        assert telem_b["metrics"]["counters"]["mc.samples"] == 600.0
        for telem, cells in ((telem_a, 5), (telem_b, 7)):
            (root,) = [
                c for c in telem["trace"]["children"]
                if c["name"] == "probe.job"
            ]
            (cell,) = root["children"]
            assert cell["calls"] == cells
        # The global registry still has the whole-process totals.
        counters = observability.registry.snapshot()["counters"]
        assert counters["probe.cells"] == 12.0
        # Progress reads the scope: exact per-job counters.
        assert manager.get(job_a.id).progress()["counters"]["mc.samples"] == 600.0

    def test_queued_job_has_no_telemetry_yet(self, metrics_on):
        started, release = threading.Event(), threading.Event()

        def runner(spec, **_opts):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}

        manager = JobManager(runner=runner, job_workers=1)
        try:
            first, _ = manager.submit(dict(self.SPEC_A))
            assert started.wait(timeout=10)
            queued, _ = manager.submit(dict(self.SPEC_B))
            assert manager.get(queued.id).status == "queued"
            assert manager.get(queued.id).telemetry_snapshot() is None
            # The running job already serves a live snapshot.
            live = manager.get(first.id).telemetry_snapshot()
            assert live["run_id"] == first.id
            release.set()
            wait_for(lambda: manager.get(queued.id).status == "completed")
            assert manager.get(queued.id).telemetry_snapshot()["run_id"] == queued.id
        finally:
            release.set()
            manager.shutdown()

    def test_job_workers_validated(self):
        with pytest.raises(ValueError):
            JobManager(runner=lambda spec, **_o: {}, job_workers=0)

    def test_completed_job_persists_telemetry_beside_flights(
        self, metrics_on, tmp_path
    ):
        manager = JobManager(
            runner=_scope_probe_runner(), flight_dir=str(tmp_path)
        )
        try:
            [job] = self._run_jobs(manager, [self.SPEC_A])
        finally:
            manager.shutdown()
        [path] = list(tmp_path.glob("telemetry-*.json"))
        doc = json.loads(path.read_text())
        assert doc["run_id"] == job.id
        assert doc["schema"] == observability.SCHEMA
        assert doc["metrics"]["counters"]["probe.cells"] == 5.0
        assert not list(tmp_path.glob("flight-*.json"))  # no failure

    def test_corrupt_checkpoint_quarantined_without_perturbing_sibling(
        self, metrics_on, tmp_path
    ):
        """Satellite of the crash-safety story: a corrupt checkpoint hit
        by one of two concurrent real builds is quarantined (counted in
        that job's own scope) while the sibling's result stays
        bit-identical to its serial baseline."""
        from repro.experiments.context import ExperimentContext
        from repro.parallel.cache import fingerprint as cache_fingerprint

        serial = JobManager(job_workers=1, cache_dir=str(tmp_path / "serial"))
        try:
            baseline = {
                job.id: job.result
                for job in self._run_jobs(serial, [self.SPEC_A, self.SPEC_B])
            }
        finally:
            serial.shutdown()

        # Plant garbage at exactly the checkpoint path SPEC_A's table
        # build will try to resume from.
        conc_dir = tmp_path / "conc"
        spec_a = normalize_spec(self.SPEC_A)
        ctx = ExperimentContext.from_spec(
            spec_a, checkpoint_dir=str(conc_dir)
        )
        table = ctx.table(spec_a["vbody_levels"][0])
        corrupt_path = ctx.checkpoint_store.path(
            "failure-table", cache_fingerprint(table._cache_key())
        )
        corrupt_path.write_text("{ torn checkpoint")

        observability.reset()
        observability.enable()
        concurrent = JobManager(
            job_workers=2,
            cache_dir=str(conc_dir),
            checkpoint_dir=str(conc_dir),
        )
        try:
            job_a, job_b = self._run_jobs(
                concurrent, [self.SPEC_A, self.SPEC_B]
            )
            assert job_a.result == baseline[job_a.id]
            assert job_b.result == baseline[job_b.id]
            telem_a = concurrent.get(job_a.id).telemetry_snapshot()
            telem_b = concurrent.get(job_b.id).telemetry_snapshot()
        finally:
            concurrent.shutdown()
        # The quarantine is attributed to the job that hit it — the
        # sibling's scope is clean.
        counters_a = telem_a["metrics"]["counters"]
        counters_b = telem_b["metrics"]["counters"]
        assert counters_a["checkpoint.quarantined"] >= 1
        assert counters_b.get("checkpoint.quarantined", 0) == 0
        assert list(conc_dir.glob("*.ckpt.json.corrupt-*")) or list(
            conc_dir.glob("*.corrupt-1")
        )
        counters = observability.registry.snapshot()["counters"]
        assert counters.get("service.jobs_failed", 0) == 0


class TestTelemetryEndpoint:
    def test_serves_the_jobs_own_snapshot(self, live_server):
        job_id = completed_job_id(live_server)
        status, body = request(
            "GET", f"{live_server}/v1/jobs/{job_id}/telemetry"
        )
        assert status == 200
        assert body["job_id"] == job_id
        assert body["run_id"] == job_id
        assert body["status"] == "completed"
        telemetry = body["telemetry"]
        assert telemetry["schema"] == observability.SCHEMA
        assert telemetry["run_id"] == job_id
        counters = telemetry["metrics"]["counters"]
        assert counters["mc.samples"] > 0
        # The progress block and the telemetry endpoint agree exactly:
        # both read the same frozen scope.
        _, view = request("GET", f"{live_server}/v1/jobs/{job_id}")
        for name, value in view["job"]["progress"]["counters"].items():
            assert counters.get(name, 0.0) == value

    def test_unknown_job_is_404(self, live_server):
        status, body = request(
            "GET", f"{live_server}/v1/jobs/deadbeef/telemetry"
        )
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

    def test_queued_job_is_409(self, metrics_on):
        started, release = threading.Event(), threading.Event()

        def runner(spec, **_opts):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}

        manager = JobManager(runner=runner, job_workers=1)
        background = BackgroundServer(manager)
        url = background.start()
        try:
            first, _ = manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            queued, _ = manager.submit(
                dict(TINY_SPEC, seed=4242)
            )
            status, body = request(
                "GET", f"{url}/v1/jobs/{queued.id}/telemetry"
            )
            assert status == 409
            assert body["error"]["code"] == "not-started"
            # The running neighbour serves live telemetry meanwhile.
            status, body = request(
                "GET", f"{url}/v1/jobs/{first.id}/telemetry"
            )
            assert status == 200
            assert body["status"] == "running"
            assert body["telemetry"]["run_id"] == first.id
        finally:
            release.set()
            background.stop()


class TestServiceEventRunIds:
    def test_lifecycle_events_carry_the_job_run_id(self, metrics_on):
        manager = JobManager(runner=_scope_probe_runner())
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "completed")
            events, _ = manager.journal.after(0, job_id=job.id)
        finally:
            manager.shutdown()
        assert [e.type for e in events][0] == "job.accepted"
        assert events[-1].type == "job.completed"
        assert all(e.run_id == job.id for e in events)
        assert all(e.wire()["run_id"] == job.id for e in events)
