"""Tests for the yield-analysis service (``repro.service``).

Layered like the package: spec validation and fingerprinting are unit
tests; job lifecycle (dedupe, failure, retry) runs against a
:class:`JobManager` with an injected runner; the HTTP surface runs a
real in-process :class:`BackgroundServer` over a tiny real build; and
the kill-and-restart test drives an actual ``python -m repro.service``
subprocess through SIGKILL and checkpoint resume.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import observability
from repro.service.jobs import JobManager
from repro.service.journal import EventJournal
from repro.service.loadgen import run_load
from repro.service.server import BackgroundServer
from repro.service.spec import (
    SpecError,
    job_cells,
    normalize_spec,
    spec_fingerprint,
)
from tests.prometheus_parser import parse_exposition

#: Seconds-scale spec exercising the full real pipeline.
TINY_SPEC = {
    "kind": "table",
    "target": 1e-2,
    "calibration_samples": 2_000,
    "analysis_samples": 600,
    "sampler": "adaptive-is",
    "table_grid": 5,
    "seed": 2006,
    "vbody_levels": [0.0],
}


def request(
    method: str, url: str, payload: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict]:
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def fetch_raw(
    url: str, headers: dict | None = None, timeout: float = 30.0
) -> tuple[int, dict, str]:
    """GET a non-JSON endpoint; returns (status, headers, body text)."""
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


def read_sse(
    url: str,
    last_event_id: int | None = None,
    timeout: float = 120.0,
    stop=None,
) -> list[tuple[int | None, str | None, dict]]:
    """Read an SSE stream into ``(id, event, payload)`` messages.

    Reads until the server closes the stream (per-job streams close
    after the terminal event) or ``stop(message)`` returns True — the
    escape hatch for the never-ending global stream.
    """
    headers = {"Accept": "text/event-stream"}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    req = urllib.request.Request(url, headers=headers)
    messages: list[tuple[int | None, str | None, dict]] = []
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        assert "text/event-stream" in resp.headers.get("Content-Type", "")
        event_id: int | None = None
        event_type: str | None = None
        data_lines: list[str] = []
        for raw in resp:
            line = raw.decode().rstrip("\r\n")
            if not line:
                if event_type is not None or data_lines:
                    payload = (
                        json.loads("\n".join(data_lines)) if data_lines else {}
                    )
                    message = (event_id, event_type, payload)
                    messages.append(message)
                    if stop is not None and stop(message):
                        break
                event_id, event_type, data_lines = None, None, []
                continue
            if line.startswith(":"):
                continue  # comment / keepalive
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "id":
                event_id = int(value)
            elif field == "event":
                event_type = value
            elif field == "data":
                data_lines.append(value)
    return messages


def wait_for(predicate, timeout: float = 60.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {predicate}")
        time.sleep(interval)


# ----------------------------------------------------------------------
# Spec validation and identity
# ----------------------------------------------------------------------
class TestSpec:
    def test_defaults_are_materialised(self):
        spec = normalize_spec({"kind": "table"})
        assert spec["sampler"] == "adaptive-is"
        assert spec["target"] == 1e-5
        assert spec["vbody_levels"] == [0.0]
        assert spec["table_grid"] == 9

    def test_hold_surface_defaults(self):
        spec = normalize_spec({"kind": "hold-surface"})
        assert spec["corner_points"] == 5
        assert spec["vsb_levels"] == [0.0, 0.2, 0.4, 0.6]
        assert job_cells(spec) == 5 * 4

    def test_job_cells_table(self):
        spec = normalize_spec(
            {"kind": "table", "table_grid": 7, "vbody_levels": [0.0, 0.3]}
        )
        assert job_cells(spec) == 14

    def test_fingerprint_ignores_field_order_and_spelling(self):
        a = normalize_spec({"kind": "table", "seed": 7, "target": 1e-5})
        b = normalize_spec({"target": 0.00001, "kind": "table", "seed": 7})
        assert spec_fingerprint(a) == spec_fingerprint(b)

    def test_fingerprint_changes_with_any_field(self):
        base = normalize_spec({"kind": "table"})
        for raw in (
            {"kind": "table", "seed": 2007},
            {"kind": "table", "sampler": "plain"},
            {"kind": "table", "vbody_levels": [0.1]},
            {"kind": "hold-surface"},
        ):
            assert spec_fingerprint(normalize_spec(raw)) != spec_fingerprint(
                base
            )

    @pytest.mark.parametrize(
        "raw, code",
        [
            ([1, 2], "invalid-spec"),
            ({}, "invalid-spec"),
            ({"kind": "fig99"}, "unknown-kind"),
            ({"kind": "table", "smapler": "plain"}, "unknown-field"),
            # hold-surface fields are unknown on a table spec.
            ({"kind": "table", "vsb_levels": [0.1, 0.2]}, "unknown-field"),
            ({"kind": "table", "sampler": "magic"}, "invalid-value"),
            ({"kind": "table", "target": 2.0}, "invalid-value"),
            ({"kind": "table", "target": "tiny"}, "invalid-value"),
            ({"kind": "table", "calibration_samples": 10}, "invalid-value"),
            ({"kind": "table", "table_grid": 3}, "invalid-value"),
            ({"kind": "table", "seed": -1}, "invalid-value"),
            ({"kind": "table", "vbody_levels": []}, "invalid-value"),
            ({"kind": "table", "vbody_levels": [0.3, 0.0]}, "invalid-value"),
            ({"kind": "table", "vbody_levels": [0.0, True]}, "invalid-value"),
            ({"kind": "hold-surface", "vsb_levels": [0.4]}, "invalid-value"),
            ({"kind": "hold-surface", "corner_points": 1}, "invalid-value"),
        ],
    )
    def test_rejections_carry_wire_codes(self, raw, code):
        with pytest.raises(SpecError) as excinfo:
            normalize_spec(raw)
        assert excinfo.value.code == code


# ----------------------------------------------------------------------
# Job lifecycle against an injected runner (no HTTP, no real builds)
# ----------------------------------------------------------------------
@pytest.fixture
def metrics_on():
    observability.reset()
    observability.enable()
    yield
    observability.disable()
    observability.reset()


class TestJobManager:
    def test_inflight_dedupe_and_queued_state(self, metrics_on):
        started, release = threading.Event(), threading.Event()

        def runner(spec, **_opts):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}

        manager = JobManager(runner=runner)
        try:
            job, created = manager.submit(dict(TINY_SPEC))
            assert created
            assert started.wait(timeout=10)
            dup, dup_created = manager.submit(dict(TINY_SPEC))
            assert not dup_created
            assert dup.id == job.id
            assert dup.submissions == 2
            assert manager.get(job.id).status == "running"
            assert manager.queue_depth() == 1
            release.set()
            wait_for(lambda: manager.get(job.id).status == "completed")
            assert manager.get(job.id).result == {"ok": True}
            assert manager.queue_depth() == 0
        finally:
            release.set()
            manager.shutdown()

    def test_failed_job_reports_error_and_retries(self, metrics_on):
        attempts = []

        def runner(spec, **_opts):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("solver exploded")
            return {"ok": True}

        manager = JobManager(runner=runner)
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "failed")
            assert "solver exploded" in manager.get(job.id).error
            # A failed job is retried under the same id, not deduped.
            retry, created = manager.submit(dict(TINY_SPEC))
            assert created
            assert retry.id == job.id
            wait_for(lambda: manager.get(job.id).status == "completed")
            assert manager.get(job.id).error is None
            counters = observability.registry.snapshot()["counters"]
            assert counters["service.jobs_failed"] == 1
            assert counters["service.jobs_completed"] == 1
            assert counters["service.jobs_accepted"] == 2
        finally:
            manager.shutdown()

    def test_progress_counts_cells(self, metrics_on):
        manager = JobManager(runner=lambda spec, **_opts: {"ok": True})
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "completed")
            progress = manager.get(job.id).progress()
            assert progress["cells_total"] == job_cells(job.spec)
            assert progress["cells_done"] == progress["cells_total"]
            assert set(progress["counters"]) >= {"mc.samples", "solver.calls"}
        finally:
            manager.shutdown()


# ----------------------------------------------------------------------
# Event journal, flight recorder, uptime (no HTTP)
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_ring_eviction_and_truncation(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.append("job.progress", job_id="j", i=i)
        assert journal.last_seq == 5
        assert journal.dropped == 2
        events, truncated = journal.after(0)
        assert truncated  # seqs 1-2 were evicted
        assert [e.seq for e in events] == [3, 4, 5]
        events, truncated = journal.after(3)
        assert not truncated
        assert [e.seq for e in events] == [4, 5]

    def test_per_job_filter_and_wire_shape(self):
        journal = EventJournal(capacity=16)
        journal.append("job.accepted", job_id="a")
        journal.append("job.accepted", job_id="b")
        journal.append("job.completed", job_id="a", run_id="a", seconds=1.5)
        events, truncated = journal.after(0, job_id="a")
        assert not truncated
        assert [e.type for e in events] == ["job.accepted", "job.completed"]
        wire = events[-1].wire()
        assert wire["job_id"] == "a"
        assert wire["run_id"] == "a"
        assert wire["data"] == {"seconds": 1.5}
        assert set(wire) == {"seq", "ts", "type", "job_id", "run_id", "data"}

    def test_overflow_counts_drops(self, metrics_on):
        journal = EventJournal(capacity=1)
        journal.append("job.accepted")
        journal.append("job.accepted")
        counters = observability.registry.snapshot()["counters"]
        assert counters["service.events"] == 2.0
        assert counters["service.events_dropped"] == 1.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


class TestFlightRecorder:
    def test_failed_job_dumps_journal_to_disk(self, metrics_on, tmp_path):
        def runner(spec, **_opts):
            raise RuntimeError("solver exploded")

        manager = JobManager(runner=runner, flight_dir=str(tmp_path))
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "failed")
            flights = wait_for(
                lambda: list(tmp_path.glob("flight-*.json")) or None,
                timeout=10,
            )
        finally:
            manager.shutdown()
        [path] = flights
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.flight/1"
        assert doc["job"]["id"] == job.id
        assert doc["job"]["status"] == "failed"
        assert doc["dropped_events"] == 0
        types = [event["type"] for event in doc["events"]]
        assert "job.accepted" in types
        assert "job.started" in types
        assert types[-1] == "job.failed"
        assert "solver exploded" in doc["events"][-1]["data"]["error"]

    def test_no_flight_dir_means_no_dump(self, metrics_on, tmp_path):
        def runner(spec, **_opts):
            raise RuntimeError("boom")

        manager = JobManager(runner=runner)
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "failed")
        finally:
            manager.shutdown()
        assert not list(tmp_path.glob("flight-*.json"))


def test_uptime_is_monotonic(metrics_on):
    manager = JobManager(runner=lambda spec, **_opts: {"ok": True})
    try:
        first = manager.uptime_seconds()
        assert first >= 0
        time.sleep(0.02)
        assert manager.uptime_seconds() > first
    finally:
        manager.shutdown()


# ----------------------------------------------------------------------
# HTTP surface over a real in-process build
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_server():
    observability.reset()
    observability.enable()
    manager = JobManager()
    background = BackgroundServer(manager)
    url = background.start()
    yield url
    background.stop()
    observability.disable()
    observability.reset()


def completed_job_id(base_url: str) -> str:
    """Submit TINY_SPEC and wait until it is completed (idempotent)."""
    status, body = request("POST", f"{base_url}/v1/jobs", TINY_SPEC)
    assert status in (200, 202), body
    job_id = body["job"]["id"]
    wait_for(
        lambda: request("GET", f"{base_url}/v1/jobs/{job_id}")[1]["job"][
            "status"
        ]
        == "completed",
        timeout=120,
    )
    return job_id


class TestHttpApi:
    def test_submit_poll_result_roundtrip(self, live_server):
        status, body = request("POST", f"{live_server}/v1/jobs", TINY_SPEC)
        assert status in (200, 202)
        assert body["job"]["kind"] == "table"
        job_id = body["job"]["id"]
        assert job_id == spec_fingerprint(normalize_spec(TINY_SPEC))

        job_id = completed_job_id(live_server)
        status, view = request("GET", f"{live_server}/v1/jobs/{job_id}")
        assert status == 200
        progress = view["job"]["progress"]
        assert progress["cells_done"] == progress["cells_total"] == 5
        assert view["job"]["elapsed_seconds"] > 0

        status, result = request(
            "GET", f"{live_server}/v1/jobs/{job_id}/result"
        )
        assert status == 200
        surface = result["result"]
        assert surface["kind"] == "table"
        assert len(surface["corner_grid"]) == 5
        [per_vbody] = surface["surfaces"]
        assert per_vbody["vbody"] == 0.0
        curve = per_vbody["log10_probability"]["any"]
        assert len(curve) == 5
        assert all(isinstance(v, float) and v <= 0.0 for v in curve)

    def test_duplicate_submission_dedupes_without_solver_calls(
        self, live_server
    ):
        job_id = completed_job_id(live_server)

        def healthz_counters():
            return request("GET", f"{live_server}/v1/healthz")[1][
                "telemetry"
            ]["metrics"]["counters"]

        before = healthz_counters()
        status, body = request("POST", f"{live_server}/v1/jobs", TINY_SPEC)
        assert status == 200
        assert body["deduped"] is True
        assert body["job"]["id"] == job_id
        after = healthz_counters()
        assert after["solver.calls"] == before["solver.calls"]
        assert after["mc.samples"] == before["mc.samples"]
        assert (
            after["service.jobs_deduped"]
            == before["service.jobs_deduped"] + 1
        )
        assert after["service.jobs_accepted"] == before["service.jobs_accepted"]

    def test_result_before_completion_is_409(self, live_server):
        # A fresh fingerprint that will sit queued behind nothing but
        # still be running when we ask: use a heavier seed variant and
        # ask for the result immediately after submitting.
        spec = dict(TINY_SPEC, seed=31)
        status, body = request("POST", f"{live_server}/v1/jobs", spec)
        assert status == 202
        job_id = body["job"]["id"]
        status, error = request(
            "GET", f"{live_server}/v1/jobs/{job_id}/result"
        )
        if status == 409:  # still queued/running (the usual path)
            assert error["error"]["code"] == "not-completed"
        else:  # finished before we asked; result must then be served
            assert status == 200

    @pytest.mark.parametrize(
        "payload, code",
        [
            ({"kind": "fig99"}, "unknown-kind"),
            ({"kind": "table", "smapler": "plain"}, "unknown-field"),
            ({"kind": "table", "target": 7}, "invalid-value"),
            ([1, 2, 3], "invalid-spec"),
        ],
    )
    def test_malformed_specs_are_400(self, live_server, payload, code):
        status, body = request("POST", f"{live_server}/v1/jobs", payload)
        assert status == 400
        assert body["error"]["code"] == code

    def test_undecodable_body_is_invalid_json(self, live_server):
        req = urllib.request.Request(
            f"{live_server}/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        assert (
            json.loads(excinfo.value.read().decode())["error"]["code"]
            == "invalid-json"
        )

    def test_unknown_job_and_route_are_404(self, live_server):
        status, body = request("GET", f"{live_server}/v1/jobs/deadbeef")
        assert status == 404
        assert body["error"]["code"] == "unknown-job"
        status, body = request("GET", f"{live_server}/v2/jobs")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_wrong_method_is_405(self, live_server):
        status, body = request("GET", f"{live_server}/v1/jobs")
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"

    def test_healthz_contract(self, live_server):
        status, health = request("GET", f"{live_server}/v1/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert set(health["jobs"]) == {
            "queued", "running", "completed", "failed",
        }
        telemetry = health["telemetry"]
        assert telemetry["schema"] == "repro.telemetry/1"
        counters = telemetry["metrics"]["counters"]
        # Baseline contract: the service keys exist even at zero.
        for name in (
            "service.jobs_accepted",
            "service.jobs_deduped",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.requests",
        ):
            assert name in counters, name
        assert "service.queue_depth" in telemetry["metrics"]["gauges"]
        summaries = telemetry["metrics"]["histograms"]
        assert "service.request_seconds" in summaries
        # Healthz keeps the summary but drops the raw reservoir.
        assert "reservoir" not in summaries["service.request_seconds"]


# ----------------------------------------------------------------------
# SSE event streams
# ----------------------------------------------------------------------
class TestEventStreams:
    def test_job_stream_replays_full_lifecycle(self, live_server):
        spec = dict(TINY_SPEC, seed=53)
        status, body = request("POST", f"{live_server}/v1/jobs", spec)
        assert status in (200, 202)
        job_id = body["job"]["id"]

        messages = read_sse(f"{live_server}/v1/jobs/{job_id}/events")
        # The framing snapshot opens the stream, un-id'd (it is not a
        # journal event, so a reconnect must not resume past it).
        first_id, first_type, first_payload = messages[0]
        assert first_type == "job.state"
        assert first_id is None
        assert first_payload["id"] == job_id

        ids = [i for i, _, _ in messages[1:]]
        types = [t for _, t, _ in messages[1:]]
        assert types[0] == "job.accepted"
        assert "job.started" in types
        assert "job.progress" in types
        assert types[-1] == "job.completed"
        assert ids == sorted(ids)  # seqs strictly ordered
        assert len(set(ids)) == len(ids)
        assert all(p["job_id"] == job_id for _, _, p in messages[1:])
        assert messages[-1][2]["data"]["seconds"] > 0

    def test_resume_with_last_event_id_skips_replay(self, live_server):
        spec = dict(TINY_SPEC, seed=59)
        status, body = request("POST", f"{live_server}/v1/jobs", spec)
        assert status in (200, 202)
        job_id = body["job"]["id"]
        url = f"{live_server}/v1/jobs/{job_id}/events"

        full = read_sse(url)
        started_seq = next(
            i for i, t, _ in full if t == "job.started"
        )
        resumed = read_sse(url, last_event_id=started_seq)
        assert resumed[0][1] == "job.state"
        types = [t for _, t, _ in resumed[1:]]
        assert "job.accepted" not in types
        assert "job.started" not in types
        assert types[-1] == "job.completed"
        assert all(i > started_seq for i, _, _ in resumed[1:])

    def test_resume_past_the_end_closes_on_the_snapshot(self, live_server):
        job_id = completed_job_id(live_server)
        messages = read_sse(
            f"{live_server}/v1/jobs/{job_id}/events",
            last_event_id=10**9,
            timeout=30,
        )
        [(event_id, event_type, payload)] = messages
        assert event_id is None
        assert event_type == "job.state"
        assert payload["status"] == "completed"

    def test_invalid_last_event_id_is_400(self, live_server):
        job_id = completed_job_id(live_server)
        req = urllib.request.Request(
            f"{live_server}/v1/jobs/{job_id}/events",
            headers={"Last-Event-ID": "banana"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        assert (
            json.loads(excinfo.value.read().decode())["error"]["code"]
            == "invalid-last-event-id"
        )

    def test_stream_for_unknown_job_is_404(self, live_server):
        status, body = request(
            "GET", f"{live_server}/v1/jobs/deadbeef/events"
        )
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

    def test_global_stream_carries_every_job(self, live_server):
        completed_job_id(live_server)
        # The global stream never terminates; replay the journal from
        # the start and hang up once a terminal event arrives.
        messages = read_sse(
            f"{live_server}/v1/events",
            last_event_id=0,
            timeout=30,
            stop=lambda m: m[1] == "job.completed",
        )
        types = [t for _, t, _ in messages]
        assert "job.accepted" in types
        assert types[-1] == "job.completed"

    def test_events_endpoint_is_get_only(self, live_server):
        status, body = request("POST", f"{live_server}/v1/events", {})
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"

    def test_loadgen_follow_rides_the_stream(self, live_server):
        summary = run_load(
            live_server,
            spec=dict(TINY_SPEC, seed=61),
            duplicates=2,
            result_gets=2,
            follow=True,
        )
        # At minimum: accepted, started, one progress, completed (the
        # framing snapshot too, unless the job outran the connect).
        assert summary["follow_events"] >= 4


# ----------------------------------------------------------------------
# Prometheus scrape endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_page_parses_and_matches_healthz(self, live_server):
        completed_job_id(live_server)
        _, health = request("GET", f"{live_server}/v1/healthz")
        status, headers, page = fetch_raw(f"{live_server}/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )

        families = parse_exposition(page)
        counters = health["telemetry"]["metrics"]["counters"]
        # Nothing submits between the two reads, so job counters agree
        # exactly; service.requests only ever moves up (the healthz GET
        # itself is counted by the time the scrape renders).
        for name in (
            "service.jobs_accepted",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.events_dropped",
        ):
            family = families[name.replace(".", "_")]
            assert family.type == "counter", name
            assert family.value() == counters[name], name
        assert (
            families["service_requests"].value()
            >= counters["service.requests"]
        )
        assert families["service_uptime_seconds"].type == "gauge"
        assert families["service_uptime_seconds"].value() >= 0
        summary = families["service_request_seconds"]
        assert summary.type == "summary"
        assert summary.value("_count") > 0
        assert summary.value("_sum") > 0
        assert summary.value("", {"quantile": "0.5"}) >= 0

    def test_scrape_is_get_only(self, live_server):
        status, body = request("POST", f"{live_server}/v1/metrics", {})
        assert status == 405
        assert body["error"]["code"] == "method-not-allowed"


# ----------------------------------------------------------------------
# Kill-and-restart: a SIGKILLed build resumes from its checkpoint
# ----------------------------------------------------------------------
#: Slow enough (~1 s per grid cell) to be killed mid-build reliably.
RESUME_SPEC = {
    "kind": "table",
    "target": 1e-2,
    "calibration_samples": 2_000,
    "analysis_samples": 8_000,
    "sampler": "plain",
    "table_grid": 9,
    "seed": 13,
    "vbody_levels": [0.0],
}


def start_server(tmp_path: pathlib.Path) -> tuple[subprocess.Popen, str]:
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--checkpoint-every", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith("listening on "), line
    return proc, line.split()[-1].strip()


@pytest.mark.slow
def test_kill_and_restart_resumes_from_checkpoint(tmp_path):
    proc, url = start_server(tmp_path)
    try:
        status, body = request("POST", f"{url}/v1/jobs", RESUME_SPEC)
        assert status == 202
        job_id = body["job"]["id"]

        def flushes() -> float:
            _, view = request("GET", f"{url}/v1/jobs/{job_id}")
            assert view["job"]["status"] in ("queued", "running"), (
                "build finished before it could be killed - slow the "
                "RESUME_SPEC down"
            )
            return view["job"]["progress"]["counters"]["checkpoint.flushes"]

        # Wait one flush beyond what we rely on: the counter ticks as
        # a flush starts, so SIGKILL right after the Nth observation
        # may lose that flush's cell (atomic-rename not yet done).
        wait_for(lambda: flushes() >= 3, timeout=60)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

    # The checkpoint directory holds the flushed cells.
    assert any((tmp_path / "ckpt").iterdir())

    proc, url = start_server(tmp_path)
    try:
        # A fresh server has no in-memory job state; resubmitting the
        # same spec maps to the same id and resumes from the flush.
        status, body = request("POST", f"{url}/v1/jobs", RESUME_SPEC)
        assert status == 202
        assert body["job"]["id"] == job_id
        wait_for(
            lambda: request("GET", f"{url}/v1/jobs/{job_id}")[1]["job"][
                "status"
            ]
            == "completed",
            timeout=120,
        )
        _, view = request("GET", f"{url}/v1/jobs/{job_id}")
        counters = view["job"]["progress"]["counters"]
        assert counters["checkpoint.resumed_cells"] >= 1
        status, result = request("GET", f"{url}/v1/jobs/{job_id}/result")
        assert status == 200
        [surface] = result["result"]["surfaces"]
        assert len(surface["log10_probability"]["any"]) == 9
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)


# ----------------------------------------------------------------------
# Run-scoped attribution: journal under concurrency, per-job telemetry,
# and concurrent execution (--job-workers) vs. the serial baseline
# ----------------------------------------------------------------------
class TestJournalConcurrency:
    def _interleave(self, journal, per_job=50):
        """Two threads, each emitting ``per_job`` events for its own job
        from inside that job's RunContext, started on a barrier so the
        appends genuinely interleave."""
        barrier = threading.Barrier(2)

        def emit(job_id: str) -> None:
            with observability.RunContext(job_id):
                barrier.wait(timeout=10)
                for i in range(per_job):
                    journal.append("job.progress", job_id=job_id, i=i)

        threads = [
            threading.Thread(target=emit, args=(job,))
            for job in ("job-a", "job-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

    def test_interleaved_seqs_stay_unique_and_monotone(self):
        journal = EventJournal(capacity=256)
        self._interleave(journal)
        events, truncated = journal.after(0)
        assert not truncated
        assert len(events) == 100
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 100

    def test_per_job_filter_sees_only_its_run(self):
        journal = EventJournal(capacity=256)
        self._interleave(journal)
        for job in ("job-a", "job-b"):
            events, truncated = journal.after(0, job_id=job)
            assert not truncated
            assert len(events) == 50
            # Ambient stamping: the run scope active on the emitting
            # thread supplied the run_id, no explicit argument.
            assert all(e.run_id == job for e in events)
            assert [e.data["i"] for e in events] == list(range(50))

    def test_per_job_resume_has_no_spurious_truncation_gap(self):
        # A job's events are sparse in the global sequence space (the
        # gaps belong to the other job).  Resuming from the last seen
        # seq must not read those gaps as eviction loss.
        journal = EventJournal(capacity=256)
        self._interleave(journal, per_job=20)
        events, _ = journal.after(0, job_id="job-a")
        midpoint = events[9].seq
        resumed, truncated = journal.after(midpoint, job_id="job-a")
        assert not truncated
        assert [e.data["i"] for e in resumed] == list(range(10, 20))

    def test_resume_after_eviction_flags_the_gap(self):
        journal = EventJournal(capacity=8)
        self._interleave(journal, per_job=20)  # 40 appends, 32 evicted
        assert journal.dropped == 32
        events, truncated = journal.after(0, job_id="job-a")
        assert truncated  # resume-from-zero lost events: flagged
        # Resuming from a still-buffered position is clean even though
        # earlier events (of both jobs) were evicted.
        all_events, _ = journal.after(0)
        events, truncated = journal.after(all_events[0].seq - 1)
        assert not truncated
        assert [e.seq for e in events] == [e.seq for e in all_events]
        # One seq earlier crosses the eviction boundary.
        events, truncated = journal.after(all_events[0].seq - 2)
        assert truncated


def _scope_probe_runner(barrier=None):
    """An injected runner with deterministic instrumentation: counter
    and span volume derived from the spec, so two different specs have
    provably different (and predictable) telemetry."""

    def runner(spec, **_opts):
        if barrier is not None:
            barrier.wait(timeout=60)
        from repro.observability.metrics import incr
        from repro.observability.tracing import trace

        with trace("probe.job"):
            for _ in range(spec["table_grid"]):
                with trace("probe.cell"):
                    incr("probe.cells")
            incr("mc.samples", spec["analysis_samples"])
        return {"grid": spec["table_grid"]}

    return runner


def _canon_trace(node):
    return {
        "name": node["name"],
        "calls": node["calls"],
        "children": [_canon_trace(child) for child in node["children"]],
    }


def _canon_telemetry(snapshot):
    """A telemetry snapshot with every timing stripped: identical for
    identical work, regardless of scheduling."""
    return {
        "schema": snapshot["schema"],
        "run_id": snapshot["run_id"],
        "counters": snapshot["metrics"]["counters"],
        "gauges": snapshot["metrics"]["gauges"],
        "trace": _canon_trace(snapshot["trace"]),
        "diagnostics": sorted(snapshot["diagnostics"].get("scopes", {})),
    }


class TestConcurrentJobs:
    SPEC_A = dict(TINY_SPEC, table_grid=5)
    SPEC_B = dict(TINY_SPEC, table_grid=7, seed=777)

    def _run_jobs(self, manager, specs):
        jobs = [manager.submit(dict(spec))[0] for spec in specs]
        for job in jobs:
            wait_for(lambda j=job: manager.get(j.id).status == "completed")
        return jobs

    def test_concurrent_results_and_telemetry_match_serial(self, metrics_on):
        serial = JobManager(runner=_scope_probe_runner(), job_workers=1)
        try:
            baseline = {
                job.id: (job.result, _canon_telemetry(job.telemetry_snapshot()))
                for job in self._run_jobs(serial, [self.SPEC_A, self.SPEC_B])
            }
        finally:
            serial.shutdown()

        observability.reset()
        observability.enable()
        # The barrier holds each job until BOTH occupy a worker slot:
        # the two jobs provably execute concurrently.
        barrier = threading.Barrier(2)
        concurrent = JobManager(
            runner=_scope_probe_runner(barrier), job_workers=2
        )
        try:
            jobs = self._run_jobs(concurrent, [self.SPEC_A, self.SPEC_B])
            assert {job.id for job in jobs} == set(baseline)
            for job in jobs:
                want_result, want_telemetry = baseline[job.id]
                assert job.result == want_result
                assert _canon_telemetry(job.telemetry_snapshot()) == want_telemetry
            counters = observability.registry.snapshot()["counters"]
            assert counters.get("service.jobs_failed", 0.0) == 0.0
            assert counters["service.jobs_completed"] == 2.0
            assert counters.get("service.events_dropped", 0.0) == 0.0
        finally:
            concurrent.shutdown()

    def test_attribution_is_disjoint_and_exact(self, metrics_on):
        barrier = threading.Barrier(2)
        manager = JobManager(
            runner=_scope_probe_runner(barrier), job_workers=2
        )
        try:
            job_a, job_b = self._run_jobs(manager, [self.SPEC_A, self.SPEC_B])
            telem_a = manager.get(job_a.id).telemetry_snapshot()
            telem_b = manager.get(job_b.id).telemetry_snapshot()
        finally:
            manager.shutdown()
        # Each scope holds exactly its own job's work — not a share of
        # the global totals, not a delta polluted by the neighbour.
        assert telem_a["run_id"] == job_a.id
        assert telem_b["run_id"] == job_b.id
        assert telem_a["metrics"]["counters"]["probe.cells"] == 5.0
        assert telem_b["metrics"]["counters"]["probe.cells"] == 7.0
        assert telem_a["metrics"]["counters"]["mc.samples"] == 600.0
        assert telem_b["metrics"]["counters"]["mc.samples"] == 600.0
        for telem, cells in ((telem_a, 5), (telem_b, 7)):
            (root,) = [
                c for c in telem["trace"]["children"]
                if c["name"] == "probe.job"
            ]
            (cell,) = root["children"]
            assert cell["calls"] == cells
        # The global registry still has the whole-process totals.
        counters = observability.registry.snapshot()["counters"]
        assert counters["probe.cells"] == 12.0
        # Progress reads the scope: exact per-job counters.
        assert manager.get(job_a.id).progress()["counters"]["mc.samples"] == 600.0

    def test_queued_job_has_no_telemetry_yet(self, metrics_on):
        started, release = threading.Event(), threading.Event()

        def runner(spec, **_opts):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}

        manager = JobManager(runner=runner, job_workers=1)
        try:
            first, _ = manager.submit(dict(self.SPEC_A))
            assert started.wait(timeout=10)
            queued, _ = manager.submit(dict(self.SPEC_B))
            assert manager.get(queued.id).status == "queued"
            assert manager.get(queued.id).telemetry_snapshot() is None
            # The running job already serves a live snapshot.
            live = manager.get(first.id).telemetry_snapshot()
            assert live["run_id"] == first.id
            release.set()
            wait_for(lambda: manager.get(queued.id).status == "completed")
            assert manager.get(queued.id).telemetry_snapshot()["run_id"] == queued.id
        finally:
            release.set()
            manager.shutdown()

    def test_job_workers_validated(self):
        with pytest.raises(ValueError):
            JobManager(runner=lambda spec, **_o: {}, job_workers=0)

    def test_completed_job_persists_telemetry_beside_flights(
        self, metrics_on, tmp_path
    ):
        manager = JobManager(
            runner=_scope_probe_runner(), flight_dir=str(tmp_path)
        )
        try:
            [job] = self._run_jobs(manager, [self.SPEC_A])
        finally:
            manager.shutdown()
        [path] = list(tmp_path.glob("telemetry-*.json"))
        doc = json.loads(path.read_text())
        assert doc["run_id"] == job.id
        assert doc["schema"] == observability.SCHEMA
        assert doc["metrics"]["counters"]["probe.cells"] == 5.0
        assert not list(tmp_path.glob("flight-*.json"))  # no failure


class TestTelemetryEndpoint:
    def test_serves_the_jobs_own_snapshot(self, live_server):
        job_id = completed_job_id(live_server)
        status, body = request(
            "GET", f"{live_server}/v1/jobs/{job_id}/telemetry"
        )
        assert status == 200
        assert body["job_id"] == job_id
        assert body["run_id"] == job_id
        assert body["status"] == "completed"
        telemetry = body["telemetry"]
        assert telemetry["schema"] == observability.SCHEMA
        assert telemetry["run_id"] == job_id
        counters = telemetry["metrics"]["counters"]
        assert counters["mc.samples"] > 0
        # The progress block and the telemetry endpoint agree exactly:
        # both read the same frozen scope.
        _, view = request("GET", f"{live_server}/v1/jobs/{job_id}")
        for name, value in view["job"]["progress"]["counters"].items():
            assert counters.get(name, 0.0) == value

    def test_unknown_job_is_404(self, live_server):
        status, body = request(
            "GET", f"{live_server}/v1/jobs/deadbeef/telemetry"
        )
        assert status == 404
        assert body["error"]["code"] == "unknown-job"

    def test_queued_job_is_409(self, metrics_on):
        started, release = threading.Event(), threading.Event()

        def runner(spec, **_opts):
            started.set()
            assert release.wait(timeout=30)
            return {"ok": True}

        manager = JobManager(runner=runner, job_workers=1)
        background = BackgroundServer(manager)
        url = background.start()
        try:
            first, _ = manager.submit(dict(TINY_SPEC))
            assert started.wait(timeout=10)
            queued, _ = manager.submit(
                dict(TINY_SPEC, seed=4242)
            )
            status, body = request(
                "GET", f"{url}/v1/jobs/{queued.id}/telemetry"
            )
            assert status == 409
            assert body["error"]["code"] == "not-started"
            # The running neighbour serves live telemetry meanwhile.
            status, body = request(
                "GET", f"{url}/v1/jobs/{first.id}/telemetry"
            )
            assert status == 200
            assert body["status"] == "running"
            assert body["telemetry"]["run_id"] == first.id
        finally:
            release.set()
            background.stop()


class TestServiceEventRunIds:
    def test_lifecycle_events_carry_the_job_run_id(self, metrics_on):
        manager = JobManager(runner=_scope_probe_runner())
        try:
            job, _ = manager.submit(dict(TINY_SPEC))
            wait_for(lambda: manager.get(job.id).status == "completed")
            events, _ = manager.journal.after(0, job_id=job.id)
        finally:
            manager.shutdown()
        assert [e.type for e in events][0] == "job.accepted"
        assert events[-1].type == "job.completed"
        assert all(e.run_id == job.id for e in events)
        assert all(e.wire()["run_id"] == job.id for e in events)
