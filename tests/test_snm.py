"""Tests for the static-noise-margin module."""

import numpy as np
import pytest

from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.snm import butterfly_snm, hold_snm, inverter_vtc, read_snm
from repro.technology.corners import ProcessCorner


@pytest.fixture(scope="module")
def nominal_cell():
    from repro.technology import predictive_70nm

    return SixTCell(predictive_70nm(), CellGeometry(), ProcessCorner(0.0))


class TestInverterVtc:
    def test_monotone_decreasing(self, nominal_cell):
        vin = np.linspace(0.0, 1.0, 21)
        vtc = inverter_vtc(nominal_cell, "left", 1.0, vin)
        assert vtc.shape == (21, 1)
        assert np.all(np.diff(vtc[:, 0]) <= 1e-9)

    def test_read_loading_lifts_the_low_level(self, nominal_cell):
        vin = np.array([1.0])
        hold = float(inverter_vtc(nominal_cell, "left", 1.0, vin)[0, 0])
        read = float(
            inverter_vtc(nominal_cell, "left", 1.0, vin, read_mode=True)[0, 0]
        )
        assert read > hold + 0.05  # the access transistor drags it up

    def test_bad_side_rejected(self, nominal_cell):
        with pytest.raises(ValueError):
            inverter_vtc(nominal_cell, "middle", 1.0, np.array([0.5]))


class TestSnmValues:
    def test_magnitudes_are_physical(self, nominal_cell):
        hold = float(hold_snm(nominal_cell, 1.0)[0])
        read = float(read_snm(nominal_cell, 1.0)[0])
        # Hold SNM: a healthy fraction of VDD/2; read SNM much smaller.
        assert 0.2 < hold < 0.5
        assert 0.05 < read < 0.25
        assert read < hold

    def test_rbb_improves_read_snm(self, nominal_cell):
        """The paper's read-repair mechanism in SNM terms."""
        zbb = float(read_snm(nominal_cell, 1.0, vbody_n=0.0)[0])
        rbb = float(read_snm(nominal_cell, 1.0, vbody_n=-0.4)[0])
        fbb = float(read_snm(nominal_cell, 1.0, vbody_n=0.25)[0])
        assert rbb > zbb > fbb

    def test_hold_snm_shrinks_with_supply(self, nominal_cell):
        """The DRV is where the hold SNM collapses to ~0."""
        s10 = float(hold_snm(nominal_cell, 1.0)[0])
        s03 = float(hold_snm(nominal_cell, 0.3)[0])
        s015 = float(hold_snm(nominal_cell, 0.15)[0])
        assert s10 > s03 > s015
        assert s015 < 0.03

    def test_low_vt_corner_hurts_read_snm(self, nominal_cell):
        leaky = nominal_cell.at_corner(ProcessCorner(-0.08))
        assert float(read_snm(leaky, 1.0)[0]) < float(
            read_snm(nominal_cell, 1.0)[0]
        )

    def test_population_statistics(self, tech, geometry):
        rng = np.random.default_rng(2)
        dvt = sample_cell_dvt(tech, geometry, rng, 500)
        population = SixTCell(tech, geometry, ProcessCorner(0.0), dvt)
        snm = read_snm(population, 1.0)
        assert snm.shape == (500,)
        assert np.all(snm >= 0.0)
        # RDF spreads the read SNM by tens of millivolts.
        assert 0.005 < snm.std() < 0.05

    def test_stronger_pull_down_improves_read_snm(self, tech):
        weak = SixTCell(tech, CellGeometry(w_pull_down=150e-9))
        strong = SixTCell(tech, CellGeometry(w_pull_down=300e-9))
        assert float(read_snm(strong, 1.0)[0]) > float(read_snm(weak, 1.0)[0])

    def test_monolithic_entry_point(self, nominal_cell):
        direct = butterfly_snm(nominal_cell, 1.0, read_mode=True)
        assert float(direct[0]) == pytest.approx(
            float(read_snm(nominal_cell, 1.0)[0])
        )
