"""Tests for sigma-scaled importance sampling — unbiasedness above all."""

import numpy as np
import pytest

from repro.sram.cell import TRANSISTORS, cell_sigma_vt
from repro.stats.montecarlo import probability_of
from repro.stats.sampling import importance_sample_dvt


def test_sample_structure(tech, geometry, rng):
    sample = importance_sample_dvt(tech, geometry, rng, 1000, scale=2.0)
    assert set(sample.dvt) == set(TRANSISTORS)
    assert sample.weights.shape == (1000,)
    assert sample.n_samples == 1000


def test_weights_average_to_one(tech, geometry, rng):
    """Likelihood ratios integrate to 1 under the proposal."""
    sample = importance_sample_dvt(tech, geometry, rng, 200_000, scale=2.0)
    assert np.mean(sample.weights) == pytest.approx(1.0, abs=0.02)


def test_scale_one_degenerates_to_plain_mc(tech, geometry, rng):
    sample = importance_sample_dvt(tech, geometry, rng, 1000, scale=1.0)
    np.testing.assert_allclose(sample.weights, 1.0)


def test_proposal_sigma_is_inflated(tech, geometry, rng):
    sample = importance_sample_dvt(tech, geometry, rng, 100_000, scale=2.0)
    sigmas = cell_sigma_vt(tech, geometry)
    for name in TRANSISTORS:
        assert np.std(sample.dvt[name]) == pytest.approx(
            2.0 * sigmas[name], rel=0.03
        )


def test_importance_estimate_matches_plain_mc(tech, geometry):
    """IS and plain MC agree on a moderately rare analytic event.

    Event: the NL threshold delta alone exceeds 2.5 sigma
    (P ~ 6.2e-3) — checked against both the analytic value and a plain
    Monte-Carlo estimate.
    """
    sigma_nl = cell_sigma_vt(tech, geometry)["nl"]
    threshold = 2.5 * sigma_nl

    is_sample = importance_sample_dvt(
        tech, geometry, np.random.default_rng(1), 200_000, scale=2.0
    )
    is_result = probability_of(
        is_sample.dvt["nl"] > threshold, is_sample.weights
    )

    plain = importance_sample_dvt(
        tech, geometry, np.random.default_rng(2), 200_000, scale=1.0
    )
    plain_result = probability_of(plain.dvt["nl"] > threshold)

    from scipy.stats import norm

    analytic = float(norm.sf(2.5))
    assert is_result.estimate == pytest.approx(analytic, rel=0.10)
    assert is_result.within(plain_result, n_sigma=4.0)


def test_importance_sampling_reduces_rare_event_error(tech, geometry):
    """For a 4-sigma event the IS estimator has far smaller stderr."""
    sigma_nl = cell_sigma_vt(tech, geometry)["nl"]
    threshold = 4.0 * sigma_nl
    n = 100_000

    is_sample = importance_sample_dvt(
        tech, geometry, np.random.default_rng(3), n, scale=2.0
    )
    is_result = probability_of(
        is_sample.dvt["nl"] > threshold, is_sample.weights
    )
    from scipy.stats import norm

    analytic = float(norm.sf(4.0))  # ~3.2e-5
    assert is_result.estimate == pytest.approx(analytic, rel=0.25)
    # Plain MC stderr at this n would be sqrt(p/n) ~ 5.6e-7 ~ 18% rel;
    # the IS stderr should be several times smaller.
    assert is_result.stderr < 0.5 * np.sqrt(analytic / n)


def test_invalid_scale_rejected(tech, geometry, rng):
    with pytest.raises(ValueError):
        importance_sample_dvt(tech, geometry, rng, 10, scale=0.5)
