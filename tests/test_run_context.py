"""Tests for run-scoped telemetry (``repro.observability.context``).

Covers the :class:`RunScope` / :class:`RunContext` attribution layer:
dual-write into the ambient scope alongside the global registry, span
mirroring, thread isolation between concurrent scopes, run-id
propagation across the :class:`ParallelExecutor` pool boundary, run-id
stamping on structured log events, and the ``HumanFormatter`` k=v
quoting the stamped lines rely on.
"""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro import observability
from repro.observability import context, log
from repro.observability.context import RunContext, RunScope
from repro.observability.log import HumanFormatter, get_logger
from repro.observability.metrics import incr, observe, set_gauge
from repro.observability.tracing import trace
from repro.parallel.executor import ParallelExecutor


@pytest.fixture(autouse=True)
def clean_observability():
    """Every test starts and ends with collection off, empty, unscoped."""
    observability.disable()
    observability.reset()
    context.activate(None)
    yield
    context.activate(None)
    observability.disable()
    observability.reset()
    observability.configure_logging(verbosity=0)


# ----------------------------------------------------------------------
# RunScope / RunContext semantics
# ----------------------------------------------------------------------
class TestRunScope:
    def test_requires_nonempty_run_id(self):
        for bad in ("", "   ", None, 7):
            with pytest.raises((ValueError, TypeError)):
                RunScope(bad)

    def test_snapshot_shape(self):
        scope = RunScope("r1")
        snap = scope.snapshot()
        assert snap["schema"] == observability.SCHEMA
        assert snap["run_id"] == "r1"
        assert set(snap) >= {"schema", "run_id", "metrics", "trace",
                             "diagnostics"}
        assert snap["metrics"]["counters"] == {}

    def test_counter_value_reads_without_creating(self):
        scope = RunScope("r1")
        assert scope.counter_value("never.written") == 0.0
        assert scope.registry.snapshot()["counters"] == {}
        scope.registry.counter("x").inc(3.0)
        assert scope.counter_value("x") == 3.0


class TestDualWrite:
    def test_metrics_land_in_scope_and_global(self):
        observability.enable()
        with RunContext("r1") as scope:
            incr("mc.samples", 100)
            set_gauge("depth", 4.0)
            observe("latency", 0.5)
        scoped = scope.snapshot()["metrics"]
        assert scoped["counters"]["mc.samples"] == 100.0
        assert scoped["gauges"]["depth"] == 4.0
        assert scoped["histograms"]["latency"]["count"] == 1
        # The global registry saw the very same instrument writes.
        top = observability.registry.snapshot()
        assert top["counters"]["mc.samples"] == 100.0
        assert top["gauges"]["depth"] == 4.0

    def test_no_scope_means_global_only(self):
        observability.enable()
        incr("mc.samples", 7)
        assert observability.registry.snapshot()["counters"][
            "mc.samples"
        ] == 7.0
        assert context.current_scope() is None

    def test_disabled_collection_writes_nowhere(self):
        with RunContext("r1") as scope:
            incr("mc.samples", 5)
        assert scope.snapshot()["metrics"]["counters"] == {}
        assert observability.registry.snapshot()["counters"] == {}

    def test_nested_scope_shadows_outer(self):
        observability.enable()
        with RunContext("outer") as outer:
            incr("k", 1)
            with RunContext("inner") as inner:
                assert context.current_run_id() == "inner"
                incr("k", 10)
            assert context.current_run_id() == "outer"
            incr("k", 100)
        assert outer.counter_value("k") == 101.0
        assert inner.counter_value("k") == 10.0
        assert observability.registry.snapshot()["counters"]["k"] == 111.0

    def test_exit_restores_previous_scope(self):
        with RunContext("a"):
            with RunContext("b"):
                pass
            assert context.current_run_id() == "a"
        assert context.current_run_id() is None

    def test_spans_mirror_into_the_scope(self):
        observability.enable()
        with RunContext("r1") as scope:
            with trace("build"):
                with trace("solve"):
                    pass
                with trace("solve"):
                    pass
        (build,) = scope.tracer.snapshot()["children"]
        assert build["name"] == "build"
        (solve,) = build["children"]
        assert solve["calls"] == 2
        assert solve["seconds"] <= build["seconds"]
        # Global tree has the identical subtree — same call counts.
        (gbuild,) = observability.tracer.snapshot()["children"]
        assert gbuild["children"][0]["calls"] == 2

    def test_decorator_form_mirrors_too(self):
        observability.enable()

        @trace("fn")
        def fn():
            return 42

        with RunContext("r1") as scope:
            assert fn() == 42
        (span,) = scope.tracer.snapshot()["children"]
        assert span["name"] == "fn"
        assert span["calls"] == 1


class TestThreadIsolation:
    def test_concurrent_scopes_attribute_disjointly(self):
        observability.enable()
        scopes: dict[str, RunScope] = {}
        barrier = threading.Barrier(2)

        def work(run_id: str, amount: int) -> None:
            with RunContext(run_id) as scope:
                scopes[run_id] = scope
                barrier.wait(timeout=10)
                for _ in range(amount):
                    incr("work.units")
                barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=work, args=("job-a", 30)),
            threading.Thread(target=work, args=("job-b", 50)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert scopes["job-a"].counter_value("work.units") == 30.0
        assert scopes["job-b"].counter_value("work.units") == 50.0
        # The main thread never saw either scope.
        assert context.current_scope() is None

    def test_scope_does_not_leak_into_new_threads(self):
        observability.enable()
        seen: list[str | None] = []
        with RunContext("r1"):
            thread = threading.Thread(
                target=lambda: seen.append(context.current_run_id())
            )
            thread.start()
            thread.join(timeout=10)
        # A new thread starts on a fresh contextvars context, so it does
        # NOT inherit the creator's scope — propagation is explicit
        # (RunContext in the thread body, or the executor payload).
        assert seen == [None]


# ----------------------------------------------------------------------
# Propagation across the ParallelExecutor pool boundary
# ----------------------------------------------------------------------
def _scoped_square(task: int) -> int:
    incr("square.calls")
    assert context.current_run_id() == "pool-run"
    with trace("square"):
        return task * task


def _tagged_call(task: int) -> str | None:
    return context.current_run_id()


class TestExecutorPropagation:
    def test_workers_inherit_run_id_and_merge_into_scope(self):
        observability.enable()
        with RunContext("pool-run") as scope:
            with trace("sweep"):
                results = ParallelExecutor(workers=2).map(
                    _scoped_square, list(range(6))
                )
        assert results == [0, 1, 4, 9, 16, 25]
        # Worker-side writes were merged back into the run scope, under
        # the span that was open at merge time.
        assert scope.counter_value("square.calls") == 6.0
        (sweep,) = scope.tracer.snapshot()["children"]
        square = {c["name"]: c for c in sweep["children"]}["square"]
        assert square["calls"] == 6
        # And into the global registry, as before.
        counters = observability.registry.snapshot()["counters"]
        assert counters["square.calls"] == 6.0

    def test_uncollected_map_still_propagates_run_id(self):
        # Collection off: workers skip snapshotting but still see the id
        # (log correlation must survive --log-json without --metrics-out).
        with RunContext("pool-run"):
            seen = ParallelExecutor(workers=2).map(_tagged_call, range(4))
        assert seen == ["pool-run"] * 4

    def test_serial_map_runs_in_the_callers_scope(self):
        observability.enable()
        with RunContext("pool-run") as scope:
            ParallelExecutor(workers=1).map(_scoped_square, range(3))
        assert scope.counter_value("square.calls") == 3.0

    def test_no_scope_means_workers_unscoped(self):
        observability.enable()
        seen = ParallelExecutor(workers=2).map(_tagged_call, range(4))
        assert seen == [None] * 4


# ----------------------------------------------------------------------
# Log stamping + HumanFormatter quoting
# ----------------------------------------------------------------------
def _capture_line(json_lines: bool, emit) -> str:
    stream = io.StringIO()
    log.configure(verbosity=1, json_lines=json_lines, stream=stream)
    try:
        emit(get_logger("test"))
    finally:
        log.configure(verbosity=0)
    lines = [l for l in stream.getvalue().splitlines() if l]
    assert len(lines) == 1, lines
    return lines[0]


class TestLogRunIdStamping:
    def test_json_events_carry_ambient_run_id(self):
        with RunContext("smoke"):
            line = _capture_line(
                True, lambda lg: lg.info("evt", grid=5)
            )
        payload = json.loads(line)
        assert payload["run_id"] == "smoke"
        assert payload["event"] == "evt"
        assert payload["grid"] == 5

    def test_human_line_leads_with_run_id(self):
        with RunContext("smoke"):
            line = _capture_line(
                False, lambda lg: lg.info("evt", grid=5)
            )
        assert " evt run_id=smoke grid=5" in line

    def test_explicit_run_id_field_wins(self):
        with RunContext("ambient"):
            line = _capture_line(
                True, lambda lg: lg.info("evt", run_id="mine")
            )
        assert json.loads(line)["run_id"] == "mine"

    def test_stamping_works_with_metrics_off(self):
        assert not observability.enabled()
        with RunContext("smoke"):
            line = _capture_line(True, lambda lg: lg.info("evt"))
        assert json.loads(line)["run_id"] == "smoke"

    def test_no_scope_means_no_run_id_key(self):
        line = _capture_line(True, lambda lg: lg.info("evt", grid=5))
        assert "run_id" not in json.loads(line)


class TestHumanFormatterQuoting:
    def _format(self, **fields) -> str:
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "evt", (), None
        )
        record.event_fields = fields
        return HumanFormatter().format(record)

    def test_plain_values_stay_bare(self):
        line = self._format(grid=5, sampler="adaptive-is")
        assert line.endswith("evt grid=5 sampler=adaptive-is")

    @pytest.mark.parametrize(
        "value, rendered",
        [
            ("hello world", '"hello world"'),
            ("a=b", '"a=b"'),
            ('say "hi"', '"say \\"hi\\""'),
            ("", '""'),
            ("back\\slash and space", '"back\\\\slash and space"'),
        ],
    )
    def test_values_needing_quotes_are_quoted(self, value, rendered):
        line = self._format(msg=value)
        assert line.endswith(f"evt msg={rendered}")
        # The line must stay whitespace-splittable: the quoted value is
        # one shlex token, round-tripping to the original text.
        import shlex

        token = shlex.split(line.split("evt msg=", 1)[1])
        assert token == [value]

    def test_float_rendering_unchanged(self):
        line = self._format(p=0.123456789)
        assert line.endswith("evt p=0.123457")


# ----------------------------------------------------------------------
# Experiments CLI --run-id (scope for the whole process lifetime)
# ----------------------------------------------------------------------
class TestExperimentsRunId:
    def test_run_id_lands_in_logs_and_report(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.__main__ as cli
        from repro.experiments.context import ExperimentContext

        monkeypatch.setattr(
            cli, "_fast_context",
            lambda: ExperimentContext(
                target=1e-2, calibration_samples=2_000,
                analysis_samples=1_000, table_grid=5, seed=99,
            ),
        )
        out_file = tmp_path / "metrics.json"
        assert cli.main(["fig2a", "--fast", "-v", "--log-json",
                         "--run-id", "smoke",
                         "--metrics-out", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        assert report["run_id"] == "smoke"
        assert report["meta"]["run_id"] == "smoke"
        events = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        assert events, "expected --log-json events on stderr"
        assert all(event["run_id"] == "smoke" for event in events)

    def test_blank_run_id_rejected(self):
        import repro.experiments.__main__ as cli

        with pytest.raises(SystemExit):
            cli.main(["fig2a", "--fast", "--run-id", "   "])
