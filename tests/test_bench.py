"""Tests for ``repro.bench``: history, comparator, runner, CLI."""

from __future__ import annotations

import json
import pstats

import pytest

from repro import observability
from repro.bench import history
from repro.bench.compare import CompareResult, compare_records
from repro.bench.registry import (
    QUICK,
    WORKLOADS,
    BenchProfile,
    Gate,
    Workload,
)
from repro.bench.runner import RECORD_SCHEMA, run_workload


@pytest.fixture(autouse=True)
def clean_observability():
    """The runner must not leak collection state; start/end clean."""
    observability.disable()
    observability.reset()
    yield
    observability.disable()
    observability.reset()


def record(
    workload="w",
    median=1.0,
    profile="quick",
    counters=None,
    histograms=None,
    **extra,
) -> dict:
    """A minimal, valid history record for comparator tests."""
    rec = {
        "schema": RECORD_SCHEMA,
        "workload": workload,
        "profile": profile,
        "timestamp": 1_700_000_000.0,
        "repeats": 3,
        "wall_seconds": [median, median, median],
        "best_seconds": median,
        "median_seconds": median,
        "telemetry": {
            "metrics": {
                "counters": counters or {},
                "histograms": histograms or {},
            }
        },
        "environment": {"git_sha": "deadbeef"},
    }
    rec.update(extra)
    return rec


# ----------------------------------------------------------------------
# History store
# ----------------------------------------------------------------------
class TestHistory:
    def test_append_round_trip(self, tmp_path):
        first = record(median=1.0)
        second = record(median=2.0)
        path = history.append(tmp_path, first)
        history.append(tmp_path, second)
        assert path == tmp_path / "BENCH_w.json"
        loaded = history.load(tmp_path, "w")
        assert [r["median_seconds"] for r in loaded] == [1.0, 2.0]
        assert loaded[0] == first  # full round-trip, nothing dropped

    def test_append_only_one_json_line_per_record(self, tmp_path):
        history.append(tmp_path, record())
        history.append(tmp_path, record())
        lines = (tmp_path / "BENCH_w.json").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["workload"] == "w" for line in lines)

    def test_load_missing_is_empty(self, tmp_path):
        assert history.load(tmp_path, "nothing") == []

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        history.append(tmp_path, record(median=1.0))
        with open(tmp_path / "BENCH_w.json", "a") as fh:
            fh.write("{not json\n\n")
        history.append(tmp_path, record(median=3.0))
        records, skipped = history.load_with_errors(tmp_path, "w")
        assert [r["median_seconds"] for r in records] == [1.0, 3.0]
        assert skipped == 1

    def test_tampered_record_is_skipped(self, tmp_path):
        # A line that parses but whose content no longer matches its
        # embedded digest is as corrupt as malformed JSON: skip it.
        history.append(tmp_path, record(median=1.0))
        history.append(tmp_path, record(median=2.0))
        path = tmp_path / "BENCH_w.json"
        lines = path.read_text().splitlines()
        doctored = json.loads(lines[1])
        doctored["median_seconds"] = 0.001  # a hand-edited "speedup"
        path.write_text(lines[0] + "\n" + json.dumps(doctored) + "\n")
        records, skipped = history.load_with_errors(tmp_path, "w")
        assert [r["median_seconds"] for r in records] == [1.0]
        assert skipped == 1

    def test_legacy_record_without_digest_still_loads(self, tmp_path):
        # Histories written before sealing existed keep gating.
        legacy = record(median=4.0)
        with open(tmp_path / "BENCH_w.json", "w") as fh:
            fh.write(json.dumps(legacy) + "\n")
        assert history.load(tmp_path, "w") == [legacy]

    def test_stored_workloads_discovery(self, tmp_path):
        history.append(tmp_path, record(workload="alpha"))
        history.append(tmp_path, record(workload="beta"))
        (tmp_path / "NOT_BENCH.json").write_text("{}")
        assert history.stored_workloads(tmp_path) == ["alpha", "beta"]


# ----------------------------------------------------------------------
# Comparator
# ----------------------------------------------------------------------
class TestCompare:
    def test_within_tolerance_passes(self):
        records = [record(median=1.0), record(median=1.1)]
        result = compare_records(records, tolerance=0.2, workload="w")
        assert result.status == "ok"
        assert not result.failed
        assert result.baseline_median == 1.0
        assert result.ratio == pytest.approx(1.1)

    def test_regression_beyond_tolerance_fails(self):
        records = [record(median=1.0)] * 3 + [record(median=1.5)]
        result = compare_records(records, tolerance=0.2, workload="w")
        assert result.status == "regression"
        assert result.failed

    def test_missing_baseline_passes_and_says_so(self):
        result = compare_records([record(median=1.0)], workload="w")
        assert result.status == "no-baseline"
        assert not result.failed

    def test_no_records_fails(self):
        result = compare_records([], workload="w")
        assert result.status == "no-data"
        assert result.failed

    def test_baseline_is_median_of_window(self):
        # One slow outlier among the priors must not move the baseline.
        records = [
            record(median=1.0),
            record(median=9.0),
            record(median=1.0),
            record(median=1.05),
        ]
        result = compare_records(records, tolerance=0.2, window=5)
        assert result.baseline_median == 1.0
        assert result.status == "ok"

    def test_profiles_never_mix(self):
        # A full-profile history is no baseline for a quick record.
        records = [record(median=100.0, profile="full"),
                   record(median=1.0, profile="quick")]
        result = compare_records(records, workload="w")
        assert result.status == "no-baseline"

    def test_improvement_is_reported_not_failed(self):
        records = [record(median=2.0), record(median=1.0)]
        result = compare_records(records, tolerance=0.2)
        assert result.status == "improved"
        assert not result.failed

    def test_counter_gate_failure_fails(self):
        gates = (Gate("cache.misses", "==", 0),)
        records = [record(counters={"cache.misses": 3.0})]
        result = compare_records(records, gates=gates, workload="warm")
        assert result.status == "gate-failed"
        assert result.failed
        assert "cache.misses" in result.messages[0]

    def test_counter_gate_pass(self):
        gates = (Gate("cache.misses", "==", 0), Gate("cache.hits", ">", 0))
        records = [record(counters={"cache.misses": 0.0, "cache.hits": 4.0})]
        assert compare_records(records, gates=gates).status == "no-baseline"

    def test_gate_beats_wall_clock_verdict(self):
        gates = (Gate("mc.samples", ">", 0),)
        records = [record(median=1.0, counters={"mc.samples": 5.0}),
                   record(median=9.0, counters={"mc.samples": 0.0})]
        result = compare_records(records, gates=gates, tolerance=0.2)
        assert result.status == "gate-failed"

    def test_describe_is_readable(self):
        result = CompareResult("w", "ok", 1.0, 1.0, 1.0)
        assert "w: ok" in result.describe()

    def test_histogram_gate_reads_summary_field(self):
        gates = (Gate("sampling.ess_fraction", ">=", 0.10,
                      source="histograms", field="min"),)
        good = [record(histograms={
            "sampling.ess_fraction": {"count": 3, "min": 0.4, "max": 0.6},
        })]
        assert compare_records(good, gates=gates).status == "no-baseline"
        bad = [record(histograms={
            "sampling.ess_fraction": {"count": 3, "min": 0.02, "max": 0.6},
        })]
        result = compare_records(bad, gates=gates)
        assert result.status == "gate-failed"
        assert "sampling.ess_fraction.min" in result.messages[0]

    def test_histogram_gate_fails_when_never_observed(self):
        # A statistical gate over data that was never collected must
        # fail, not vacuously pass.
        gates = (Gate("sampling.ess_fraction", ">=", 0.10,
                      source="histograms", field="min"),)
        for histograms in ({}, {"sampling.ess_fraction": {"count": 0,
                                                          "min": None}}):
            result = compare_records(
                [record(histograms=histograms)], gates=gates
            )
            assert result.status == "gate-failed"
            assert "no 'min' observation" in result.messages[0]

    def test_gate_unknown_source_raises(self):
        with pytest.raises(ValueError):
            Gate("x", ">", 0, source="spans").check({})

    def test_gate_describe_names_the_field(self):
        gate = Gate("sampling.ess_fraction", ">=", 0.10,
                    source="histograms", field="min")
        assert gate.describe() == "sampling.ess_fraction.min >= 0.1"
        assert Gate("cache.misses", "==", 0).describe() == "cache.misses == 0"


# ----------------------------------------------------------------------
# Runner (a tiny real workload, no numerics stack needed)
# ----------------------------------------------------------------------
def _toy_run(profile, state):
    observability.incr("toy.calls")
    with observability.trace("toy.stage"):
        pass


TOY = Workload(name="toy", description="test workload", run=_toy_run)


class TestRunner:
    def test_record_shape_and_fingerprint(self, tmp_path):
        rec = run_workload(TOY, QUICK, repeats=3)
        assert rec["schema"] == RECORD_SCHEMA
        assert rec["workload"] == "toy"
        assert rec["profile"] == "quick"
        assert len(rec["wall_seconds"]) == 3
        assert rec["best_seconds"] == min(rec["wall_seconds"])
        # Telemetry is the full repro.telemetry/1 snapshot of a repeat.
        assert rec["telemetry"]["schema"] == observability.SCHEMA
        assert rec["telemetry"]["metrics"]["counters"]["toy.calls"] == 1.0
        names = {c["name"] for c in rec["telemetry"]["trace"]["children"]}
        assert "toy.stage" in names
        env = rec["environment"]
        for key in ("git_sha", "python", "numpy", "platform", "cpu_count",
                    "workers"):
            assert key in env
        # Round-trips through the history store unchanged.
        history.append(tmp_path, rec)
        assert history.load(tmp_path, "toy")[0] == json.loads(json.dumps(rec))

    def test_runner_restores_collection_state(self):
        assert not observability.enabled()
        run_workload(TOY, QUICK, repeats=1)
        assert not observability.enabled()
        assert observability.registry.snapshot()["counters"] == {}

    def test_prepare_and_cleanup_run_outside_timing(self):
        events = []
        workload = Workload(
            name="staged",
            description="",
            run=lambda p, s: events.append(("run", s)),
            prepare=lambda p: events.append("prepared") or "state",
            cleanup=lambda s: events.append(("cleaned", s)),
        )
        run_workload(workload, QUICK, repeats=2)
        assert events == [
            "prepared", ("run", "state"), ("run", "state"),
            ("cleaned", "state"),
        ]

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            run_workload(TOY, QUICK, repeats=0)


# ----------------------------------------------------------------------
# Registered workloads + CLI, end to end on a tiny profile
# ----------------------------------------------------------------------
TINY = BenchProfile(
    name="quick",  # keep the profile label CI uses
    calibration_samples=600,
    analysis_samples=300,
    table_grid=4,
    vbody_levels=(0.0,),
    kernel_cells=500,
    is_samples=1_000,
    lot_dies=2,
)


class TestWorkloadsAndCli:
    def test_warm_cache_workload_satisfies_its_gates(self, tmp_path):
        rec = run_workload(WORKLOADS["warm_cache"], TINY, repeats=1)
        metrics = rec["telemetry"]["metrics"]
        for gate in WORKLOADS["warm_cache"].gates:
            assert gate.check(metrics) is None, gate
        result = compare_records(
            [rec], gates=WORKLOADS["warm_cache"].gates, workload="warm_cache"
        )
        assert result.status == "no-baseline"

    def test_mc_kernels_workload_satisfies_ess_gate(self):
        rec = run_workload(WORKLOADS["mc_kernels"], TINY, repeats=1)
        metrics = rec["telemetry"]["metrics"]
        summary = metrics["histograms"]["sampling.ess_fraction"]
        assert summary["count"] > 0
        for gate in WORKLOADS["mc_kernels"].gates:
            assert gate.check(metrics) is None, gate

    def test_cli_run_compare_report(self, tmp_path, monkeypatch, capsys):
        import repro.bench.__main__ as cli
        import repro.bench.registry as registry_mod

        monkeypatch.setattr(
            registry_mod, "QUICK", TINY
        )
        assert cli.main([
            "run", "--quick", "--repeats", "1",
            "--workload", "table_sweep",
            "--history-dir", str(tmp_path),
        ]) == 0
        assert (tmp_path / "BENCH_table_sweep.json").exists()
        assert cli.main([
            "compare", "--workload", "table_sweep",
            "--history-dir", str(tmp_path), "--tolerance", "0.35",
        ]) == 0
        out = capsys.readouterr().out
        assert "table_sweep" in out
        # A second run gives the compare a real baseline.
        assert cli.main([
            "run", "--quick", "--repeats", "1",
            "--workload", "table_sweep",
            "--history-dir", str(tmp_path),
        ]) == 0
        assert cli.main([
            "compare", "--workload", "table_sweep",
            "--history-dir", str(tmp_path), "--tolerance", "10.0",
        ]) == 0
        report_file = tmp_path / "trajectory.md"
        assert cli.main([
            "report", "--history-dir", str(tmp_path),
            "--out", str(report_file),
        ]) == 0
        text = report_file.read_text()
        assert "### `table_sweep`" in text
        assert "| when (UTC) |" in text

    def test_cli_compare_fails_on_fabricated_regression(self, tmp_path, capsys):
        import repro.bench.__main__ as cli

        ok_counters = {
            "mc.samples": 100.0,
            "mc.estimates": 4.0,
            "solver.calls": 400.0,
        }
        ok_histograms = {
            "analysis.solver_calls": {"count": 4, "min": 100, "max": 100},
        }
        history.append(
            tmp_path,
            record(workload="table_sweep", median=1.0,
                   counters=ok_counters, histograms=ok_histograms),
        )
        history.append(
            tmp_path,
            record(workload="table_sweep", median=5.0,
                   counters=ok_counters, histograms=ok_histograms),
        )
        assert cli.main([
            "compare", "--workload", "table_sweep",
            "--history-dir", str(tmp_path), "--tolerance", "0.2",
        ]) == 1
        assert "regression" in capsys.readouterr().out

    def test_cli_list(self, capsys):
        import repro.bench.__main__ as cli

        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out


# ----------------------------------------------------------------------
# profile(name) smoke: a stats file is produced and loads
# ----------------------------------------------------------------------
class TestProfileSmoke:
    def test_profile_writes_loadable_stats(self, tmp_path):
        observability.enable()
        observability.enable_profiling()
        try:
            with observability.profile("zone"):
                sum(i * i for i in range(20_000))
            out = tmp_path / "zone.pstats"
            assert observability.write_profile(str(out)) == ["zone"]
            assert out.stat().st_size > 0
            stats = pstats.Stats(str(out))
            assert stats.total_calls > 0
        finally:
            observability.disable_profiling()

    def test_write_without_data_raises(self, tmp_path):
        with pytest.raises(ValueError):
            observability.write_profile(str(tmp_path / "empty.pstats"))


def test_record_carries_a_run_id():
    rec = run_workload(TOY, QUICK, repeats=2)
    run_id = rec["environment"]["run_id"]
    assert run_id.startswith("bench-toy-")
    # The same id is stamped on the kept telemetry snapshot, so a
    # BENCH_*.json line joins to its artifacts by one key.
    assert rec["telemetry"]["run_id"] == run_id
    # Fresh id per measurement run.
    assert run_workload(TOY, QUICK, repeats=1)["environment"][
        "run_id"
    ] != run_id
