"""Backward-Euler transient analysis.

Capacitors are replaced by their backward-Euler companion models and the
DC Newton solver is reused at each timestep.  Backward Euler is only
first-order accurate but unconditionally stable, which is the right
trade-off for the stiff, strongly nonlinear cell circuits this engine
simulates (bitline discharge, cell flip transients).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.dc import DCSolution, solve_dc
from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class TransientResult:
    """Time-domain waveforms from :func:`solve_transient`.

    Attributes:
        times: sample times [s], shape (n,).
        voltages: node name -> waveform array [V], shape (n,).
    """

    times: np.ndarray
    voltages: dict[str, np.ndarray]

    def __getitem__(self, node: str) -> np.ndarray:
        return self.voltages[node]

    def crossing_time(self, node: str, level: float, rising: bool = True) -> float:
        """First time the ``node`` waveform crosses ``level`` [V].

        Linearly interpolates between samples.  Raises ``ValueError`` if
        the waveform never crosses.
        """
        w = self.voltages[node]
        if rising:
            hits = np.nonzero((w[:-1] < level) & (w[1:] >= level))[0]
        else:
            hits = np.nonzero((w[:-1] > level) & (w[1:] <= level))[0]
        if hits.size == 0:
            direction = "rising" if rising else "falling"
            raise ValueError(f"node {node!r} never crosses {level} V ({direction})")
        i = int(hits[0])
        t0, t1 = self.times[i], self.times[i + 1]
        v0, v1 = w[i], w[i + 1]
        return float(t0 + (level - v0) * (t1 - t0) / (v1 - v0))


def solve_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    initial: dict[str, float] | None = None,
) -> TransientResult:
    """Integrate ``circuit`` from 0 to ``t_stop`` with fixed step ``dt``.

    The initial state is the DC operating point at t = 0 seeded from
    ``initial``; capacitor voltages start from that operating point.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    times = np.arange(0.0, t_stop + 0.5 * dt, dt)
    capacitors = circuit.capacitors

    # Operating point at t=0 with capacitors open.
    for cap in capacitors:
        cap.companion = None
    op = solve_dc(circuit, initial=initial, t=0.0)
    node_names = circuit.nodes
    waves = {name: np.empty_like(times) for name in node_names}
    for name in node_names:
        waves[name][0] = op.voltages[name]

    previous = op
    try:
        for step, t in enumerate(times[1:], start=1):
            for cap in capacitors:
                v_prev = previous.voltages[cap.a] - previous.voltages[cap.b]
                cap.companion = (v_prev, dt)
            previous = solve_dc(circuit, initial=previous.voltages, t=float(t))
            for name in node_names:
                waves[name][step] = previous.voltages[name]
    finally:
        for cap in capacitors:
            cap.companion = None

    return TransientResult(times=times, voltages=waves)


def operating_point(circuit: Circuit, **kwargs) -> DCSolution:
    """Alias of :func:`repro.circuit.dc.solve_dc` for readability."""
    return solve_dc(circuit, **kwargs)
