"""A small modified-nodal-analysis circuit simulator.

This package is the reproduction's stand-in for the SPICE engine the
paper used.  It supports:

* arbitrary netlists of resistors, capacitors, current sources, voltage
  sources, diodes and compact-model MOSFETs (:mod:`repro.circuit.elements`);
* Newton-Raphson DC operating-point solving with gmin and source-stepping
  continuation (:mod:`repro.circuit.dc`);
* backward-Euler transient analysis (:mod:`repro.circuit.transient`);
* DC sweeps, e.g. inverter voltage-transfer curves
  (:mod:`repro.circuit.sweep`).

The statistical SRAM analysis does *not* route every Monte-Carlo sample
through this engine — that would be far too slow for millions of cell
evaluations.  Instead :mod:`repro.sram.solver` implements a vectorised
solver for the specific two-node 6T-cell problem, and the two are
cross-validated against each other in the integration tests.
"""

from repro.circuit.dc import DCSolution, solve_dc
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Diode,
    MOSFETElement,
    Resistor,
    VoltageSource,
)
from repro.circuit.exceptions import ConvergenceError
from repro.circuit.netlist import Circuit
from repro.circuit.sweep import dc_sweep, inverter_vtc, switching_threshold
from repro.circuit.transient import TransientResult, solve_transient

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "Diode",
    "MOSFETElement",
    "solve_dc",
    "DCSolution",
    "solve_transient",
    "TransientResult",
    "dc_sweep",
    "inverter_vtc",
    "switching_threshold",
    "ConvergenceError",
]
