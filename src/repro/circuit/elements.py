"""Circuit elements for the MNA simulator.

Every element implements :meth:`Element.add_currents`: given the candidate
node-voltage map it accumulates the current *leaving* each of its nodes
into the KCL residual.  Voltage sources additionally carry a branch
current unknown (classic modified nodal analysis).

The solver differentiates the residual numerically, so elements only have
to provide currents, not stamps — this keeps adding new device types
trivial and is plenty fast for the handful-of-nodes circuits this engine
is used for (SRAM cells, inverters, leakage monitors).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.constants import thermal_voltage
from repro.devices.mosfet import MOSFET

Voltages = Mapping[str, float]


class Element(ABC):
    """Base class for all two-or-more terminal elements."""

    @property
    @abstractmethod
    def nodes(self) -> tuple[str, ...]:
        """The node names this element connects to."""

    @abstractmethod
    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        """Accumulate current *leaving* each node into ``out`` [A]."""


@dataclass
class Resistor(Element):
    """A linear resistor between ``a`` and ``b``."""

    a: str
    b: str
    resistance: float
    name: str = "R"

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.a, self.b)

    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        i = (v[self.a] - v[self.b]) / self.resistance
        out[self.a] += i
        out[self.b] -= i


@dataclass
class CurrentSource(Element):
    """A constant current source pushing ``current`` amps from ``a`` to ``b``.

    ``current`` may be a callable of time for transient stimuli.
    """

    a: str
    b: str
    current: float | Callable[[float], float]
    name: str = "I"

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.a, self.b)

    def value(self, t: float) -> float:
        """The source current [A] at time ``t``."""
        if callable(self.current):
            return self.current(t)
        return self.current

    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        i = self.value(t)
        out[self.a] += i
        out[self.b] -= i


@dataclass
class VoltageSource(Element):
    """An ideal voltage source: v(plus) - v(minus) = ``voltage``.

    ``voltage`` may be a callable of time.  The branch current is an MNA
    unknown managed by the solver.
    """

    plus: str
    minus: str
    voltage: float | Callable[[float], float]
    name: str = "V"

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.plus, self.minus)

    def value(self, t: float) -> float:
        """The source voltage [V] at time ``t``."""
        if callable(self.voltage):
            return self.voltage(t)
        return self.voltage

    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        # The branch current is handled by the solver; nothing to add here.
        pass


@dataclass
class Diode(Element):
    """An ideal-exponential junction diode from ``anode`` to ``cathode``."""

    anode: str
    cathode: str
    saturation_current: float = 1e-14
    ideality: float = 1.0
    temperature: float = 300.15
    name: str = "D"

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.anode, self.cathode)

    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        ut = thermal_voltage(self.temperature)
        vd = v[self.anode] - v[self.cathode]
        x = np.clip(vd / (self.ideality * ut), -60.0, 60.0)
        i = self.saturation_current * (np.exp(x) - 1.0)
        out[self.anode] += i
        out[self.cathode] -= i


@dataclass
class Capacitor(Element):
    """A linear capacitor; open in DC, backward-Euler companion in transient.

    The transient solver rewrites the capacitor current as
    ``C * (v - v_prev) / dt`` by setting :attr:`companion`.
    """

    a: str
    b: str
    capacitance: float
    name: str = "C"
    #: Set by the transient solver: (previous branch voltage [V], dt [s]).
    companion: tuple[float, float] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {self.capacitance}")

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.a, self.b)

    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        if self.companion is None:
            return  # DC: no current through a capacitor.
        v_prev, dt = self.companion
        i = self.capacitance * ((v[self.a] - v[self.b]) - v_prev) / dt
        out[self.a] += i
        out[self.b] -= i


@dataclass
class MOSFETElement(Element):
    """A compact-model MOSFET with gate/drain/source/body terminals.

    Wraps :class:`repro.devices.mosfet.MOSFET`; only the channel current
    is stamped (gate and junction leakages are handled analytically by
    the leakage models, not inside the nodal simulator).
    """

    gate: str
    drain: str
    source: str
    body: str
    model: MOSFET
    name: str = "M"

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.gate, self.drain, self.source, self.body)

    def add_currents(self, v: Voltages, out: dict[str, float], t: float) -> None:
        i = float(
            np.squeeze(
                self.model.current(
                    vg=v[self.gate], vd=v[self.drain],
                    vs=v[self.source], vb=v[self.body],
                )
            )
        )
        # `current` follows the NMOS convention (positive = drain->source
        # inside the channel for NMOS).  Current leaving the drain node
        # into the channel is therefore +i for NMOS; for PMOS the model
        # already returns the correctly signed value in this convention.
        sign = self.model.sign
        out[self.drain] += sign * i
        out[self.source] -= sign * i
