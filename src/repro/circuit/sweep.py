"""DC sweeps and derived curve utilities (VTCs, switching thresholds)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.circuit.dc import solve_dc
from repro.circuit.elements import MOSFETElement, VoltageSource
from repro.circuit.netlist import Circuit
from repro.devices.mosfet import MOSFET


def dc_sweep(
    circuit: Circuit,
    source: VoltageSource,
    values: np.ndarray,
    observe: str,
    initial: dict[str, float] | None = None,
) -> np.ndarray:
    """Sweep ``source`` over ``values`` [V] and record node ``observe``.

    Each point is seeded from the previous solution, so the sweep tracks
    a continuous branch of the DC solution (important for bistable
    circuits such as cross-coupled inverters).
    """
    original = source.voltage
    out = np.empty(len(values))
    guess = dict(initial) if initial else None
    try:
        for i, value in enumerate(values):
            source.voltage = float(value)
            solution = solve_dc(circuit, initial=guess)
            out[i] = solution[observe]
            guess = solution.voltages
    finally:
        source.voltage = original
    return out


def inverter_vtc(
    nmos: MOSFET,
    pmos: MOSFET,
    vdd: float,
    vin: np.ndarray,
    vss: float = 0.0,
    vbody_n: float = 0.0,
) -> np.ndarray:
    """Voltage transfer curve of a CMOS inverter built from two devices.

    Args:
        nmos: pull-down device (source at ``vss``, body at ``vbody_n``).
        pmos: pull-up device (source and body at ``vdd``).
        vdd: supply rail [V].
        vin: input sweep values [V].
        vss: NMOS source rail [V] (source bias raises this).
        vbody_n: NMOS body terminal voltage [V].

    Returns:
        Output node voltages, same shape as ``vin``.
    """
    ckt = Circuit("inverter")
    vdd_src = VoltageSource("vdd", "0", vdd, name="VDD")
    vin_src = VoltageSource("in", "0", float(vin[0]), name="VIN")
    ckt.add(vdd_src)
    ckt.add(vin_src)
    ckt.add(VoltageSource("vssn", "0", vss, name="VSS"))
    ckt.add(VoltageSource("vbn", "0", vbody_n, name="VBN"))
    ckt.add(MOSFETElement("in", "out", "vssn", "vbn", nmos, name="MN"))
    ckt.add(MOSFETElement("in", "out", "vdd", "vdd", pmos, name="MP"))
    return dc_sweep(ckt, vin_src, np.asarray(vin, dtype=float), observe="out",
                    initial={"out": vdd, "vdd": vdd})


def switching_threshold(
    nmos: MOSFET,
    pmos: MOSFET,
    vdd: float,
    vss: float = 0.0,
    vbody_n: float = 0.0,
    tolerance: float = 1e-6,
) -> float:
    """Inverter switching threshold VM [V]: the input where vout == vin.

    Found by bisection on the (monotone decreasing) ``vout(vin) - vin``
    curve evaluated with single-point DC solves.
    """
    def vout_minus_vin(v: float) -> float:
        out = inverter_vtc(nmos, pmos, vdd, np.array([v]), vss=vss,
                           vbody_n=vbody_n)
        return float(out[0]) - v

    lo, hi = vss, vdd
    f_lo = vout_minus_vin(lo)
    f_hi = vout_minus_vin(hi)
    if f_lo < 0 or f_hi > 0:
        raise ValueError("inverter VTC does not bracket a switching threshold")
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if vout_minus_vin(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def sweep_parameter(
    build: Callable[[float], Circuit],
    values: np.ndarray,
    observe: str,
) -> np.ndarray:
    """Solve a freshly built circuit per parameter value; record a node."""
    out = np.empty(len(values))
    for i, value in enumerate(values):
        out[i] = solve_dc(build(float(value)))[observe]
    return out
