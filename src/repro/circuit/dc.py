"""Newton-Raphson DC operating-point solver with continuation.

The unknown vector is ``x = [node voltages | voltage-source branch
currents]`` (modified nodal analysis).  The residual is

* KCL at every non-ground node: the sum of element currents leaving the
  node plus the branch currents of voltage sources attached at that node,
  plus a small ``gmin`` conductance to ground for numerical conditioning;
* the voltage-source constraint ``v(plus) - v(minus) - V = 0``.

The Jacobian is formed by forward finite differences — crude but entirely
adequate for the <= tens-of-nodes circuits this engine serves.  If plain
Newton fails, the solver falls back to gmin stepping and then source
stepping, the same continuation tricks SPICE uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.elements import VoltageSource
from repro.circuit.exceptions import ConvergenceError
from repro.circuit.netlist import GROUND, Circuit

#: Default convergence tolerance on the KCL residual [A].
DEFAULT_ABSTOL = 1e-12
#: Default maximum Newton iterations per continuation stage.
DEFAULT_MAX_ITER = 120


@dataclass(frozen=True)
class DCSolution:
    """The result of a DC analysis.

    Attributes:
        voltages: node name -> voltage [V] (includes ground at 0).
        branch_currents: voltage-source name -> current [A] flowing from
            the ``plus`` terminal through the source to ``minus``.
        iterations: total Newton iterations used.
    """

    voltages: dict[str, float]
    branch_currents: dict[str, float]
    iterations: int

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]


def _residual(
    circuit: Circuit,
    node_index: dict[str, int],
    x: np.ndarray,
    gmin: float,
    source_scale: float,
    t: float,
) -> np.ndarray:
    n_nodes = len(node_index) - 1  # excluding ground
    sources = circuit.voltage_sources
    v = {name: (0.0 if idx == 0 else x[idx - 1]) for name, idx in node_index.items()}

    out = {name: 0.0 for name in node_index}
    for element in circuit.elements:
        element.add_currents(v, out, t)

    f = np.zeros_like(x)
    for name, idx in node_index.items():
        if idx == 0:
            continue
        f[idx - 1] = out[name] + gmin * v[name]

    for k, src in enumerate(sources):
        i_branch = x[n_nodes + k]
        # Branch current leaves the plus node through the source.
        if src.plus != GROUND:
            f[node_index[src.plus] - 1] += i_branch
        if src.minus != GROUND:
            f[node_index[src.minus] - 1] -= i_branch
        f[n_nodes + k] = v[src.plus] - v[src.minus] - source_scale * src.value(t)
    return f


def _newton(
    circuit: Circuit,
    node_index: dict[str, int],
    x0: np.ndarray,
    gmin: float,
    source_scale: float,
    t: float,
    abstol: float,
    max_iter: int,
) -> tuple[np.ndarray, int, float]:
    """Run damped Newton; return (x, iterations, final residual norm)."""
    x = x0.copy()
    n_nodes = len(node_index) - 1
    f = _residual(circuit, node_index, x, gmin, source_scale, t)
    norm = float(np.max(np.abs(f))) if f.size else 0.0
    for iteration in range(1, max_iter + 1):
        if norm < abstol:
            return x, iteration - 1, norm
        jac = np.zeros((x.size, x.size))
        for j in range(x.size):
            step = 1e-7 * (1.0 + abs(x[j]))
            xp = x.copy()
            xp[j] += step
            fp = _residual(circuit, node_index, xp, gmin, source_scale, t)
            jac[:, j] = (fp - f) / step
        try:
            dx = np.linalg.solve(jac, -f)
        except np.linalg.LinAlgError:
            dx = np.linalg.lstsq(jac, -f, rcond=None)[0]
        # Voltage-limit the update for robustness.
        limit = 0.3
        scale = min(1.0, limit / max(float(np.max(np.abs(dx[:n_nodes]))), 1e-30))
        # Backtracking line search on the residual norm.
        best = None
        for damping in (scale, scale * 0.5, scale * 0.25, scale * 0.05):
            x_try = x + damping * dx
            f_try = _residual(circuit, node_index, x_try, gmin, source_scale, t)
            norm_try = float(np.max(np.abs(f_try)))
            if best is None or norm_try < best[2]:
                best = (x_try, f_try, norm_try)
            if norm_try < norm:
                break
        x, f, norm = best
    return x, max_iter, norm


def solve_dc(
    circuit: Circuit,
    initial: dict[str, float] | None = None,
    abstol: float = DEFAULT_ABSTOL,
    max_iter: int = DEFAULT_MAX_ITER,
    gmin: float = 1e-12,
    t: float = 0.0,
) -> DCSolution:
    """Solve the DC operating point of ``circuit``.

    Args:
        circuit: the netlist to solve.
        initial: optional node-name -> initial-guess voltages [V].
        abstol: KCL residual tolerance [A].
        max_iter: Newton iterations per continuation stage.
        gmin: conditioning conductance to ground at every node [S].
        t: time passed to time-dependent sources.

    Raises:
        ConvergenceError: if Newton, gmin stepping and source stepping all
            fail to reach ``abstol``.
    """
    circuit.validate()
    node_index = {name: i for i, name in enumerate(circuit.nodes)}
    n_nodes = len(node_index) - 1
    n_src = len(circuit.voltage_sources)
    x = np.zeros(n_nodes + n_src)
    if initial:
        for name, value in initial.items():
            if name in node_index and node_index[name] > 0:
                x[node_index[name] - 1] = value

    total_iters = 0

    # Stage 1: plain Newton.
    x_try, iters, norm = _newton(
        circuit, node_index, x, gmin, 1.0, t, abstol, max_iter
    )
    total_iters += iters
    if norm < abstol:
        return _package(circuit, node_index, x_try, total_iters)

    # Stage 2: gmin stepping (start heavily damped, relax to target gmin).
    x_cont = x.copy()
    for g in np.geomspace(1e-3, gmin, 8):
        x_cont, iters, norm = _newton(
            circuit, node_index, x_cont, g, 1.0, t, abstol * 1e3, max_iter
        )
        total_iters += iters
    x_try, iters, norm = _newton(
        circuit, node_index, x_cont, gmin, 1.0, t, abstol, max_iter
    )
    total_iters += iters
    if norm < abstol:
        return _package(circuit, node_index, x_try, total_iters)

    # Stage 3: source stepping from 10% of the stimulus.
    x_cont = np.zeros_like(x)
    for scale in np.linspace(0.1, 1.0, 10):
        x_cont, iters, norm = _newton(
            circuit, node_index, x_cont, gmin, scale, t, abstol * 1e3, max_iter
        )
        total_iters += iters
    x_try, iters, norm = _newton(
        circuit, node_index, x_cont, gmin, 1.0, t, abstol, max_iter
    )
    total_iters += iters
    if norm < abstol:
        return _package(circuit, node_index, x_try, total_iters)

    raise ConvergenceError(
        f"DC analysis of {circuit.name!r} failed", residual=norm, iterations=total_iters
    )


def _package(
    circuit: Circuit,
    node_index: dict[str, int],
    x: np.ndarray,
    iterations: int,
) -> DCSolution:
    n_nodes = len(node_index) - 1
    voltages = {
        name: (0.0 if idx == 0 else float(x[idx - 1]))
        for name, idx in node_index.items()
    }
    branch = {}
    for k, src in enumerate(circuit.voltage_sources):
        branch[_source_key(src, k)] = float(x[n_nodes + k])
    return DCSolution(voltages=voltages, branch_currents=branch, iterations=iterations)


def _source_key(src: VoltageSource, index: int) -> str:
    return src.name if src.name != "V" else f"V{index}"
