"""Exceptions raised by the circuit simulator."""

from __future__ import annotations


class CircuitError(Exception):
    """Base class for netlist construction and analysis errors."""


class ConvergenceError(CircuitError):
    """The nonlinear solver failed to converge.

    Attributes:
        residual: infinity norm of the final KCL residual [A].
        iterations: Newton iterations attempted.
    """

    def __init__(self, message: str, residual: float, iterations: int) -> None:
        super().__init__(f"{message} (|f|={residual:.3e} A after {iterations} iters)")
        self.residual = residual
        self.iterations = iterations
