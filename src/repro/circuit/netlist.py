"""Netlist container for the MNA simulator."""

from __future__ import annotations

from repro.circuit.elements import Capacitor, Element, VoltageSource
from repro.circuit.exceptions import CircuitError

#: The reference node; always 0 V.
GROUND = "0"


class Circuit:
    """A flat netlist of elements connected at named nodes.

    Node names are arbitrary strings; ``"0"`` (:data:`GROUND`) is the
    reference node.  Elements are added with :meth:`add`, which returns
    the element for fluent use::

        ckt = Circuit("divider")
        ckt.add(VoltageSource("vdd", "0", 1.0))
        ckt.add(Resistor("vdd", "mid", 1e3))
        ckt.add(Resistor("mid", "0", 1e3))
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.elements: list[Element] = []
        self._nodes: dict[str, int] = {GROUND: 0}

    def add(self, element: Element) -> Element:
        """Add ``element`` to the netlist and register its nodes."""
        for node in element.nodes:
            if node not in self._nodes:
                self._nodes[node] = len(self._nodes)
        self.elements.append(element)
        return element

    @property
    def nodes(self) -> list[str]:
        """All node names, ground first, in registration order."""
        return sorted(self._nodes, key=self._nodes.get)

    @property
    def unknown_nodes(self) -> list[str]:
        """Node names excluding ground — the KCL unknowns."""
        return [n for n in self.nodes if n != GROUND]

    @property
    def voltage_sources(self) -> list[VoltageSource]:
        """All voltage sources, in netlist order (MNA branch unknowns)."""
        return [e for e in self.elements if isinstance(e, VoltageSource)]

    @property
    def capacitors(self) -> list[Capacitor]:
        """All capacitors, in netlist order."""
        return [e for e in self.elements if isinstance(e, Capacitor)]

    def validate(self) -> None:
        """Raise :class:`CircuitError` for a clearly ill-posed netlist."""
        if not self.elements:
            raise CircuitError(f"circuit {self.name!r} has no elements")
        if len(self._nodes) < 2:
            raise CircuitError(f"circuit {self.name!r} has no non-ground node")

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, {len(self.elements)} elements, "
            f"{len(self._nodes) - 1} nodes)"
        )
