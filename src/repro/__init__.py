"""repro — reproduction of *Low-Power and Process Variation Tolerant
Memories in sub-90nm Technologies* (Mukhopadhyay, Ghosh, Kim, Roy;
IEEE SOCC 2006).

The library stacks up as:

* :mod:`repro.technology` / :mod:`repro.devices` — a predictive 70 nm
  technology card and an EKV-style compact MOSFET model with
  subthreshold / gate / junction leakage (the BPTM+HSPICE substitute);
* :mod:`repro.circuit` — a small MNA circuit simulator for
  cross-validation and ad-hoc circuits;
* :mod:`repro.sram` — the 6T cell, vectorised cell DC solvers, static
  failure metrics, leakage decomposition, and a behavioural memory
  array with physics-derived faults;
* :mod:`repro.failures` / :mod:`repro.stats` — RDF Monte Carlo with
  importance sampling, cell -> column -> memory yield with redundancy,
  CLT leakage statistics, inter-die quadrature;
* :mod:`repro.core` — **the paper's contribution**: the self-repairing
  SRAM (leakage monitor + adaptive body bias) and the self-adaptive
  source-bias calibration (BIST + March tests + counter/DAC);
* :mod:`repro.parallel` — deterministic process fan-out and the
  fingerprint-keyed disk cache behind every sweep (results are
  bit-identical at any worker count);
* :mod:`repro.observability` — structured logging, metrics counters
  and span-style trace timing behind one switch (off by default with a
  no-op fast path; ``-v`` / ``--metrics-out`` on the CLI);
* :mod:`repro.experiments` — one entry point per paper figure,
  regenerating every result of the evaluation.
"""

from repro.core.body_bias import BodyBiasGenerator, SelfRepairingSRAM
from repro.core.lot import LotReport, LotSimulator
from repro.core.tuning import PostSiliconTuner
from repro.core.monitor import LeakageMonitor
from repro.core.source_bias import (
    BISTController,
    SelfAdaptiveSourceBias,
    SourceBiasDAC,
)
from repro.failures import (
    CellFailureAnalyzer,
    FailureCriteria,
    MpfpEstimator,
    calibrate_criteria,
)
from repro.parallel import ParallelExecutor, ResultCache
from repro.sram import (
    ArrayOrganization,
    CellGeometry,
    FunctionalMemoryArray,
    OperatingConditions,
    SixTCell,
)
from repro.technology import (
    InterDieDistribution,
    ProcessCorner,
    TechnologyParameters,
    predictive_70nm,
)

__version__ = "0.1.0"

__all__ = [
    "predictive_70nm",
    "TechnologyParameters",
    "ProcessCorner",
    "InterDieDistribution",
    "CellGeometry",
    "SixTCell",
    "OperatingConditions",
    "ArrayOrganization",
    "FunctionalMemoryArray",
    "FailureCriteria",
    "calibrate_criteria",
    "CellFailureAnalyzer",
    "LeakageMonitor",
    "BodyBiasGenerator",
    "SelfRepairingSRAM",
    "SourceBiasDAC",
    "BISTController",
    "SelfAdaptiveSourceBias",
    "PostSiliconTuner",
    "LotSimulator",
    "LotReport",
    "MpfpEstimator",
    "ParallelExecutor",
    "ResultCache",
    "__version__",
]
