"""Physical constants and small helpers shared across the library.

All quantities in this library are expressed in SI units (volts, amperes,
meters, farads, kelvin) unless a name explicitly says otherwise.
"""

from __future__ import annotations

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Absolute zero offset for Celsius conversion [K].
CELSIUS_OFFSET = 273.15

#: Default junction temperature used by the paper's experiments (27 C) [K].
ROOM_TEMPERATURE_K = 27.0 + CELSIUS_OFFSET


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return the thermal voltage kT/q [V] at ``temperature_k`` kelvin.

    >>> round(thermal_voltage(300.15), 5)
    0.02587
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k} K")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a Celsius temperature to kelvin."""
    kelvin = temperature_c + CELSIUS_OFFSET
    if kelvin <= 0:
        raise ValueError(f"temperature {temperature_c} C is below absolute zero")
    return kelvin
