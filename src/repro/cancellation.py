"""Cooperative cancellation and deadlines for long-running builds.

The paper's self-repair loop only works because every repair action
happens at a *safe point* — a March-test pass boundary, a refresh
window.  Cancellation here follows the same discipline: a running job
is never killed mid-cell; instead a :class:`CancelToken` is installed
for the duration of the build and the computation polls it at its
checkpoint boundaries (:meth:`repro.checkpoint.CheckpointStore.
resumable_map` checks between flush slices, the service job runner
checks between surfaces).  A cancelled or expired token raises at the
next safe point, after the current slice has been flushed — so a
cancelled build loses at most one slice of work and resumes exactly
through its checkpoint if resubmitted.

Two terminal conditions share the mechanism:

* :class:`JobCancelled` — an operator asked for the job to stop
  (``DELETE /v1/jobs/{id}``, or a drain that gave up waiting).
* :class:`DeadlineExceeded` — the job's ``deadline_s`` budget (measured
  from submission) ran out.

Tokens travel through a :class:`contextvars.ContextVar`, so library
code deep in the stack calls the module-level :func:`check_active`
without threading a token through every signature; code running with
no token installed is never affected.
"""

from __future__ import annotations

import contextlib
import threading
import time
from contextvars import ContextVar
from typing import Callable, Iterator


class CancelledError(RuntimeError):
    """Base class for cooperative-stop conditions.

    Attributes:
        code: stable wire-error identifier for the service layer.
    """

    code = "cancelled"


class JobCancelled(CancelledError):
    """The token was explicitly cancelled (operator request)."""

    code = "cancelled"


class DeadlineExceeded(CancelledError):
    """The token's deadline passed before the work finished."""

    code = "deadline-exceeded"


class CancelToken:
    """A thread-safe stop request plus an optional monotonic deadline.

    Args:
        clock: monotonic time source (injectable for tests).

    The token starts inert: not cancelled, no deadline.  ``cancel()``
    may be called from any thread; ``set_deadline()`` arms a relative
    deadline against the token's clock.  :meth:`check` raises the
    matching :class:`CancelledError` subclass once either condition
    holds, and is otherwise free.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._event = threading.Event()
        self._clock = clock
        self._deadline: float | None = None

    def cancel(self) -> None:
        """Request a stop at the next safe point (idempotent)."""
        self._event.set()

    def set_deadline(self, seconds: float) -> None:
        """Arm a deadline ``seconds`` from now (replaces any previous)."""
        self._deadline = self._clock() + float(seconds)

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    @property
    def expired(self) -> bool:
        """True once the armed deadline (if any) has passed."""
        return self._deadline is not None and self._clock() >= self._deadline

    def check(self) -> None:
        """Raise :class:`JobCancelled` / :class:`DeadlineExceeded` if due.

        Explicit cancellation wins over expiry when both hold — the
        operator's intent is the more specific signal.
        """
        if self._event.is_set():
            raise JobCancelled("job cancelled at a checkpoint boundary")
        if self.expired:
            raise DeadlineExceeded("job deadline exceeded")


_active: ContextVar[CancelToken | None] = ContextVar(
    "repro_cancel_token", default=None
)


@contextlib.contextmanager
def active(token: CancelToken) -> Iterator[CancelToken]:
    """Install ``token`` as the ambient cancel token for this context."""
    handle = _active.set(token)
    try:
        yield token
    finally:
        _active.reset(handle)


def current() -> CancelToken | None:
    """The ambient token, or None when no job scope is active."""
    return _active.get()


def check_active() -> None:
    """Safe-point poll: raise if the ambient token (if any) is due.

    Library code calls this at checkpoint boundaries.  With no token
    installed it is a no-op, so the core stack never pays for (or is
    surprised by) cancellation outside a service job.
    """
    token = _active.get()
    if token is not None:
        token.check()
