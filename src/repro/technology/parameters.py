"""Compact-model parameter cards for the predictive 70 nm technology.

The paper evaluates everything on the Berkeley Predictive Technology Model
(BPTM) 70 nm node with HSPICE.  We substitute a self-contained EKV-style
compact model (see :mod:`repro.devices.mosfet`); this module holds the
parameter cards that drive it.  The numbers below are representative of a
sub-90 nm bulk CMOS process (VDD = 1.0 V, ~85 mV/dec subthreshold swing,
|Vt| around 0.25 V) and were chosen so that the behaviours the paper
relies on are present with realistic magnitudes:

* nominal 6T-cell leakage of a few to a few tens of nA at 27 C
  (Fig. 3a's axis),
* roughly 50 mV of threshold modulation per 0.4 V of body bias,
* junction band-to-band tunnelling that grows exponentially under reverse
  body bias and a body diode that turns on under strong forward body bias
  (the two bounds of Fig. 5a),
* Pelgrom-scaled RDF sigma of ~30 mV for a minimum-size transistor.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.constants import ROOM_TEMPERATURE_K

#: Vacuum permittivity [F/m].
_EPS0 = 8.8541878128e-12
#: Relative permittivity of SiO2.
_EPS_SIO2 = 3.9


@dataclass(frozen=True)
class DeviceParameters:
    """Compact-model card for one MOSFET polarity.

    All voltages are magnitudes referenced the natural way for the carrier
    type; the device model (:mod:`repro.devices.mosfet`) flips signs for
    PMOS.  The card is geometry-independent: width and length live on the
    device instances.
    """

    #: Zero-bias threshold voltage magnitude [V].
    vth0: float
    #: Subthreshold slope factor ``n`` (swing = n * Ut * ln 10).
    n_sub: float
    #: Low-field mobility [m^2 / (V s)].
    mobility: float
    #: Body-effect coefficient gamma [sqrt(V)].
    gamma: float
    #: Surface potential 2*phi_F [V].
    phi_s: float
    #: DIBL coefficient [V/V]: vth reduction per volt of Vds.
    dibl: float
    #: Mobility-degradation coefficient theta [1/V] (vertical field).
    theta: float
    #: Gate-tunnelling areal current density at Vox = 1 V [A/m^2].
    j_gate: float
    #: Gate-tunnelling exponential slope [V]: j = j_gate * exp((v - 1)/v0).
    v0_gate: float
    #: Reverse junction saturation current density [A/m^2].
    j_jn: float
    #: Band-to-band tunnelling density at 1 V reverse bias [A/m^2].
    j_btbt: float
    #: BTBT exponential slope [V].
    v0_btbt: float
    #: Body-diode forward saturation density [A/m^2] (FBB leakage bound).
    j_diode: float
    #: Body-diode ideality factor.
    m_diode: float
    #: Pelgrom mismatch coefficient A_VT [V * m] (sigma_vt = avt/sqrt(W L)).
    avt: float
    #: Threshold temperature coefficient [V/K]; vth drops with temperature.
    vth_tempco: float = 1.0e-3
    #: Mobility temperature exponent: mu ~ (T/300K)^-exponent.
    mobility_temp_exponent: float = 1.5

    def __post_init__(self) -> None:
        for name in ("vth0", "n_sub", "mobility", "gamma", "phi_s"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.n_sub < 1.0:
            raise ValueError(f"n_sub must be >= 1, got {self.n_sub}")


@dataclass(frozen=True)
class TechnologyParameters:
    """A full technology card: global constants plus both device polarities."""

    #: Human-readable technology name.
    name: str
    #: Nominal supply voltage [V].
    vdd: float
    #: Drawn channel length [m].
    length: float
    #: Gate-oxide thickness [m].
    tox: float
    #: Junction temperature [K].
    temperature: float
    #: NMOS model card.
    nmos: DeviceParameters
    #: PMOS model card.
    pmos: DeviceParameters
    #: Effective drain-junction extent; drain area = width * 3 * this [m].
    junction_depth: float

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if self.length <= 0:
            raise ValueError(f"length must be positive, got {self.length}")
        if self.tox <= 0:
            raise ValueError(f"tox must be positive, got {self.tox}")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive kelvin")

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area [F/m^2]."""
        return _EPS0 * _EPS_SIO2 / self.tox

    def device(self, polarity: str) -> DeviceParameters:
        """Return the card for ``"nmos"`` or ``"pmos"``."""
        if polarity == "nmos":
            return self.nmos
        if polarity == "pmos":
            return self.pmos
        raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")

    def junction_area(self, width: float) -> float:
        """Drain/source junction area [m^2] for a device of ``width`` [m]."""
        return width * 3.0 * self.junction_depth

    def with_temperature(self, temperature_k: float) -> "TechnologyParameters":
        """Return a copy of this card at a different junction temperature."""
        return dataclasses.replace(self, temperature=temperature_k)


def predictive_70nm() -> TechnologyParameters:
    """Return the default predictive 70 nm technology card.

    This is the reproduction's stand-in for the BPTM 70 nm HSPICE cards
    cited by the paper ([5] in its reference list).
    """
    nmos = DeviceParameters(
        vth0=0.25,
        n_sub=1.40,
        mobility=0.0350,
        gamma=0.25,
        phi_s=0.80,
        dibl=0.06,
        theta=1.3,
        j_gate=1.4e5,
        v0_gate=0.12,
        j_jn=1.0e-4,
        j_btbt=1.5e4,
        v0_btbt=0.25,
        j_diode=10.0,
        m_diode=2.0,
        avt=2.5e-9,  # 2.5 mV*um -> ~30 mV sigma for a minimum device
    )
    pmos = DeviceParameters(
        vth0=0.27,
        n_sub=1.20,
        mobility=0.0090,
        gamma=0.25,
        phi_s=0.80,
        dibl=0.055,
        theta=1.1,
        j_gate=1.5e4,
        v0_gate=0.13,
        j_jn=1.0e-4,
        j_btbt=8.0e3,
        v0_btbt=0.27,
        j_diode=10.0,
        m_diode=2.0,
        avt=2.5e-9,
    )
    return TechnologyParameters(
        name="predictive-70nm",
        vdd=1.0,
        length=70e-9,
        tox=1.6e-9,
        temperature=ROOM_TEMPERATURE_K,
        nmos=nmos,
        pmos=pmos,
        junction_depth=100e-9,
    )
