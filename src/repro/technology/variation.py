"""Statistical variation models: intra-die RDF and inter-die distribution.

Intra-die variation follows the paper's assumption that random dopant
fluctuation (RDF) makes each transistor's threshold voltage an independent
Gaussian around the die's corner, with a standard deviation that scales as
the Pelgrom law ``sigma_vt = A_VT / sqrt(W * L)``.

Inter-die variation is a Gaussian over the scalar ``Vt_inter`` shift with
a configurable standard deviation (the x-axis of the paper's Figs. 2c, 4b,
5c and 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.technology.corners import ProcessCorner
from repro.technology.parameters import DeviceParameters


@dataclass(frozen=True)
class RandomDopantFluctuation:
    """Pelgrom-scaled intra-die threshold-voltage variation.

    Attributes:
        avt_n: NMOS Pelgrom coefficient [V*m].
        avt_p: PMOS Pelgrom coefficient [V*m].
    """

    avt_n: float
    avt_p: float

    @classmethod
    def from_devices(
        cls, nmos: DeviceParameters, pmos: DeviceParameters
    ) -> "RandomDopantFluctuation":
        """Build the RDF model from the technology's device cards."""
        return cls(avt_n=nmos.avt, avt_p=pmos.avt)

    def sigma_vt(self, width: float, length: float, polarity: str = "nmos") -> float:
        """Return sigma(Vt) [V] for a ``width`` x ``length`` [m] device."""
        if width <= 0 or length <= 0:
            raise ValueError("width and length must be positive")
        avt = self.avt_n if polarity == "nmos" else self.avt_p
        return avt / np.sqrt(width * length)

    def sample(
        self,
        rng: np.random.Generator,
        width: float,
        length: float,
        size: int | tuple[int, ...],
        polarity: str = "nmos",
    ) -> np.ndarray:
        """Draw intra-die Vt deltas [V] for ``size`` independent devices."""
        sigma = self.sigma_vt(width, length, polarity)
        return rng.normal(0.0, sigma, size=size)


@dataclass(frozen=True)
class InterDieDistribution:
    """Gaussian distribution of the inter-die Vt shift across dies.

    Attributes:
        sigma: standard deviation of ``Vt_inter`` [V].
        mean: mean shift [V]; zero for a centred process.
    """

    sigma: float
    mean: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def sample(
        self, rng: np.random.Generator, size: int | tuple[int, ...]
    ) -> np.ndarray:
        """Draw ``size`` inter-die Vt shifts [V]."""
        return rng.normal(self.mean, self.sigma, size=size)

    def sample_corners(
        self, rng: np.random.Generator, size: int
    ) -> list[ProcessCorner]:
        """Draw ``size`` dies as :class:`ProcessCorner` objects."""
        return [ProcessCorner(float(dvt)) for dvt in self.sample(rng, size)]

    def quadrature(self, order: int = 15) -> tuple[np.ndarray, np.ndarray]:
        """Return Gauss-Hermite nodes [V] and probability weights.

        The nodes are inter-die shifts; the weights sum to 1, so
        ``sum(w_i * f(x_i))`` approximates ``E[f(Vt_inter)]``.
        """
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        nodes, weights = np.polynomial.hermite_e.hermegauss(order)
        shifts = self.mean + self.sigma * nodes
        probabilities = weights / weights.sum()
        return shifts, probabilities

    def pdf(self, dvt: np.ndarray | float) -> np.ndarray | float:
        """Gaussian probability density of the shift ``dvt`` [1/V]."""
        if self.sigma == 0:
            raise ValueError("pdf undefined for a zero-sigma distribution")
        z = (np.asarray(dvt, dtype=float) - self.mean) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2.0 * np.pi))
