"""Inter-die process corners.

The paper characterises a die by a single scalar, the inter-die threshold
voltage shift ``Vt_inter``.  A *negative* shift is the "low-Vt" corner
(leaky, read/hold-failure prone); a *positive* shift is the "high-Vt"
corner (slow, access/write-failure prone).  Following the paper's
convention the shift moves the NMOS and PMOS threshold magnitudes
together: at the high-Vt corner both |Vtn| and |Vtp| increase.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessCorner:
    """A single die's inter-die parameter shift.

    Attributes:
        dvt_inter: inter-die Vt shift [V], applied as ``+dvt`` to the NMOS
            threshold and ``+dvt`` to the PMOS threshold magnitude.
    """

    dvt_inter: float = 0.0

    @property
    def is_low_vt(self) -> bool:
        """True when the die sits at a leaky (negative-shift) corner."""
        return self.dvt_inter < 0.0

    @property
    def is_high_vt(self) -> bool:
        """True when the die sits at a slow (positive-shift) corner."""
        return self.dvt_inter > 0.0

    def shifted(self, extra_dvt: float) -> "ProcessCorner":
        """Return a corner with an additional Vt shift applied."""
        return ProcessCorner(self.dvt_inter + extra_dvt)

    def __str__(self) -> str:
        return f"corner({self.dvt_inter * 1e3:+.1f} mV)"


#: The nominal corner (no inter-die shift).
NOMINAL = ProcessCorner(0.0)
