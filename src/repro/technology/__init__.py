"""Predictive technology description: parameters, corners, and variation.

This package plays the role of the BPTM 70 nm predictive device cards used
by the paper.  It defines:

* :class:`~repro.technology.parameters.DeviceParameters` and
  :class:`~repro.technology.parameters.TechnologyParameters` — the compact
  model cards for NMOS/PMOS plus global technology constants;
* :func:`~repro.technology.parameters.predictive_70nm` — the default
  "predictive 70 nm" technology used throughout the reproduction;
* :class:`~repro.technology.corners.ProcessCorner` — an inter-die threshold
  voltage shift (the paper's ``Vt_inter``);
* :class:`~repro.technology.variation.RandomDopantFluctuation` — the
  Pelgrom-scaled intra-die Vt variation model;
* :class:`~repro.technology.variation.InterDieDistribution` — the Gaussian
  die-to-die Vt distribution.
"""

from repro.technology.corners import ProcessCorner
from repro.technology.parameters import (
    DeviceParameters,
    TechnologyParameters,
    predictive_70nm,
)
from repro.technology.variation import (
    InterDieDistribution,
    RandomDopantFluctuation,
)

__all__ = [
    "DeviceParameters",
    "TechnologyParameters",
    "predictive_70nm",
    "ProcessCorner",
    "RandomDopantFluctuation",
    "InterDieDistribution",
]
