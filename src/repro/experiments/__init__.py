"""Per-figure experiment harnesses.

Every figure of the paper's evaluation has a function here that
regenerates its data series:

========  ==============================================  =================
Figure    What it shows                                   Entry point
========  ==============================================  =================
Fig. 2a   failure probabilities vs inter-die Vt shift     :func:`fig2a`
Fig. 2b   failure probabilities vs body bias              :func:`fig2b`
Fig. 2c   parametric yield vs sigma(Vt_inter)             :func:`fig2c`
Fig. 3    cell vs array leakage distributions             :func:`fig3`
Fig. 4b   cell failures, no-bias vs self-repair           :func:`fig4b`
Fig. 5a   leakage components vs body bias                 :func:`fig5a`
Fig. 5b   memory leakage spread, ZBB vs self-repair       :func:`fig5b`
Fig. 5c   leakage yield vs sigma, ZBB vs self-repair      :func:`fig5c`
Fig. 6    max VSB for target hold failure vs corner       :func:`fig6`
Fig. 8    VSB(adaptive) and hold failure vs corner        :func:`fig8`
Fig. 9    VSB and standby-power distributions             :func:`fig9`
Fig. 10   leakage / hold yield vs sigma, three policies   :func:`fig10`
========  ==============================================  =================

All functions accept an :class:`~repro.experiments.context.ExperimentContext`
(or build the default) and return plain dataclasses with a ``rows()``
method that prints the same series the paper plots.

The CLI (``python -m repro.experiments <id>``) exposes ``--fast``,
``--workers N``, ``--cache-dir DIR``, and the telemetry flags
``--verbose/-v``, ``--log-json``, and ``--metrics-out FILE`` — see
``docs/experiments.md`` for the catalogue and ``docs/observability.md``
for what the telemetry reports.
"""

from repro.experiments.asb import (
    Fig6Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    fig6,
    fig8,
    fig9,
    fig10,
)
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.extensions import (
    ext_8t,
    ext_delay,
    ext_drv,
    ext_ecc,
    ext_performance,
    ext_snm,
    ext_temperature,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    EXTENSIONS,
    ExperimentSpec,
    render_markdown,
    run_experiment,
)
from repro.experiments.repair import (
    Fig2aResult,
    Fig2bResult,
    Fig2cResult,
    Fig3Result,
    Fig4bResult,
    Fig5aResult,
    Fig5bResult,
    Fig5cResult,
    fig2a,
    fig2b,
    fig2c,
    fig3,
    fig4b,
    fig5a,
    fig5b,
    fig5c,
)

__all__ = [
    "ExperimentContext",
    "default_context",
    "EXPERIMENTS",
    "EXTENSIONS",
    "ExperimentSpec",
    "render_markdown",
    "run_experiment",
    "ext_8t",
    "ext_delay",
    "ext_drv",
    "ext_ecc",
    "ext_performance",
    "ext_snm",
    "ext_temperature",
    "fig2a", "fig2b", "fig2c", "fig3", "fig4b",
    "fig5a", "fig5b", "fig5c", "fig6", "fig8", "fig9", "fig10",
    "Fig2aResult", "Fig2bResult", "Fig2cResult", "Fig3Result",
    "Fig4bResult", "Fig5aResult", "Fig5bResult", "Fig5cResult",
    "Fig6Result", "Fig8Result", "Fig9Result", "Fig10Result",
]
