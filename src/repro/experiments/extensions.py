"""Extension experiments beyond the paper's figures.

These exercise the optional/companion-work features DESIGN.md lists:

* ``ext_delay`` — leakage vs delay vs combined corner binning, including
  their behaviour on hot (85 C) dies (the companion ITC'05 work [4]);
* ``ext_drv`` — the data-retention-voltage distribution and the safe
  standby supply it implies (the paper's reference [9] flow);
* ``ext_performance`` — access/cycle time vs body bias: the speed the
  FBB repair buys on slow dies (the performance side of Fig. 2's
  trade-off);
* ``ext_temperature`` — array leakage vs temperature and what it does
  to a leakage-only monitor's binning;
* ``ext_ecc`` — yield enhancement at equal overhead: SEC-DED ECC vs the
  paper's column redundancy (hard parametric faults burn ECC's single
  correction, so redundancy wins);
* ``ext_snm`` — the butterfly static noise margins under body bias: the
  margin-based view of the paper's Fig. 2b;
* ``ext_8t`` — the read-decoupled 8T cell vs the paper's 6T: the
  architectural alternative to post-silicon read repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.delay_monitor import CombinedMonitor, DelayMonitor, RingOscillator
from repro.core.monitor import LeakageMonitor
from repro.experiments.context import ExperimentContext, default_context
from repro.sram.array import ArrayOrganization
from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.drv import array_drv, cell_drv, safe_standby_voltage
from repro.sram.leakage import cell_leakage
from repro.sram.timing import access_time, read_cycle_time
from repro.technology.corners import ProcessCorner


# ----------------------------------------------------------------------
# ext_delay — sensor comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtDelayResult:
    """Binning decisions of the three monitors across corners and temps."""

    shifts: np.ndarray
    decisions: dict[str, list[str]]  # monitor name -> bin per corner
    hot_decisions: dict[str, str]    # monitor name -> bin of hot nominal die

    def rows(self) -> list[str]:
        lines = ["shift[mV]  leakage    delay      combined"]
        for i, s in enumerate(self.shifts):
            lines.append(
                f"{s * 1e3:+8.0f}  {self.decisions['leakage'][i]:9s}"
                f"  {self.decisions['delay'][i]:9s}"
                f"  {self.decisions['combined'][i]:9s}"
            )
        lines.append(
            "hot nominal die (85C): leakage -> "
            f"{self.hot_decisions['leakage']}, delay -> "
            f"{self.hot_decisions['delay']}, combined -> "
            f"{self.hot_decisions['combined']}"
        )
        return lines


def ext_delay(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray | None = None,
    n_cells: int = 64 * 1024 * 8,
) -> ExtDelayResult:
    """Compare leakage, delay, and combined corner binning.

    On true corners at 27 C all three agree; on a hot nominal die the
    leakage monitor misbins LOW_VT (leakage is exponential in
    temperature) while the ring is *slower*, so the combined monitor
    correctly refuses the RBB.
    """
    ctx = ctx if ctx is not None else default_context()
    shifts = shifts if shifts is not None else np.linspace(-0.08, 0.08, 9)
    leakage_monitor = LeakageMonitor.calibrate_references(
        ctx.tech, ctx.geometry, n_cells, n_samples=8_000
    )
    delay_monitor = DelayMonitor.calibrate(ctx.tech)
    combined = CombinedMonitor(leakage_monitor, delay_monitor)
    oscillator = delay_monitor.oscillator

    def mean_array_leakage(tech, corner: ProcessCorner) -> float:
        rng = np.random.default_rng(55)
        dvt = sample_cell_dvt(tech, ctx.geometry, rng, 6_000)
        cell = SixTCell(tech, ctx.geometry, corner, dvt)
        return n_cells * float(np.mean(cell_leakage(cell).total))

    decisions: dict[str, list[str]] = {
        "leakage": [], "delay": [], "combined": []
    }
    for s in shifts:
        corner = ProcessCorner(float(s))
        leakage = mean_array_leakage(ctx.tech, corner)
        period = oscillator.period(corner)
        decisions["leakage"].append(leakage_monitor.classify(leakage).value)
        decisions["delay"].append(
            delay_monitor.classify_period(period).value
        )
        decisions["combined"].append(
            combined.classify(leakage, period).value
        )

    hot_tech = ctx.tech.with_temperature(273.15 + 85.0)
    hot_leakage = mean_array_leakage(hot_tech, ProcessCorner(0.0))
    hot_period = RingOscillator(hot_tech).period(ProcessCorner(0.0))
    hot_decisions = {
        "leakage": leakage_monitor.classify(hot_leakage).value,
        "delay": delay_monitor.classify_period(hot_period).value,
        "combined": combined.classify(hot_leakage, hot_period).value,
    }
    return ExtDelayResult(
        shifts=np.asarray(shifts), decisions=decisions,
        hot_decisions=hot_decisions,
    )


# ----------------------------------------------------------------------
# ext_drv — data retention voltage distribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtDrvResult:
    """Cell and array DRV statistics, per body bias."""

    cell_drv: dict[float, np.ndarray]       # vbody -> per-cell DRVs
    array_quantiles: dict[float, float]     # vbody -> p99 array DRV
    safe_voltage: float
    n_cells: int

    def rows(self) -> list[str]:
        lines = ["vbody[V]  cell DRV p50/p99 [V]   array(64Kb) DRV p99 [V]"]
        for vbody in sorted(self.cell_drv):
            drv = self.cell_drv[vbody]
            lines.append(
                f"{vbody:+7.2f}  {np.median(drv):.3f} / "
                f"{np.quantile(drv, 0.99):.3f}            "
                f"{self.array_quantiles[vbody]:.3f}"
            )
        lines.append(
            f"safe standby supply (ZBB, 99% of dies + 50 mV guard): "
            f"{self.safe_voltage:.3f} V"
        )
        return lines


def ext_drv(
    ctx: ExperimentContext | None = None,
    n_samples: int = 8_000,
    n_cells: int = 64 * 1024,
) -> ExtDrvResult:
    """DRV distribution of the cell population and its array extremes."""
    ctx = ctx if ctx is not None else default_context()
    rng = np.random.default_rng((ctx.seed, 71))
    dvt = sample_cell_dvt(ctx.tech, ctx.geometry, rng, n_samples)
    population = SixTCell(ctx.tech, ctx.geometry, ProcessCorner(0.0), dvt)
    cell_drvs: dict[float, np.ndarray] = {}
    quantiles: dict[float, float] = {}
    for vbody in (0.0, -0.4):
        drv = cell_drv(population, ctx.criteria, vbody_n=vbody, n_levels=25)
        cell_drvs[vbody] = drv
        maxima = array_drv(drv, n_cells, np.random.default_rng(72),
                           n_arrays=400)
        quantiles[vbody] = float(np.quantile(maxima, 0.99))
    safe = safe_standby_voltage(
        cell_drvs[0.0], n_cells, np.random.default_rng(73)
    )
    return ExtDrvResult(
        cell_drv=cell_drvs, array_quantiles=quantiles,
        safe_voltage=safe, n_cells=n_cells,
    )


# ----------------------------------------------------------------------
# ext_performance — the speed FBB buys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtPerformanceResult:
    """Access/cycle time across corners, ZBB vs the repair policy."""

    shifts: np.ndarray
    t_access_zbb: np.ndarray
    t_access_repaired: np.ndarray
    t_cycle_zbb: np.ndarray

    def rows(self) -> list[str]:
        lines = ["shift[mV]  T_access ZBB[ps]  T_access repaired[ps]  "
                 "T_cycle ZBB[ps]"]
        for i, s in enumerate(self.shifts):
            lines.append(
                f"{s * 1e3:+8.0f}  {self.t_access_zbb[i] * 1e12:15.1f}"
                f"  {self.t_access_repaired[i] * 1e12:20.1f}"
                f"  {self.t_cycle_zbb[i] * 1e12:14.1f}"
            )
        return lines


def ext_performance(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray | None = None,
    fbb: float = 0.25,
    rbb: float = -0.4,
    boundary: tuple[float, float] = (0.035, 0.055),
) -> ExtPerformanceResult:
    """Access-time recovery from the body-bias repair policy.

    ``boundary`` is the monitor's (low, high) corner half-widths —
    asymmetric by default, matching the repair pipeline.
    """
    ctx = ctx if ctx is not None else default_context()
    shifts = shifts if shifts is not None else np.linspace(-0.1, 0.1, 9)
    organization = ArrayOrganization.from_capacity(
        64 * 1024, rows=256, redundancy_fraction=0.05
    )
    low_boundary, high_boundary = boundary
    zbb = np.empty(len(shifts))
    repaired = np.empty(len(shifts))
    cycle = np.empty(len(shifts))
    for i, s in enumerate(shifts):
        cell = SixTCell(ctx.tech, ctx.geometry, ProcessCorner(float(s)))
        vbody = (
            rbb if s < -low_boundary
            else (fbb if s > high_boundary else 0.0)
        )
        zbb[i] = float(np.atleast_1d(
            access_time(cell, organization, ctx.tech.vdd, 0.0))[0])
        repaired[i] = float(np.atleast_1d(
            access_time(cell, organization, ctx.tech.vdd, vbody))[0])
        cycle[i] = float(np.atleast_1d(
            read_cycle_time(cell, organization, ctx.tech.vdd, 0.0))[0])
    return ExtPerformanceResult(
        shifts=np.asarray(shifts), t_access_zbb=zbb,
        t_access_repaired=repaired, t_cycle_zbb=cycle,
    )


# ----------------------------------------------------------------------
# ext_temperature — leakage vs temperature and monitor robustness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtTemperatureResult:
    """Leakage scaling and leakage-monitor binning vs temperature."""

    temperatures_c: np.ndarray
    mean_cell_leakage: np.ndarray
    leakage_bin: list[str]
    delay_bin: list[str]

    def rows(self) -> list[str]:
        lines = ["T[C]   cell leakage[nA]  leakage-monitor bin  delay bin"]
        for i, t in enumerate(self.temperatures_c):
            lines.append(
                f"{t:5.0f}  {self.mean_cell_leakage[i] * 1e9:15.2f}"
                f"  {self.leakage_bin[i]:18s}  {self.delay_bin[i]}"
            )
        return lines


def ext_temperature(
    ctx: ExperimentContext | None = None,
    temperatures_c: np.ndarray | None = None,
    n_cells: int = 64 * 1024 * 8,
) -> ExtTemperatureResult:
    """How a nominal die reads across temperature.

    The leakage monitor (calibrated at 27 C) starts misbinning the die
    as LOW_VT somewhere between 45 and 85 C; the delay monitor stays
    NOMINAL-or-slower — quantifying why the combined scheme matters.
    """
    ctx = ctx if ctx is not None else default_context()
    temperatures_c = (
        temperatures_c if temperatures_c is not None
        else np.array([0.0, 27.0, 45.0, 65.0, 85.0])
    )
    monitor = LeakageMonitor.calibrate_references(
        ctx.tech, ctx.geometry, n_cells, n_samples=8_000
    )
    delay_monitor = DelayMonitor.calibrate(ctx.tech)
    leakage_means = np.empty(len(temperatures_c))
    leakage_bins: list[str] = []
    delay_bins: list[str] = []
    for i, t_c in enumerate(temperatures_c):
        tech_t = ctx.tech.with_temperature(273.15 + float(t_c))
        rng = np.random.default_rng(81)
        dvt = sample_cell_dvt(tech_t, ctx.geometry, rng, 6_000)
        cell = SixTCell(tech_t, ctx.geometry, ProcessCorner(0.0), dvt)
        mean = float(np.mean(cell_leakage(cell).total))
        leakage_means[i] = mean
        leakage_bins.append(monitor.classify(n_cells * mean).value)
        period = RingOscillator(tech_t).period(ProcessCorner(0.0))
        delay_bins.append(delay_monitor.classify_period(period).value)
    return ExtTemperatureResult(
        temperatures_c=np.asarray(temperatures_c),
        mean_cell_leakage=leakage_means,
        leakage_bin=leakage_bins,
        delay_bin=delay_bins,
    )


# ----------------------------------------------------------------------
# ext_ecc — ECC vs redundancy at equal overhead
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtEccResult:
    """Memory failure probability per scheme across inter-die corners."""

    shifts: np.ndarray
    p_none: np.ndarray
    p_redundancy: np.ndarray
    p_ecc: np.ndarray
    p_repair_plus_redundancy: np.ndarray

    def rows(self) -> list[str]:
        lines = ["shift[mV]  P_mem none  P_mem redundancy  P_mem ECC  "
                 "P_mem repair+red"]
        for i, s in enumerate(self.shifts):
            lines.append(
                f"{s * 1e3:+8.0f}  {self.p_none[i]:9.2e}"
                f"  {self.p_redundancy[i]:15.2e}  {self.p_ecc[i]:9.2e}"
                f"  {self.p_repair_plus_redundancy[i]:15.2e}"
            )
        return lines


def ext_ecc(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray | None = None,
    memory_kbytes: int = 64,
) -> ExtEccResult:
    """Yield enhancement at equal ~12.5% overhead: ECC vs redundancy.

    Hard parametric faults consume SEC-DED's single correction
    permanently, so at equal area the paper's column redundancy (and a
    fortiori redundancy + post-silicon repair) dominates ECC — the
    quantitative argument for why ECC is reserved for soft errors.
    """
    from repro.core.body_bias import BodyBiasGenerator, SelfRepairingSRAM
    from repro.failures.memory import memory_failure_probability
    from repro.sram.ecc import memory_failure_with_ecc

    ctx = ctx if ctx is not None else default_context()
    shifts = shifts if shifts is not None else np.linspace(-0.06, 0.06, 9)
    n_cells = memory_kbytes * 1024 * 8
    # Equal-overhead organisations: 12.5% spare columns vs (72, 64) ECC.
    organization = ArrayOrganization(
        rows=256, columns=n_cells // 256,
        redundant_columns=round(0.125 * n_cells / 256),
    )
    pipeline = SelfRepairingSRAM(
        ctx.analyzer(), organization, generator=BodyBiasGenerator(),
        table_provider=ctx.table, seed=ctx.seed + 5,
    )
    table = ctx.table(0.0)
    p_none = np.empty(len(shifts))
    p_red = np.empty(len(shifts))
    p_ecc = np.empty(len(shifts))
    p_rep = np.empty(len(shifts))
    for i, s in enumerate(shifts):
        corner = ProcessCorner(float(s))
        p_cell = table.probability(corner, "any")
        p_none[i] = float(-np.expm1(n_cells * np.log1p(-min(p_cell, 1 - 1e-16))))
        p_red[i] = memory_failure_probability(p_cell, organization)
        p_ecc[i] = memory_failure_with_ecc(p_cell, n_cells // 64, 72)
        vbody = pipeline.decide_bias(corner)[0]
        p_rep[i] = pipeline.memory_failure_probability(corner, vbody)
    return ExtEccResult(
        shifts=np.asarray(shifts), p_none=p_none, p_redundancy=p_red,
        p_ecc=p_ecc, p_repair_plus_redundancy=p_rep,
    )


# ----------------------------------------------------------------------
# ext_snm — static noise margins under body bias
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExtSnmResult:
    """Read/hold SNM statistics vs NMOS body bias."""

    vbody: np.ndarray
    read_mean: np.ndarray
    read_p01: np.ndarray
    hold_mean: np.ndarray

    def rows(self) -> list[str]:
        lines = ["vbody[V]  read SNM mean/p1 [mV]   hold SNM mean [mV]"]
        for i, v in enumerate(self.vbody):
            lines.append(
                f"{v:+7.2f}  {self.read_mean[i] * 1e3:8.1f} /"
                f" {self.read_p01[i] * 1e3:6.1f}"
                f"   {self.hold_mean[i] * 1e3:12.1f}"
            )
        return lines


def ext_snm(
    ctx: ExperimentContext | None = None,
    vbody: np.ndarray | None = None,
    n_samples: int = 1_500,
) -> ExtSnmResult:
    """Butterfly SNMs vs body bias: the margin view of Fig. 2b.

    RBB widens the read butterfly (the read-failure repair) and FBB
    narrows it; the hold SNM barely moves at full supply.
    """
    from repro.sram.cell import sample_cell_dvt
    from repro.sram.snm import hold_snm, read_snm

    ctx = ctx if ctx is not None else default_context()
    vbody = vbody if vbody is not None else np.array([-0.4, -0.2, 0.0, 0.25])
    rng = np.random.default_rng((ctx.seed, 91))
    dvt = sample_cell_dvt(ctx.tech, ctx.geometry, rng, n_samples)
    population = SixTCell(ctx.tech, ctx.geometry, ProcessCorner(0.0), dvt)
    read_mean = np.empty(len(vbody))
    read_p01 = np.empty(len(vbody))
    hold_mean = np.empty(len(vbody))
    for i, vb in enumerate(vbody):
        read = read_snm(population, ctx.tech.vdd, vbody_n=float(vb))
        hold = hold_snm(population, ctx.tech.vdd, vbody_n=float(vb))
        read_mean[i] = read.mean()
        read_p01[i] = np.quantile(read, 0.01)
        hold_mean[i] = hold.mean()
    return ExtSnmResult(
        vbody=np.asarray(vbody), read_mean=read_mean,
        read_p01=read_p01, hold_mean=hold_mean,
    )


# ----------------------------------------------------------------------
# ext_8t — the architectural alternative to read repair
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Ext8TResult:
    """6T vs 8T failure probabilities across inter-die corners."""

    shifts: np.ndarray
    p6_read: np.ndarray
    p6_any: np.ndarray
    p8_any: np.ndarray
    area_overhead: float

    def rows(self) -> list[str]:
        lines = [f"8T area overhead ~ {100 * self.area_overhead:.0f}%",
                 "shift[mV]  6T read     6T overall  8T overall"]
        for i, s in enumerate(self.shifts):
            lines.append(
                f"{s * 1e3:+8.0f}  {self.p6_read[i]:9.2e}"
                f"  {self.p6_any[i]:9.2e}  {self.p8_any[i]:9.2e}"
            )
        return lines


def ext_8t(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray | None = None,
    n_samples: int = 20_000,
) -> Ext8TResult:
    """The 8T cell vs the 6T across corners.

    The 8T's decoupled read port removes the read-failure wall that
    dominates the 6T's low-Vt side (the left half of the paper's
    Fig. 2a); write/access/hold remain, so the high-Vt side is
    unchanged.  The comparison quantifies what the paper's post-silicon
    RBB repair buys *without* paying the 8T's ~33% area.
    """
    from repro.sram.eight_t import (
        EightTGeometry,
        eight_t_failure_probabilities,
        sample_eight_t,
    )

    ctx = ctx if ctx is not None else default_context()
    shifts = shifts if shifts is not None else np.linspace(-0.1, 0.1, 9)
    analyzer = ctx.analyzer()
    p6_read = np.empty(len(shifts))
    p6_any = np.empty(len(shifts))
    p8_any = np.empty(len(shifts))
    for i, s in enumerate(shifts):
        corner = ProcessCorner(float(s))
        p6 = analyzer.failure_probabilities(corner)
        p6_read[i] = p6["read"].estimate
        p6_any[i] = p6["any"].estimate
        rng = np.random.default_rng((ctx.seed, 95, i))
        cell, weights = sample_eight_t(
            ctx.tech, rng, n_samples, geometry=ctx.geometry,
            corner=corner, scale=2.0,
        )
        p8 = eight_t_failure_probabilities(
            cell, weights, ctx.criteria, ctx.conditions
        )
        p8_any[i] = p8["any"].estimate
    return Ext8TResult(
        shifts=np.asarray(shifts), p6_read=p6_read, p6_any=p6_any,
        p8_any=p8_any, area_overhead=EightTGeometry().area_overhead,
    )
