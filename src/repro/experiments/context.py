"""Shared, cached setup for all experiments.

Criteria calibration and the failure-probability tables are the
expensive pieces every figure needs; the context builds each exactly
once and shares it.  ``default_context()`` memoises a full-accuracy
instance; tests construct small ones explicitly.

Execution is configurable: ``workers`` fans grid builds out across
processes (bit-identical to serial — see ``docs/performance.md``) and
``cache_dir`` persists calibrated criteria and built tables to disk so
a rerun with the same parameters loads instead of recomputing.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from repro import faults
from repro.checkpoint import CheckpointStore
from repro.core.tables import FailureProbabilityTable
from repro.failures.analysis import CellFailureAnalyzer
from repro.failures.criteria import FailureCriteria, calibrate_criteria
from repro.observability.log import get_logger
from repro.observability.tracing import trace
from repro.parallel.cache import ResultCache
from repro.parallel.executor import ParallelExecutor
from repro.sram.cell import CellGeometry
from repro.sram.metrics import OperatingConditions
from repro.technology.parameters import TechnologyParameters, predictive_70nm

_log = get_logger("experiments.context")


class ExperimentContext:
    """Technology + calibrated criteria + shared analyzers/tables.

    Args:
        tech: technology card (default predictive 70 nm).
        geometry: cell geometry.
        target: per-mechanism failure probability at the nominal/ZBB
            calibration point.
        calibration_samples: Monte-Carlo size for criteria calibration.
        analysis_samples: solver-call budget per failure estimate.
        sampler: rare-event sampling strategy for analyzers minted by
            this context — one of :data:`repro.stats.SAMPLER_NAMES`
            (``plain``, ``scaled``, ``adaptive-is``, ``blockade``).
        sampler_scale: sigma inflation for ``sampler="scaled"``; None
            auto-tunes the scale from a pilot batch.  Ignored by the
            other strategies.
        table_grid: corner-grid points per interpolated table.
        seed: base seed for all derived randomness.
        workers: process count for sweep fan-out (default 1 = serial,
            hermetic).  Any worker count produces bit-identical results.
        cache_dir: directory for the disk-backed result cache (default
            None = no persistence); criteria and tables computed by this
            context are stored there and reloaded on the next run.
        checkpoint_dir: directory for mid-build checkpoints (default
            None = no checkpointing); table builds flush completed grid
            cells there and a killed run resumes exactly.
        checkpoint_every: flush cadence (completed cells per flush).
        fault_plan: chaos-injection plan (:class:`repro.faults.FaultPlan`)
            installed process-wide and handed to the executor; None (the
            default) injects nothing.  Test/CI-only.
    """

    def __init__(
        self,
        tech: TechnologyParameters | None = None,
        geometry: CellGeometry | None = None,
        target: float = 1e-7,
        calibration_samples: int = 150_000,
        analysis_samples: int = 40_000,
        sampler: str = "scaled",
        sampler_scale: float | None = 2.0,
        table_grid: int = 17,
        seed: int = 2006,
        workers: int = 1,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 8,
        fault_plan: "faults.FaultPlan | None" = None,
    ) -> None:
        self.tech = tech if tech is not None else predictive_70nm()
        self.geometry = geometry if geometry is not None else CellGeometry()
        self.conditions = OperatingConditions.nominal(self.tech)
        self.target = target
        self.analysis_samples = analysis_samples
        self.sampler = sampler
        self.sampler_scale = sampler_scale
        self.table_grid = table_grid
        self.seed = seed
        self._criteria: FailureCriteria | None = None
        self._calibration_samples = calibration_samples
        self._tables: dict[float, FailureProbabilityTable] = {}
        #: Scratch cache for expensive experiment-level artifacts (e.g.
        #: the ASB hold-probability table); keyed by the artifact name.
        self.cache: dict = {}
        self.fault_plan = fault_plan
        if fault_plan is not None:
            faults.install(fault_plan)
        self.executor = ParallelExecutor(workers, fault_plan=fault_plan)
        self.result_cache = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        self.checkpoint_store = (
            CheckpointStore(checkpoint_dir, every=checkpoint_every)
            if checkpoint_dir is not None
            else None
        )

    @classmethod
    def from_spec(
        cls,
        spec: dict,
        workers: int = 1,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 8,
        fault_plan: "faults.FaultPlan | None" = None,
    ) -> "ExperimentContext":
        """A context configured from a normalized service job spec.

        ``spec`` is the output of
        :func:`repro.service.spec.normalize_spec` — the wire-format
        payload a ``POST /v1/jobs`` submission carries (see
        ``docs/service.md``).  Accuracy knobs (target, sample budgets,
        sampler, grid, seed) come from the spec because they are part
        of the job's identity (its cache fingerprint); execution knobs
        (workers, cache/checkpoint directories) come from the server
        because they must not change what is computed, only how.

        ``sampler_scale`` is always ``None``: the scaled sampler
        auto-tunes from a pilot batch and the adaptive strategies use
        their default exploration width, so a spec never needs to pick
        a magic inflation constant.
        """
        return cls(
            target=spec["target"],
            calibration_samples=spec["calibration_samples"],
            analysis_samples=spec["analysis_samples"],
            sampler=spec["sampler"],
            sampler_scale=None,
            table_grid=spec["table_grid"],
            seed=spec["seed"],
            workers=workers,
            cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            fault_plan=fault_plan,
        )

    @property
    def workers(self) -> int:
        """The configured fan-out width (1 = serial)."""
        return self.executor.requested_workers

    def configure_execution(
        self,
        workers: int | None = None,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int | None = None,
        fault_plan: "faults.FaultPlan | None" = None,
    ) -> "ExperimentContext":
        """Re-point the execution engine / result cache after creation.

        Used by the CLI to upgrade an already-built context (e.g. the
        memoised :func:`default_context`) without re-calibrating; only
        artifacts built *after* the call see the new settings.  Returns
        ``self`` for chaining.
        """
        if fault_plan is not None:
            self.fault_plan = fault_plan
            faults.install(fault_plan)
        if workers is not None or fault_plan is not None:
            self.executor = ParallelExecutor(
                workers if workers is not None else self.workers,
                fault_plan=self.fault_plan,
            )
        if cache_dir is not None:
            self.result_cache = ResultCache(cache_dir)
        if checkpoint_dir is not None:
            self.checkpoint_store = CheckpointStore(
                checkpoint_dir,
                every=(checkpoint_every if checkpoint_every else 8),
            )
        return self

    def configure_sampling(
        self,
        sampler: str | None = None,
        scale: float | None = None,
        analysis_samples: int | None = None,
    ) -> "ExperimentContext":
        """Re-point the rare-event sampling strategy after creation.

        Like :meth:`configure_execution`, this upgrades an already-built
        context (e.g. the memoised :func:`default_context`) in place;
        only analyzers and tables minted *after* the call use the new
        strategy.  Tables already built under the old strategy stay in
        ``self._tables``, so switching samplers drops them.  Returns
        ``self`` for chaining.
        """
        changed = False
        if sampler is not None and sampler != self.sampler:
            self.sampler = sampler
            changed = True
        if scale is not None and scale != self.sampler_scale:
            self.sampler_scale = scale
            changed = True
        if sampler == "scaled" and scale is None:
            # Explicit re-selection of "scaled" means auto-tune.
            self.sampler_scale = None
            changed = True
        if (
            analysis_samples is not None
            and analysis_samples != self.analysis_samples
        ):
            self.analysis_samples = analysis_samples
            changed = True
        if changed:
            self._tables.clear()
        return self

    def _criteria_key(self) -> dict:
        """Everything criteria calibration depends on, as JSON."""
        return {
            "technology": dataclasses.asdict(self.tech),
            "geometry": dataclasses.asdict(self.geometry),
            "conditions": dataclasses.asdict(self.conditions),
            "target": self.target,
            "n_samples": self._calibration_samples,
            "seed": self.seed,
        }

    @property
    def criteria(self) -> FailureCriteria:
        """Calibrated failure criteria (computed once, lazily).

        With a ``cache_dir`` configured, a previous run's calibration
        for the identical (technology, target, sampling) payload is
        loaded from disk instead of recomputed.
        """
        if self._criteria is None:
            key = self._criteria_key() if self.result_cache is not None else None
            if key is not None:
                stored = self.result_cache.get("criteria", key)
                if stored is not None:
                    self._criteria = FailureCriteria(**stored["criteria"])
                    _log.info("criteria.cached", target=self.target)
                    return self._criteria
            _log.info(
                "criteria.calibrate.start",
                target=self.target,
                n_samples=self._calibration_samples,
            )
            with trace("criteria.calibrate"):
                self._criteria = calibrate_criteria(
                    self.tech,
                    self.geometry,
                    self.conditions,
                    target=self.target,
                    n_samples=self._calibration_samples,
                    seed=self.seed,
                )
            _log.info("criteria.calibrate.done", target=self.target)
            if key is not None:
                self.result_cache.put(
                    "criteria",
                    key,
                    {"criteria": dataclasses.asdict(self._criteria)},
                )
        return self._criteria

    def analyzer(
        self, conditions: OperatingConditions | None = None
    ) -> CellFailureAnalyzer:
        """A failure analyzer bound to this context's calibration."""
        return CellFailureAnalyzer(
            self.tech,
            self.criteria,
            geometry=self.geometry,
            conditions=conditions if conditions is not None else self.conditions,
            n_samples=self.analysis_samples,
            scale=self.sampler_scale,
            seed=self.seed + 1,
            sampler=self.sampler,
        )

    def table(self, vbody: float = 0.0) -> FailureProbabilityTable:
        """Shared interpolated failure table at one body-bias level.

        Built through the context's executor (fan-out over the corner
        grid) and result cache (warm reload across runs).
        """
        key = round(vbody, 6)
        if key not in self._tables:
            conditions = self.conditions.with_body_bias(vbody)
            self._tables[key] = FailureProbabilityTable(
                self.analyzer(),
                conditions,
                n_grid=self.table_grid,
                executor=self.executor,
                cache=self.result_cache,
                checkpoint=self.checkpoint_store,
            )
        return self._tables[key]

    def asb_conditions(self, vsb: float = 0.0) -> OperatingConditions:
        """Source-biasing standby conditions (Section IV experiments)."""
        return OperatingConditions.source_biased_standby(self.tech, vsb)


@lru_cache(maxsize=1)
def default_context() -> ExperimentContext:
    """The full-accuracy shared context used by benchmarks/examples."""
    return ExperimentContext()
