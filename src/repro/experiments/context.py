"""Shared, cached setup for all experiments.

Criteria calibration and the failure-probability tables are the
expensive pieces every figure needs; the context builds each exactly
once and shares it.  ``default_context()`` memoises a full-accuracy
instance; tests construct small ones explicitly.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.tables import FailureProbabilityTable
from repro.failures.analysis import CellFailureAnalyzer
from repro.failures.criteria import FailureCriteria, calibrate_criteria
from repro.sram.cell import CellGeometry
from repro.sram.metrics import OperatingConditions
from repro.technology.parameters import TechnologyParameters, predictive_70nm


class ExperimentContext:
    """Technology + calibrated criteria + shared analyzers/tables.

    Args:
        tech: technology card (default predictive 70 nm).
        geometry: cell geometry.
        target: per-mechanism failure probability at the nominal/ZBB
            calibration point.
        calibration_samples: Monte-Carlo size for criteria calibration.
        analysis_samples: weighted samples per failure estimate.
        table_grid: corner-grid points per interpolated table.
        seed: base seed for all derived randomness.
    """

    def __init__(
        self,
        tech: TechnologyParameters | None = None,
        geometry: CellGeometry | None = None,
        target: float = 1e-7,
        calibration_samples: int = 150_000,
        analysis_samples: int = 40_000,
        table_grid: int = 17,
        seed: int = 2006,
    ) -> None:
        self.tech = tech if tech is not None else predictive_70nm()
        self.geometry = geometry if geometry is not None else CellGeometry()
        self.conditions = OperatingConditions.nominal(self.tech)
        self.target = target
        self.analysis_samples = analysis_samples
        self.table_grid = table_grid
        self.seed = seed
        self._criteria: FailureCriteria | None = None
        self._calibration_samples = calibration_samples
        self._tables: dict[float, FailureProbabilityTable] = {}
        #: Scratch cache for expensive experiment-level artifacts (e.g.
        #: the ASB hold-probability table); keyed by the artifact name.
        self.cache: dict = {}

    @property
    def criteria(self) -> FailureCriteria:
        """Calibrated failure criteria (computed once, lazily)."""
        if self._criteria is None:
            self._criteria = calibrate_criteria(
                self.tech,
                self.geometry,
                self.conditions,
                target=self.target,
                n_samples=self._calibration_samples,
                seed=self.seed,
            )
        return self._criteria

    def analyzer(
        self, conditions: OperatingConditions | None = None
    ) -> CellFailureAnalyzer:
        """A failure analyzer bound to this context's calibration."""
        return CellFailureAnalyzer(
            self.tech,
            self.criteria,
            geometry=self.geometry,
            conditions=conditions if conditions is not None else self.conditions,
            n_samples=self.analysis_samples,
            seed=self.seed + 1,
        )

    def table(self, vbody: float = 0.0) -> FailureProbabilityTable:
        """Shared interpolated failure table at one body-bias level."""
        key = round(vbody, 6)
        if key not in self._tables:
            conditions = self.conditions.with_body_bias(vbody)
            self._tables[key] = FailureProbabilityTable(
                self.analyzer(), conditions, n_grid=self.table_grid
            )
        return self._tables[key]

    def asb_conditions(self, vsb: float = 0.0) -> OperatingConditions:
        """Source-biasing standby conditions (Section IV experiments)."""
        return OperatingConditions.source_biased_standby(self.tech, vsb)


@lru_cache(maxsize=1)
def default_context() -> ExperimentContext:
    """The full-accuracy shared context used by benchmarks/examples."""
    return ExperimentContext()
