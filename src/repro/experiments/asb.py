"""Self-adaptive source-bias experiments (paper Figs. 6-10).

These experiments share a :class:`HoldProbabilityTable` — an
interpolated surface of the hold-failure probability over (inter-die
corner, VSB) at the source-biasing standby conditions.  The table backs
the statistical policies:

* **VSB(opt)** — the single design-time bias chosen at the nominal
  corner (the paper's [10] baseline);
* **VSB(adaptive)** — the per-die bias the BIST would converge to,
  modelled statistically as the largest DAC code whose expected faulty
  columns fit in the redundancy (the per-die BIST hardware itself is
  exercised in :func:`fig8`/:func:`fig9` and the test suite).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from repro.core.source_bias import (
    SelfAdaptiveSourceBias,
    SourceBiasDAC,
)
from repro.experiments.context import ExperimentContext, default_context
from repro.failures.memory import memory_failure_probability
from repro.observability import diagnostics
from repro.observability.diagnostics import BatchDiagnostics
from repro.observability.log import get_logger
from repro.observability.metrics import incr, observe
from repro.observability.tracing import trace
from repro.power.standby import die_standby_power
from repro.sram.array import ArrayOrganization, FunctionalMemoryArray
from repro.stats.distributions import NormalDistribution
from repro.stats.integration import dense_expectation
from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution

#: Default inter-die sweep [V].
DEFAULT_SHIFTS = np.linspace(-0.1, 0.1, 9)
#: Probability floor for log-space interpolation.
_P_FLOOR = 1e-14

_log = get_logger("experiments.asb")


def default_asb_organization() -> ArrayOrganization:
    """The paper's ASB testbench: 2KB array, 5% column redundancy."""
    return ArrayOrganization.from_capacity(
        2 * 1024, rows=64, redundancy_fraction=0.05
    )


class HoldProbabilityTable:
    """Interpolated hold-failure probability over (corner, VSB).

    Built once from importance-sampled estimates on a rectilinear grid;
    interpolation is linear in log10(p).  The surface is the engine
    behind Figs. 6, 8 (statistical policies), 9b and 10.
    """

    def __init__(
        self,
        ctx: ExperimentContext,
        corner_grid: np.ndarray | None = None,
        vsb_grid: np.ndarray | None = None,
    ) -> None:
        self.ctx = ctx
        self.corner_grid = (
            corner_grid if corner_grid is not None
            else np.linspace(-0.12, 0.12, 9)
        )
        self.vsb_grid = (
            vsb_grid if vsb_grid is not None
            else np.array([0.0, 0.2, 0.3, 0.4, 0.45, 0.5, 0.525,
                           0.55, 0.575, 0.6, 0.63])
        )
        #: Estimator health of the surface build (worst-node CI
        #: half-width, minimum ESS, unconverged node count); ``None``
        #: only for cache entries written before diagnostics existed.
        self.diagnostics: BatchDiagnostics | None = None
        log_p = self._grid_log_probabilities(ctx)
        self._interp = RegularGridInterpolator(
            (self.corner_grid, self.vsb_grid), log_p,
            bounds_error=False, fill_value=None,
        )

    @trace("hold_table.build")
    def _grid_log_probabilities(self, ctx: ExperimentContext) -> np.ndarray:
        """The log10 hold-probability matrix, cached and fanned out.

        All (corner, vsb) grid nodes are independent importance-sampled
        estimates, so the build goes through the analyzer's batch API
        (parallel when the context has workers) and, when the context
        carries a result cache, is persisted under a fingerprint of the
        full analyzer + grid payload.
        """
        analyzer = ctx.analyzer()
        key = {
            "technology": dataclasses.asdict(ctx.tech),
            "criteria": dataclasses.asdict(analyzer.criteria),
            "geometry": dataclasses.asdict(ctx.geometry),
            "n_samples": analyzer.n_samples,
            "scale": analyzer.scale,
            "sampler": analyzer.sampler,
            "seed": analyzer.seed,
            "corner_grid": [float(x) for x in self.corner_grid],
            "vsb_grid": [float(x) for x in self.vsb_grid],
        }
        if ctx.result_cache is not None:
            stored = ctx.result_cache.get("hold-table", key)
            if stored is not None:
                if stored.get("diagnostics") is not None:
                    self.diagnostics = BatchDiagnostics.from_dict(
                        stored["diagnostics"]
                    )
                    # Warm reloads keep reporting build-time health.
                    diagnostics.record_batch("hold_table", self.diagnostics)
                _log.info(
                    "hold_table.build.cached",
                    corners=self.corner_grid.size,
                    vsb_levels=self.vsb_grid.size,
                )
                return np.array(stored["log10_probability"], dtype=float)
        _log.info(
            "hold_table.build.start",
            corners=self.corner_grid.size,
            vsb_levels=self.vsb_grid.size,
            points=self.corner_grid.size * self.vsb_grid.size,
        )
        corners = []
        conditions = []
        for dvt in self.corner_grid:
            for vsb in self.vsb_grid:
                corners.append(ProcessCorner(float(dvt)))
                conditions.append(ctx.asb_conditions(float(vsb)))
        def compute(indices):
            return analyzer.hold_failure_probability_batch(
                [corners[i] for i in indices],
                [conditions[i] for i in indices],
                executor=ctx.executor,
            )

        store = getattr(ctx, "checkpoint_store", None)
        if store is None:
            results = compute(range(len(corners)))
        else:
            # Each (corner, vsb) node seeds its own RNG stream from its
            # key, so a resumed build is bit-identical to a fresh one.
            from repro.parallel.cache import fingerprint
            from repro.stats.montecarlo import MonteCarloResult

            results = store.resumable_map(
                "hold-table",
                fingerprint(key),
                len(corners),
                compute,
                dataclasses.asdict,
                lambda raw: MonteCarloResult(**raw),
            )
        self.diagnostics = diagnostics.summarize(results)
        for result in results:
            diagnostics.record("hold_table", result)
        incr("hold_table.unconverged_cells", self.diagnostics.unconverged)
        if self.diagnostics.worst_ci_halfwidth is not None:
            observe(
                "hold_table.worst_ci_halfwidth",
                self.diagnostics.worst_ci_halfwidth,
            )
        if self.diagnostics.unconverged:
            _log.warning(
                "hold_table.build.unconverged",
                nodes=self.diagnostics.unconverged,
                points=len(results),
                min_ess=round(self.diagnostics.min_ess, 1),
            )
        log_p = np.array(
            [np.log10(min(max(r.estimate, _P_FLOOR), 1.0)) for r in results]
        ).reshape(self.corner_grid.size, self.vsb_grid.size)
        # Raising the source bias can only degrade the retention margin,
        # so the true surface is monotone increasing in VSB; estimates
        # below the Monte-Carlo resolution jitter around the floor, and
        # a running max restores the invariant the bisection policies
        # (vsb_for_target, adaptive_vsb) rely on.
        log_p = np.maximum.accumulate(log_p, axis=1)
        if ctx.result_cache is not None:
            ctx.result_cache.put(
                "hold-table",
                key,
                {
                    "log10_probability": [
                        [float(v) for v in row] for row in log_p
                    ],
                    "diagnostics": self.diagnostics.as_dict(),
                },
            )
        return log_p

    def probability(self, corner: float, vsb: float) -> float:
        """Interpolated hold failure probability at (corner, vsb)."""
        corner = float(np.clip(corner, self.corner_grid[0], self.corner_grid[-1]))
        vsb = float(np.clip(vsb, self.vsb_grid[0], self.vsb_grid[-1]))
        return float(np.clip(10.0 ** float(self._interp((corner, vsb))), 0.0, 1.0))

    def vsb_for_target(
        self, corner: float, p_target: float, tolerance: float = 1e-4
    ) -> float:
        """Largest VSB with hold failure probability <= ``p_target``.

        Bisection on the (monotone increasing in VSB) interpolated
        surface; clamps to the grid span.
        """
        lo, hi = float(self.vsb_grid[0]), float(self.vsb_grid[-1])
        if self.probability(corner, hi) <= p_target:
            return hi
        if self.probability(corner, lo) > p_target:
            return lo
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if self.probability(corner, mid) <= p_target:
                lo = mid
            else:
                hi = mid
        return lo

    def adaptive_vsb(
        self,
        corner: float,
        organization: ArrayOrganization,
        dac: SourceBiasDAC,
        redundancy_share: float = 0.7,
    ) -> float:
        """The statistical model of the BIST outcome at a corner.

        The BIST stops when the *cumulative* faulty columns — static
        faults plus retention faults — exceed the redundancy.  This
        statistical model only sees the retention component, so only a
        ``redundancy_share`` fraction of the spares is budgeted to it
        (the rest absorbs static faults and field margin).  The modelled
        adaptive bias is the largest DAC code whose expected
        retention-faulty columns ``NC * (1 - (1 - p_hold)^rows)`` stay
        within that budget; driving the expectation all the way to the
        full redundancy would put every die at ~50% repair odds, which
        the per-die BIST (that observes its own faults) never does.
        """
        if not 0.0 < redundancy_share <= 1.0:
            raise ValueError("redundancy_share must be in (0, 1]")
        budget = redundancy_share * organization.redundant_columns
        incr("asb.calibrations")
        best = 0
        for code in range(dac.n_codes):
            incr("asb.vsb_steps")
            p_cell = self.probability(corner, dac.voltage(code))
            p_col = 1.0 - (1.0 - p_cell) ** organization.rows
            if organization.columns * p_col <= budget:
                best = code
            else:
                break
        vsb = dac.voltage(best)
        _log.debug("asb.vsb_selected", corner=corner, code=best, vsb=vsb)
        return vsb


def hold_table(ctx: ExperimentContext) -> HoldProbabilityTable:
    """The context-cached hold-probability surface."""
    if "hold_table" not in ctx.cache:
        ctx.cache["hold_table"] = HoldProbabilityTable(ctx)
    return ctx.cache["hold_table"]


def _power_stats(
    ctx: ExperimentContext, corner: float, vsb: float, n_cells: int
) -> NormalDistribution:
    """Context-cached CLT standby-power distribution at (corner, vsb)."""
    key = ("power", round(corner, 4), round(vsb, 4), n_cells)
    if key not in ctx.cache:
        ctx.cache[key] = die_standby_power(
            ctx.tech,
            ctx.geometry,
            ProcessCorner(corner),
            n_cells,
            ctx.asb_conditions(vsb),
            rng=np.random.default_rng((ctx.seed, hash(key) & 0xFFFFFFF)),
        )
    return ctx.cache[key]


# ----------------------------------------------------------------------
# Fig. 6 — maximum VSB for a target hold-failure probability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    """Max source bias meeting P_HF target, per inter-die corner."""

    shifts: np.ndarray
    vsb_max: np.ndarray
    p_target: float

    def rows(self) -> list[str]:
        lines = [f"P_HF target = {self.p_target:.0e}",
                 "shift[mV]  VSB_max[V]"]
        for i, s in enumerate(self.shifts):
            lines.append(f"{s * 1e3:+8.0f}  {self.vsb_max[i]:9.3f}")
        return lines


def fig6(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray = DEFAULT_SHIFTS,
    p_target: float = 1e-3,
) -> Fig6Result:
    """Reproduce Fig. 6: the retention-safe source bias is maximal near
    the nominal corner and shrinks toward both inter-die extremes."""
    ctx = ctx if ctx is not None else default_context()
    table = hold_table(ctx)
    vsb_max = np.array(
        [table.vsb_for_target(float(s), p_target) for s in shifts]
    )
    return Fig6Result(shifts=np.asarray(shifts), vsb_max=vsb_max,
                      p_target=p_target)


# ----------------------------------------------------------------------
# Fig. 8 — VSB(adaptive) vs corner, and the hold failure under it
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Result:
    """Adaptive source bias per corner vs the fixed VSB(opt)."""

    shifts: np.ndarray
    vsb_adaptive: np.ndarray       # statistical (table) model
    vsb_bist: np.ndarray           # actual BIST hardware simulation
    vsb_opt: float
    p_hold_opt: np.ndarray
    p_hold_adaptive: np.ndarray

    def rows(self) -> list[str]:
        lines = [f"VSB(opt) = {self.vsb_opt:.3f} V",
                 "shift[mV]  VSB_adapt[V]  VSB_BIST[V]  "
                 "P_HF@opt   P_HF@adapt"]
        for i, s in enumerate(self.shifts):
            lines.append(
                f"{s * 1e3:+8.0f}  {self.vsb_adaptive[i]:11.3f}  "
                f"{self.vsb_bist[i]:10.3f}  {self.p_hold_opt[i]:9.2e}  "
                f"{self.p_hold_adaptive[i]:9.2e}"
            )
        return lines


def fig8(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray | None = None,
    dac: SourceBiasDAC | None = None,
    organization: ArrayOrganization | None = None,
    bist_seed: int = 81,
) -> Fig8Result:
    """Reproduce Fig. 8: per-corner VSB(adaptive) — from both the
    statistical model and an actual BIST run on a sampled 2KB die —
    against the fixed VSB(opt), with the hold-failure probability each
    policy incurs.

    The default corner span is narrower than Fig. 6's: the per-die BIST
    shares the redundancy between static and retention faults, so dies
    beyond roughly +/-50 mV are already unrepairable before any source
    bias is applied (their static faulty columns exceed the spares) —
    the hardware reports VSB = 0 for them, which is correct but
    uninformative."""
    ctx = ctx if ctx is not None else default_context()
    if shifts is None:
        shifts = np.linspace(-0.05, 0.05, 9)
    dac = dac if dac is not None else SourceBiasDAC()
    organization = (
        organization if organization is not None else default_asb_organization()
    )
    table = hold_table(ctx)
    vsb_opt = table.adaptive_vsb(0.0, organization, dac)

    vsb_adaptive = np.array(
        [table.adaptive_vsb(float(s), organization, dac) for s in shifts]
    )
    loop = SelfAdaptiveSourceBias(dac=dac)
    vsb_bist = np.empty(len(shifts))
    for i, s in enumerate(shifts):
        array = FunctionalMemoryArray(
            ctx.tech,
            organization,
            ctx.criteria,
            geometry=ctx.geometry,
            corner=ProcessCorner(float(s)),
            conditions=ctx.asb_conditions(),
            rng=np.random.default_rng((bist_seed, i)),
        )
        vsb_bist[i] = loop.calibrate_bisect(array).vsb_adaptive

    p_hold_opt = np.array(
        [table.probability(float(s), vsb_opt) for s in shifts]
    )
    p_hold_adaptive = np.array(
        [
            table.probability(float(s), float(v))
            for s, v in zip(shifts, vsb_adaptive)
        ]
    )
    return Fig8Result(
        shifts=np.asarray(shifts),
        vsb_adaptive=vsb_adaptive,
        vsb_bist=vsb_bist,
        vsb_opt=vsb_opt,
        p_hold_opt=p_hold_opt,
        p_hold_adaptive=p_hold_adaptive,
    )


# ----------------------------------------------------------------------
# Fig. 9 — VSB(adaptive) and standby-power distributions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Result:
    """Distributions across dies: adaptive VSB and standby power."""

    vsb_samples: np.ndarray          # BIST VSB(adaptive) at a fixed corner
    fixed_corner: float
    power_zero: np.ndarray           # standby power per die [W], vsb = 0
    power_opt: np.ndarray            # at VSB(opt)
    power_adaptive: np.ndarray       # at the per-die adaptive bias
    vsb_opt: float

    def rows(self) -> list[str]:
        v = self.vsb_samples
        lines = [
            f"VSB(adaptive) across {v.size} dies at corner "
            f"{self.fixed_corner * 1e3:+.0f} mV: mean {v.mean():.3f} V, "
            f"std {v.std() * 1e3:.1f} mV (negligible spread)",
            "standby power across the die population [uW]:",
        ]
        for name, p in (("VSB=0", self.power_zero),
                        ("VSB(opt)", self.power_opt),
                        ("VSB(adaptive)", self.power_adaptive)):
            lines.append(
                f"  {name:13s} mean {p.mean() * 1e6:8.2f}  "
                f"p95 {np.quantile(p, 0.95) * 1e6:8.2f}"
            )
        return lines


def fig9(
    ctx: ExperimentContext | None = None,
    fixed_corner: float = -0.02,
    n_bist_dies: int = 12,
    n_power_dies: int = 400,
    sigma_inter: float = 0.05,
    organization: ArrayOrganization | None = None,
    dac: SourceBiasDAC | None = None,
) -> Fig9Result:
    """Reproduce Fig. 9: (a) the BIST lands on essentially the same
    VSB(adaptive) for every die at a given corner (inset), and (b) the
    standby-power distribution across dies with zero, fixed-optimal and
    adaptive source bias."""
    ctx = ctx if ctx is not None else default_context()
    dac = dac if dac is not None else SourceBiasDAC()
    organization = (
        organization if organization is not None else default_asb_organization()
    )
    table = hold_table(ctx)
    vsb_opt = table.adaptive_vsb(0.0, organization, dac)

    loop = SelfAdaptiveSourceBias(dac=dac)
    vsb_samples = np.empty(n_bist_dies)
    for i in range(n_bist_dies):
        array = FunctionalMemoryArray(
            ctx.tech,
            organization,
            ctx.criteria,
            geometry=ctx.geometry,
            corner=ProcessCorner(fixed_corner),
            conditions=ctx.asb_conditions(),
            rng=np.random.default_rng((91, i)),
        )
        vsb_samples[i] = loop.calibrate_bisect(array).vsb_adaptive

    rng = np.random.default_rng((ctx.seed, 92))
    shifts = InterDieDistribution(sigma_inter).sample(rng, n_power_dies)
    n_cells = organization.n_cells
    power = {"zero": np.empty(n_power_dies), "opt": np.empty(n_power_dies),
             "adaptive": np.empty(n_power_dies)}
    for i, s in enumerate(shifts):
        corner = round(float(s), 2)
        vsb_adapt = table.adaptive_vsb(corner, organization, dac)
        for name, vsb in (("zero", 0.0), ("opt", vsb_opt),
                          ("adaptive", vsb_adapt)):
            power[name][i] = float(
                _power_stats(ctx, corner, vsb, n_cells).sample(rng, 1)[0]
            )
    return Fig9Result(
        vsb_samples=vsb_samples,
        fixed_corner=fixed_corner,
        power_zero=power["zero"],
        power_opt=power["opt"],
        power_adaptive=power["adaptive"],
        vsb_opt=vsb_opt,
    )


# ----------------------------------------------------------------------
# Fig. 10 — leakage yield and hold yield vs sigma, three policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig10Result:
    """Leakage / hold yield for VSB in {0, opt, adaptive} vs sigma."""

    sigmas: np.ndarray
    leakage_yield: dict[str, np.ndarray]
    hold_yield: dict[str, np.ndarray]
    p_max: float
    vsb_opt: float

    def rows(self) -> list[str]:
        lines = [
            f"VSB(opt) = {self.vsb_opt:.3f} V, "
            f"P_MAX = {self.p_max * 1e6:.2f} uW",
            "sigma[mV]  " + "  ".join(
                f"Lyield-{k}" for k in ("zero", "opt", "adaptive")
            ) + "  " + "  ".join(
                f"Hyield-{k}" for k in ("zero", "opt", "adaptive")
            ),
        ]
        for i, s in enumerate(self.sigmas):
            ly = "  ".join(
                f"{100 * self.leakage_yield[k][i]:10.1f}"
                for k in ("zero", "opt", "adaptive")
            )
            hy = "  ".join(
                f"{100 * self.hold_yield[k][i]:10.1f}"
                for k in ("zero", "opt", "adaptive")
            )
            lines.append(f"{s * 1e3:8.0f}  {ly}  {hy}")
        return lines


def fig10(
    ctx: ExperimentContext | None = None,
    sigmas: np.ndarray | None = None,
    organization: ArrayOrganization | None = None,
    dac: SourceBiasDAC | None = None,
    p_max_over_zero: float = 2.0,
) -> Fig10Result:
    """Reproduce Fig. 10: the adaptive scheme nearly matches VSB(opt)'s
    leakage yield (far above VSB=0) while keeping the hold yield within
    a few percent of the zero-bias ideal — the paper's headline
    trade-off."""
    ctx = ctx if ctx is not None else default_context()
    dac = dac if dac is not None else SourceBiasDAC()
    organization = (
        organization if organization is not None else default_asb_organization()
    )
    sigmas = sigmas if sigmas is not None else np.linspace(0.01, 0.08, 8)
    table = hold_table(ctx)
    vsb_opt = table.adaptive_vsb(0.0, organization, dac)
    n_cells = organization.n_cells
    # The leakage bound is set relative to the *unbiased* nominal die, so
    # the VSB=0 policy starts around mid yield and the biased policies
    # recover it (the paper's 7-25% leakage-yield gain regime).
    p_max = p_max_over_zero * _power_stats(ctx, 0.0, 0.0, n_cells).mean

    def policy_vsb(name: str, corner: float) -> float:
        if name == "zero":
            return 0.0
        if name == "opt":
            return vsb_opt
        return table.adaptive_vsb(corner, organization, dac)

    leakage_yield: dict[str, np.ndarray] = {}
    hold_yield: dict[str, np.ndarray] = {}
    for name in ("zero", "opt", "adaptive"):
        l_series = np.empty(len(sigmas))
        h_series = np.empty(len(sigmas))
        for i, sigma in enumerate(sigmas):
            dist = InterDieDistribution(float(sigma))

            def leak_pass(corner: ProcessCorner) -> float:
                # Quantise to a 5 mV grid so the Monte-Carlo power cache
                # is shared across the dense integration grid and across
                # sigma values.
                dvt = round(corner.dvt_inter / 0.005) * 0.005
                vsb = policy_vsb(name, dvt)
                return float(
                    _power_stats(ctx, dvt, vsb, n_cells).cdf(p_max)
                )

            def hold_pass(corner: ProcessCorner) -> float:
                dvt = round(corner.dvt_inter / 0.005) * 0.005
                vsb = policy_vsb(name, dvt)
                p_cell = table.probability(dvt, vsb)
                return 1.0 - memory_failure_probability(p_cell, organization)

            # Dense integration: the DAC-quantised adaptive policy is
            # piecewise constant in the corner.
            l_series[i] = dense_expectation(dist, leak_pass)
            h_series[i] = dense_expectation(dist, hold_pass)
        leakage_yield[name] = l_series
        hold_yield[name] = h_series
    return Fig10Result(
        sigmas=np.asarray(sigmas),
        leakage_yield=leakage_yield,
        hold_yield=hold_yield,
        p_max=p_max,
        vsb_opt=vsb_opt,
    )
