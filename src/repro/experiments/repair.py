"""Self-repairing SRAM experiments (paper Figs. 2-5)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.body_bias import BodyBiasGenerator, SelfRepairingSRAM
from repro.experiments.context import ExperimentContext, default_context
from repro.failures.memory import memory_failure_probability
from repro.sram.array import ArrayOrganization
from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage, sample_array_leakage
from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution

#: Default inter-die sweep for the corner figures [V].
DEFAULT_SHIFTS = np.linspace(-0.12, 0.12, 13)
#: Default sigma sweep for the yield figures [V].
DEFAULT_SIGMAS = np.linspace(0.01, 0.08, 8)

MECHANISMS = ("read", "write", "access", "hold")


def _organization(kbytes: int) -> ArrayOrganization:
    return ArrayOrganization.from_capacity(kbytes * 1024, rows=256,
                                           redundancy_fraction=0.05)


def _pipeline(
    ctx: ExperimentContext, organization: ArrayOrganization
) -> SelfRepairingSRAM:
    return SelfRepairingSRAM(
        ctx.analyzer(),
        organization,
        generator=BodyBiasGenerator(),
        table_provider=ctx.table,
        seed=ctx.seed + 3,
    )


# ----------------------------------------------------------------------
# Fig. 2a — failure probabilities vs inter-die Vt shift
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2aResult:
    """Cell/memory failure probabilities across inter-die corners."""

    shifts: np.ndarray
    probabilities: dict[str, np.ndarray]  # mechanism -> P(shift)
    p_memory: np.ndarray  # 256KB memory failure probability

    def rows(self) -> list[str]:
        header = "shift[mV] " + " ".join(f"{m:>9}" for m in MECHANISMS) + \
            "   overall  P_mem(256KB)"
        lines = [header]
        for i, s in enumerate(self.shifts):
            cells = " ".join(
                f"{self.probabilities[m][i]:9.2e}" for m in MECHANISMS
            )
            lines.append(
                f"{s * 1e3:+8.0f}  {cells}  {self.probabilities['any'][i]:8.2e}"
                f"  {self.p_memory[i]:8.2e}"
            )
        return lines


def fig2a(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray = DEFAULT_SHIFTS,
    memory_kbytes: int = 256,
) -> Fig2aResult:
    """Reproduce Fig. 2a: the failure bathtub across inter-die corners.

    Low-Vt dies fail read/hold, high-Vt dies fail access/write; the
    overall curve is minimal near the nominal corner and the memory
    failure probability (after redundancy) follows it.
    """
    ctx = ctx if ctx is not None else default_context()
    table = ctx.table(0.0)
    organization = _organization(memory_kbytes)
    probabilities = {
        name: table.series(shifts, name) for name in MECHANISMS + ("any",)
    }
    p_memory = np.array(
        [
            memory_failure_probability(p, organization)
            for p in probabilities["any"]
        ]
    )
    return Fig2aResult(shifts=np.asarray(shifts), probabilities=probabilities,
                       p_memory=p_memory)


# ----------------------------------------------------------------------
# Fig. 2b — failure probabilities vs body bias (nominal die)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2bResult:
    """Failure probabilities vs NMOS body bias for one corner."""

    vbody: np.ndarray
    corner: ProcessCorner
    probabilities: dict[str, np.ndarray]

    def rows(self) -> list[str]:
        header = "vbody[V]  " + " ".join(f"{m:>9}" for m in MECHANISMS) + \
            "   overall"
        lines = [header]
        for i, v in enumerate(self.vbody):
            cells = " ".join(
                f"{self.probabilities[m][i]:9.2e}" for m in MECHANISMS
            )
            lines.append(
                f"{v:+7.2f}   {cells}  {self.probabilities['any'][i]:8.2e}"
            )
        return lines


def fig2b(
    ctx: ExperimentContext | None = None,
    vbody: np.ndarray | None = None,
    corner: ProcessCorner = ProcessCorner(0.0),
) -> Fig2bResult:
    """Reproduce Fig. 2b: RBB cuts read/hold failures but raises
    access/write failures, FBB the reverse; the overall minimum sits
    near ZBB for a nominal die (equal-probability sizing)."""
    ctx = ctx if ctx is not None else default_context()
    vbody = vbody if vbody is not None else np.linspace(-0.5, 0.5, 11)
    analyzer = ctx.analyzer()
    probabilities = {name: np.empty(len(vbody)) for name in MECHANISMS + ("any",)}
    for i, vb in enumerate(vbody):
        probs = analyzer.failure_probabilities(
            corner, ctx.conditions.with_body_bias(float(vb))
        )
        for name in MECHANISMS + ("any",):
            probabilities[name][i] = probs[name].estimate
    return Fig2bResult(vbody=np.asarray(vbody), corner=corner,
                       probabilities=probabilities)


# ----------------------------------------------------------------------
# Fig. 2c — parametric yield vs sigma(Vt_inter)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2cResult:
    """Parametric yield, ZBB vs self-repairing, per memory size."""

    sigmas: np.ndarray
    yields: dict[tuple[int, str], np.ndarray]  # (kbytes, policy) -> yield

    def improvement(self, kbytes: int) -> np.ndarray:
        """Self-repair yield gain in percentage points."""
        return 100.0 * (
            self.yields[(kbytes, "self_repair")] - self.yields[(kbytes, "zbb")]
        )

    def rows(self) -> list[str]:
        sizes = sorted({k for k, _ in self.yields})
        header = "sigma[mV] " + " ".join(
            f"{k}KB-zbb {k}KB-rep" for k in sizes
        )
        lines = [header]
        for i, s in enumerate(self.sigmas):
            cells = []
            for k in sizes:
                cells.append(f"{100 * self.yields[(k, 'zbb')][i]:8.1f}")
                cells.append(f"{100 * self.yields[(k, 'self_repair')][i]:8.1f}")
            lines.append(f"{s * 1e3:8.0f}  " + " ".join(cells))
        return lines


def fig2c(
    ctx: ExperimentContext | None = None,
    sigmas: np.ndarray = DEFAULT_SIGMAS,
    sizes_kbytes: tuple[int, ...] = (64, 256),
) -> Fig2cResult:
    """Reproduce Fig. 2c: self-repair recovers 8-25% of parametric yield
    at realistic inter-die sigma, for both 64KB and 256KB arrays."""
    ctx = ctx if ctx is not None else default_context()
    yields: dict[tuple[int, str], np.ndarray] = {}
    for kbytes in sizes_kbytes:
        pipeline = _pipeline(ctx, _organization(kbytes))
        zbb = np.empty(len(sigmas))
        repaired = np.empty(len(sigmas))
        for i, sigma in enumerate(sigmas):
            dist = InterDieDistribution(float(sigma))
            zbb[i] = pipeline.parametric_yield(dist, repaired=False)
            repaired[i] = pipeline.parametric_yield(dist, repaired=True)
        yields[(kbytes, "zbb")] = zbb
        yields[(kbytes, "self_repair")] = repaired
    return Fig2cResult(sigmas=np.asarray(sigmas), yields=yields)


# ----------------------------------------------------------------------
# Fig. 3 — cell vs array leakage distributions (CLT separation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """Leakage samples per corner: single cells and 1KB arrays."""

    corners: tuple[float, ...]
    cell_samples: dict[float, np.ndarray]  # corner -> per-cell leakage [A]
    array_samples: dict[float, np.ndarray]  # corner -> per-array leakage [A]
    array_cells: int

    def overlap_fraction(self, kind: str = "cell") -> float:
        """Fraction of the middle corner's samples falling inside the
        [5%, 95%] spans of *both* outer corners — the separability
        measure (cells overlap heavily, arrays essentially not at all).
        """
        samples = self.cell_samples if kind == "cell" else self.array_samples
        low, mid, high = (samples[c] for c in sorted(samples))
        lo_span = (np.quantile(low, 0.05), np.quantile(low, 0.95))
        hi_span = (np.quantile(high, 0.05), np.quantile(high, 0.95))
        inside_low = (mid >= lo_span[0]) & (mid <= lo_span[1])
        inside_high = (mid >= hi_span[0]) & (mid <= hi_span[1])
        return float(np.mean(inside_low | inside_high))

    def rows(self) -> list[str]:
        lines = ["corner[mV]  cell mean[nA]  cell std[nA]  "
                 f"array({self.array_cells} cells) mean[uA]  array std[uA]"]
        for c in self.corners:
            cell = self.cell_samples[c]
            arr = self.array_samples[c]
            lines.append(
                f"{c * 1e3:+9.0f}  {cell.mean() * 1e9:12.2f}  "
                f"{cell.std() * 1e9:11.2f}  {arr.mean() * 1e6:20.3f}  "
                f"{arr.std() * 1e6:12.4f}"
            )
        lines.append(
            f"cell overlap fraction:  {self.overlap_fraction('cell'):.3f}"
        )
        lines.append(
            f"array overlap fraction: {self.overlap_fraction('array'):.3f}"
        )
        return lines


def fig3(
    ctx: ExperimentContext | None = None,
    corners: tuple[float, ...] = (-0.035, 0.0, 0.035),
    n_cell_samples: int = 30_000,
    n_arrays: int = 300,
    array_kbytes: int = 1,
) -> Fig3Result:
    """Reproduce Fig. 3: cell leakage distributions from different
    inter-die corners overlap, 1KB-array distributions separate —
    the central-limit argument behind leakage-based corner binning.

    The default corners sit at the self-repair monitor's bin boundary
    (+/-35 mV) rather than the paper's +/-100 mV: our per-cell leakage
    spread is narrower than the paper's (the cell total sums three
    comparable leakage paths, diluting the lognormal sigma), so the
    interesting regime — cell-level measurement cannot resolve the
    corner, array-level measurement can — is exactly the boundary the
    comparators must discriminate."""
    ctx = ctx if ctx is not None else default_context()
    cells_per_array = array_kbytes * 1024 * 8
    cell_samples: dict[float, np.ndarray] = {}
    array_samples: dict[float, np.ndarray] = {}
    for i, c in enumerate(corners):
        rng = np.random.default_rng((ctx.seed, 40 + i))
        dvt = sample_cell_dvt(ctx.tech, ctx.geometry, rng, n_cell_samples)
        population = SixTCell(ctx.tech, ctx.geometry, ProcessCorner(c), dvt)
        cell_samples[c] = cell_leakage(population).total
        template = SixTCell(ctx.tech, ctx.geometry, ProcessCorner(c), None)
        array_samples[c] = sample_array_leakage(
            template, cells_per_array, n_arrays,
            np.random.default_rng((ctx.seed, 50 + i)),
        )
    return Fig3Result(
        corners=tuple(corners),
        cell_samples=cell_samples,
        array_samples=array_samples,
        array_cells=cells_per_array,
    )


# ----------------------------------------------------------------------
# Fig. 4b — number of failures, no-body-bias vs self-repairing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4bResult:
    """Expected failing cells in one array, per corner, both policies."""

    shifts: np.ndarray
    failures_zbb: np.ndarray
    failures_repaired: np.ndarray
    n_cells: int

    def rows(self) -> list[str]:
        lines = ["shift[mV]  #fail (no bias)  #fail (self-repair)"]
        for i, s in enumerate(self.shifts):
            lines.append(
                f"{s * 1e3:+8.0f}  {self.failures_zbb[i]:15.1f}  "
                f"{self.failures_repaired[i]:19.1f}"
            )
        return lines


def fig4b(
    ctx: ExperimentContext | None = None,
    shifts: np.ndarray = DEFAULT_SHIFTS,
    memory_kbytes: int = 256,
) -> Fig4bResult:
    """Reproduce Fig. 4b: expected failing cells in a 256KB array for
    dies shifted to each corner, without and with self-repair."""
    ctx = ctx if ctx is not None else default_context()
    organization = _organization(memory_kbytes)
    pipeline = _pipeline(ctx, organization)
    n_cells = organization.n_cells
    zbb = np.empty(len(shifts))
    repaired = np.empty(len(shifts))
    for i, s in enumerate(shifts):
        corner = ProcessCorner(float(s))
        zbb[i] = n_cells * pipeline.cell_failure_probability(corner, 0.0)
        vbody = pipeline.decide_bias(corner)[0]
        repaired[i] = n_cells * pipeline.cell_failure_probability(corner, vbody)
    return Fig4bResult(
        shifts=np.asarray(shifts), failures_zbb=zbb,
        failures_repaired=repaired, n_cells=n_cells,
    )


# ----------------------------------------------------------------------
# Fig. 5a — leakage components vs body bias
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5aResult:
    """Normalised nominal-cell leakage components vs body bias."""

    vbody: np.ndarray
    subthreshold: np.ndarray
    gate: np.ndarray
    junction: np.ndarray
    total: np.ndarray

    def rows(self) -> list[str]:
        lines = ["vbody[V]  sub  gate  junction  total  (normalised to ZBB total)"]
        for i, v in enumerate(self.vbody):
            lines.append(
                f"{v:+6.2f}  {self.subthreshold[i]:6.3f} {self.gate[i]:6.3f} "
                f"{self.junction[i]:7.3f} {self.total[i]:7.3f}"
            )
        return lines


def fig5a(
    ctx: ExperimentContext | None = None,
    vbody: np.ndarray | None = None,
) -> Fig5aResult:
    """Reproduce Fig. 5a: subthreshold leakage rises with FBB, junction
    BTBT rises with RBB, gate leakage stays flat; the total has an
    interior minimum and blows up at strong FBB (body diode)."""
    ctx = ctx if ctx is not None else default_context()
    vbody = vbody if vbody is not None else np.linspace(-0.6, 0.55, 24)
    cell = SixTCell(ctx.tech, ctx.geometry, ProcessCorner(0.0), None)
    sub = np.empty(len(vbody))
    gate = np.empty(len(vbody))
    junction = np.empty(len(vbody))
    for i, vb in enumerate(vbody):
        breakdown = cell_leakage(cell, vbody_n=float(vb))
        sub[i] = float(breakdown.subthreshold[0])
        gate[i] = float(breakdown.gate[0])
        junction[i] = float(breakdown.junction[0])
    reference = float(cell_leakage(cell).total[0])
    return Fig5aResult(
        vbody=np.asarray(vbody),
        subthreshold=sub / reference,
        gate=gate / reference,
        junction=junction / reference,
        total=(sub + gate + junction) / reference,
    )


# ----------------------------------------------------------------------
# Fig. 5b — memory leakage spread, ZBB vs self-repairing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5bResult:
    """Per-die memory leakage samples under both policies."""

    leakage_zbb: np.ndarray
    leakage_repaired: np.ndarray
    sigma_inter: float

    @property
    def spread_reduction(self) -> float:
        """1 - sigma(repaired)/sigma(ZBB): the spread compression."""
        return 1.0 - float(
            np.std(self.leakage_repaired) / np.std(self.leakage_zbb)
        )

    def rows(self) -> list[str]:
        z, r = self.leakage_zbb, self.leakage_repaired
        return [
            f"dies: {z.size}, sigma(Vt_inter) = {self.sigma_inter * 1e3:.0f} mV",
            f"ZBB:         mean {z.mean() * 1e3:.3f} mA  std {z.std() * 1e3:.3f} mA"
            f"  p95/p5 {np.quantile(z, 0.95) / np.quantile(z, 0.05):.2f}",
            f"self-repair: mean {r.mean() * 1e3:.3f} mA  std {r.std() * 1e3:.3f} mA"
            f"  p95/p5 {np.quantile(r, 0.95) / np.quantile(r, 0.05):.2f}",
            f"spread reduction: {100 * self.spread_reduction:.1f}%",
        ]


def fig5b(
    ctx: ExperimentContext | None = None,
    sigma_inter: float = 0.05,
    n_dies: int = 400,
    memory_kbytes: int = 64,
) -> Fig5bResult:
    """Reproduce Fig. 5b: the self-repairing bias pulls the leaky (RBB)
    and slow (FBB) tails toward nominal, compressing the die-to-die
    leakage spread."""
    ctx = ctx if ctx is not None else default_context()
    pipeline = _pipeline(ctx, _organization(memory_kbytes))
    rng = np.random.default_rng((ctx.seed, 60))
    shifts = InterDieDistribution(sigma_inter).sample(rng, n_dies)
    zbb = np.empty(n_dies)
    repaired = np.empty(n_dies)
    for i, s in enumerate(shifts):
        # Quantise the corner so the CLT leakage cache is reused.
        corner = ProcessCorner(round(float(s), 2))
        zbb_dist = pipeline.array_leakage(corner, 0.0)
        zbb[i] = float(zbb_dist.sample(rng, 1)[0])
        vbody = pipeline.generator.bias_for(
            pipeline.monitor.classify(zbb[i])
        )
        repaired[i] = float(
            pipeline.array_leakage(corner, vbody).sample(rng, 1)[0]
        )
    return Fig5bResult(
        leakage_zbb=zbb, leakage_repaired=repaired, sigma_inter=sigma_inter
    )


# ----------------------------------------------------------------------
# Fig. 5c — leakage yield vs sigma, ZBB vs self-repairing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5cResult:
    """Leakage yield vs sigma(Vt_inter), both policies."""

    sigmas: np.ndarray
    yield_zbb: np.ndarray
    yield_repaired: np.ndarray
    l_max: float

    def rows(self) -> list[str]:
        lines = [f"L_MAX = {self.l_max * 1e3:.3f} mA",
                 "sigma[mV]  L_yield ZBB[%]  L_yield self-repair[%]"]
        for i, s in enumerate(self.sigmas):
            lines.append(
                f"{s * 1e3:8.0f}  {100 * self.yield_zbb[i]:13.1f}  "
                f"{100 * self.yield_repaired[i]:20.1f}"
            )
        return lines


def fig5c(
    ctx: ExperimentContext | None = None,
    sigmas: np.ndarray = DEFAULT_SIGMAS,
    memory_kbytes: int = 64,
    l_max_over_nominal: float = 2.0,
) -> Fig5cResult:
    """Reproduce Fig. 5c: the leakage-bound yield degrades quickly with
    inter-die sigma at ZBB and is largely recovered by self-repair."""
    ctx = ctx if ctx is not None else default_context()
    pipeline = _pipeline(ctx, _organization(memory_kbytes))
    l_max = l_max_over_nominal * pipeline.array_leakage(
        ProcessCorner(0.0), 0.0
    ).mean
    yield_zbb = np.empty(len(sigmas))
    yield_repaired = np.empty(len(sigmas))
    for i, sigma in enumerate(sigmas):
        dist = InterDieDistribution(float(sigma))
        yield_zbb[i] = pipeline.leakage_yield(dist, l_max, repaired=False)
        yield_repaired[i] = pipeline.leakage_yield(dist, l_max, repaired=True)
    return Fig5cResult(
        sigmas=np.asarray(sigmas),
        yield_zbb=yield_zbb,
        yield_repaired=yield_repaired,
        l_max=l_max,
    )
