"""Registry mapping experiment ids to their entry points.

Each entry is an :class:`ExperimentSpec` carrying the callable plus the
metadata the CLI and the documentation render from — one-line purpose
and the expected runtime under the ``--fast`` and full-accuracy
contexts.  ``docs/experiments.md`` is generated from this table via
:func:`render_markdown` (``python -m repro.experiments --doc``) and a
test asserts the file is in sync, so the docs cannot drift from the
code.

Runtimes are rough single-core figures; sweeps scale down with
``--workers`` and reruns with ``--cache-dir`` are near-instant (see
``docs/performance.md``).
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.experiments import asb, extensions, repair


class ExperimentSpec(NamedTuple):
    """One registered experiment: entry point plus doc metadata."""

    func: Callable
    description: str
    fast_runtime: str
    full_runtime: str


#: Experiment id -> spec, for the paper's figures.
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig2a": ExperimentSpec(
        repair.fig2a, "failure probabilities vs inter-die Vt shift",
        "~15 s", "~3 min"),
    "fig2b": ExperimentSpec(
        repair.fig2b, "failure probabilities vs NMOS body bias",
        "~30 s", "~5 min"),
    "fig2c": ExperimentSpec(
        repair.fig2c, "parametric yield vs sigma, ZBB vs self-repair",
        "~1 min", "~10 min"),
    "fig3": ExperimentSpec(
        repair.fig3, "cell vs 1KB-array leakage distributions",
        "~10 s", "~1 min"),
    "fig4b": ExperimentSpec(
        repair.fig4b, "failing cells per corner, both policies",
        "~30 s", "~5 min"),
    "fig5a": ExperimentSpec(
        repair.fig5a, "leakage components vs body bias",
        "~5 s", "~10 s"),
    "fig5b": ExperimentSpec(
        repair.fig5b, "memory leakage spread, ZBB vs self-repair",
        "~30 s", "~5 min"),
    "fig5c": ExperimentSpec(
        repair.fig5c, "leakage yield vs sigma, ZBB vs self-repair",
        "~1 min", "~10 min"),
    "fig6": ExperimentSpec(
        asb.fig6, "max VSB for target hold failure vs corner",
        "~30 s", "~8 min"),
    "fig8": ExperimentSpec(
        asb.fig8, "adaptive VSB vs corner (model + BIST)",
        "~1 min", "~10 min"),
    "fig9": ExperimentSpec(
        asb.fig9, "VSB and standby-power distributions",
        "~1 min", "~10 min"),
    "fig10": ExperimentSpec(
        asb.fig10, "leakage/hold yield vs sigma, three policies",
        "~2 min", "~15 min"),
}

#: Extensions beyond the paper's figures (companion-work features).
EXTENSIONS: dict[str, ExperimentSpec] = {
    "ext_delay": ExperimentSpec(
        extensions.ext_delay,
        "leakage vs delay vs combined corner binning",
        "~30 s", "~3 min"),
    "ext_drv": ExperimentSpec(
        extensions.ext_drv,
        "data retention voltage distribution (ref [9])",
        "~30 s", "~2 min"),
    "ext_performance": ExperimentSpec(
        extensions.ext_performance,
        "access time vs body-bias repair policy",
        "~30 s", "~5 min"),
    "ext_temperature": ExperimentSpec(
        extensions.ext_temperature,
        "monitor binning vs temperature",
        "~30 s", "~2 min"),
    "ext_ecc": ExperimentSpec(
        extensions.ext_ecc,
        "ECC vs redundancy at equal overhead",
        "~30 s", "~5 min"),
    "ext_snm": ExperimentSpec(
        extensions.ext_snm,
        "butterfly static noise margins vs body bias",
        "~10 s", "~30 s"),
    "ext_8t": ExperimentSpec(
        extensions.ext_8t,
        "read-decoupled 8T cell vs the 6T across corners",
        "~30 s", "~5 min"),
}


def run_experiment(name: str, *args, **kwargs):
    """Run an experiment (figure or extension) by id."""
    registry = {**EXPERIMENTS, **EXTENSIONS}
    if name not in registry:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return registry[name].func(*args, **kwargs)


def render_markdown() -> str:
    """The experiment catalogue as a markdown table pair.

    This is the generated body of ``docs/experiments.md``; regenerate
    with ``python -m repro.experiments --doc``.
    """
    lines = ["## Paper figures", ""]
    lines += _table(EXPERIMENTS)
    lines += ["", "## Extensions", ""]
    lines += _table(EXTENSIONS)
    return "\n".join(lines) + "\n"


def _table(registry: dict[str, ExperimentSpec]) -> list[str]:
    rows = ["| id | what it reproduces | `--fast` | full |",
            "|---|---|---|---|"]
    for name, spec in sorted(registry.items()):
        rows.append(
            f"| `{name}` | {spec.description} "
            f"| {spec.fast_runtime} | {spec.full_runtime} |"
        )
    return rows
