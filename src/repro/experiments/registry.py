"""Registry mapping experiment ids to their entry points."""

from __future__ import annotations

from typing import Callable

from repro.experiments import asb, extensions, repair

#: Experiment id -> (callable, one-line description).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig2a": (repair.fig2a, "failure probabilities vs inter-die Vt shift"),
    "fig2b": (repair.fig2b, "failure probabilities vs NMOS body bias"),
    "fig2c": (repair.fig2c, "parametric yield vs sigma, ZBB vs self-repair"),
    "fig3": (repair.fig3, "cell vs 1KB-array leakage distributions"),
    "fig4b": (repair.fig4b, "failing cells per corner, both policies"),
    "fig5a": (repair.fig5a, "leakage components vs body bias"),
    "fig5b": (repair.fig5b, "memory leakage spread, ZBB vs self-repair"),
    "fig5c": (repair.fig5c, "leakage yield vs sigma, ZBB vs self-repair"),
    "fig6": (asb.fig6, "max VSB for target hold failure vs corner"),
    "fig8": (asb.fig8, "adaptive VSB vs corner (model + BIST)"),
    "fig9": (asb.fig9, "VSB and standby-power distributions"),
    "fig10": (asb.fig10, "leakage/hold yield vs sigma, three policies"),
}

#: Extensions beyond the paper's figures (companion-work features).
EXTENSIONS: dict[str, tuple[Callable, str]] = {
    "ext_delay": (extensions.ext_delay,
                  "leakage vs delay vs combined corner binning"),
    "ext_drv": (extensions.ext_drv,
                "data retention voltage distribution (ref [9])"),
    "ext_performance": (extensions.ext_performance,
                        "access time vs body-bias repair policy"),
    "ext_temperature": (extensions.ext_temperature,
                        "monitor binning vs temperature"),
    "ext_ecc": (extensions.ext_ecc,
                "ECC vs redundancy at equal overhead"),
    "ext_snm": (extensions.ext_snm,
                "butterfly static noise margins vs body bias"),
    "ext_8t": (extensions.ext_8t,
               "read-decoupled 8T cell vs the 6T across corners"),
}


def run_experiment(name: str, *args, **kwargs):
    """Run an experiment (figure or extension) by id."""
    registry = {**EXPERIMENTS, **EXTENSIONS}
    if name not in registry:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    func, _ = registry[name]
    return func(*args, **kwargs)
