"""Command-line experiment runner.

Regenerate any paper figure from the shell::

    python -m repro.experiments fig2a
    python -m repro.experiments fig10 --fast
    python -m repro.experiments fig2c --workers 4 --cache-dir ~/.cache/repro
    python -m repro.experiments fig2a --fast -v --metrics-out /tmp/m.json
    python -m repro.experiments --list

``--fast`` swaps in a reduced-accuracy context (seconds instead of
minutes) for a quick qualitative look.  ``--workers`` fans the sweep
grids out across processes (bit-identical results at any count) and
``--cache-dir`` persists calibrated criteria and built tables so the
next run of the same figure starts warm (see ``docs/performance.md``).

Telemetry (see ``docs/observability.md``): ``-v``/``-vv`` streams
structured progress events to stderr (``--log-json`` renders them as
JSON lines), and ``--metrics-out FILE`` writes a machine-readable
report — per-stage wall-time spans, Monte-Carlo sample counts, cache
hit/miss counters, plus a ``meta`` block (git SHA, seed, workers,
environment) that makes stored reports self-describing — after the
run.  ``--profile-out FILE`` additionally runs the experiment under
cProfile scoped to its trace span and writes a ``pstats``-loadable
stats file, for localising a regression to a function (see
``docs/benchmarking.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import observability
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.registry import (
    EXPERIMENTS,
    EXTENSIONS,
    render_markdown,
    run_experiment,
)


def _fast_context() -> ExperimentContext:
    return ExperimentContext(
        target=1e-5,
        calibration_samples=20_000,
        analysis_samples=8_000,
        table_grid=9,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure from the SOCC 2006 paper.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        help="experiment id (e.g. fig2a); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--doc",
        action="store_true",
        help="print the experiment catalogue as markdown "
        "(the generated body of docs/experiments.md)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-accuracy context (quick qualitative run)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="processes for sweep fan-out (default 1 = serial; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist criteria/tables to DIR and reuse them on reruns",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured progress logs on stderr (-vv for debug)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="render progress logs as JSON lines instead of text",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a JSON telemetry report (spans, counters) to FILE",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="run under cProfile and write pstats-loadable stats to "
        "FILE (inspect with `python -m pstats FILE`)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    if args.doc:
        print(render_markdown(), end="")
        return 0

    if args.list or not args.figure:
        print("paper figures:")
        for name, spec in sorted(EXPERIMENTS.items()):
            print(f"  {name:16s}  {spec.description}")
        print("extensions:")
        for name, spec in sorted(EXTENSIONS.items()):
            print(f"  {name:16s}  {spec.description}")
        return 0

    if args.figure not in EXPERIMENTS and args.figure not in EXTENSIONS:
        parser.error(
            f"unknown experiment {args.figure!r}; try --list"
        )

    # Telemetry: logs whenever -v/--log-json asks for them; metric and
    # trace collection only when a report or a profile will consume it.
    collect = args.metrics_out is not None
    profiling = args.profile_out is not None
    if args.verbose or args.log_json or collect or profiling:
        observability.configure(
            verbosity=args.verbose,
            json_lines=args.log_json,
            metrics=collect or profiling,
        )
    if profiling:
        observability.enable_profiling()

    ctx = _fast_context() if args.fast else default_context()
    try:
        ctx.configure_execution(
            workers=args.workers if args.workers != 1 else None,
            cache_dir=args.cache_dir,
        )
    except NotADirectoryError as exc:
        parser.error(str(exc))
    start = time.time()
    with observability.profile(args.figure):
        result = run_experiment(args.figure, ctx)
    elapsed = time.time() - start
    print("\n".join(result.rows()))
    print(f"\n[{args.figure} regenerated in {elapsed:.1f}s"
          f"{' (fast context)' if args.fast else ''}]")

    if collect:
        report = observability.snapshot()
        report["experiment"] = args.figure
        report["elapsed_seconds"] = round(elapsed, 3)
        report["invocation"] = {
            "fast": args.fast,
            "workers": args.workers,
            "cache_dir": args.cache_dir,
        }
        # Self-describing reports: where and how this was measured.
        # Additive under schema repro.telemetry/1 — readers that only
        # know metrics/trace keep working.
        report["meta"] = {
            **observability.environment_fingerprint(),
            "seed": ctx.seed,
            "workers": args.workers,
        }
        with open(args.metrics_out, "w") as fh:
            json.dump(report, fh, indent=2)
        observability.get_logger("experiments.cli").info(
            "metrics.written", path=args.metrics_out
        )
    if profiling:
        spans = observability.write_profile(args.profile_out)
        observability.get_logger("experiments.cli").info(
            "profile.written", path=args.profile_out, spans=len(spans)
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
