"""Command-line experiment runner.

Regenerate any paper figure from the shell::

    python -m repro.experiments fig2a
    python -m repro.experiments fig10 --fast
    python -m repro.experiments fig2c --workers 4 --cache-dir ~/.cache/repro
    python -m repro.experiments fig2a --fast -v --metrics-out /tmp/m.json
    python -m repro.experiments --list

``--fast`` swaps in a reduced-accuracy context (seconds instead of
minutes) for a quick qualitative look.  ``--workers`` fans the sweep
grids out across processes (bit-identical results at any count) and
``--cache-dir`` persists calibrated criteria and built tables so the
next run of the same figure starts warm (see ``docs/performance.md``).
``--sampler`` selects the rare-event sampling strategy behind every
failure estimate (``adaptive-is`` is typically an order of magnitude
cheaper in solver calls at equal accuracy — see ``docs/statistics.md``).

Telemetry (see ``docs/observability.md``): ``-v``/``-vv`` streams
structured progress events to stderr (``--log-json`` renders them as
JSON lines), and ``--metrics-out FILE`` writes a machine-readable
report — per-stage wall-time spans, Monte-Carlo sample counts, cache
hit/miss counters, plus a ``meta`` block (git SHA, seed, workers,
environment) that makes stored reports self-describing — after the
run.  An existing FILE is never silently overwritten: the report goes
to a numbered sibling (``m.1.json``) with a warning unless
``--metrics-overwrite`` is passed.  ``--profile-out FILE``
additionally runs the experiment under cProfile scoped to its trace
span and writes a ``pstats``-loadable stats file, for localising a
regression to a function (see ``docs/benchmarking.md``).
``--trace-out FILE`` records a bounded span timeline (merged across
workers) and writes Chrome trace-event JSON for Perfetto /
``chrome://tracing`` flamegraphs.

Robustness (see ``docs/robustness.md``): ``--checkpoint-dir DIR``
flushes completed grid cells / dies during long builds so a killed run
resumes exactly (``--checkpoint-every N`` sets the cadence), and the
``REPRO_FAULT_PLAN`` environment variable (inline JSON or
``@/path/to/plan.json``) arms the chaos-injection harness used by the
CI ``chaos-smoke`` job.  A task that exhausts its retry budget exits
with status 4 and a clear message instead of a partial result.

Estimator health: ``--diagnostics`` prints a per-scope convergence
summary (effective sample sizes, CI half-widths) after the run and
includes the ``diagnostics`` block in the ``--metrics-out`` report;
``--min-ess`` / ``--max-ci-halfwidth`` set what "converged" means, and
``--strict-diagnostics`` exits with status 3 when any estimate fails
them — so a pipeline cannot silently ship a yield number whose CI is
wider than the effect it claims.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import faults, observability
from repro.observability.diagnostics import DiagnosticThresholds
from repro.observability.output import resolve_out_path as _resolve_out_path
from repro.stats.rare_event import SAMPLER_NAMES
from repro.parallel.executor import TaskError
from repro.experiments.context import ExperimentContext, default_context
from repro.experiments.registry import (
    EXPERIMENTS,
    EXTENSIONS,
    render_markdown,
    run_experiment,
)


def _fast_context() -> ExperimentContext:
    return ExperimentContext(
        target=1e-5,
        calibration_samples=20_000,
        analysis_samples=8_000,
        table_grid=9,
    )


#: Exit status of a ``--strict-diagnostics`` convergence failure
#: (distinct from argparse's 2 and success's 0).
EXIT_UNCONVERGED = 3

#: Exit status when a task exhausts its retry budget (the run could
#: not produce a trustworthy result; partial output is never printed).
EXIT_TASK_FAILURE = 4


def _resolve_metrics_path(path: str, overwrite: bool, logger) -> str:
    """Backward-compatible alias for the telemetry-report path."""
    return _resolve_out_path(
        path, overwrite, logger, "metrics", "--metrics-overwrite"
    )


def _print_diagnostics_summary(recorder) -> dict:
    """Render the estimator-health verdict; return the failing scopes."""
    snapshot = recorder.snapshot()
    failing = recorder.unconverged()
    print("\nestimator-health diagnostics "
          f"(min ESS {recorder.thresholds.min_ess:g}"
          + (f", max CI half-width {recorder.thresholds.max_ci_halfwidth:g}"
             if recorder.thresholds.max_ci_halfwidth is not None else "")
          + "):")
    scopes = snapshot["scopes"]
    if not scopes:
        print("  (no estimates recorded)")
        return failing
    for name, scope in scopes.items():
        verdict = "ok" if scope["converged"] else "UNCONVERGED"
        line = (
            f"  {name:28s} {verdict:12s}"
            f" estimates={scope['n_estimates']}"
        )
        if scope["min_ess"] is not None:
            line += f" min_ess={scope['min_ess']:.1f}"
        if scope["max_ci_halfwidth"] is not None:
            line += f" worst_ci_halfwidth={scope['max_ci_halfwidth']:.3g}"
        print(line)
    for name, reasons in failing.items():
        print(f"  !! {name}: {'; '.join(reasons)}")
    return failing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure from the SOCC 2006 paper.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        help="experiment id (e.g. fig2a); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--doc",
        action="store_true",
        help="print the experiment catalogue as markdown "
        "(the generated body of docs/experiments.md)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced-accuracy context (quick qualitative run)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="processes for sweep fan-out (default 1 = serial; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist criteria/tables to DIR and reuse them on reruns",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured progress logs on stderr (-vv for debug)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="render progress logs as JSON lines instead of text",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a JSON telemetry report (spans, counters) to FILE; "
        "an existing FILE diverts to a numbered sibling unless "
        "--metrics-overwrite is passed",
    )
    parser.add_argument(
        "--metrics-overwrite",
        action="store_true",
        help="allow --metrics-out to replace an existing file",
    )
    parser.add_argument(
        "--diagnostics",
        action="store_true",
        help="collect estimator-health diagnostics (CIs, effective "
        "sample sizes) and print a convergence summary after the run",
    )
    parser.add_argument(
        "--strict-diagnostics",
        action="store_true",
        help=f"like --diagnostics, but exit {EXIT_UNCONVERGED} when any "
        "estimate fails the convergence thresholds",
    )
    parser.add_argument(
        "--min-ess",
        type=float,
        default=None,
        metavar="N",
        help="effective-sample-size floor per estimate (default "
        f"{DiagnosticThresholds.min_ess})",
    )
    parser.add_argument(
        "--max-ci-halfwidth",
        type=float,
        default=None,
        metavar="W",
        help="ceiling on the 95%% CI half-width per estimate "
        "(default: not checked)",
    )
    parser.add_argument(
        "--analysis-samples",
        type=int,
        default=None,
        metavar="N",
        help="override the context's solver-call budget per failure "
        "estimate (deliberately small values exercise the "
        "diagnostics gate)",
    )
    parser.add_argument(
        "--sampler",
        choices=list(SAMPLER_NAMES),
        default=None,
        metavar="NAME",
        help="rare-event sampling strategy: plain (no inflation), "
        "scaled (sigma inflation, auto-tuned from a pilot batch), "
        "adaptive-is (MPFP-seeded mean-shift importance sampling), or "
        "blockade (statistical blockade pre-classifier); default: the "
        "context's legacy fixed-scale sampler (see docs/statistics.md)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="run under cProfile and write pstats-loadable stats to "
        "FILE (inspect with `python -m pstats FILE`); an existing FILE "
        "diverts to a numbered sibling unless --profile-overwrite is "
        "passed",
    )
    parser.add_argument(
        "--profile-overwrite",
        action="store_true",
        help="allow --profile-out to replace an existing file",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record a span timeline and write it as Chrome trace-event "
        "JSON to FILE (open in Perfetto or chrome://tracing); an "
        "existing FILE diverts to a numbered sibling unless "
        "--trace-overwrite is passed",
    )
    parser.add_argument(
        "--trace-overwrite",
        action="store_true",
        help="allow --trace-out to replace an existing file",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="correlation id for this run: stamped as run_id= on every "
        "structured log event (human and --log-json), into the "
        "--metrics-out report, and into the --trace-out metadata — "
        "one key to join a run's logs, metrics, and traces offline",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="flush completed grid cells / dies to DIR during long "
        "builds; a killed run re-invoked with the same parameters "
        "resumes from the last flush (bit-identical results)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="completed cells per checkpoint flush (default 8)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.checkpoint_every < 1:
        parser.error(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )

    if args.doc:
        print(render_markdown(), end="")
        return 0

    if args.list or not args.figure:
        print("paper figures:")
        for name, spec in sorted(EXPERIMENTS.items()):
            print(f"  {name:16s}  {spec.description}")
        print("extensions:")
        for name, spec in sorted(EXTENSIONS.items()):
            print(f"  {name:16s}  {spec.description}")
        return 0

    if args.figure not in EXPERIMENTS and args.figure not in EXTENSIONS:
        parser.error(
            f"unknown experiment {args.figure!r}; try --list"
        )

    # Telemetry: logs whenever -v/--log-json asks for them; metric and
    # trace collection only when a report, a profile, or the
    # estimator-health gate will consume it.
    diagnose = args.diagnostics or args.strict_diagnostics
    if (args.min_ess is not None or args.max_ci_halfwidth is not None) and (
        not diagnose and args.metrics_out is None
    ):
        parser.error(
            "--min-ess/--max-ci-halfwidth need --diagnostics, "
            "--strict-diagnostics, or --metrics-out"
        )
    if args.run_id is not None and not args.run_id.strip():
        parser.error("--run-id must be a non-empty string")
    if args.run_id is not None:
        # Scope the whole process lifetime (the CLI is one run): every
        # log event below — and in every pool worker — carries
        # run_id=<ID>, with or without metric collection.
        observability.context.activate(
            observability.RunScope(args.run_id)
        )
    collect = args.metrics_out is not None
    profiling = args.profile_out is not None
    timeline = args.trace_out is not None
    if args.verbose or args.log_json or collect or profiling or diagnose or timeline:
        observability.configure(
            verbosity=args.verbose,
            json_lines=args.log_json,
            # Timeline events are recorded by trace() spans, which only
            # fire while metric/trace collection is enabled.
            metrics=collect or profiling or diagnose or timeline,
        )
    if timeline:
        observability.enable_timeline()
    observability.diagnostics.recorder.configure(
        DiagnosticThresholds(
            min_ess=(
                args.min_ess
                if args.min_ess is not None
                else DiagnosticThresholds.min_ess
            ),
            max_ci_halfwidth=args.max_ci_halfwidth,
        )
    )
    if profiling:
        observability.enable_profiling()

    # Chaos harness: the REPRO_FAULT_PLAN environment hook arms a fault
    # plan (inline JSON or @/path/to/plan.json) for this run.  A
    # malformed plan is a loud configuration error, never ignored.
    try:
        fault_plan = faults.plan_from_env()
    except ValueError as exc:
        parser.error(str(exc))

    ctx = _fast_context() if args.fast else default_context()
    try:
        ctx.configure_execution(
            workers=args.workers if args.workers != 1 else None,
            cache_dir=args.cache_dir,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            fault_plan=fault_plan,
        )
    except NotADirectoryError as exc:
        parser.error(str(exc))
    if args.analysis_samples is not None:
        if args.analysis_samples < 1:
            parser.error(
                f"--analysis-samples must be >= 1, got {args.analysis_samples}"
            )
        ctx.analysis_samples = args.analysis_samples
    if args.sampler is not None:
        # Explicit "scaled" selects the auto-tuned scale (the context
        # default keeps the legacy fixed inflation for bit-compat).
        ctx.configure_sampling(sampler=args.sampler)
    start = time.time()
    try:
        with observability.profile(args.figure):
            result = run_experiment(args.figure, ctx)
    except TaskError as exc:
        # Exhausted retries: the run cannot produce a trustworthy
        # result, so print nothing that looks like one.
        print(
            f"ERROR: {args.figure} aborted — {exc}\n"
            "(every retry attempt was exhausted; see docs/robustness.md; "
            "partial progress is preserved when --checkpoint-dir is set)",
            file=sys.stderr,
        )
        return EXIT_TASK_FAILURE
    elapsed = time.time() - start
    print("\n".join(result.rows()))
    print(f"\n[{args.figure} regenerated in {elapsed:.1f}s"
          f"{' (fast context)' if args.fast else ''}]")

    if collect:
        report = observability.snapshot()
        report["experiment"] = args.figure
        if args.run_id is not None:
            report["run_id"] = args.run_id
        report["elapsed_seconds"] = round(elapsed, 3)
        report["invocation"] = {
            "fast": args.fast,
            "workers": args.workers,
            "cache_dir": args.cache_dir,
            "checkpoint_dir": args.checkpoint_dir,
            "sampler": ctx.sampler,
        }
        # Self-describing reports: where and how this was measured.
        # Additive under schema repro.telemetry/1 — readers that only
        # know metrics/trace keep working.
        report["meta"] = {
            **observability.environment_fingerprint(),
            "seed": ctx.seed,
            "workers": args.workers,
            "run_id": args.run_id,
        }
        logger = observability.get_logger("experiments.cli")
        metrics_path = _resolve_metrics_path(
            args.metrics_out, args.metrics_overwrite, logger
        )
        with open(metrics_path, "w") as fh:
            json.dump(report, fh, indent=2)
        logger.info("metrics.written", path=metrics_path)
    if profiling:
        logger = observability.get_logger("experiments.cli")
        profile_path = _resolve_out_path(
            args.profile_out, args.profile_overwrite, logger,
            "profile", "--profile-overwrite",
        )
        spans = observability.write_profile(profile_path)
        logger.info(
            "profile.written", path=profile_path, spans=len(spans)
        )
    if timeline:
        logger = observability.get_logger("experiments.cli")
        document = observability.export.chrome_trace(
            observability.timeline_snapshot(),
            meta={
                "experiment": args.figure,
                "run_id": args.run_id,
                "elapsed_seconds": round(elapsed, 3),
                "workers": args.workers,
                "git_sha": observability.git_sha(),
            },
        )
        trace_path = _resolve_out_path(
            args.trace_out, args.trace_overwrite, logger,
            "trace", "--trace-overwrite",
        )
        with open(trace_path, "w") as fh:
            json.dump(document, fh)
        logger.info(
            "trace.written", path=trace_path,
            events=len(document["traceEvents"]),
        )
    if diagnose:
        logger = observability.get_logger("experiments.cli")
        failing = _print_diagnostics_summary(
            observability.diagnostics.recorder
        )
        for scope, reasons in failing.items():
            logger.warning(
                "diagnostics.unconverged", scope=scope,
                reasons="; ".join(reasons),
            )
        if failing and args.strict_diagnostics:
            print(
                f"FAIL: {len(failing)} scope(s) unconverged under "
                "--strict-diagnostics",
                file=sys.stderr,
            )
            return EXIT_UNCONVERGED
    return 0


if __name__ == "__main__":
    sys.exit(main())
