"""Production-lot simulation of the full post-silicon flow.

The downstream view of everything in this library: draw a lot of dies
from the inter-die distribution and push each through the paper's
manufacturing flow —

1. **monitor & repair**: measure the array leakage (a CLT draw for the
   die), bin the corner, apply the body bias;
2. **parametric test**: is the die's (post-bias) cell failure rate
   repairable by the column redundancy?  Scrap otherwise;
3. **ASB calibration**: find the die's standby source bias (statistical
   BIST model at lot scale);
4. **final binning**: good-as-is / repaired / scrap, with per-die
   standby power.

The result is what a product engineer reads off a lot report: yield by
bin, the power distribution of shipped parts, and the average BIST
effort.  Exercised in ``examples/full_post_silicon_tuning.py`` and the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.body_bias import SelfRepairingSRAM
from repro.core.monitor import CornerBin
from repro.core.source_bias import SourceBiasDAC
from repro.observability import diagnostics
from repro.observability.log import get_logger
from repro.observability.metrics import incr
from repro.observability.tracing import trace
from repro.stats.montecarlo import MonteCarloResult
from repro.power.standby import die_standby_power
from repro.sram.metrics import OperatingConditions
from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution

if TYPE_CHECKING:  # pragma: no cover - hint-only imports
    from repro.checkpoint import CheckpointStore
    from repro.parallel.executor import ParallelExecutor

_log = get_logger("core.lot")


def _die_task(task) -> "DieRecord":
    """Worker entry point: one die through the flow (picklable).

    The task carries its own :class:`~numpy.random.SeedSequence`, so
    the record is a pure function of the payload — identical whether it
    runs inline or in any worker process.
    """
    simulator, corner, seed_seq = task
    return simulator.process_die(corner, np.random.default_rng(seed_seq))


@dataclass(frozen=True)
class DieRecord:
    """One die's journey through the flow.

    Attributes:
        corner: true inter-die shift [V] (unknown to the flow).
        bin: the monitor's corner classification.
        vbody: applied body bias [V].
        vsb: calibrated standby source bias [V]; 0 if scrapped.
        p_memory: post-repair memory failure probability.
        shipped: passed the parametric test.
        standby_power: sampled standby power [W] at the final point.
    """

    corner: float
    bin: CornerBin
    vbody: float
    vsb: float
    p_memory: float
    shipped: bool
    standby_power: float


def _encode_die(record: DieRecord) -> dict:
    """A :class:`DieRecord` as a JSON-serialisable checkpoint entry."""
    return {
        "corner": record.corner,
        "bin": record.bin.value,
        "vbody": record.vbody,
        "vsb": record.vsb,
        "p_memory": record.p_memory,
        "shipped": record.shipped,
        "standby_power": record.standby_power,
    }


def _decode_die(raw: dict) -> DieRecord:
    """Rebuild a :class:`DieRecord` from its checkpoint entry."""
    return DieRecord(
        corner=float(raw["corner"]),
        bin=CornerBin(raw["bin"]),
        vbody=float(raw["vbody"]),
        vsb=float(raw["vsb"]),
        p_memory=float(raw["p_memory"]),
        shipped=bool(raw["shipped"]),
        standby_power=float(raw["standby_power"]),
    )


@dataclass
class LotReport:
    """Aggregate statistics of a simulated lot."""

    dies: list[DieRecord] = field(default_factory=list)

    @property
    def n_dies(self) -> int:
        return len(self.dies)

    @property
    def yield_fraction(self) -> float:
        """Shipped dies / total."""
        if not self.dies:
            return 0.0
        return sum(d.shipped for d in self.dies) / self.n_dies

    def yield_result(self) -> MonteCarloResult:
        """The lot yield as a binomial estimate with its Wilson CI.

        The lot is itself a Monte-Carlo experiment over dies; this is
        its estimator-health view — with 10 dies a "90% yield" spans
        roughly 60-98% at 95% confidence, and the report says so.
        """
        shipped = sum(d.shipped for d in self.dies)
        return MonteCarloResult.from_binomial(shipped, self.n_dies)

    @property
    def repaired_fraction(self) -> float:
        """Shipped dies that needed a non-zero body bias."""
        shipped = [d for d in self.dies if d.shipped]
        if not shipped:
            return 0.0
        return sum(d.vbody != 0.0 for d in shipped) / len(shipped)

    def shipped_power(self) -> np.ndarray:
        """Standby power [W] of every shipped die."""
        return np.array(
            [d.standby_power for d in self.dies if d.shipped]
        )

    def rows(self) -> list[str]:
        """A lot-report summary table."""
        power = self.shipped_power()
        ci = self.yield_result()
        lines = [
            f"lot size {self.n_dies}: yield {100 * self.yield_fraction:.1f}%"
            f" (95% CI {100 * ci.ci_low:.1f}-{100 * ci.ci_high:.1f}%,"
            f" {100 * self.repaired_fraction:.0f}% of shipped parts"
            " needed body-bias repair)",
        ]
        if power.size:
            lines.append(
                f"shipped standby power: mean {power.mean() * 1e6:.1f} uW, "
                f"p95 {np.quantile(power, 0.95) * 1e6:.1f} uW"
            )
        by_bin: dict[str, int] = {}
        for die in self.dies:
            by_bin[die.bin.value] = by_bin.get(die.bin.value, 0) + 1
        lines.append(
            "corner bins: " + ", ".join(
                f"{name}={count}" for name, count in sorted(by_bin.items())
            )
        )
        return lines


class LotSimulator:
    """Simulates a lot of dies through monitor -> repair -> test -> ASB.

    Args:
        pipeline: the self-repairing pipeline (supplies the monitor, the
            bias generator, the failure tables, and the organisation).
        hold_table: the ASB hold-probability surface
            (:class:`repro.experiments.asb.HoldProbabilityTable`).
        dac: source-bias DAC.
        asb_conditions: standby conditions for power accounting.
        p_memory_limit: scrap threshold on the post-repair memory
            failure probability (a die whose repaired failure odds
            exceed this is not shipped).
    """

    def __init__(
        self,
        pipeline: SelfRepairingSRAM,
        hold_table,
        dac: SourceBiasDAC | None = None,
        asb_conditions: OperatingConditions | None = None,
        p_memory_limit: float = 0.05,
    ) -> None:
        self.pipeline = pipeline
        self.hold_table = hold_table
        self.dac = dac if dac is not None else SourceBiasDAC()
        self.asb_conditions = (
            asb_conditions
            if asb_conditions is not None
            else OperatingConditions.source_biased_standby(pipeline.tech)
        )
        if not 0.0 < p_memory_limit < 1.0:
            raise ValueError("p_memory_limit must be in (0, 1)")
        self.p_memory_limit = p_memory_limit
        self._power_cache: dict[tuple[float, float], object] = {}

    def _power(self, corner: float, vsb: float):
        key = (round(corner, 3), round(vsb, 3))
        if key not in self._power_cache:
            seed = np.random.SeedSequence(
                entropy=[
                    101,
                    int(round(key[0] * 1e3)) & 0xFFFFFFFF,
                    int(round(key[1] * 1e3)) & 0xFFFFFFFF,
                ]
            )
            self._power_cache[key] = die_standby_power(
                self.pipeline.tech,
                self.pipeline.geometry,
                ProcessCorner(key[0]),
                self.pipeline.organization.n_cells,
                self.asb_conditions.with_source_bias(key[1]),
                n_samples=4_000,
                rng=np.random.default_rng(seed),
            )
        return self._power_cache[key]

    @trace("lot.die")
    def process_die(
        self, corner: ProcessCorner, rng: np.random.Generator
    ) -> DieRecord:
        """Run one die through the complete flow."""
        incr("lot.dies")
        # Stage 1: monitor (noisy per-die measurement) and repair.
        vbody, bin, _ = self.pipeline.decide_bias(corner, rng)
        quantised = ProcessCorner(round(corner.dvt_inter, 3))
        p_memory = self.pipeline.memory_failure_probability(quantised, vbody)
        shipped = p_memory <= self.p_memory_limit
        # Stage 2: ASB calibration only for shipped dies.
        vsb = 0.0
        if shipped:
            vsb = self.hold_table.adaptive_vsb(
                quantised.dvt_inter, self.pipeline.organization, self.dac
            )
        power = float(
            self._power(quantised.dvt_inter, vsb).sample(rng, 1)[0]
        )
        incr("lot.shipped" if shipped else "lot.scrapped")
        return DieRecord(
            corner=corner.dvt_inter,
            bin=bin,
            vbody=vbody,
            vsb=vsb,
            p_memory=p_memory,
            shipped=shipped,
            standby_power=power,
        )

    def _lot_fingerprint(
        self, n_dies: int, sigma_inter: float, seed: int
    ) -> str:
        """Content fingerprint of everything one lot run depends on."""
        import dataclasses as _dc

        from repro.parallel.cache import fingerprint

        return fingerprint(
            {
                "technology": _dc.asdict(self.pipeline.tech),
                "geometry": _dc.asdict(self.pipeline.geometry),
                "organization": _dc.asdict(self.pipeline.organization),
                "asb_conditions": _dc.asdict(self.asb_conditions),
                "p_memory_limit": self.p_memory_limit,
                "n_dies": n_dies,
                "sigma_inter": sigma_inter,
                "seed": seed,
            }
        )

    def run(
        self,
        n_dies: int,
        sigma_inter: float,
        seed: int = 0,
        executor: "ParallelExecutor | None" = None,
        checkpoint: "CheckpointStore | None" = None,
    ) -> LotReport:
        """Simulate a lot of ``n_dies`` from a ``sigma_inter`` process.

        Every die gets its own child of ``seed`` (via
        :meth:`numpy.random.SeedSequence.spawn`), so the lot report is
        bit-identical whether the dies run inline (``executor=None``)
        or fanned out across any number of workers.

        With ``checkpoint`` set, completed dies are flushed to a
        checkpoint keyed by a fingerprint of the full run payload; a
        killed run re-invoked with the same parameters resumes from the
        last flush, and — since each die's RNG stream comes from its
        own spawned seed — produces a bit-identical report.
        """
        if n_dies <= 0:
            raise ValueError(f"n_dies must be positive, got {n_dies}")
        shift_seed, die_root = np.random.SeedSequence(seed).spawn(2)
        shifts = InterDieDistribution(sigma_inter).sample(
            np.random.default_rng(shift_seed), n_dies
        )
        tasks = [
            (self, ProcessCorner(float(shift)), die_seed)
            for shift, die_seed in zip(shifts, die_root.spawn(n_dies))
        ]
        _log.info("lot.start", dies=n_dies, sigma_inter=sigma_inter)

        def compute(indices) -> list:
            chunk = [tasks[i] for i in indices]
            if executor is not None:
                return executor.map(_die_task, chunk)
            return [_die_task(task) for task in chunk]

        with trace("lot.run"):
            if checkpoint is not None:
                records = checkpoint.resumable_map(
                    "lot",
                    self._lot_fingerprint(n_dies, sigma_inter, seed),
                    n_dies,
                    compute,
                    _encode_die,
                    _decode_die,
                )
            elif executor is None:
                # Inline path: cheap per-die progress (every ~10%).
                stride = max(1, n_dies // 10)
                records = []
                for i, task in enumerate(tasks):
                    records.append(_die_task(task))
                    if (i + 1) % stride == 0 or i + 1 == n_dies:
                        _log.info("lot.progress", done=i + 1, total=n_dies)
            else:
                records = executor.map(_die_task, tasks)
        report = LotReport(dies=list(records))
        diagnostics.record("lot.yield", report.yield_result())
        _log.info(
            "lot.done",
            dies=n_dies,
            yield_pct=round(100 * report.yield_fraction, 1),
        )
        return report
