"""The paper's primary contribution: post-silicon self-repair and
self-adaptive tuning for low-power, variation-tolerant SRAM.

Two systems, matching the paper's Sections III and IV:

* **Self-repairing SRAM using body bias**
  (:mod:`repro.core.monitor`, :mod:`repro.core.body_bias`): an on-chip
  leakage monitor senses total array leakage, two comparators bin the
  die's inter-die corner, and a body-bias generator applies
  RBB / ZBB / FBB to simultaneously improve parametric yield and tighten
  the leakage spread.

* **Self-adaptive source biasing**
  (:mod:`repro.core.march`, :mod:`repro.core.source_bias`): a BIST engine
  runs March tests with standby dwells over the functional array while a
  counter/DAC ramps the source-line bias; the largest VSB whose faulty
  columns still fit in the redundancy becomes VSB(adaptive), minimising
  standby leakage without losing hold yield.

:mod:`repro.core.tables` provides interpolated failure-probability
tables so the yield-vs-sigma experiments run in seconds rather than
hours.
"""

from repro.core.body_bias import (
    BodyBiasGenerator,
    RepairOutcome,
    SelfRepairingSRAM,
)
from repro.core.delay_monitor import CombinedMonitor, DelayMonitor, RingOscillator
from repro.core.lot import DieRecord, LotReport, LotSimulator
from repro.core.march import (
    MARCH_B,
    MARCH_CM,
    MARCH_X,
    MATS_PLUS,
    MarchElement,
    MarchTest,
)
from repro.core.monitor import Comparator, LeakageMonitor, MonitorReadout
from repro.core.source_bias import (
    BISTController,
    SelfAdaptiveSourceBias,
    SourceBiasDAC,
)
from repro.core.tables import FailureProbabilityTable
from repro.core.tuning import PostSiliconTuner, TuningOutcome

__all__ = [
    "LeakageMonitor",
    "Comparator",
    "MonitorReadout",
    "BodyBiasGenerator",
    "SelfRepairingSRAM",
    "RepairOutcome",
    "MarchElement",
    "MarchTest",
    "MATS_PLUS",
    "MARCH_X",
    "MARCH_CM",
    "MARCH_B",
    "RingOscillator",
    "DelayMonitor",
    "CombinedMonitor",
    "SourceBiasDAC",
    "BISTController",
    "SelfAdaptiveSourceBias",
    "FailureProbabilityTable",
    "PostSiliconTuner",
    "TuningOutcome",
    "LotSimulator",
    "LotReport",
    "DieRecord",
]
