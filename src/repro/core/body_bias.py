"""Self-repairing SRAM using adaptive body bias (paper Section III).

The pipeline of Fig. 4a: the leakage monitor measures the array's total
leakage, the comparators bin the die, and the body-bias generator
applies the matching NMOS body bias:

* LOW_VT (leaky) die  -> reverse body bias  (raises Vt: fixes read/hold
  failures and cuts subthreshold leakage);
* HIGH_VT (slow) die  -> forward body bias  (lowers Vt: fixes
  access/write failures, raises leakage back toward nominal);
* NOMINAL die         -> zero body bias.

Because the two corrections move both the failure probability and the
leakage of the outlying corners back toward the nominal die, the single
knob simultaneously improves parametric yield (Fig. 2c) and compresses
the inter-die leakage spread (Figs. 5b-5c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.monitor import CornerBin, LeakageMonitor
from repro.core.tables import FailureProbabilityTable
from repro.failures.analysis import CellFailureAnalyzer
from repro.failures.memory import memory_failure_probability
from repro.sram.array import ArrayOrganization
from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.stats.distributions import NormalDistribution, array_leakage_distribution
from repro.stats.integration import dense_expectation
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters
from repro.technology.variation import InterDieDistribution


@dataclass(frozen=True)
class BodyBiasGenerator:
    """The three-level body-bias generator of the self-repairing SRAM.

    The default forward level is smaller in magnitude than the reverse
    one: body bias only reaches the NMOS devices, so a slow die's weak
    PMOS pull-ups stay weak and a large FBB (which erodes the read
    margin further) overshoots — +0.25 V balances the access/write
    recovery against the read cost across the realistic high-Vt range,
    while -0.4 V RBB is beneficial over the whole low-Vt range.

    Attributes:
        rbb: reverse-bias body voltage [V] (negative).
        fbb: forward-bias body voltage [V] (positive).
    """

    rbb: float = -0.4
    fbb: float = 0.25

    def __post_init__(self) -> None:
        if self.rbb >= 0.0:
            raise ValueError(f"rbb must be negative, got {self.rbb}")
        if self.fbb <= 0.0:
            raise ValueError(f"fbb must be positive, got {self.fbb}")

    def bias_for(self, bin: CornerBin) -> float:
        """Body voltage [V] applied for a comparator decision."""
        if bin is CornerBin.LOW_VT:
            return self.rbb
        if bin is CornerBin.HIGH_VT:
            return self.fbb
        return 0.0


@dataclass(frozen=True)
class RepairOutcome:
    """The result of self-repairing one die.

    Attributes:
        corner: the die's true inter-die corner.
        measured_leakage: array leakage seen by the monitor [A].
        bin: the comparator classification.
        vbody: applied NMOS body bias [V].
        p_cell_before / p_cell_after: union cell failure probability at
            ZBB and at the applied bias.
        p_memory_before / p_memory_after: memory failure probability
            (after redundancy) at ZBB and at the applied bias.
        leakage_before / leakage_after: mean array leakage [A] at ZBB
            and at the applied bias.
    """

    corner: ProcessCorner
    measured_leakage: float
    bin: CornerBin
    vbody: float
    p_cell_before: float
    p_cell_after: float
    p_memory_before: float
    p_memory_after: float
    leakage_before: float
    leakage_after: float


class SelfRepairingSRAM:
    """The full monitor -> comparator -> body-bias repair pipeline.

    Failure probabilities come from interpolated
    :class:`FailureProbabilityTable` instances, one per body-bias level,
    built lazily from the supplied analyzer; array leakage statistics
    come from cell-level Monte Carlo with CLT scaling.

    Args:
        analyzer: cell failure analyzer (carries tech, geometry,
            criteria, operating conditions).
        organization: the memory organisation (sets both the monitored
            cell count and the redundancy for yield).
        generator: body-bias levels.
        monitor: leakage monitor; by default calibrated for the array
            size with the standard corner boundary.
        leakage_samples: Monte-Carlo cells per leakage estimate.
        seed: RNG seed for leakage sampling.
    """

    def __init__(
        self,
        analyzer: CellFailureAnalyzer,
        organization: ArrayOrganization,
        generator: BodyBiasGenerator | None = None,
        monitor: LeakageMonitor | None = None,
        leakage_samples: int = 20_000,
        seed: int = 23,
        table_grid: int = 17,
        table_provider=None,
    ) -> None:
        self.analyzer = analyzer
        self.tech: TechnologyParameters = analyzer.tech
        self.geometry: CellGeometry = analyzer.geometry
        self.organization = organization
        self.generator = generator if generator is not None else BodyBiasGenerator()
        self.monitor = (
            monitor
            if monitor is not None
            else LeakageMonitor.calibrate_references(
                self.tech, self.geometry, organization.n_cells
            )
        )
        self.leakage_samples = leakage_samples
        self.seed = seed
        self.table_grid = table_grid
        #: Optional shared ``vbody -> FailureProbabilityTable`` factory so
        #: several repair pipelines (different array sizes) can reuse one
        #: expensive table set.
        self.table_provider = table_provider
        self._tables: dict[float, FailureProbabilityTable] = {}
        self._leakage_cache: dict[tuple[float, float], NormalDistribution] = {}

    # ------------------------------------------------------------------
    # Failure probability and leakage primitives
    # ------------------------------------------------------------------
    def _table(self, vbody: float) -> FailureProbabilityTable:
        key = round(vbody, 6)
        if key not in self._tables:
            if self.table_provider is not None:
                self._tables[key] = self.table_provider(key)
            else:
                conditions = self.analyzer.conditions.with_body_bias(vbody)
                self._tables[key] = FailureProbabilityTable(
                    self.analyzer, conditions, n_grid=self.table_grid
                )
        return self._tables[key]

    def cell_failure_probability(
        self, corner: ProcessCorner, vbody: float = 0.0
    ) -> float:
        """Union cell failure probability at (corner, body bias)."""
        return self._table(vbody).probability(corner, "any")

    def memory_failure_probability(
        self, corner: ProcessCorner, vbody: float = 0.0
    ) -> float:
        """Memory failure probability (after redundancy) at a corner."""
        return memory_failure_probability(
            self.cell_failure_probability(corner, vbody), self.organization
        )

    def array_leakage(
        self, corner: ProcessCorner, vbody: float = 0.0
    ) -> NormalDistribution:
        """CLT Gaussian of the array leakage at (corner, body bias)."""
        key = (round(corner.dvt_inter, 9), round(vbody, 6))
        if key not in self._leakage_cache:
            rng = np.random.default_rng(
                (self.seed, hash(key) & 0xFFFFFFFF)
            )
            dvt = sample_cell_dvt(
                self.tech, self.geometry, rng, self.leakage_samples
            )
            cell = SixTCell(self.tech, self.geometry, corner, dvt)
            per_cell = cell_leakage(cell, vbody_n=vbody).total
            self._leakage_cache[key] = array_leakage_distribution(
                per_cell, self.organization.n_cells
            )
        return self._leakage_cache[key]

    # ------------------------------------------------------------------
    # The repair pipeline
    # ------------------------------------------------------------------
    def decide_bias(self, corner: ProcessCorner,
                    rng: np.random.Generator | None = None) -> tuple[float, CornerBin, float]:
        """Monitor + comparator decision for one die.

        With ``rng`` the measured leakage is a CLT draw (die-specific
        intra-die sample); without it the monitor sees the corner's mean
        leakage (the deterministic limit the yield integrals use).

        Returns (vbody, bin, measured leakage).
        """
        distribution = self.array_leakage(corner, vbody=0.0)
        if rng is None:
            measured = distribution.mean
        else:
            measured = float(distribution.sample(rng, 1)[0])
        bin = self.monitor.classify(measured)
        return self.generator.bias_for(bin), bin, measured

    def repair(
        self, corner: ProcessCorner, rng: np.random.Generator | None = None
    ) -> RepairOutcome:
        """Run the full pipeline on one die and report before/after."""
        vbody, bin, measured = self.decide_bias(corner, rng)
        return RepairOutcome(
            corner=corner,
            measured_leakage=measured,
            bin=bin,
            vbody=vbody,
            p_cell_before=self.cell_failure_probability(corner, 0.0),
            p_cell_after=self.cell_failure_probability(corner, vbody),
            p_memory_before=self.memory_failure_probability(corner, 0.0),
            p_memory_after=self.memory_failure_probability(corner, vbody),
            leakage_before=self.array_leakage(corner, 0.0).mean,
            leakage_after=self.array_leakage(corner, vbody).mean,
        )

    # ------------------------------------------------------------------
    # Yield metrics (paper Figs. 2c, 5c)
    # ------------------------------------------------------------------
    def parametric_yield(
        self,
        distribution: InterDieDistribution,
        repaired: bool = True,
        order: int = 15,
    ) -> float:
        """Parametric yield over the inter-die distribution.

        ``repaired=False`` evaluates the ZBB baseline; ``repaired=True``
        lets the monitor pick the bias per corner (Fig. 2c's comparison).
        The integration grid is dense because the three-level bias policy
        is discontinuous in the corner.
        """

        def pass_probability(corner: ProcessCorner) -> float:
            quantised = ProcessCorner(round(corner.dvt_inter, 3))
            vbody = self.decide_bias(quantised)[0] if repaired else 0.0
            return 1.0 - self.memory_failure_probability(quantised, vbody)

        return dense_expectation(distribution, pass_probability)

    def leakage_yield(
        self,
        distribution: InterDieDistribution,
        l_max: float,
        repaired: bool = True,
        order: int = 15,
    ) -> float:
        """Fraction of dies meeting the leakage bound (Fig. 5c).

        Corners are quantised to 5 mV so the per-corner Monte-Carlo
        leakage cache is reused across the dense integration grid and
        across sigma values.
        """

        def pass_probability(corner: ProcessCorner) -> float:
            quantised = ProcessCorner(round(corner.dvt_inter / 0.005) * 0.005)
            vbody = self.decide_bias(quantised)[0] if repaired else 0.0
            return float(self.array_leakage(quantised, vbody).cdf(l_max))

        return dense_expectation(distribution, pass_probability)
