"""Delay-based corner sensing (the paper's reference [4] companion).

The self-repairing SRAM of the paper senses the inter-die corner through
*leakage*; its companion work (Mukhopadhyay et al., ITC 2005 — the
paper's [4]) adds a *delay* monitor: a replica critical path / ring
oscillator whose frequency tracks the die's drive strength.  The two
sensors are complementary — leakage is exponentially sensitive to the
corner but also to temperature, delay is only linearly sensitive to
both — and a combined decision is more robust.

This module provides:

* :class:`RingOscillator` — an N-stage inverter ring with an analytic
  stage-delay model (cross-validated against a transient MNA simulation
  of the same ring in the test suite);
* :class:`DelayMonitor` — bins a die from the measured ring period;
* :class:`CombinedMonitor` — majority/priority fusion of the leakage
  and delay decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.monitor import CornerBin, LeakageMonitor
from repro.devices.factory import make_nmos, make_pmos
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters


@dataclass(frozen=True)
class RingOscillator:
    """An N-stage CMOS inverter ring oscillator.

    Stage delay uses the standard effective-current model: the load
    charges/discharges by VDD/2 before the next stage trips, so

        t_stage ~ C_load * (VDD / 2) / I_eff

    with ``I_eff`` the average of the saturation current at full drive
    and at half output swing.  The period is ``2 * N * t_stage``
    (each stage flips twice per cycle).  NMOS body bias modulates the
    pull-down strength — FBB speeds the ring up, RBB slows it down —
    which is exactly the observable the delay monitor bins on.

    Attributes:
        tech: technology card.
        n_stages: odd number of inverter stages.
        wn / wp: inverter device widths [m].
        c_load: per-stage load capacitance [F].
        slew_factor: multiplier accounting for the finite input slew and
            short-circuit current a step-input model ignores; the
            default is calibrated against a transient MNA simulation of
            the same ring (see the test suite).
    """

    tech: TechnologyParameters
    n_stages: int = 11
    wn: float = 200e-9
    wp: float = 400e-9
    c_load: float = 2e-15
    slew_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.n_stages < 3 or self.n_stages % 2 == 0:
            raise ValueError("n_stages must be an odd integer >= 3")
        if self.c_load <= 0:
            raise ValueError("c_load must be positive")

    def _effective_current(self, device, vdd: float, vbody: float) -> float:
        """Average drive over the first half-swing [A]."""
        if device.polarity == "nmos":
            i_full = device.current(vg=vdd, vd=vdd, vs=0.0, vb=vbody)
            i_half = device.current(vg=vdd, vd=vdd / 2, vs=0.0, vb=vbody)
        else:
            i_full = device.current(vg=0.0, vd=0.0, vs=vdd, vb=vdd)
            i_half = device.current(vg=0.0, vd=vdd / 2, vs=vdd, vb=vdd)
        return 0.5 * float(np.squeeze(i_full) + np.squeeze(i_half))

    def stage_delay(
        self, corner: ProcessCorner, vbody_n: float = 0.0,
        vdd: float | None = None,
    ) -> float:
        """Average of the rise and fall stage delays [s]."""
        vdd = vdd if vdd is not None else self.tech.vdd
        nmos = make_nmos(self.tech, self.wn, dvt=corner.dvt_inter)
        pmos = make_pmos(self.tech, self.wp, dvt=corner.dvt_inter)
        i_n = self._effective_current(nmos, vdd, vbody_n)
        i_p = self._effective_current(pmos, vdd, 0.0)
        t_fall = self.c_load * (vdd / 2.0) / i_n
        t_rise = self.c_load * (vdd / 2.0) / i_p
        return self.slew_factor * 0.5 * (t_fall + t_rise)

    def period(
        self, corner: ProcessCorner, vbody_n: float = 0.0,
        vdd: float | None = None,
    ) -> float:
        """Oscillation period [s] at the given corner and body bias."""
        return 2.0 * self.n_stages * self.stage_delay(corner, vbody_n, vdd)

    def frequency(
        self, corner: ProcessCorner, vbody_n: float = 0.0,
        vdd: float | None = None,
    ) -> float:
        """Oscillation frequency [Hz]."""
        return 1.0 / self.period(corner, vbody_n, vdd)


class DelayMonitor:
    """Bins a die from its replica ring-oscillator period.

    Slow ring (long period) -> HIGH_VT -> FBB; fast ring -> LOW_VT ->
    RBB.  References are calibrated at the same corner boundaries as
    the leakage monitor, so the two sensors implement the same policy
    through different observables.
    """

    def __init__(
        self,
        oscillator: RingOscillator,
        period_fast: float,
        period_slow: float,
    ) -> None:
        if period_fast >= period_slow:
            raise ValueError(
                "period_fast must be below period_slow "
                f"({period_fast} >= {period_slow})"
            )
        self.oscillator = oscillator
        self.period_fast = period_fast
        self.period_slow = period_slow

    @classmethod
    def calibrate(
        cls,
        tech: TechnologyParameters,
        bin_boundary: float | tuple[float, float] = (0.035, 0.055),
        oscillator: RingOscillator | None = None,
    ) -> "DelayMonitor":
        """Place the period references at the corner boundaries.

        ``bin_boundary`` may be a half-width or a ``(low, high)`` pair;
        the default matches the leakage monitor's asymmetric boundaries
        (RBB from -35 mV, FBB only from +55 mV) so the two sensors
        implement the same repair policy.
        """
        oscillator = (
            oscillator if oscillator is not None else RingOscillator(tech)
        )
        if isinstance(bin_boundary, (int, float)):
            low, high = float(bin_boundary), float(bin_boundary)
        else:
            low, high = bin_boundary
        if low <= 0 or high <= 0:
            raise ValueError("bin boundaries must be positive half-widths")
        return cls(
            oscillator,
            period_fast=oscillator.period(ProcessCorner(-low)),
            period_slow=oscillator.period(ProcessCorner(+high)),
        )

    def classify_period(self, period: float) -> CornerBin:
        """Bin a die from a measured ring period [s]."""
        if period < self.period_fast:
            return CornerBin.LOW_VT
        if period > self.period_slow:
            return CornerBin.HIGH_VT
        return CornerBin.NOMINAL

    def classify(self, corner: ProcessCorner) -> CornerBin:
        """Measure the replica at ``corner`` and bin the die."""
        return self.classify_period(self.oscillator.period(corner))


class CombinedMonitor:
    """Leakage + delay fusion (the companion work's robust scheme).

    Both sensors vote; agreement wins outright.  On disagreement the
    die is left at ZBB (NOMINAL): applying a bias on conflicting
    evidence risks making the die worse, and disagreement typically
    means an environmental disturbance (e.g. temperature) rather than a
    true corner shift — leakage is exponential in temperature while
    delay barely moves, so a hot nominal die reads "leaky but not
    fast", which this policy correctly refuses to RBB.
    """

    def __init__(
        self, leakage_monitor: LeakageMonitor, delay_monitor: DelayMonitor
    ) -> None:
        self.leakage_monitor = leakage_monitor
        self.delay_monitor = delay_monitor

    def classify(
        self, measured_leakage: float, measured_period: float
    ) -> CornerBin:
        """Fuse one leakage and one period measurement into a bin."""
        by_leakage = self.leakage_monitor.classify(measured_leakage)
        by_delay = self.delay_monitor.classify_period(measured_period)
        if by_leakage is by_delay:
            return by_leakage
        return CornerBin.NOMINAL
