"""March memory-test algorithms for the BIST engine (paper Fig. 7).

A March test is a sequence of *March elements*; each element visits
every address in a fixed order (ascending, descending, or either) and
performs its read/write operations at each address before moving on.
The classic notation ``{UP(r0,w1)}`` reads "ascending through all
addresses: read expecting 0, then write 1".

:class:`MarchTest.run` drives a
:class:`~repro.sram.array.FunctionalMemoryArray` row by row in the
element's address order, tracking the value a fault-free cell would
hold and recording every observed mismatch.  An optional standby dwell
between elements (:meth:`MarchTest.run_with_retention`) turns any March
test into a data-retention test — the mode the self-adaptive source-bias
calibration uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.sram.array import FunctionalMemoryArray

#: Address orders a March element may specify.
UP, DOWN, EITHER = "up", "down", "either"


@dataclass(frozen=True)
class MarchElement:
    """One March element: an address order plus a list of operations.

    Attributes:
        direction: ``"up"``, ``"down"`` or ``"either"``.
        operations: tuple of (op, bit) pairs, op in {"r", "w"} — e.g.
            ``(("r", 0), ("w", 1))`` is the classic ``(r0, w1)``.
    """

    direction: str
    operations: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if self.direction not in (UP, DOWN, EITHER):
            raise ValueError(f"bad direction {self.direction!r}")
        if not self.operations:
            raise ValueError("a March element needs at least one operation")
        for op, bit in self.operations:
            if op not in ("r", "w") or bit not in (0, 1):
                raise ValueError(f"bad operation {(op, bit)!r}")

    def row_order(self, rows: int) -> Iterable[int]:
        """Row visit order for this element."""
        if self.direction == DOWN:
            return range(rows - 1, -1, -1)
        return range(rows)

    def __str__(self) -> str:
        arrow = {UP: "UP", DOWN: "DOWN", EITHER: "ANY"}[self.direction]
        ops = ",".join(f"{op}{bit}" for op, bit in self.operations)
        return f"{arrow}({ops})"


@dataclass(frozen=True)
class MarchTest:
    """A named sequence of March elements."""

    name: str
    elements: tuple[MarchElement, ...]

    @property
    def operation_count(self) -> int:
        """Operations per cell (the usual March complexity metric)."""
        return sum(len(e.operations) for e in self.elements)

    def run(self, array: FunctionalMemoryArray) -> np.ndarray:
        """Execute the test; return the boolean mismatch map (rows x cols).

        The expected-value tracker follows the *specified* writes (what a
        good cell would hold); every read compares the observed word
        against it.
        """
        rows, cols = array.shape
        expected = np.zeros((rows, cols), dtype=bool)
        fails = np.zeros((rows, cols), dtype=bool)
        for element in self.elements:
            for row in element.row_order(rows):
                for op, bit in element.operations:
                    if op == "w":
                        array.write_row(row, bool(bit))
                        expected[row] = bool(bit)
                    else:
                        observed = array.read_row(row)
                        fails[row] |= observed != expected[row]
        return fails

    def run_with_retention(
        self, array: FunctionalMemoryArray, vsb: float
    ) -> np.ndarray:
        """Retention variant: a standby dwell precedes every read element.

        Both data backgrounds are exercised (the March elements
        themselves alternate 0/1 backgrounds), so cells that lose either
        polarity at source bias ``vsb`` are caught.
        """
        rows, cols = array.shape
        expected = np.zeros((rows, cols), dtype=bool)
        fails = np.zeros((rows, cols), dtype=bool)
        for element in self.elements:
            if any(op == "r" for op, _ in element.operations):
                array.standby_dwell(vsb)
            for row in element.row_order(rows):
                for op, bit in element.operations:
                    if op == "w":
                        array.write_row(row, bool(bit))
                        expected[row] = bool(bit)
                    else:
                        observed = array.read_row(row)
                        fails[row] |= observed != expected[row]
        return fails


def _element(direction: str, *ops: str) -> MarchElement:
    parsed = tuple((op[0], int(op[1])) for op in ops)
    return MarchElement(direction, parsed)


#: MATS+: {ANY(w0); UP(r0,w1); DOWN(r1,w0)} — 5N, detects AFs and SAFs.
MATS_PLUS = MarchTest(
    "MATS+",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1"),
        _element(DOWN, "r1", "w0"),
    ),
)

#: March X: {ANY(w0); UP(r0,w1); DOWN(r1,w0); ANY(r0)} — 6N, adds TFs.
MARCH_X = MarchTest(
    "March X",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1"),
        _element(DOWN, "r1", "w0"),
        _element(EITHER, "r0"),
    ),
)

#: March C-: {ANY(w0); UP(r0,w1); UP(r1,w0); DOWN(r0,w1); DOWN(r1,w0);
#: ANY(r0)} — 10N, detects unlinked CFs as well.
MARCH_CM = MarchTest(
    "March C-",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1"),
        _element(UP, "r1", "w0"),
        _element(DOWN, "r0", "w1"),
        _element(DOWN, "r1", "w0"),
        _element(EITHER, "r0"),
    ),
)

#: March B: {ANY(w0); UP(r0,w1,r1,w0,r0,w1); UP(r1,w0,w1);
#: DOWN(r1,w0,w1,w0); DOWN(r0,w1,w0)} — 17N, adds linked-fault coverage
#: and write-recovery stress (multiple writes per visit).
MARCH_B = MarchTest(
    "March B",
    (
        _element(EITHER, "w0"),
        _element(UP, "r0", "w1", "r1", "w0", "r0", "w1"),
        _element(UP, "r1", "w0", "w1"),
        _element(DOWN, "r1", "w0", "w1", "w0"),
        _element(DOWN, "r0", "w1", "w0"),
    ),
)
