"""Self-adaptive source biasing via BIST (paper Section IV, Figs. 7-10).

The calibration hardware of the paper's Fig. 7, modelled component by
component:

* :class:`SourceBiasDAC` — a counter-driven D/A converter generating the
  source-line voltage from a digital code;
* :class:`RegisterBank` — one sticky bit per column recording whether
  any row of that column ever failed, plus the faulty-column counter;
* :class:`BISTController` — runs a March test (with standby dwells) over
  the functional array at each counter value, updates the register bank,
  and stops when the faulty columns exceed the redundant columns.

:class:`SelfAdaptiveSourceBias` wraps the calibration loop: the counter
ramps VSB upward; the last code whose cumulative faulty-column count is
still repairable becomes VSB(adaptive).  Dies at leaky corners stop
early (their retention gives out sooner) — exactly the per-die
adaptation the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.march import MARCH_X, MarchTest
from repro.sram.array import FunctionalMemoryArray


@dataclass(frozen=True)
class SourceBiasDAC:
    """Counter-driven source-bias generator.

    Attributes:
        bits: counter/DAC resolution.
        full_scale: VSB at the all-ones code [V].
    """

    bits: int = 7
    full_scale: float = 0.635

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if self.full_scale <= 0:
            raise ValueError(f"full_scale must be positive, got {self.full_scale}")

    @property
    def n_codes(self) -> int:
        """Number of distinct codes."""
        return 1 << self.bits

    @property
    def step(self) -> float:
        """VSB increment per code [V]."""
        return self.full_scale / (self.n_codes - 1)

    def voltage(self, code: int) -> float:
        """VSB [V] for a counter value."""
        if not 0 <= code < self.n_codes:
            raise ValueError(f"code {code} out of range for {self.bits} bits")
        return code * self.step

    def code_for(self, voltage: float) -> int:
        """Nearest code not exceeding ``voltage`` (clamped)."""
        code = int(np.floor(voltage / self.step + 1e-12))
        return int(np.clip(code, 0, self.n_codes - 1))


class RegisterBank:
    """The 1 x NC faulty-column register bank plus its counter.

    A register bit sets (and stays set) when a fault is detected in any
    row of its column; the counter reports how many registers are set.
    """

    def __init__(self, n_columns: int) -> None:
        if n_columns <= 0:
            raise ValueError(f"n_columns must be positive, got {n_columns}")
        self.bits = np.zeros(n_columns, dtype=bool)

    def record(self, fail_map: np.ndarray) -> None:
        """Fold a (rows x cols) mismatch map into the column registers."""
        if fail_map.shape[1] != self.bits.size:
            raise ValueError(
                f"fail map has {fail_map.shape[1]} columns, "
                f"bank has {self.bits.size}"
            )
        self.bits |= fail_map.any(axis=0)

    @property
    def faulty_columns(self) -> int:
        """The counter value: number of set registers."""
        return int(np.count_nonzero(self.bits))

    def reset(self) -> None:
        """Clear all registers."""
        self.bits[:] = False


@dataclass
class BISTController:
    """Runs the March/retention test and maintains the register bank.

    Args:
        march: the March algorithm to use (March X by default — its
            paired backgrounds exercise both data polarities around
            every dwell).
    """

    march: MarchTest = field(default_factory=lambda: MARCH_X)

    def test_at(
        self, array: FunctionalMemoryArray, vsb: float, bank: RegisterBank
    ) -> int:
        """Run one calibration step at source bias ``vsb``.

        Returns the updated faulty-column count after folding this
        step's failures into the bank.
        """
        fail_map = self.march.run_with_retention(array, vsb)
        bank.record(fail_map)
        return bank.faulty_columns


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one die's self-adaptive calibration.

    Attributes:
        vsb_adaptive: the selected source bias [V].
        code: the DAC code of the selected bias.
        faulty_columns: cumulative faulty columns at the selected bias.
        stopped_at_code: the code that first exceeded the redundancy
            (== ``code + 1``), or ``None`` if the ramp reached full
            scale without exhausting redundancy.
        trace: (vsb, faulty_columns) per visited code, for diagnostics.
    """

    vsb_adaptive: float
    code: int
    faulty_columns: int
    stopped_at_code: int | None
    trace: tuple[tuple[float, int], ...]


class SelfAdaptiveSourceBias:
    """The full self-calibration loop of the paper's Fig. 7.

    Args:
        dac: the counter/DAC model.
        controller: the BIST controller.
        margin_codes: back off this many codes from the first failing
            code (a guard band; the paper uses the last passing value,
            i.e. 0).
    """

    def __init__(
        self,
        dac: SourceBiasDAC | None = None,
        controller: BISTController | None = None,
        margin_codes: int = 0,
    ) -> None:
        self.dac = dac if dac is not None else SourceBiasDAC()
        self.controller = controller if controller is not None else BISTController()
        if margin_codes < 0:
            raise ValueError(f"margin_codes must be >= 0, got {margin_codes}")
        self.margin_codes = margin_codes

    def calibrate(self, array: FunctionalMemoryArray) -> CalibrationResult:
        """Find VSB(adaptive) for one die.

        The counter ramps from code 0; at each code the BIST runs the
        retention March test and accumulates faulty columns.  The ramp
        stops when the faulty columns exceed the available redundant
        columns; the previous code (minus the guard band) is selected.
        """
        redundancy = array.organization.redundant_columns
        bank = RegisterBank(array.total_columns)
        trace: list[tuple[float, int]] = []
        last_good = 0
        stopped_at = None
        for code in range(self.dac.n_codes):
            vsb = self.dac.voltage(code)
            faulty = self.controller.test_at(array, vsb, bank)
            trace.append((vsb, faulty))
            if faulty > redundancy:
                stopped_at = code
                break
            last_good = code
        selected = max(0, last_good - self.margin_codes)
        return CalibrationResult(
            vsb_adaptive=self.dac.voltage(selected),
            code=selected,
            faulty_columns=trace[selected][1] if selected < len(trace) else 0,
            stopped_at_code=stopped_at,
            trace=tuple(trace),
        )

    def calibrate_bisect(self, array: FunctionalMemoryArray) -> CalibrationResult:
        """Binary-search variant of :meth:`calibrate`.

        Retention-fault sets grow monotonically with VSB (a cell that
        loses data at some bias also loses it at any larger bias), so
        the cumulative faulty-column count of the linear ramp equals the
        count at the highest visited code — and the largest repairable
        code can be found with O(log n_codes) BIST runs instead of a
        full ramp.  The equivalence with :meth:`calibrate` is asserted
        in the test suite; use this path for large statistical
        experiments.
        """
        redundancy = array.organization.redundant_columns

        def faulty_at(code: int) -> int:
            bank = RegisterBank(array.total_columns)
            self.controller.test_at(array, self.dac.voltage(code), bank)
            return bank.faulty_columns

        lo = 0
        lo_faulty = faulty_at(0)
        if lo_faulty > redundancy:
            # Unrepairable even with no source bias; report code 0.
            return CalibrationResult(
                vsb_adaptive=0.0,
                code=0,
                faulty_columns=lo_faulty,
                stopped_at_code=0,
                trace=((0.0, lo_faulty),),
            )
        hi = self.dac.n_codes - 1
        hi_faulty = faulty_at(hi)
        trace = [(0.0, lo_faulty)]
        if hi_faulty <= redundancy:
            lo, lo_faulty, stopped_at = hi, hi_faulty, None
        else:
            while hi - lo > 1:
                mid = (lo + hi) // 2
                mid_faulty = faulty_at(mid)
                trace.append((self.dac.voltage(mid), mid_faulty))
                if mid_faulty > redundancy:
                    hi = mid
                else:
                    lo, lo_faulty = mid, mid_faulty
            stopped_at = hi
        selected = max(0, lo - self.margin_codes)
        faulty = lo_faulty if selected == lo else faulty_at(selected)
        trace.append((self.dac.voltage(selected), faulty))
        return CalibrationResult(
            vsb_adaptive=self.dac.voltage(selected),
            code=selected,
            faulty_columns=faulty,
            stopped_at_code=stopped_at,
            trace=tuple(trace),
        )
