"""On-chip leakage monitor and corner-binning comparators (paper Fig. 4a).

The monitor sits in the supply path of the array during a calibration
cycle (bypassed in normal operation to avoid the IR drop) and produces a
voltage proportional to the array's total leakage.  Two comparators test
the output against references VREF1 > VREF2:

* ``Vout > VREF1``           -> the die leaks like a low-Vt corner -> RBB
* ``VREF2 <= Vout <= VREF1`` -> nominal                            -> ZBB
* ``Vout < VREF2``           -> high-Vt corner                     -> FBB

Why this works even under heavy intra-die RDF is the paper's Fig. 3 /
central-limit argument: the *array* leakage distribution at each
inter-die corner has relative sigma ~ 1/sqrt(N_cells), so the corner
populations separate cleanly for any realistic array size.
:meth:`LeakageMonitor.calibrate_references` places the references at the
array leakage of the configured corner boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters


class CornerBin(Enum):
    """The three-way die classification of the self-repairing scheme."""

    LOW_VT = "low_vt"
    NOMINAL = "nominal"
    HIGH_VT = "high_vt"


@dataclass(frozen=True)
class MonitorReadout:
    """One monitor measurement.

    Attributes:
        leakage: the measured array leakage [A].
        vout: monitor output voltage [V].
        bin: the comparator decision.
    """

    leakage: float
    vout: float
    bin: CornerBin


@dataclass(frozen=True)
class Comparator:
    """An ideal comparator with a configurable input-referred offset."""

    vref: float
    offset: float = 0.0

    def compare(self, vin: float) -> bool:
        """True when ``vin`` exceeds the (offset-corrected) reference."""
        return vin > self.vref + self.offset


class LeakageMonitor:
    """Linear transimpedance leakage monitor with corner binning.

    Args:
        r_sense: transimpedance [V/A] of the monitor (Vout = R * I).
        vref_low_vt: output level above which the die bins LOW_VT [V].
        vref_high_vt: output level below which the die bins HIGH_VT [V].
        comparator_offset: input-referred offset [V] applied to both
            comparators (sensitivity-analysis knob).
    """

    def __init__(
        self,
        r_sense: float,
        vref_low_vt: float,
        vref_high_vt: float,
        comparator_offset: float = 0.0,
    ) -> None:
        if r_sense <= 0:
            raise ValueError(f"r_sense must be positive, got {r_sense}")
        if vref_low_vt <= vref_high_vt:
            raise ValueError(
                "vref_low_vt must exceed vref_high_vt "
                f"({vref_low_vt} <= {vref_high_vt})"
            )
        self.r_sense = r_sense
        self.upper = Comparator(vref_low_vt, comparator_offset)
        self.lower = Comparator(vref_high_vt, comparator_offset)

    def output_voltage(self, leakage: float) -> float:
        """Monitor output [V] for a measured ``leakage`` [A]."""
        return self.r_sense * leakage

    def classify(self, leakage: float) -> CornerBin:
        """Bin a die from its measured array leakage."""
        vout = self.output_voltage(leakage)
        if self.upper.compare(vout):
            return CornerBin.LOW_VT
        if not self.lower.compare(vout):
            return CornerBin.HIGH_VT
        return CornerBin.NOMINAL

    def read(self, leakage: float) -> MonitorReadout:
        """Measure ``leakage`` and return the full readout."""
        return MonitorReadout(
            leakage=leakage,
            vout=self.output_voltage(leakage),
            bin=self.classify(leakage),
        )

    @classmethod
    def calibrate_references(
        cls,
        tech: TechnologyParameters,
        geometry: CellGeometry,
        n_cells: int,
        bin_boundary: float | tuple[float, float] = (0.035, 0.055),
        r_sense: float = 1e4,
        n_samples: int = 20_000,
        seed: int = 11,
        comparator_offset: float = 0.0,
    ) -> "LeakageMonitor":
        """Build a monitor whose references sit at the corner boundaries.

        The reference for each comparator is the *mean* array leakage
        of a die at the bin-boundary corner.  ``bin_boundary`` may be a
        single half-width or a ``(low, high)`` pair; the default is
        asymmetric — RBB from -35 mV (where redundancy stops absorbing
        the read bathtub) but FBB only from +55 mV, because the
        NMOS-only forward bias does not pay for itself on mildly slow
        dies (it erodes the read margin before the access gain
        matters).  References come from cell-level Monte Carlo and the
        CLT scaling ``L_MEM = N * mean``.

        Args:
            tech: technology card.
            geometry: cell geometry.
            n_cells: cells in the monitored array.
            bin_boundary: half-width of the nominal corner bin [V].
            r_sense: monitor transimpedance [V/A].
            n_samples: Monte-Carlo cells per boundary estimate.
            seed: RNG seed.
            comparator_offset: comparator offset [V].
        """
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if isinstance(bin_boundary, (int, float)):
            low_boundary = high_boundary = float(bin_boundary)
        else:
            low_boundary, high_boundary = bin_boundary
        if low_boundary <= 0 or high_boundary <= 0:
            raise ValueError("bin boundaries must be positive half-widths")
        refs = {}
        for boundary, sign, name in (
            (low_boundary, -1.0, "low"), (high_boundary, +1.0, "high")
        ):
            rng = np.random.default_rng((seed, int(sign > 0)))
            dvt = sample_cell_dvt(tech, geometry, rng, n_samples)
            cell = SixTCell(
                tech, geometry, ProcessCorner(sign * boundary), dvt
            )
            mean_cell = float(np.mean(cell_leakage(cell).total))
            refs[name] = r_sense * n_cells * mean_cell
        return cls(
            r_sense=r_sense,
            vref_low_vt=refs["low"],
            vref_high_vt=refs["high"],
            comparator_offset=comparator_offset,
        )
