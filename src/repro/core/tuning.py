"""Combined post-silicon tuning: self-repair then self-adaptive biasing.

The paper's conclusion argues that *both* knobs belong in a sub-90 nm
memory: adaptive body bias fixes the parametric-failure and leakage
consequences of the die's inter-die corner, and adaptive source biasing
then squeezes the standby power of whatever die the fab delivered.
:class:`PostSiliconTuner` runs them in that order on one die:

1. measure the array leakage, bin the corner, apply RBB/ZBB/FBB;
2. with the body bias in place, run the BIST source-bias calibration
   (the retention physics sees the applied body bias — RBB'd dies leak
   less and can often afford *more* source bias).

This module is an extension beyond the paper's figures; the combined
flow is exercised in the test suite and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.body_bias import RepairOutcome, SelfRepairingSRAM
from repro.core.source_bias import CalibrationResult, SelfAdaptiveSourceBias
from repro.sram.array import FunctionalMemoryArray
from repro.sram.metrics import OperatingConditions
from repro.technology.corners import ProcessCorner


@dataclass(frozen=True)
class TuningOutcome:
    """The result of fully tuning one die.

    Attributes:
        repair: the body-bias stage's outcome.
        calibration: the source-bias stage's outcome.
        standby_conditions: the final standby operating point (body bias
            from stage 1, source bias from stage 2).
    """

    repair: RepairOutcome
    calibration: CalibrationResult
    standby_conditions: OperatingConditions

    @property
    def vbody(self) -> float:
        """Applied NMOS body bias [V]."""
        return self.repair.vbody

    @property
    def vsb(self) -> float:
        """Applied standby source bias [V]."""
        return self.calibration.vsb_adaptive


class PostSiliconTuner:
    """Runs self-repair and self-adaptive source biasing on one die.

    Args:
        repair_pipeline: the monitor/body-bias stage.
        source_bias_loop: the BIST calibration stage.
        asb_conditions: the source-biasing standby conditions (supply
            rail) the calibration runs at.
    """

    def __init__(
        self,
        repair_pipeline: SelfRepairingSRAM,
        source_bias_loop: SelfAdaptiveSourceBias | None = None,
        asb_conditions: OperatingConditions | None = None,
    ) -> None:
        self.repair_pipeline = repair_pipeline
        self.source_bias_loop = (
            source_bias_loop if source_bias_loop is not None
            else SelfAdaptiveSourceBias()
        )
        self.asb_conditions = (
            asb_conditions
            if asb_conditions is not None
            else OperatingConditions.source_biased_standby(
                repair_pipeline.tech
            )
        )

    def tune(
        self,
        corner: ProcessCorner,
        rng: np.random.Generator | None = None,
        fast: bool = True,
    ) -> TuningOutcome:
        """Tune one die sampled at ``corner``.

        The body bias chosen in stage 1 is applied to the functional
        array used by stage 2, so the source-bias calibration sees the
        *repaired* retention physics.

        Args:
            corner: the die's inter-die shift.
            rng: randomness for the die's RDF sample (and the noisy
                leakage measurement); seeded default if omitted.
            fast: use the binary-search BIST ramp (identical result,
                O(log) BIST runs).
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        repair = self.repair_pipeline.repair(corner, rng)

        conditions = OperatingConditions(
            vdd=self.asb_conditions.vdd,
            vdd_standby=self.asb_conditions.vdd_standby,
            vsb=0.0,
            vbody_n=repair.vbody,
        )
        array = FunctionalMemoryArray(
            self.repair_pipeline.tech,
            self.repair_pipeline.organization,
            self.repair_pipeline.analyzer.criteria,
            geometry=self.repair_pipeline.geometry,
            corner=corner,
            conditions=conditions,
            rng=rng,
        )
        calibrate = (
            self.source_bias_loop.calibrate_bisect
            if fast
            else self.source_bias_loop.calibrate
        )
        calibration = calibrate(array)
        final = OperatingConditions(
            vdd=conditions.vdd,
            vdd_standby=conditions.vdd_standby,
            vsb=calibration.vsb_adaptive,
            vbody_n=repair.vbody,
        )
        return TuningOutcome(
            repair=repair, calibration=calibration, standby_conditions=final
        )
