"""Interpolated failure-probability tables.

The yield-vs-sigma experiments (paper Figs. 2c, 4b, 5c, 10) need the
cell failure probability at hundreds of (corner, bias) points.  A single
importance-sampled estimate costs seconds; evaluating them on demand
would make the benchmark harness take hours.  A
:class:`FailureProbabilityTable` evaluates the analyzer once on a corner
grid per bias point and interpolates ``log10(p)`` with a monotone PCHIP
spline — failure probabilities vary smoothly (and near-exponentially)
with the inter-die shift, so a ~20-point grid reproduces direct
estimates to well within their Monte-Carlo error (verified in the test
suite).
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.failures.analysis import MECHANISMS, CellFailureAnalyzer
from repro.observability import diagnostics
from repro.observability.diagnostics import BatchDiagnostics
from repro.observability.log import get_logger
from repro.observability.metrics import incr, observe
from repro.observability.tracing import trace
from repro.sram.metrics import OperatingConditions
from repro.technology.corners import ProcessCorner

if TYPE_CHECKING:  # pragma: no cover - hint-only imports
    from repro.checkpoint import CheckpointStore
    from repro.parallel.cache import ResultCache
    from repro.parallel.executor import ParallelExecutor

_log = get_logger("core.tables")

#: Probability floor to keep log-space interpolation finite.
_P_FLOOR = 1e-12


class FailureProbabilityTable:
    """Cell failure probability vs inter-die corner, per mechanism.

    Args:
        analyzer: the failure analyzer supplying point estimates.
        conditions: bias conditions the table is built at.
        corner_min / corner_max: grid span of inter-die shifts [V].
        n_grid: grid points (grid is uniform).
        executor: fan-out engine for the grid build; None builds
            serially.  Results are bit-identical at any worker count
            (each grid point derives its own RNG stream from its key).
        cache: disk-backed result cache; when set, the build first
            looks up the full (technology, criteria, sampling, grid)
            fingerprint and only runs Monte Carlo on a miss.
        checkpoint: checkpoint store; when set, completed grid cells
            are flushed periodically during the build and a re-run with
            the *same* fingerprint resumes from the last flush.  Resume
            is exact: each cell derives its RNG stream from its own
            (corner, bias) key, so recomputing only the missing cells
            is bit-identical to a fresh full build.
    """

    def __init__(
        self,
        analyzer: CellFailureAnalyzer,
        conditions: OperatingConditions | None = None,
        corner_min: float = -0.15,
        corner_max: float = 0.15,
        n_grid: int = 21,
        executor: "ParallelExecutor | None" = None,
        cache: "ResultCache | None" = None,
        checkpoint: "CheckpointStore | None" = None,
    ) -> None:
        if n_grid < 4:
            raise ValueError("n_grid must be at least 4 for PCHIP")
        if corner_min >= corner_max:
            raise ValueError("corner_min must be below corner_max")
        self.analyzer = analyzer
        self.conditions = (
            conditions if conditions is not None else analyzer.conditions
        )
        self.grid = np.linspace(corner_min, corner_max, n_grid)
        self._executor = executor
        self._cache = cache
        self._checkpoint = checkpoint
        self._splines: dict[str, PchipInterpolator] = {}
        #: Estimator health of the grid build (worst-cell CI half-width,
        #: minimum ESS, unconverged-cell count over the union-mechanism
        #: estimates); ``None`` only when reloaded from a cache entry
        #: written before diagnostics existed.
        self.diagnostics: BatchDiagnostics | None = None
        self._build()

    def _cache_key(self) -> dict:
        """Everything the grid estimates depend on, as a JSON payload."""
        analyzer = self.analyzer
        return {
            "technology": dataclasses.asdict(analyzer.tech),
            "criteria": dataclasses.asdict(analyzer.criteria),
            "geometry": dataclasses.asdict(analyzer.geometry),
            "conditions": dataclasses.asdict(self.conditions),
            "n_samples": analyzer.n_samples,
            "scale": analyzer.scale,
            "sampler": analyzer.sampler,
            "seed": analyzer.seed,
            "grid": [float(x) for x in self.grid],
        }

    @trace("table.build")
    def _build(self) -> None:
        start = time.perf_counter()
        key = self._cache_key() if self._cache is not None else None
        if key is not None:
            stored = self._cache.get("failure-table", key)
            if stored is not None:
                for name, values in stored["log10_probability"].items():
                    self._splines[name] = PchipInterpolator(
                        self.grid, np.array(values, dtype=float)
                    )
                if stored.get("diagnostics") is not None:
                    self.diagnostics = BatchDiagnostics.from_dict(
                        stored["diagnostics"]
                    )
                    # A warm run still reports the health persisted at
                    # build time, so its verdict matches the cold run.
                    diagnostics.record_batch(
                        f"table[vbody={self.conditions.vbody_n:+.3f}]",
                        self.diagnostics,
                    )
                _log.info("table.build.cached", grid=self.grid.size)
                return
        _log.info(
            "table.build.start",
            grid=self.grid.size,
            n_samples=self.analyzer.n_samples,
            vbody=self.conditions.vbody_n,
        )
        results = self._compute_grid()
        log_p = {name: np.empty(self.grid.size) for name in MECHANISMS + ("any",)}
        for i, probs in enumerate(results):
            for name in MECHANISMS + ("any",):
                p = max(probs[name].estimate, _P_FLOOR)
                log_p[name][i] = np.log10(min(p, 1.0))
        for name, values in log_p.items():
            self._splines[name] = PchipInterpolator(self.grid, values)
        self._record_diagnostics(results)
        _log.info(
            "table.build.done",
            grid=self.grid.size,
            seconds=round(time.perf_counter() - start, 3),
        )
        if key is not None:
            self._cache.put(
                "failure-table",
                key,
                {
                    "log10_probability": {
                        name: [float(v) for v in values]
                        for name, values in log_p.items()
                    },
                    "diagnostics": self.diagnostics.as_dict(),
                },
            )

    def _compute_grid(self) -> list:
        """Per-grid-cell failure estimates, checkpointed when enabled.

        Without a checkpoint store this is one batch call.  With one,
        missing cells are computed in flush-sized slices keyed by the
        same fingerprint payload the cache uses, so a killed build
        resumes — and because every cell seeds its own RNG stream from
        its (corner, bias) key, the resumed table is bit-identical.
        """

        def compute(indices) -> list:
            return self.analyzer.failure_probabilities_batch(
                [ProcessCorner(float(self.grid[i])) for i in indices],
                [self.conditions] * len(indices),
                executor=self._executor,
            )

        if self._checkpoint is None:
            return compute(range(self.grid.size))
        from repro.failures.analysis import FailureProbabilities
        from repro.parallel.cache import fingerprint
        from repro.stats.montecarlo import MonteCarloResult

        def encode(probs) -> dict:
            return {
                name: dataclasses.asdict(probs[name])
                for name in MECHANISMS + ("any",)
            }

        def decode(raw) -> FailureProbabilities:
            return FailureProbabilities(
                **{
                    name: MonteCarloResult(**raw[name])
                    for name in MECHANISMS + ("any",)
                }
            )

        return self._checkpoint.resumable_map(
            "failure-table",
            fingerprint(self._cache_key()),
            self.grid.size,
            compute,
            encode,
            decode,
        )

    def _record_diagnostics(self, results) -> None:
        """Summarise and report the grid estimates' statistical health.

        The per-cell headline number is the union (``any``) estimate,
        so the table-level summary — worst-cell CI half-width, minimum
        ESS, ``unconverged_cells`` — is taken over it; all mechanism
        estimates additionally feed the per-scope recorder so a run
        report can localise which mechanism is starved.
        """
        self.diagnostics = diagnostics.summarize(
            [probs["any"] for probs in results]
        )
        scope = f"table[vbody={self.conditions.vbody_n:+.3f}]"
        for probs in results:
            for name in MECHANISMS + ("any",):
                diagnostics.record(scope, probs[name])
        incr("table.unconverged_cells", self.diagnostics.unconverged)
        if self.diagnostics.worst_ci_halfwidth is not None:
            observe(
                "table.worst_ci_halfwidth",
                self.diagnostics.worst_ci_halfwidth,
            )
        if self.diagnostics.unconverged:
            _log.warning(
                "table.build.unconverged",
                cells=self.diagnostics.unconverged,
                grid=self.grid.size,
                min_ess=round(self.diagnostics.min_ess, 1),
            )

    def probability(
        self, corner: ProcessCorner | float, mechanism: str = "any"
    ) -> float:
        """Interpolated failure probability at ``corner``.

        Corners outside the grid clamp to the nearest grid edge (the
        probability there is already ~1 or ~floor).
        """
        if mechanism not in self._splines:
            raise KeyError(f"unknown mechanism {mechanism!r}")
        dvt = corner.dvt_inter if isinstance(corner, ProcessCorner) else float(corner)
        dvt = float(np.clip(dvt, self.grid[0], self.grid[-1]))
        p = 10.0 ** float(self._splines[mechanism](dvt))
        return float(np.clip(p, 0.0, 1.0))

    def series(
        self, corners: np.ndarray, mechanism: str = "any"
    ) -> np.ndarray:
        """Vectorised :meth:`probability` over an array of shifts [V]."""
        dvt = np.clip(np.asarray(corners, dtype=float), self.grid[0], self.grid[-1])
        p = 10.0 ** self._splines[mechanism](dvt)
        return np.clip(p, 0.0, 1.0)
