"""Per-span function profiling: a cProfile hook on the trace tree.

The trace tree says *which stage* a run spends its life in; this module
answers the next question — *which function inside the stage* — without
any ad-hoc timing code.  ``profile(name)`` behaves exactly like
``trace(name)`` (it opens the same span, so the tree shape never
changes), and when profiling has been armed with
:func:`enable_profiling` it additionally runs the span body under
:class:`cProfile.Profile`, accumulating one profile per span name::

    from repro import observability

    observability.enable()
    observability.enable_profiling()
    with observability.profile("table.build"):
        ...                                  # profiled

    observability.write_profile("table.pstats")   # pstats.Stats-loadable

Cost model, in line with the rest of the package:

* telemetry disabled — one flag check, no span, no profiler (the
  disabled-path overhead guard in ``tests/test_observability.py``
  covers ``profile`` too);
* telemetry enabled, profiling not armed — identical to ``trace``;
* profiling armed — the span body runs under the profiler (expect the
  usual cProfile ~1.3–2x slowdown; never arm it for timing runs).

CPython allows a single active profiler per thread, so nested
``profile`` spans degrade gracefully: the outermost armed span keeps
the profiler and inner ``profile`` spans fall back to plain tracing
(their frames are still captured, attributed to the outer span's
profile).

Profiles do not cross the :class:`~repro.parallel.executor.
ParallelExecutor` process boundary — only the parent process's frames
are captured.  Profile a ``workers=1`` run to see inside the kernels.
"""

from __future__ import annotations

import cProfile
import functools
import pstats
import time

from repro.observability import _state, tracing

#: Accumulated profiles, one per span name (parent process only).
_profiles: dict[str, cProfile.Profile] = {}

#: Armed by :func:`enable_profiling`; checked on every span entry.
_armed = False

#: True while a profiler is running (cProfile cannot nest).
_running = False


def enable_profiling() -> None:
    """Arm the profiler: subsequent ``profile(name)`` spans collect."""
    global _armed
    _armed = True


def disable_profiling() -> None:
    """Disarm (accumulated profiles are kept until :func:`reset`)."""
    global _armed
    _armed = False


def profiling_enabled() -> bool:
    """True while ``profile(name)`` spans run under cProfile."""
    return _armed


def reset_profiles() -> None:
    """Drop every accumulated profile."""
    global _running
    _profiles.clear()
    _running = False


def profile_names() -> list[str]:
    """Span names that have accumulated profile data, sorted."""
    return sorted(_profiles)


def write_profile(path: str, name: str | None = None) -> list[str]:
    """Dump accumulated profiles to ``path`` in ``pstats`` format.

    Args:
        path: output file; load it back with ``pstats.Stats(path)`` or
            browse with ``python -m pstats path``.
        name: restrict to one span name (default: combine all).

    Returns the span names included.  Raises :class:`ValueError` when
    nothing has been collected (a silent empty file would read as
    "profiled, found nothing").
    """
    if name is not None:
        selected = {name: _profiles[name]} if name in _profiles else {}
    else:
        selected = dict(_profiles)
    if not selected:
        raise ValueError(
            "no profile data collected"
            + (f" for span {name!r}" if name else "")
            + " — call enable_profiling() before the profiled spans run"
        )
    names = sorted(selected)
    profiles = [selected[n] for n in names]
    for prof in profiles:
        prof.create_stats()
    stats = pstats.Stats(profiles[0])
    for prof in profiles[1:]:
        stats.add(prof)
    stats.dump_stats(path)
    return names


class profile:
    """``trace(name)`` that additionally profiles the span body.

    Context manager and decorator, mirroring
    :class:`repro.observability.tracing.trace`.
    """

    __slots__ = ("name", "_active", "_start", "_prof")

    def __init__(self, name: str) -> None:
        self.name = name
        self._active = False
        self._prof = None

    def _profiler(self) -> cProfile.Profile | None:
        """The profiler to run this span under, if any (see module doc)."""
        global _running
        if not _armed or _running:
            return None
        prof = _profiles.get(self.name)
        if prof is None:
            prof = _profiles[self.name] = cProfile.Profile()
        _running = True
        return prof

    def __call__(self, fn):
        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            with profile(name):
                return fn(*args, **kwargs)

        return wrapper

    def __enter__(self) -> "profile":
        self._active = _state.enabled
        if self._active:
            tracing.tracer.push(self.name)
            self._prof = self._profiler()
            self._start = time.perf_counter()
            if self._prof is not None:
                self._prof.enable()
        return self

    def __exit__(self, *exc) -> bool:
        global _running
        if self._active:
            if self._prof is not None:
                self._prof.disable()
                self._prof = None
                _running = False
            tracing.tracer.pop(time.perf_counter() - self._start)
            self._active = False
        return False
