"""The process-wide observability on/off switch and the active scope.

Isolated in its own module so that :mod:`repro.observability.metrics`
and :mod:`repro.observability.tracing` can both read it without
importing each other.  The flag is deliberately a bare module global:
the no-op fast path of every instrument is a single attribute load and
truth test, which is what keeps instrumented hot paths free (measured
in ``tests/test_observability.py``) when telemetry is off.

The *run scope* lives here for the same reason: a
:class:`contextvars.ContextVar` holding the active
:class:`~repro.observability.context.RunScope` (or ``None``), read by
the guarded metric/trace/diagnostic helpers (dual-write) and by the
structured-log emitter (run_id stamping).  Keeping the variable in
this leaf module lets every instrument module reach it without
importing :mod:`repro.observability.context` (which imports them).
"""

from __future__ import annotations

import contextvars

#: Collection switch.  False (the default) means every ``incr`` /
#: ``observe`` / ``trace`` call degenerates to a flag check; tier-1
#: tests and the kernel benchmarks run in this mode.
enabled: bool = False

#: The active run scope (a ``RunScope`` instance or ``None``).  Being a
#: context variable, each thread — and each ``contextvars.Context`` —
#: sees its own value, which is what isolates concurrently-running
#: service jobs from each other.
scope_var: contextvars.ContextVar = contextvars.ContextVar(
    "repro_run_scope", default=None
)


def set_enabled(value: bool) -> None:
    """Flip the process-wide collection switch."""
    global enabled
    enabled = bool(value)


def current_scope():
    """The active run scope in this context, or ``None``."""
    return scope_var.get()


def current_run_id() -> str | None:
    """The active scope's run id, or ``None`` outside any scope."""
    scope = scope_var.get()
    return scope.run_id if scope is not None else None
