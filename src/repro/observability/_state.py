"""The process-wide observability on/off switch.

Isolated in its own module so that :mod:`repro.observability.metrics`
and :mod:`repro.observability.tracing` can both read it without
importing each other.  The flag is deliberately a bare module global:
the no-op fast path of every instrument is a single attribute load and
truth test, which is what keeps instrumented hot paths free (measured
in ``tests/test_observability.py``) when telemetry is off.
"""

from __future__ import annotations

#: Collection switch.  False (the default) means every ``incr`` /
#: ``observe`` / ``trace`` call degenerates to a flag check; tier-1
#: tests and the kernel benchmarks run in this mode.
enabled: bool = False


def set_enabled(value: bool) -> None:
    """Flip the process-wide collection switch."""
    global enabled
    enabled = bool(value)
