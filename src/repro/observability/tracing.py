"""Span-style timing that aggregates into a hierarchical trace tree.

``trace(name)`` marks a stage of work, either as a context manager::

    with trace("table.build"):
        ...

or as a decorator::

    @trace("calibrate")
    def calibrate(...): ...

Unlike a flat profiler, repeated entries into the same span *under the
same parent* aggregate — a 17-point grid build shows up as one
``analysis.point`` node with ``calls=17`` and its total wall time, not
17 siblings — so the tree stays readable at any sweep size while still
localising where a run spends its life (sampling vs solving vs
classification; cold table builds vs warm cache loads).

Trees merge across processes: each worker snapshots the subtree its
task produced and the parent grafts it under whatever span was open at
the fan-out call site (see
:meth:`repro.parallel.executor.ParallelExecutor.map`), so a parallel
run's tree reads the same as a serial one, with the per-task counts
and times summed over workers.

When collection is disabled (:mod:`repro.observability._state`),
entering a span is a single flag check — the decorator form calls the
wrapped function directly and the context-manager form skips the clock
entirely.
"""

from __future__ import annotations

import functools
import time

from repro.observability import _state


class SpanNode:
    """One node of the aggregated timing tree."""

    __slots__ = ("name", "calls", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """Get-or-create the child span called ``name``."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def snapshot(self) -> dict:
        """The subtree as a JSON-serialisable dict.

        Shape (the ``trace`` section of the ``--metrics-out`` report)::

            {"name": ..., "calls": ..., "seconds": ..., "children": [...]}
        """
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "children": [
                self.children[name].snapshot()
                for name in sorted(self.children)
            ],
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` of a same-named node into this one."""
        self.calls += snapshot["calls"]
        self.seconds += snapshot["seconds"]
        for child_snap in snapshot["children"]:
            self.child(child_snap["name"]).merge(child_snap)


class Tracer:
    """Owns a trace tree and the currently-open span stack."""

    def __init__(self) -> None:
        self.root = SpanNode("run")
        self._stack: list[SpanNode] = [self.root]

    @property
    def current(self) -> SpanNode:
        """The innermost open span; the root when none is open.

        Falls back to the root even if the stack was somehow emptied
        (e.g. a :meth:`reset` racing an open span's exit), so callers
        like :meth:`merge_at_current` can always graft somewhere
        sensible instead of raising.
        """
        return self._stack[-1] if self._stack else self.root

    def push(self, name: str) -> SpanNode:
        node = self.current.child(name)
        node.calls += 1
        self._stack.append(node)
        return node

    def pop(self, elapsed: float) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("trace stack underflow: pop without push")
        self._stack.pop().seconds += elapsed

    def reset(self) -> None:
        """Drop the tree and any open spans."""
        self.root = SpanNode("run")
        self._stack = [self.root]

    def snapshot(self) -> dict:
        """The whole tree (root node named ``run``)."""
        return self.root.snapshot()

    def merge_at_current(self, snapshot: dict) -> None:
        """Graft another tree's children under the open span.

        ``snapshot`` is a full tree from :meth:`snapshot` (typically a
        worker's); its root is discarded and its children merge into
        whatever span is currently open here, which places remote work
        exactly where the fan-out happened.  Outside any ``trace(...)``
        block the open span is the root, so a snapshot merged from a
        bare call site grafts at the top of the tree — it never raises.
        """
        target = self.current
        for child_snap in snapshot.get("children", ()):
            target.child(child_snap["name"]).merge(child_snap)


#: The process-wide tracer every span writes to.
tracer = Tracer()


class trace:
    """Span marker, usable as a context manager or a decorator."""

    __slots__ = ("name", "_active", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._active = False

    def __call__(self, fn):
        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            tracer.push(name)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                tracer.pop(time.perf_counter() - start)

        return wrapper

    def __enter__(self) -> "trace":
        # The enabled state is latched on entry so a mid-span flip
        # cannot unbalance the span stack.
        self._active = _state.enabled
        if self._active:
            tracer.push(self.name)
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._active:
            tracer.pop(time.perf_counter() - self._start)
            self._active = False
        return False
