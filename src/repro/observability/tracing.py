"""Span-style timing that aggregates into a hierarchical trace tree.

``trace(name)`` marks a stage of work, either as a context manager::

    with trace("table.build"):
        ...

or as a decorator::

    @trace("calibrate")
    def calibrate(...): ...

Unlike a flat profiler, repeated entries into the same span *under the
same parent* aggregate — a 17-point grid build shows up as one
``analysis.point`` node with ``calls=17`` and its total wall time, not
17 siblings — so the tree stays readable at any sweep size while still
localising where a run spends its life (sampling vs solving vs
classification; cold table builds vs warm cache loads).

Trees merge across processes: each worker snapshots the subtree its
task produced and the parent grafts it under whatever span was open at
the fan-out call site (see
:meth:`repro.parallel.executor.ParallelExecutor.map`), so a parallel
run's tree reads the same as a serial one, with the per-task counts
and times summed over workers.

When collection is disabled (:mod:`repro.observability._state`),
entering a span is a single flag check — the decorator form calls the
wrapped function directly and the context-manager form skips the clock
entirely.
"""

from __future__ import annotations

import functools
import random
import time

from repro.observability import _state


class Timeline:
    """Bounded record of individual span occurrences, for flamegraphs.

    The aggregated :class:`SpanNode` tree answers *where did the time
    go*; a timeline answers *when* — each completed span becomes one
    ``(name, start, dur, track)`` event, exportable as Chrome
    trace-event JSON (:func:`repro.observability.export.chrome_trace`)
    for Perfetto / ``chrome://tracing``.

    Memory is bounded the same way :class:`Histogram` reservoirs are:
    a fixed-capacity uniform sample (Vitter's algorithm R) over every
    span seen, with a deterministically seeded replacement stream, so
    a million-span sweep holds the same few hundred KB as a short run
    and two identical runs keep identical reservoirs.  ``seen`` counts
    all spans including the ones the reservoir dropped.

    Timestamps are seconds relative to ``epoch`` (a ``perf_counter``
    reading taken when the timeline was armed).  Worker timelines merge
    via :meth:`merge`, which shifts the incoming events into the
    parent's clock domain and assigns them a fresh track (lane) so the
    trace shows fanned-out work side by side.
    """

    #: Default cap on stored events (~a few hundred KB of tuples).
    DEFAULT_CAPACITY = 8192

    __slots__ = ("capacity", "epoch", "events", "seen", "next_track", "_rng")

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = int(capacity or self.DEFAULT_CAPACITY)
        if self.capacity <= 0:
            raise ValueError(f"timeline capacity must be > 0, got {capacity}")
        self.epoch = time.perf_counter()
        #: Reservoir of ``(name, start, dur, track)`` tuples; ``start``
        #: and ``dur`` in seconds, ``start`` relative to :attr:`epoch`.
        self.events: list[tuple[str, float, float, int]] = []
        self.seen = 0
        #: Next lane to hand out to a merged worker snapshot (0 is the
        #: recording process's own lane).
        self.next_track = 1
        self._rng = random.Random("timeline")

    def record(self, name: str, start: float, dur: float, track: int = 0) -> None:
        """Add one completed span (algorithm-R reservoir insert)."""
        self.seen += 1
        event = (name, start, dur, track)
        if len(self.events) < self.capacity:
            self.events.append(event)
        else:
            slot = self._rng.randrange(self.seen)
            if slot < self.capacity:
                self.events[slot] = event

    def snapshot(self) -> dict:
        """JSON-ready dict: ``{"capacity", "seen", "events"}``."""
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "events": [list(event) for event in self.events],
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's :meth:`snapshot` into this timeline.

        The worker clock's epoch is unrelated to ours, so the incoming
        events are shifted to end at *merge time* — the worker's last
        span finished just before its snapshot travelled back, which
        makes the alignment approximate by one IPC hop but keeps every
        duration and the relative spacing exact.  All events from one
        snapshot land on one fresh track.
        """
        events = snapshot.get("events", [])
        self.seen += snapshot.get("seen", len(events)) - len(events)
        if not events:
            return
        now = time.perf_counter() - self.epoch
        offset = now - max(start + dur for _, start, dur, _ in events)
        track = self.next_track
        self.next_track += 1
        for name, start, dur, _ in events:
            self.record(name, start + offset, dur, track)


class SpanNode:
    """One node of the aggregated timing tree."""

    __slots__ = ("name", "calls", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """Get-or-create the child span called ``name``."""
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def snapshot(self) -> dict:
        """The subtree as a JSON-serialisable dict.

        Shape (the ``trace`` section of the ``--metrics-out`` report)::

            {"name": ..., "calls": ..., "seconds": ..., "children": [...]}
        """
        return {
            "name": self.name,
            "calls": self.calls,
            "seconds": self.seconds,
            "children": [
                self.children[name].snapshot()
                for name in sorted(self.children)
            ],
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` of a same-named node into this one."""
        self.calls += snapshot["calls"]
        self.seconds += snapshot["seconds"]
        for child_snap in snapshot["children"]:
            self.child(child_snap["name"]).merge(child_snap)


class Tracer:
    """Owns a trace tree and the currently-open span stack."""

    def __init__(self) -> None:
        self.root = SpanNode("run")
        self._stack: list[SpanNode] = [self.root]
        #: Armed :class:`Timeline`, or ``None`` (the default): timeline
        #: recording is opt-in on top of the aggregated tree and costs
        #: one attribute check per :meth:`pop` while disarmed.
        self.timeline: Timeline | None = None

    @property
    def current(self) -> SpanNode:
        """The innermost open span; the root when none is open.

        Falls back to the root even if the stack was somehow emptied
        (e.g. a :meth:`reset` racing an open span's exit), so callers
        like :meth:`merge_at_current` can always graft somewhere
        sensible instead of raising.
        """
        return self._stack[-1] if self._stack else self.root

    def push(self, name: str) -> SpanNode:
        node = self.current.child(name)
        node.calls += 1
        self._stack.append(node)
        return node

    def pop(self, elapsed: float) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("trace stack underflow: pop without push")
        node = self._stack.pop()
        node.seconds += elapsed
        if self.timeline is not None:
            end = time.perf_counter() - self.timeline.epoch
            self.timeline.record(node.name, end - elapsed, elapsed)

    def reset(self) -> None:
        """Drop the tree and any open spans.

        An armed timeline is re-armed fresh (same capacity, new epoch)
        rather than dropped — so a worker that inherited the armed
        state at fork time (``worker_begin`` resets before running the
        task) records its own task-local timeline, and the parent can
        merge it under a new track.
        """
        self.root = SpanNode("run")
        self._stack = [self.root]
        if self.timeline is not None:
            self.timeline = Timeline(self.timeline.capacity)

    def snapshot(self) -> dict:
        """The whole tree (root node named ``run``)."""
        return self.root.snapshot()

    def merge_at_current(self, snapshot: dict) -> None:
        """Graft another tree's children under the open span.

        ``snapshot`` is a full tree from :meth:`snapshot` (typically a
        worker's); its root is discarded and its children merge into
        whatever span is currently open here, which places remote work
        exactly where the fan-out happened.  Outside any ``trace(...)``
        block the open span is the root, so a snapshot merged from a
        bare call site grafts at the top of the tree — it never raises.
        """
        target = self.current
        for child_snap in snapshot.get("children", ()):
            target.child(child_snap["name"]).merge(child_snap)


#: The process-wide tracer every span writes to.
tracer = Tracer()


def enable_timeline(capacity: int | None = None) -> None:
    """Arm timeline recording on the process-wide tracer (idempotent —
    re-arming drops any events recorded so far and restarts the epoch).
    """
    tracer.timeline = Timeline(capacity)


def disable_timeline() -> None:
    """Disarm timeline recording and drop recorded events."""
    tracer.timeline = None


def timeline_enabled() -> bool:
    """True while the process-wide tracer records a timeline."""
    return tracer.timeline is not None


def timeline_snapshot() -> dict | None:
    """The armed timeline's snapshot, or ``None`` when disarmed."""
    return tracer.timeline.snapshot() if tracer.timeline is not None else None


def merge_timeline(snapshot: dict | None) -> None:
    """Absorb a worker's timeline snapshot (no-op when either side is
    disarmed — a worker spawned rather than forked never armed one).
    """
    if snapshot and tracer.timeline is not None:
        tracer.timeline.merge(snapshot)


def _scope_tracer() -> Tracer | None:
    """The active run scope's tracer, or ``None`` outside any scope.

    Spans mirror into it with the *same* elapsed reading as the global
    pop, so a run's scoped tree is an exact subtree of the global one
    (identical calls, identical seconds) rather than a re-measurement.
    """
    scope = _state.scope_var.get()
    return scope.tracer if scope is not None else None


class trace:
    """Span marker, usable as a context manager or a decorator."""

    __slots__ = ("name", "_active", "_start", "_scoped")

    def __init__(self, name: str) -> None:
        self.name = name
        self._active = False
        self._scoped = None

    def __call__(self, fn):
        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.enabled:
                return fn(*args, **kwargs)
            # Latch the scope tracer across the call so an inner
            # RunContext entry/exit cannot unbalance the scoped stack.
            scoped = _scope_tracer()
            tracer.push(name)
            if scoped is not None:
                scoped.push(name)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                tracer.pop(elapsed)
                if scoped is not None:
                    scoped.pop(elapsed)

        return wrapper

    def __enter__(self) -> "trace":
        # The enabled state (and the scope tracer) is latched on entry
        # so a mid-span flip cannot unbalance either span stack.
        self._active = _state.enabled
        if self._active:
            self._scoped = _scope_tracer()
            tracer.push(self.name)
            if self._scoped is not None:
                self._scoped.push(self.name)
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._active:
            elapsed = time.perf_counter() - self._start
            tracer.pop(elapsed)
            if self._scoped is not None:
                self._scoped.pop(elapsed)
            self._scoped = None
            self._active = False
        return False
