"""Human-readable reports over stored telemetry snapshots.

``--metrics-out FILE`` (experiments CLI, loadgen) and the service's
healthz endpoint all speak ``repro.telemetry/1`` JSON.  This command
renders any such snapshot for a human::

    python -m repro.experiments fig2c --fast --metrics-out /tmp/m.json
    python -m repro.observability report /tmp/m.json
    python -m repro.observability report /tmp/m.json --top 20
    python -m repro.observability report /tmp/m.json --format json

The report shows where the run spent its life (slowest spans by self
time), what it did (top counters), and whether the numbers can be
trusted (per-scope estimator-health verdicts with ESS / CI summaries) —
the triage view you want before opening the raw JSON or a Perfetto
trace.  It is read-only and needs no collection to be armed.
``--format json`` emits the same summary as a JSON object, for CI
steps and scripts that would otherwise scrape the text.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.observability.export import span_rows


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_count(value: float) -> str:
    """Counters are floats in the registry; print whole ones as ints."""
    return f"{int(value)}" if float(value).is_integer() else f"{value:g}"


def render_report(report: dict, top: int = 10) -> str:
    """The snapshot as report text (one string, trailing newline)."""
    lines: list[str] = []
    schema = report.get("schema", "?")
    title = f"telemetry report ({schema})"
    experiment = report.get("experiment")
    if experiment:
        title += f" — {experiment}"
    lines.append(title)
    if report.get("elapsed_seconds") is not None:
        lines.append(f"  elapsed: {_fmt_seconds(float(report['elapsed_seconds']))}")
    meta = report.get("meta", {})
    if meta:
        parts = [
            f"{key}={meta[key]}"
            for key in ("git_sha", "seed", "workers", "python")
            if meta.get(key) is not None
        ]
        if parts:
            lines.append(f"  meta: {', '.join(parts)}")

    metrics = report.get("metrics", {})
    trace = report.get("trace", {})

    rows = sorted(
        span_rows(trace), key=lambda r: r["self_seconds"], reverse=True
    )
    lines.append("")
    lines.append(f"slowest spans (by self time, top {top}):")
    if rows:
        width = max(len(r["path"]) for r in rows[:top])
        for row in rows[:top]:
            lines.append(
                f"  {row['path']:<{width}s}  calls={row['calls']:<6d}"
                f" self={_fmt_seconds(row['self_seconds']):>8s}"
                f" total={_fmt_seconds(row['seconds']):>8s}"
            )
    else:
        lines.append("  (no spans recorded)")

    counters = sorted(
        metrics.get("counters", {}).items(), key=lambda kv: (-kv[1], kv[0])
    )
    lines.append("")
    lines.append(f"top counters (top {top}):")
    if counters:
        width = max(len(name) for name, _ in counters[:top])
        for name, value in counters[:top]:
            lines.append(f"  {name:<{width}s}  {_fmt_count(value)}")
    else:
        lines.append("  (no counters recorded)")

    diagnostics = report.get("diagnostics", {})
    scopes = diagnostics.get("scopes", {})
    lines.append("")
    lines.append("estimator health:")
    if scopes:
        thresholds = diagnostics.get("thresholds", {})
        floor = thresholds.get("min_ess")
        ceiling = thresholds.get("max_ci_halfwidth")
        gate = f"  (gate: min ESS {floor:g}" if floor is not None else "  (gate:"
        if ceiling is not None:
            gate += f", max CI half-width {ceiling:g}"
        lines.append(gate + ")")
        width = max(len(name) for name in scopes)
        for name in sorted(scopes):
            scope = scopes[name]
            verdict = "ok" if scope.get("converged", True) else "UNCONVERGED"
            line = (
                f"  {name:<{width}s}  {verdict:<12s}"
                f" estimates={scope.get('n_estimates', 0)}"
            )
            if scope.get("min_ess") is not None:
                line += f" min_ess={scope['min_ess']:.1f}"
            if scope.get("max_ci_halfwidth") is not None:
                line += f" worst_ci_halfwidth={scope['max_ci_halfwidth']:.3g}"
            lines.append(line)
        failing = diagnostics.get("unconverged_scopes", [])
        lines.append(
            f"  {len(scopes) - len(failing)}/{len(scopes)} scope(s) converged"
        )
    else:
        lines.append("  (no estimates recorded — run with --diagnostics)")

    return "\n".join(lines) + "\n"


def summarize_report(report: dict, top: int = 10) -> dict:
    """The machine-readable form of :func:`render_report`.

    Same selection and the same ordering as the text report — slowest
    spans by self time, top counters by value, per-scope estimator
    health — as one JSON-ready dict (``repro.report/1``), so a CI step
    can assert on it with ``jq`` instead of scraping lines.
    """
    metrics = report.get("metrics", {})
    trace = report.get("trace", {})
    diagnostics = report.get("diagnostics", {})
    rows = sorted(
        span_rows(trace), key=lambda r: r["self_seconds"], reverse=True
    )
    counters = sorted(
        metrics.get("counters", {}).items(), key=lambda kv: (-kv[1], kv[0])
    )
    scopes = diagnostics.get("scopes", {})
    return {
        "schema": "repro.report/1",
        "snapshot_schema": report.get("schema"),
        "experiment": report.get("experiment"),
        "run_id": report.get("run_id"),
        "elapsed_seconds": report.get("elapsed_seconds"),
        "meta": report.get("meta", {}),
        "slowest_spans": rows[:top],
        "top_counters": [
            {"name": name, "value": value} for name, value in counters[:top]
        ],
        "diagnostics": {
            "thresholds": diagnostics.get("thresholds", {}),
            "unconverged_scopes": diagnostics.get("unconverged_scopes", []),
            "scopes": {name: scopes[name] for name in sorted(scopes)},
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Work with stored repro.telemetry/1 snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report_parser = sub.add_parser(
        "report",
        help="render a --metrics-out snapshot as a human run report",
    )
    report_parser.add_argument(
        "snapshot", metavar="FILE", help="a --metrics-out JSON snapshot"
    )
    report_parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows per section (default 10)",
    )
    report_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output form: the human text report (default) or the same "
        "summary as one JSON object (repro.report/1)",
    )
    args = parser.parse_args(argv)

    if args.top < 1:
        parser.error(f"--top must be >= 1, got {args.top}")
    try:
        with open(args.snapshot) as fh:
            report = json.load(fh)
    except OSError as exc:
        print(f"ERROR: cannot read {args.snapshot}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"ERROR: {args.snapshot} is not JSON: {exc}", file=sys.stderr)
        return 1
    if not isinstance(report, dict) or "metrics" not in report:
        print(
            f"ERROR: {args.snapshot} does not look like a telemetry "
            'snapshot (no "metrics" block)',
            file=sys.stderr,
        )
        return 1
    if args.format == "json":
        print(json.dumps(summarize_report(report, top=args.top), indent=2))
    else:
        print(render_report(report, top=args.top), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
