"""Counters, gauges, and histograms with a mergeable registry.

Three instrument kinds cover everything the statistics stack wants to
report:

* :class:`Counter` — a monotonically growing total (samples drawn,
  cache hits, dies processed);
* :class:`Gauge` — a last-value-wins level (configured worker count,
  current effective-sample-size fraction);
* :class:`Histogram` — a streaming summary (count / total / min / max /
  mean plus reservoir-estimated p50/p95) of a repeated measurement,
  with a :meth:`Histogram.time` context manager for wall-clock
  observations.  Memory is bounded: per-value storage is a fixed-size
  reservoir (:data:`Histogram.RESERVOIR_SIZE` samples, Vitter's
  algorithm R with a per-name deterministic stream), so a week-long
  sweep observing millions of values holds the same few KB as a short
  one.

A :class:`MetricsRegistry` owns instruments by name, snapshots them to
a plain dict (JSON-ready), and can merge a snapshot produced by another
process — how per-worker measurements travel back across the
:class:`~repro.parallel.executor.ParallelExecutor` boundary.

Call sites never touch the registry directly; they use the guarded
module helpers (:func:`incr`, :func:`set_gauge`, :func:`observe`)
which are no-ops while collection is disabled.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager

from repro.observability import _state


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: amount must be >= 0")
        self.value += amount


class Gauge:
    """A last-value-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A bounded-memory summary of a repeated measurement.

    Running count/total/min/max are exact at any volume; quantiles are
    estimated from a fixed-size uniform reservoir (algorithm R), so the
    instrument's footprint is constant no matter how many values a
    long-running sweep observes.  The reservoir's replacement stream is
    seeded from the histogram name, so two processes observing the same
    sequence keep identical reservoirs — deterministic, like everything
    else in the library.
    """

    #: Per-histogram cap on stored raw samples (~4 KB of floats).
    RESERVOIR_SIZE = 512

    __slots__ = ("name", "count", "total", "min", "max", "samples", "_rng")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: Uniform sample of everything observed, capped at
        #: :data:`RESERVOIR_SIZE` entries.
        self.samples: list[float] = []
        self._rng = random.Random(name)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.RESERVOIR_SIZE:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self.samples[slot] = value

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Reservoir-estimated ``q``-quantile (``q`` in [0, 1]).

        Exact while fewer than :data:`RESERVOIR_SIZE` values have been
        observed; a uniform-subsample estimate beyond that.  Degenerate
        reservoirs are guarded, never raise: ``None`` before any
        observation, and the sample itself when only one has been seen
        (every quantile of a single observation is that observation).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self.samples:
            return None
        if len(self.samples) == 1:
            return self.samples[0]
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def merge_summary(self, summary: dict) -> None:
        """Fold another histogram's snapshot dict into this one.

        Exact fields accumulate exactly; the incoming reservoir (when
        present) is re-observed through this reservoir's replacement
        stream, keeping the merged sample approximately uniform over
        both populations.
        """
        if not summary["count"]:
            return
        incoming = summary.get("reservoir", [])
        self.count += summary["count"] - len(incoming)
        self.total += summary["total"] - sum(incoming)
        self.min = min(self.min, summary["min"])
        self.max = max(self.max, summary["max"])
        for value in incoming:
            self.observe(value)

    @contextmanager
    def time(self):
        """Observe the wall time of the ``with`` body, in seconds."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - start)


class MetricsRegistry:
    """Named instruments with dict snapshots and cross-process merge."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name)
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        return self._get(name, Histogram)

    def counter_value(self, name: str) -> float:
        """Read counter ``name`` without creating it (0.0 when absent).

        A pure read: safe for another thread to poll (job progress off
        a live run scope) without mutating the instrument table.
        """
        instrument = self._instruments.get(name)
        return instrument.value if isinstance(instrument, Counter) else 0.0

    def reset(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def snapshot(self) -> dict:
        """All instruments as a JSON-serialisable dict.

        Shape (the ``metrics`` section of the ``--metrics-out``
        report — see ``docs/observability.md``)::

            {"counters":   {name: value},
             "gauges":     {name: value},
             "histograms": {name: {count, total, min, max, mean,
                                   p50, p95, reservoir}}}

        ``p50``/``p95`` are reservoir estimates (``None`` when empty)
        and ``reservoir`` is the bounded raw-sample list — additive
        fields under the unchanged ``repro.telemetry/1`` schema, and
        how quantile information survives the cross-process
        :meth:`merge`.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = {
                    "count": inst.count,
                    "total": inst.total,
                    "min": inst.min if inst.count else None,
                    "max": inst.max if inst.count else None,
                    "mean": inst.mean,
                    "p50": inst.percentile(0.50),
                    "p95": inst.percentile(0.95),
                    "reservoir": list(inst.samples),
                }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins, matching their in-process semantics).
        Used by the parent process to absorb per-worker measurements.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)


#: The process-wide registry every guarded helper writes to.
registry = MetricsRegistry()


def incr(name: str, amount: float = 1.0) -> None:
    """Bump counter ``name`` — no-op while collection is disabled.

    Dual-write: inside a :class:`~repro.observability.context
    .RunContext` the active scope's registry receives the same bump,
    so per-run attribution is exact without touching the global totals.
    """
    if _state.enabled:
        registry.counter(name).inc(amount)
        scope = _state.scope_var.get()
        if scope is not None:
            scope.registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` — no-op while collection is disabled."""
    if _state.enabled:
        registry.gauge(name).set(value)
        scope = _state.scope_var.get()
        if scope is not None:
            scope.registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe ``value`` in histogram ``name`` — no-op when disabled."""
    if _state.enabled:
        registry.histogram(name).observe(value)
        scope = _state.scope_var.get()
        if scope is not None:
            scope.registry.histogram(name).observe(value)
