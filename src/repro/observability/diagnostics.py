"""Estimator-health diagnostics: can the numbers be believed?

Every headline number the library produces — parametric failure
probabilities, ABB/ASB yield gains, hold-failure reductions — is a
Monte-Carlo estimate.  The telemetry layer records *what ran*; this
module records *whether the results converged*:

* **Interval estimators** — :func:`wilson_interval` (score interval,
  well-behaved at extreme probabilities and fractional effective
  counts) and :func:`clopper_pearson_interval` (exact, conservative)
  for binomial probabilities;
* **Importance-sampling weight health** — :func:`weight_diagnostics`
  computes the Kish effective sample size, the ESS fraction, and the
  largest single weight's share of the total, the three numbers that
  tell a degenerate proposal from a healthy one;
* **A mergeable recorder** — :data:`recorder` aggregates per-estimate
  diagnostics into named *scopes* (``analysis.hold``,
  ``table[vbody=+0.000]``, ``lot.yield``, ...), merges across the
  :class:`~repro.parallel.executor.ParallelExecutor` worker boundary
  like the metrics registry, and judges each scope against configurable
  :class:`DiagnosticThresholds` — the engine behind the experiment
  CLI's ``--diagnostics`` / ``--strict-diagnostics`` gate and the
  ``diagnostics`` block of the ``repro.telemetry/1`` snapshot.

Every edge case is well-defined by construction: zero draws, all-zero
weights, and a single dominant weight produce ``ess = 0`` (or 1) and
the maximally uninformative interval ``[0, 1]`` — never a NaN.

Like the rest of :mod:`repro.observability`, recording is a no-op
while collection is disabled; the *pure* helpers (intervals, weight
diagnostics) are always available and are used by the stats stack to
attach uncertainty to its results unconditionally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.observability import _state

#: z-score of the default 95% two-sided interval.
DEFAULT_Z = 1.959963984540054

#: Default effective-sample-size floor below which an estimate is
#: flagged unconverged (overridable per run via ``--min-ess``).
DEFAULT_MIN_ESS = 200.0


# ----------------------------------------------------------------------
# Interval estimators
# ----------------------------------------------------------------------
def wilson_interval(
    successes: float, n: float, z: float = DEFAULT_Z
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Accepts *fractional* counts so it can be evaluated at an effective
    sample size (``n = ESS``, ``successes = p * ESS``) for weighted
    estimators.  ``n <= 0`` returns the maximally uninformative
    ``(0, 1)`` — a zero-information sample constrains nothing.
    """
    if z <= 0:
        raise ValueError(f"z must be positive, got {z}")
    if n <= 0 or not math.isfinite(n):
        return (0.0, 1.0)
    p = min(max(successes / n, 0.0), 1.0)
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    # Pin the exact edges: at p = 0 (or 1) center and half are equal in
    # exact arithmetic, but their float difference leaves ~1e-19 residue.
    low = 0.0 if p == 0.0 else max(0.0, center - half)
    high = 1.0 if p == 1.0 else min(1.0, center + half)
    return (low, high)


def clopper_pearson_interval(
    successes: int, n: int, alpha: float = 0.05
) -> tuple[float, float]:
    """Exact (Clopper-Pearson) binomial interval via the Beta quantile.

    Conservative by construction — coverage is at least ``1 - alpha``
    at every true probability.  ``n = 0`` returns ``(0, 1)``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if n <= 0:
        return (0.0, 1.0)
    k = min(max(int(successes), 0), int(n))
    from scipy.stats import beta  # deferred: keep module import light

    low = 0.0 if k == 0 else float(beta.ppf(alpha / 2.0, k, n - k + 1))
    high = 1.0 if k == n else float(beta.ppf(1.0 - alpha / 2.0, k + 1, n - k))
    return (low, high)


# ----------------------------------------------------------------------
# Importance-sampling weight health
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WeightDiagnostics:
    """Health summary of one likelihood-ratio weight vector.

    Attributes:
        n_draws: raw draws behind the weights.
        ess: Kish effective sample size ``(sum w)^2 / sum w^2``.
        ess_ratio: ``ess / n_draws`` (1.0 = plain MC, small = the
            proposal wastes most of its draws).
        max_weight_fraction: largest single weight / total weight —
            near 1.0 means one sample dominates the whole estimate.
    """

    n_draws: int
    ess: float
    ess_ratio: float
    max_weight_fraction: float


def weight_diagnostics(weights: np.ndarray) -> WeightDiagnostics:
    """Kish ESS and weight-concentration diagnostics for ``weights``.

    Degenerate inputs are well-defined rather than NaN: zero draws or
    an all-zero (or non-finite-total) weight vector report
    ``ess = ess_ratio = max_weight_fraction = 0``.
    """
    weights = np.asarray(weights, dtype=float)
    n = int(weights.size)
    if n == 0:
        return WeightDiagnostics(0, 0.0, 0.0, 0.0)
    total = float(np.sum(weights))
    total_sq = float(np.sum(np.square(weights)))
    if total <= 0.0 or total_sq <= 0.0 or not math.isfinite(total):
        return WeightDiagnostics(n, 0.0, 0.0, 0.0)
    ess = total * total / total_sq
    return WeightDiagnostics(
        n_draws=n,
        ess=ess,
        ess_ratio=ess / n,
        max_weight_fraction=float(np.max(weights)) / total,
    )


# ----------------------------------------------------------------------
# Convergence thresholds + assessment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiagnosticThresholds:
    """What "converged" means for one run.

    Attributes:
        min_ess: effective-sample-size floor per estimate.
        max_ci_halfwidth: optional absolute ceiling on the 95% CI
            half-width (``None`` disables the check — the right
            default, since an absolute width means different things
            at p ~ 0.5 and p ~ 1e-7).
    """

    min_ess: float = DEFAULT_MIN_ESS
    max_ci_halfwidth: float | None = None

    def as_dict(self) -> dict:
        return {
            "min_ess": self.min_ess,
            "max_ci_halfwidth": self.max_ci_halfwidth,
        }


def assess(result, thresholds: DiagnosticThresholds) -> list[str]:
    """Why ``result`` fails ``thresholds`` (empty list = converged).

    ``result`` is anything with the :class:`~repro.stats.montecarlo.
    MonteCarloResult` diagnostic surface (``ess``, ``ci_halfwidth``);
    a result that never had diagnostics attached (``ess is None``)
    passes — there is nothing to judge.
    """
    reasons = []
    ess = getattr(result, "ess", None)
    if ess is not None and ess < thresholds.min_ess:
        reasons.append(
            f"ess {ess:.1f} below the {thresholds.min_ess:g} floor"
        )
    halfwidth = getattr(result, "ci_halfwidth", None)
    if (
        thresholds.max_ci_halfwidth is not None
        and halfwidth is not None
        and halfwidth > thresholds.max_ci_halfwidth
    ):
        reasons.append(
            f"ci half-width {halfwidth:.3g} above the "
            f"{thresholds.max_ci_halfwidth:g} ceiling"
        )
    return reasons


@dataclass(frozen=True)
class BatchDiagnostics:
    """Aggregate estimator health of one batch of estimates.

    The per-build summary a table attaches to itself: how many grid
    estimates it rests on, how many failed the active thresholds, and
    the worst-case interval width / effective sample size among them.
    """

    n_estimates: int
    unconverged: int
    worst_ci_halfwidth: float | None
    min_ess: float | None
    min_ess_ratio: float | None

    def as_dict(self) -> dict:
        return {
            "n_estimates": self.n_estimates,
            "unconverged": self.unconverged,
            "worst_ci_halfwidth": self.worst_ci_halfwidth,
            "min_ess": self.min_ess,
            "min_ess_ratio": self.min_ess_ratio,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BatchDiagnostics":
        return cls(
            n_estimates=int(payload["n_estimates"]),
            unconverged=int(payload["unconverged"]),
            worst_ci_halfwidth=payload.get("worst_ci_halfwidth"),
            min_ess=payload.get("min_ess"),
            min_ess_ratio=payload.get("min_ess_ratio"),
        )


def summarize(
    results, thresholds: DiagnosticThresholds | None = None
) -> BatchDiagnostics:
    """Fold a sequence of estimate results into a :class:`BatchDiagnostics`.

    ``thresholds=None`` judges against the process-wide recorder's
    thresholds (what ``--min-ess`` configured for this run).
    """
    thresholds = thresholds if thresholds is not None else recorder.thresholds
    n = 0
    unconverged = 0
    worst_halfwidth: float | None = None
    min_ess: float | None = None
    min_ratio: float | None = None
    for result in results:
        n += 1
        if assess(result, thresholds):
            unconverged += 1
        halfwidth = getattr(result, "ci_halfwidth", None)
        if halfwidth is not None and (
            worst_halfwidth is None or halfwidth > worst_halfwidth
        ):
            worst_halfwidth = halfwidth
        ess = getattr(result, "ess", None)
        if ess is not None and (min_ess is None or ess < min_ess):
            min_ess = ess
        ratio = getattr(result, "ess_ratio", None)
        if ratio is not None and (min_ratio is None or ratio < min_ratio):
            min_ratio = ratio
    return BatchDiagnostics(
        n_estimates=n,
        unconverged=unconverged,
        worst_ci_halfwidth=worst_halfwidth,
        min_ess=min_ess,
        min_ess_ratio=min_ratio,
    )


# ----------------------------------------------------------------------
# The mergeable recorder
# ----------------------------------------------------------------------
class _ScopeAggregate:
    """Running min/max aggregates of every estimate seen in one scope."""

    __slots__ = (
        "n_estimates",
        "min_ess",
        "min_ess_ratio",
        "max_ci_halfwidth",
        "max_stderr",
        "max_weight_fraction",
    )

    def __init__(self) -> None:
        self.n_estimates = 0
        self.min_ess: float | None = None
        self.min_ess_ratio: float | None = None
        self.max_ci_halfwidth: float | None = None
        self.max_stderr: float | None = None
        self.max_weight_fraction: float | None = None

    @staticmethod
    def _lo(current: float | None, incoming: float | None) -> float | None:
        if incoming is None:
            return current
        return incoming if current is None else min(current, incoming)

    @staticmethod
    def _hi(current: float | None, incoming: float | None) -> float | None:
        if incoming is None:
            return current
        return incoming if current is None else max(current, incoming)

    def observe(self, result) -> None:
        self.n_estimates += 1
        self.min_ess = self._lo(self.min_ess, getattr(result, "ess", None))
        self.min_ess_ratio = self._lo(
            self.min_ess_ratio, getattr(result, "ess_ratio", None)
        )
        self.max_ci_halfwidth = self._hi(
            self.max_ci_halfwidth, getattr(result, "ci_halfwidth", None)
        )
        stderr = getattr(result, "stderr", None)
        if stderr is not None and math.isfinite(stderr):
            self.max_stderr = self._hi(self.max_stderr, stderr)
        self.max_weight_fraction = self._hi(
            self.max_weight_fraction,
            getattr(result, "max_weight_fraction", None),
        )

    def as_dict(self) -> dict:
        return {
            "n_estimates": self.n_estimates,
            "min_ess": self.min_ess,
            "min_ess_ratio": self.min_ess_ratio,
            "max_ci_halfwidth": self.max_ci_halfwidth,
            "max_stderr": self.max_stderr,
            "max_weight_fraction": self.max_weight_fraction,
        }

    def merge_summary(self, summary: dict) -> None:
        self.n_estimates += int(summary.get("n_estimates", 0))
        self.min_ess = self._lo(self.min_ess, summary.get("min_ess"))
        self.min_ess_ratio = self._lo(
            self.min_ess_ratio, summary.get("min_ess_ratio")
        )
        self.max_ci_halfwidth = self._hi(
            self.max_ci_halfwidth, summary.get("max_ci_halfwidth")
        )
        self.max_stderr = self._hi(self.max_stderr, summary.get("max_stderr"))
        self.max_weight_fraction = self._hi(
            self.max_weight_fraction, summary.get("max_weight_fraction")
        )

    def violations(self, thresholds: DiagnosticThresholds) -> list[str]:
        """Threshold failures judged on the aggregates.

        Judging mins/maxes is exactly as strict as judging every
        estimate individually, so the verdict is independent of where
        (worker or parent) the estimates were recorded.
        """
        reasons = []
        if self.min_ess is not None and self.min_ess < thresholds.min_ess:
            reasons.append(
                f"min ess {self.min_ess:.1f} below the "
                f"{thresholds.min_ess:g} floor"
            )
        if (
            thresholds.max_ci_halfwidth is not None
            and self.max_ci_halfwidth is not None
            and self.max_ci_halfwidth > thresholds.max_ci_halfwidth
        ):
            reasons.append(
                f"max ci half-width {self.max_ci_halfwidth:.3g} above "
                f"the {thresholds.max_ci_halfwidth:g} ceiling"
            )
        return reasons


class DiagnosticsRecorder:
    """Per-scope estimator-health aggregates with cross-process merge.

    Mirrors the :class:`~repro.observability.metrics.MetricsRegistry`
    contract: :meth:`snapshot` to a JSON-ready dict, :meth:`merge` a
    worker's snapshot back in, :meth:`reset` between collection scopes.
    Thresholds survive :meth:`reset` — they describe the *run*, not the
    data.
    """

    def __init__(self) -> None:
        self._scopes: dict[str, _ScopeAggregate] = {}
        self.thresholds = DiagnosticThresholds()

    def configure(self, thresholds: DiagnosticThresholds) -> None:
        """Set the convergence thresholds this run is judged against."""
        self.thresholds = thresholds

    def record(self, scope: str, result) -> None:
        """Fold one estimate's diagnostics into ``scope``."""
        aggregate = self._scopes.get(scope)
        if aggregate is None:
            aggregate = self._scopes[scope] = _ScopeAggregate()
        aggregate.observe(result)

    def record_batch(self, scope: str, batch: BatchDiagnostics) -> None:
        """Fold a stored :class:`BatchDiagnostics` into ``scope``.

        How cache-restored artifacts keep reporting their health: a
        warm run re-records the summary persisted at build time, so
        its convergence verdict matches the cold run that built it.
        """
        aggregate = self._scopes.get(scope)
        if aggregate is None:
            aggregate = self._scopes[scope] = _ScopeAggregate()
        aggregate.merge_summary(
            {
                "n_estimates": batch.n_estimates,
                "min_ess": batch.min_ess,
                "min_ess_ratio": batch.min_ess_ratio,
                "max_ci_halfwidth": batch.worst_ci_halfwidth,
            }
        )

    def reset(self) -> None:
        """Drop every scope (thresholds are kept)."""
        self._scopes.clear()

    def unconverged(self) -> dict[str, list[str]]:
        """Scope -> threshold failures, for every failing scope."""
        out: dict[str, list[str]] = {}
        for name, aggregate in sorted(self._scopes.items()):
            reasons = aggregate.violations(self.thresholds)
            if reasons:
                out[name] = reasons
        return out

    def snapshot(self) -> dict:
        """The ``diagnostics`` block of the telemetry report.

        Shape (additive under the unchanged ``repro.telemetry/1``
        schema — see ``docs/observability.md``)::

            {"thresholds": {"min_ess": ..., "max_ci_halfwidth": ...},
             "unconverged_scopes": ["analysis.hold", ...],
             "scopes": {name: {n_estimates, min_ess, min_ess_ratio,
                               max_ci_halfwidth, max_stderr,
                               max_weight_fraction, converged}}}
        """
        failing = self.unconverged()
        return {
            "thresholds": self.thresholds.as_dict(),
            "unconverged_scopes": sorted(failing),
            "scopes": {
                name: {**aggregate.as_dict(), "converged": name not in failing}
                for name, aggregate in sorted(self._scopes.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Only the scope aggregates travel; the ``converged`` verdicts
        are recomputed against *this* recorder's thresholds, so a
        worker with default thresholds cannot launder an unconverged
        estimate past a stricter parent.
        """
        for name, summary in snapshot.get("scopes", {}).items():
            aggregate = self._scopes.get(name)
            if aggregate is None:
                aggregate = self._scopes[name] = _ScopeAggregate()
            aggregate.merge_summary(summary)


#: The process-wide recorder every guarded call site writes to.
recorder = DiagnosticsRecorder()


def record(scope: str, result) -> None:
    """Record ``result`` under ``scope`` — no-op while collection is off.

    Dual-write: an active run scope's recorder receives the same
    observation, so per-run convergence verdicts are exact.
    """
    if _state.enabled:
        recorder.record(scope, result)
        run_scope = _state.scope_var.get()
        if run_scope is not None:
            run_scope.recorder.record(scope, result)


def record_batch(scope: str, batch: BatchDiagnostics | None) -> None:
    """Record a stored batch summary — no-op while collection is off."""
    if _state.enabled and batch is not None:
        recorder.record_batch(scope, batch)
        run_scope = _state.scope_var.get()
        if run_scope is not None:
            run_scope.recorder.record_batch(scope, batch)
