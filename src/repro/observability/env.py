"""Environment fingerprinting for self-describing telemetry.

A stored telemetry report or benchmark record is only longitudinal
data if it says *where it came from*: the code revision, interpreter,
numerical stack and hardware width it was measured on.
:func:`environment_fingerprint` gathers exactly that, cheaply and
without raising — a missing ``git`` binary or a non-repo checkout
degrades the SHA to ``None``, never to an exception, so the telemetry
path can never fail a run.

Consumed by the ``meta`` block of the ``--metrics-out`` report
(``python -m repro.experiments``) and the ``environment`` block of
every ``repro.bench`` history record (see ``docs/benchmarking.md``).
"""

from __future__ import annotations

import os
import platform
import subprocess

import numpy as np


def git_sha(short: bool = False) -> str | None:
    """The current checkout's HEAD commit, or ``None`` outside a repo."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def environment_fingerprint() -> dict:
    """Everything a stored measurement needs to be interpretable later.

    Returns a JSON-ready dict::

        {"git_sha":   "<full hex or None>",
         "python":    "3.11.7",
         "numpy":     "1.26.4",
         "platform":  "Linux-...-x86_64",
         "cpu_count": 8}
    """
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
