"""Standard export formats over ``repro.telemetry/1`` snapshots.

Everything the library collects lives in the JSON snapshot produced by
:func:`repro.observability.snapshot` — good for files and tests, opaque
to the tooling operators actually point at long-running services.  This
module renders that same data into two industry-standard formats,
without touching the collection layer:

* :func:`render_prometheus` — the Prometheus **text exposition format**
  (version 0.0.4), served by the job server at ``GET /v1/metrics``.
  Counters map to counters, gauges to gauges, and histograms to
  summaries (``_count`` / ``_sum`` plus ``{quantile="..."}`` sample
  lines estimated from the bounded reservoir).
* :func:`chrome_trace` — the Chrome **trace-event JSON** format
  understood by Perfetto and ``chrome://tracing``, built from a
  :class:`~repro.observability.tracing.Timeline` snapshot
  (``--trace-out FILE`` on the experiments CLI).

Both are pure functions over snapshot dicts: no registry access, no
state, importable anywhere (including the test-suite's round-trip
parser) without arming collection.
"""

from __future__ import annotations

import math
import re

#: Characters legal in a Prometheus metric name after the first.
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
#: A full metric name as the exposition format defines it.
_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted metric name onto the Prometheus charset.

    Prometheus names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; ours are
    dotted (``mc.samples``, ``service.jobs_accepted``).  Every illegal
    character becomes ``_`` (so ``mc.samples`` → ``mc_samples``) and a
    leading digit gets an underscore prefix.  The mapping is lossy —
    :func:`render_prometheus` detects collisions and keeps only the
    first name, flagging the rest in comments, so output always parses.
    """
    sanitized = _NAME_BAD.sub("_", name)
    if not sanitized or not sanitized[0].isalpha() and sanitized[0] not in "_:":
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec (``\\``, ``"``, LF)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (``\\`` and LF only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float | None) -> str:
    """Render a sample value: ``NaN`` / ``+Inf`` / ``-Inf`` spelled the
    way the exposition format requires, everything else as repr-exact
    floats (Go's ``strconv.ParseFloat`` reads Python's ``repr`` fine).
    """
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


#: Reservoir quantiles exposed per histogram, matching the snapshot's
#: ``p50``/``p95`` summary fields.
SUMMARY_QUANTILES = ((0.5, "p50"), (0.95, "p95"))


def render_prometheus(metrics: dict) -> str:
    """Render a ``metrics`` snapshot block as exposition text.

    Args:
        metrics: the ``{"counters", "gauges", "histograms"}`` dict from
            :meth:`MetricsRegistry.snapshot` (the ``metrics`` key of a
            full telemetry snapshot).

    Counters keep their (sanitised) name — the registry has no
    ``_total`` convention and renaming would break the healthz/metrics
    name correspondence the service documents.  Histograms render as
    summaries: ``{quantile="0.5"}`` / ``{quantile="0.95"}`` samples from
    the reservoir (omitted while the reservoir is empty — an empty
    summary still exposes exact ``_count`` and ``_sum``), then
    ``name_sum`` and ``name_count``.

    Two internal names that sanitise onto the same exposition name
    would produce an invalid duplicate family; later claimants are
    skipped with a ``# skipped`` comment so the page always parses.
    """
    lines: list[str] = []
    claimed: dict[str, str] = {}

    def claim(name: str, *extra: str) -> str | None:
        base = sanitize_metric_name(name)
        for candidate in (base, *extra):
            owner = claimed.get(candidate)
            if owner is not None and owner != name:
                lines.append(
                    f"# skipped {name!r}: sanitised name {candidate!r} "
                    f"already used by {owner!r}"
                )
                return None
        for reserved in (base, *extra):
            claimed.setdefault(reserved, name)
        return base

    for name, value in sorted(metrics.get("counters", {}).items()):
        base = claim(name)
        if base is None:
            continue
        lines.append(f"# HELP {base} {escape_help(f'repro counter {name}')}")
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {format_value(value)}")

    for name, value in sorted(metrics.get("gauges", {}).items()):
        base = claim(name)
        if base is None:
            continue
        lines.append(f"# HELP {base} {escape_help(f'repro gauge {name}')}")
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {format_value(value)}")

    for name, summary in sorted(metrics.get("histograms", {}).items()):
        base = claim(name, *(f"{sanitize_metric_name(name)}{s}" for s in ("_sum", "_count")))
        if base is None:
            continue
        lines.append(f"# HELP {base} {escape_help(f'repro histogram {name}')}")
        lines.append(f"# TYPE {base} summary")
        reservoir = summary.get("reservoir") or []
        if reservoir:
            ordered = sorted(float(v) for v in reservoir)
            for q, _ in SUMMARY_QUANTILES:
                index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
                lines.append(
                    f'{base}{{quantile="{escape_label_value(repr(q))}"}} '
                    f"{format_value(ordered[index])}"
                )
        lines.append(f"{base}_sum {format_value(summary.get('total', 0.0))}")
        lines.append(f"{base}_count {format_value(summary.get('count', 0))}")

    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(timeline: dict, meta: dict | None = None) -> dict:
    """Build a Chrome trace-event document from a timeline snapshot.

    Args:
        timeline: a :meth:`Timeline.snapshot` dict
            (``{"capacity", "seen", "events"}`` with events as
            ``[name, start, dur, track]``, seconds relative to the
            timeline epoch).
        meta: optional run metadata embedded under ``otherData``.

    Returns the standard ``{"traceEvents": [...]}`` object: one ``M``
    (metadata) event naming the process and each populated track, then
    one ``X`` (complete) event per span with microsecond ``ts``/``dur``.
    Track 0 is the recording process's own lane (``main``); higher
    tracks are merged worker snapshots (``task-N``).  Loads directly in
    Perfetto / ``chrome://tracing``.
    """
    events = timeline.get("events", [])
    trace_events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for track in sorted({int(event[3]) for event in events} | {0}):
        trace_events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": track,
                "name": "thread_name",
                "args": {"name": "main" if track == 0 else f"task-{track}"},
            }
        )
    for name, start, dur, track in sorted(events, key=lambda e: (e[3], e[1])):
        trace_events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": int(track),
                "name": str(name),
                "cat": "span",
                "ts": round(float(start) * 1e6, 3),
                "dur": round(float(dur) * 1e6, 3),
            }
        )
    document: dict = {
        "displayTimeUnit": "ms",
        "traceEvents": trace_events,
        "otherData": {
            "schema": "repro.trace/1",
            "spans_seen": timeline.get("seen", len(events)),
            "spans_recorded": len(events),
            "capacity": timeline.get("capacity"),
        },
    }
    if meta:
        # Unset metadata (e.g. no --run-id was passed) is omitted, not
        # written as null — the document stays join-key clean.
        document["otherData"].update(
            {key: value for key, value in meta.items() if value is not None}
        )
    return document


def span_rows(trace: dict) -> list[dict]:
    """Flatten a trace-tree snapshot into rows for reporting.

    Each row carries the slash-joined path from the root, calls, total
    seconds, and self seconds (total minus children, clamped at zero —
    clock jitter can make a parent measure marginally less than the sum
    of its children).  The root node itself is excluded.
    """
    rows: list[dict] = []

    def walk(node: dict, prefix: str) -> None:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        children = node.get("children", [])
        child_seconds = sum(c.get("seconds", 0.0) for c in children)
        rows.append(
            {
                "path": path,
                "calls": node.get("calls", 0),
                "seconds": node.get("seconds", 0.0),
                "self_seconds": max(0.0, node.get("seconds", 0.0) - child_seconds),
            }
        )
        for child in children:
            walk(child, path)

    for child in trace.get("children", []):
        walk(child, "")
    return rows
