"""Run-scoped telemetry: a ``run_id`` plus an isolated collection scope.

The process-wide registry answers *what has this process done*; a
:class:`RunScope` answers *what did this run do* — the question a
service fielding concurrent jobs ("why was job X slow?") needs an
exact, isolated answer to.  A scope bundles a ``run_id`` with its own
:class:`~repro.observability.metrics.MetricsRegistry`,
:class:`~repro.observability.tracing.Tracer`, and
:class:`~repro.observability.diagnostics.DiagnosticsRecorder`; while a
scope is active (via :class:`RunContext`), every guarded instrument
helper **dual-writes**: the process-global collectors keep their
whole-process totals, and the scope receives an exact copy of the
run's own measurements.

Activation rides on a :class:`contextvars.ContextVar`
(:data:`repro.observability._state.scope_var`), so scopes are isolated
per thread the way request telemetry is in an inference server: the
:class:`~repro.service.jobs.JobManager` runs each job inside
``RunContext(run_id=job_id)`` on its own worker thread, and two jobs
executing concurrently each see only their own counters, spans, and
diagnostics.  Across the
:class:`~repro.parallel.executor.ParallelExecutor` fork/pickle
boundary the run_id travels in the task payload and the worker's
snapshot is merged back into both the global collectors *and* the
scope that owned the fan-out (the merge happens on the owning thread,
where the context variable is still set).

Beyond attribution, the active run_id is stamped onto every structured
log event (``run_id=`` in both the human and ``--log-json``
renderings) and onto every service journal/SSE event — one key to join
logs, traces, metrics, and events of a single run.  Log stamping works
even while metric collection is off (``--log-json --run-id smoke``
without ``--metrics-out``); the scope's collectors simply stay empty.
"""

from __future__ import annotations

from repro.observability import _state
from repro.observability.diagnostics import DiagnosticsRecorder
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

#: Version tag of the telemetry snapshot schema (kept in lockstep with
#: :data:`repro.observability.SCHEMA`, which re-exports it).
SCHEMA = "repro.telemetry/1"


class RunScope:
    """One run's identity plus its isolated telemetry collectors."""

    __slots__ = ("run_id", "registry", "tracer", "recorder")

    def __init__(self, run_id: str) -> None:
        if not isinstance(run_id, str):
            raise TypeError(f"run_id must be a string, got {type(run_id).__name__}")
        if not run_id.strip():
            raise ValueError("run_id must be a non-empty string")
        self.run_id = run_id
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.recorder = DiagnosticsRecorder()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunScope(run_id={self.run_id!r})"

    def counter_value(self, name: str) -> float:
        """This run's total for counter ``name`` (0.0 if never bumped)."""
        return self.registry.counter_value(name)

    def snapshot(self) -> dict:
        """The run's telemetry as a ``repro.telemetry/1`` dict.

        Same shape as :func:`repro.observability.snapshot` plus a
        ``run_id`` key — an additive field under the unchanged schema,
        so every existing consumer (``python -m repro.observability
        report``, the export helpers) reads a per-run snapshot
        unchanged.
        """
        return {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "metrics": self.registry.snapshot(),
            "trace": self.tracer.snapshot(),
            "diagnostics": self.recorder.snapshot(),
        }


class RunContext:
    """Context manager activating a :class:`RunScope` on this context.

    ``RunContext("run-7")`` creates a fresh scope; ``RunContext(
    scope=existing)`` adopts one created earlier (how the service keeps
    a handle on a job's scope while the job thread runs inside it).
    Entry sets the context variable and returns the scope; exit
    restores whatever was active before, so contexts nest.
    """

    __slots__ = ("scope", "_token")

    def __init__(self, run_id: str | None = None, scope: RunScope | None = None):
        if scope is None:
            if run_id is None:
                raise ValueError("RunContext needs a run_id or a scope")
            scope = RunScope(run_id)
        self.scope = scope
        self._token = None

    def __enter__(self) -> RunScope:
        self._token = _state.scope_var.set(self.scope)
        return self.scope

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _state.scope_var.reset(self._token)
            self._token = None
        return False


def current_scope() -> RunScope | None:
    """The active scope in this context, or ``None``."""
    return _state.scope_var.get()


def current_run_id() -> str | None:
    """The active run id, or ``None`` outside any :class:`RunContext`."""
    return _state.current_run_id()


def activate(scope: RunScope | None):
    """Set ``scope`` active for the rest of this context; returns the
    reset token.

    The non-scoped sibling of :class:`RunContext`, for call sites with
    no natural ``with`` block: a CLI process that wants its whole
    lifetime scoped (``--run-id``), or a pool worker whose task should
    inherit the parent's run id (:func:`enter_worker_scope`).
    """
    return _state.scope_var.set(scope)


def enter_worker_scope(run_id: str | None) -> None:
    """Install the propagated run scope inside a pool worker.

    Called by the worker entry point with the ``run_id`` the parent
    embedded in the task payload.  Always (re)sets the variable: a
    forked worker inherits the parent's context, so an explicit
    install keeps fork and spawn start methods behaving identically —
    and clears a stale scope when the parent had none.
    """
    activate(RunScope(run_id) if run_id else None)
