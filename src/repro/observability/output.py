"""Collision-safe placement of output artifacts (reports, profiles).

Several surfaces write JSON artifacts to user-named paths: the
experiments CLI (``--metrics-out``, ``--profile-out``) and the service
load generator (``--telemetry-out``).  They share one policy, defined
here once: an existing file is never silently clobbered — unless an
overwrite was explicitly requested, the write is diverted to the first
free numbered sibling (``report.json`` -> ``report.1.json``) and a
structured warning says so.
"""

from __future__ import annotations

import os


def resolve_out_path(
    path: str, overwrite: bool, logger, kind: str, overwrite_flag: str
) -> str:
    """Where an output artifact may actually go.

    Args:
        path: the path the user asked for.
        overwrite: True when the user explicitly allowed replacement.
        logger: a :mod:`repro.observability.log` logger for the
            diversion warning.
        kind: short artifact label used in the warning event name
            (``"metrics"`` -> ``metrics.exists``).
        overwrite_flag: the CLI flag to mention in the hint
            (e.g. ``"--metrics-overwrite"``).

    Returns:
        ``path`` itself when it is free (or overwriting was allowed),
        otherwise the first free numbered sibling.
    """
    if overwrite or not os.path.exists(path):
        return path
    stem, ext = os.path.splitext(path)
    counter = 1
    while os.path.exists(f"{stem}.{counter}{ext}"):
        counter += 1
    resolved = f"{stem}.{counter}{ext}"
    logger.warning(
        f"{kind}.exists",
        path=path,
        wrote=resolved,
        hint=f"pass {overwrite_flag} to replace the existing file",
    )
    return resolved
