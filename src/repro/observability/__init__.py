"""Observability: structured logging, metrics, and span tracing.

Three instruments, one switch:

* **metrics** (:mod:`repro.observability.metrics`) — counters, gauges
  and histograms in a process-wide :class:`MetricsRegistry` (Monte-
  Carlo sample totals, cache hits/misses, dies processed, effective-
  sample-size fractions, ...);
* **tracing** (:mod:`repro.observability.tracing`) — ``trace(name)``
  spans aggregating into a hierarchical wall-time tree that survives
  the :class:`~repro.parallel.executor.ParallelExecutor` process
  boundary (workers snapshot, the parent merges);
* **logging** (:mod:`repro.observability.log`) — event-style
  structured logs, human one-liners or JSON lines.

Everything is **off by default** and costs a single flag check per
instrumented call site, so the library's numbers and the timing-
sensitive benchmarks are unaffected until a caller opts in::

    from repro import observability

    observability.configure(verbosity=1)      # logs on, metrics on
    ... run an experiment ...
    report = observability.snapshot()         # JSON-ready dict

The CLI exposes the same switchboard as ``-v`` / ``--log-json`` /
``--metrics-out FILE`` on ``python -m repro.experiments``; the report
schema and a worked walkthrough live in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.observability import _state
from repro.observability import context
from repro.observability import diagnostics
from repro.observability import export
from repro.observability import log
from repro.observability.context import (
    RunContext,
    RunScope,
    current_run_id,
    current_scope,
)
from repro.observability.diagnostics import (
    BatchDiagnostics,
    DiagnosticThresholds,
    WeightDiagnostics,
    clopper_pearson_interval,
    weight_diagnostics,
    wilson_interval,
)
from repro.observability.env import environment_fingerprint, git_sha
from repro.observability.log import configure as configure_logging, get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    incr,
    observe,
    registry,
    set_gauge,
)
from repro.observability.profiling import (
    disable_profiling,
    enable_profiling,
    profile,
    profile_names,
    profiling_enabled,
    reset_profiles,
    write_profile,
)
from repro.observability import tracing
from repro.observability.tracing import (
    SpanNode,
    Timeline,
    Tracer,
    disable_timeline,
    enable_timeline,
    merge_timeline,
    timeline_enabled,
    timeline_snapshot,
    trace,
    tracer,
)

#: Version tag written into every ``--metrics-out`` report (defined in
#: :mod:`repro.observability.context`, which cannot import this
#: package without a cycle).
SCHEMA = context.SCHEMA

#: Counters that every report must contain even when the code path
#: that would create them never ran (a run without ``--cache-dir``
#: still reports ``cache.hits = 0``, so downstream consumers can rely
#: on the key).
_BASELINE_COUNTERS = (
    "cache.hits",
    "cache.misses",
    "cache.puts",
    "cache.quarantined",
    "executor.retries",
    "executor.task_failures",
    "executor.pool_respawns",
    "mc.estimates",
    "mc.samples",
)


def enabled() -> bool:
    """True while metrics/trace collection is on."""
    return _state.enabled


def enable() -> None:
    """Turn metric and trace collection on (idempotent)."""
    _state.set_enabled(True)
    for name in _BASELINE_COUNTERS:
        registry.counter(name)


def disable() -> None:
    """Turn metric and trace collection off (data is kept)."""
    _state.set_enabled(False)


def reset() -> None:
    """Drop all collected metrics, traces, diagnostics, and profiles."""
    registry.reset()
    tracer.reset()
    diagnostics.recorder.reset()
    reset_profiles()


def configure(
    verbosity: int = 0,
    json_lines: bool = False,
    metrics: bool = True,
    stream=None,
) -> None:
    """One-call setup: logging wiring plus the collection switch.

    Args:
        verbosity: log level — 0 warnings, 1 progress, 2+ debug.
        json_lines: render log events as JSON lines.
        metrics: also enable metric/trace collection.
        stream: log destination (default stderr).
    """
    configure_logging(verbosity=verbosity, json_lines=json_lines, stream=stream)
    if metrics:
        enable()


def snapshot() -> dict:
    """Everything collected so far, as a JSON-serialisable dict.

    ``diagnostics`` (per-scope estimator health — CI half-widths,
    effective sample sizes, convergence verdicts) is an additive block
    under the unchanged ``repro.telemetry/1`` schema.
    """
    return {
        "schema": SCHEMA,
        "metrics": registry.snapshot(),
        "trace": tracer.snapshot(),
        "diagnostics": diagnostics.recorder.snapshot(),
    }


# ----------------------------------------------------------------------
# Cross-process plumbing (used by repro.parallel.executor)
# ----------------------------------------------------------------------
def worker_begin(run_id: str | None = None) -> None:
    """Start an isolated collection scope inside a worker process.

    Called at the top of every fanned-out task: enables collection and
    clears any state inherited from the parent at fork time, so the
    snapshot taken at task end contains exactly that task's telemetry.
    ``run_id`` is the parent's active run id, shipped across the
    pickle boundary in the task payload; installing it here keeps
    worker-side log events stamped with the run that owns the fan-out
    (and works identically under fork and spawn start methods).
    """
    reset()
    _state.set_enabled(True)
    context.enter_worker_scope(run_id)


def worker_snapshot() -> dict:
    """The worker-side telemetry delta to ship back to the parent.

    ``timeline`` is ``None`` unless the parent had armed timeline
    recording before the fan-out (fork start method inherits the armed
    state; ``worker_begin``'s reset then re-arms a fresh task-local
    timeline).
    """
    return {
        "metrics": registry.snapshot(),
        "trace": tracer.snapshot(),
        "diagnostics": diagnostics.recorder.snapshot(),
        "timeline": timeline_snapshot(),
    }


def merge_worker(snapshot_dict: dict) -> None:
    """Absorb a :func:`worker_snapshot` into the parent's collectors.

    Metrics accumulate into the process-wide registry; the worker's
    trace subtree is grafted under the span open at the call site, so
    fanned-out work lands in the tree exactly where the fan-out
    happened.  The merge runs on the thread that owns the fan-out, so
    when that thread is inside a :class:`RunContext` the same snapshot
    also lands in the owning scope — worker telemetry routes back to
    the run that dispatched it, not just to the process totals.
    """
    registry.merge(snapshot_dict["metrics"])
    tracer.merge_at_current(snapshot_dict["trace"])
    # Additive keys: snapshots from older workers simply lack them.
    diagnostics.recorder.merge(snapshot_dict.get("diagnostics", {}))
    merge_timeline(snapshot_dict.get("timeline"))
    scope = context.current_scope()
    if scope is not None:
        scope.registry.merge(snapshot_dict["metrics"])
        scope.tracer.merge_at_current(snapshot_dict["trace"])
        scope.recorder.merge(snapshot_dict.get("diagnostics", {}))


__all__ = [
    "SCHEMA",
    "BatchDiagnostics",
    "Counter",
    "DiagnosticThresholds",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanNode",
    "Timeline",
    "Tracer",
    "WeightDiagnostics",
    "RunContext",
    "RunScope",
    "clopper_pearson_interval",
    "configure",
    "configure_logging",
    "context",
    "current_run_id",
    "current_scope",
    "diagnostics",
    "disable",
    "disable_profiling",
    "disable_timeline",
    "enable",
    "enable_profiling",
    "enable_timeline",
    "enabled",
    "export",
    "environment_fingerprint",
    "get_logger",
    "git_sha",
    "incr",
    "log",
    "merge_timeline",
    "merge_worker",
    "observe",
    "profile",
    "profile_names",
    "profiling_enabled",
    "registry",
    "reset",
    "reset_profiles",
    "set_gauge",
    "snapshot",
    "timeline_enabled",
    "timeline_snapshot",
    "trace",
    "tracer",
    "tracing",
    "weight_diagnostics",
    "wilson_interval",
    "worker_begin",
    "worker_snapshot",
    "write_profile",
]
