"""Structured logging for the ``repro`` namespace.

Every module logs *events*: a short dotted event name plus key=value
fields, emitted through an :class:`EventLogger`::

    from repro.observability.log import get_logger

    _log = get_logger("core.tables")
    _log.info("table.build.start", grid=21, vbody=0.0)

:func:`configure` wires a single handler onto the ``repro`` root
logger and picks the rendering:

* human (default): ``HH:MM:SS LEVEL logger event k=v k=v`` — what
  ``-v`` / ``-vv`` print on stderr;
* JSON lines (``json_lines=True``): one JSON object per line with
  ``ts`` / ``level`` / ``logger`` / ``event`` plus the fields — the
  ``--log-json`` form, made for piping into ``jq`` or a log shipper.

Unconfigured (the library default), the ``repro`` logger has no
handler and sits at WARNING, and every :class:`EventLogger` call is
guarded by ``isEnabledFor`` — instrumented code costs one level check
per event when logging is off.
"""

from __future__ import annotations

import json
import logging
import sys
import time

from repro.observability import _state

#: Root of the library's logger namespace.
ROOT = "repro"

#: The handler installed by :func:`configure` (tracked so repeated
#: calls reconfigure instead of stacking handlers).
_handler: logging.Handler | None = None


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger event k=v ...`` on one line."""

    def format(self, record: logging.LogRecord) -> str:
        clock = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{clock} {record.levelname:7s} {record.name} {record.getMessage()}"
        )
        fields = getattr(record, "event_fields", None)
        if fields:
            line += " " + " ".join(
                f"{key}={_render(value)}" for key, value in fields.items()
            )
        return line


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per event (``--log-json``)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "event_fields", None)
        if fields:
            payload.update(fields)
        return json.dumps(payload, default=str)


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    # Values a k=v grammar cannot carry bare — spaces, '=', quotes, or
    # an empty string — are double-quoted with backslash escapes, so
    # the human line stays machine-splittable on whitespace.
    if text == "" or any(ch in text for ch in ' ="'):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


class EventLogger:
    """Thin wrapper emitting (event, **fields) records."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _emit(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            # Stamp the active run id (leading position, for eyeballs
            # and grep alike).  Reads the context variable directly —
            # not the metrics switch — so `--log-json --run-id X`
            # correlates even when metric collection is off.  An
            # explicit run_id field wins over the ambient one.
            run_id = _state.current_run_id()
            if run_id is not None and "run_id" not in fields:
                fields = {"run_id": run_id, **fields}
            self._logger.log(level, event, extra={"event_fields": fields})

    def debug(self, event: str, **fields) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit(logging.WARNING, event, fields)


def get_logger(name: str = "") -> EventLogger:
    """The event logger for ``repro.<name>`` (or the root)."""
    full = f"{ROOT}.{name}" if name else ROOT
    return EventLogger(logging.getLogger(full))


def configure(
    verbosity: int = 0,
    json_lines: bool = False,
    stream=None,
) -> None:
    """Wire up the ``repro`` logger tree.

    Args:
        verbosity: 0 = warnings only, 1 = progress events (INFO),
            2+ = everything (DEBUG) — the CLI's ``-v`` count.
        json_lines: emit one JSON object per event instead of the
            human one-liner (the CLI's ``--log-json``).
        stream: destination, default ``sys.stderr`` (keeps telemetry
            separate from the experiment's stdout rows).

    Idempotent: calling again replaces the previous configuration
    rather than stacking handlers.
    """
    global _handler
    root = logging.getLogger(ROOT)
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _handler.setFormatter(
        JsonLinesFormatter() if json_lines else HumanFormatter()
    )
    root.addHandler(_handler)
    root.propagate = False
    if verbosity <= 0:
        root.setLevel(logging.WARNING)
    elif verbosity == 1:
        root.setLevel(logging.INFO)
    else:
        root.setLevel(logging.DEBUG)
