"""Deterministic chaos-injection harness.

The paper's self-repair loop is a fail-detect-retry-degrade discipline
for silicon; this package is the same discipline for the compute stack,
plus the harness that proves it works.  A :class:`FaultPlan` describes
*exactly* which task of a :class:`~repro.parallel.executor.ParallelExecutor`
fan-out crashes or hangs, and which durable write is torn or corrupted —
by task index and path pattern, never by wall clock or randomness — so
every resilience behavior (bounded retry, pool respawn, serial
degradation, checksum quarantine, checkpoint resume) is testable in CI
without flakes.

Activation paths:

* construct a plan and hand it to
  :class:`~repro.experiments.context.ExperimentContext(fault_plan=...)`
  (or directly to a :class:`ParallelExecutor`);
* set ``REPRO_FAULT_PLAN`` to the plan's JSON (or ``@/path/to/plan``)
  and the experiments CLI arms it at startup — how subprocess-level
  tests and the ``chaos-smoke`` CI job drive the harness.

See ``docs/robustness.md`` for the failure-mode catalogue and a
cookbook of plans.
"""

from repro.faults.plan import (
    ENV_VAR,
    SERVICE_KINDS,
    TASK_KINDS,
    WRITE_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_plan,
    apply_task_action,
    clear,
    install,
    plan_from_env,
)

__all__ = [
    "ENV_VAR",
    "SERVICE_KINDS",
    "TASK_KINDS",
    "WRITE_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "apply_task_action",
    "clear",
    "install",
    "plan_from_env",
]
