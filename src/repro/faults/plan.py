"""Fault plans: deterministic, bounded fault injection.

A :class:`FaultSpec` names one failure mode and where it strikes; a
:class:`FaultPlan` is an ordered collection of specs with a *budget*
(``times``) per spec.  Injection sites consult the plan at well-defined
points:

* the executor asks :meth:`FaultPlan.task_action` once per task
  *attempt*, in the parent process, at submission time — so a spec with
  ``times=1`` crashes the first attempt of its task and lets the retry
  run clean, deterministically;
* the durable-write helper asks :meth:`FaultPlan.write_action` once per
  file write, matching the spec's ``path_pattern`` against both the
  file name and the full path;
* the job service asks :meth:`FaultPlan.service_action` at its own
  lifecycle sites — job admission (``admission``), each durable ledger
  append (``ledger.accepted``, ``ledger.started``, ...), and job start
  (``job.start``) — matching the spec's ``site`` pattern so chaos runs
  can pin exactly where a crash, forced rejection, or deadline
  squeeze lands.

Budgets are consumed in the process that consults the plan (the
parent), so a plan is exact: ``times=1`` means exactly one injection
per matching site, never "roughly once depending on scheduling".
"""

from __future__ import annotations

import dataclasses
import fnmatch
import json
import os
import pathlib
import time

from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("faults.plan")

#: Environment hook read by the CLI (JSON text, or ``@/path/to/json``).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Fault kinds applied to executor tasks (keyed by task index).
TASK_KINDS = ("worker_crash", "task_hang", "task_slow")
#: Fault kinds applied to durable writes (keyed by path pattern).
WRITE_KINDS = ("torn_write", "corrupt_write")
#: Fault kinds applied to service lifecycle sites (keyed by ``site``):
#: ``service_crash`` hard-kills the process right after a matching
#: durable ledger append (the write is on disk, the process is not);
#: ``job_deadline`` overrides a starting job's effective deadline to
#: ``seconds``; ``reject_burst`` forces admission rejections (429) for
#: the next ``times`` new-job submissions.
SERVICE_KINDS = ("service_crash", "job_deadline", "reject_burst")


class FaultInjected(RuntimeError):
    """An injected task crash (the inline analogue of a worker death)."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One failure mode and where it strikes.

    Attributes:
        kind: one of :data:`TASK_KINDS` or :data:`WRITE_KINDS`.
        task_index: for task kinds — the 0-based index (within one
            ``ParallelExecutor.map`` call) the fault targets; ``None``
            targets every task until the budget runs out.
        path_pattern: for write kinds — an ``fnmatch`` pattern tested
            against the target file's name and full path.
        site: for service kinds — an ``fnmatch`` pattern tested
            against the lifecycle site name (``admission``,
            ``ledger.started``, ``job.start``, ...); ``None`` matches
            every site the kind is consulted at.
        times: injection budget; each strike consumes one.
        seconds: sleep duration for ``task_hang`` / ``task_slow``
            (a hang should exceed the retry policy's timeout, a slow
            task should not); for ``job_deadline``, the forced
            effective deadline in seconds.
        exit_code: process exit status for an injected worker crash or
            ``service_crash``.
    """

    kind: str
    task_index: int | None = None
    path_pattern: str | None = None
    site: str | None = None
    times: int = 1
    seconds: float = 0.25
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS + WRITE_KINDS + SERVICE_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {TASK_KINDS + WRITE_KINDS + SERVICE_KINDS}"
            )
        if self.kind in WRITE_KINDS and self.path_pattern is None:
            raise ValueError(f"{self.kind} spec needs a path_pattern")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


class FaultPlan:
    """An armed set of :class:`FaultSpec` with per-spec budgets.

    The plan is mutable state (budgets count down as faults fire) but
    its *decisions* are deterministic: the same sequence of
    ``task_action`` / ``write_action`` queries always yields the same
    injections.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()):
        self.specs = [
            s if isinstance(s, FaultSpec) else FaultSpec(**s) for s in specs
        ]
        self._remaining = [spec.times for spec in self.specs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.specs!r})"

    # -- injection queries ------------------------------------------------
    def task_action(self, task_index: int) -> dict | None:
        """The fault (as a picklable action dict) for one task attempt.

        Consumes one unit of the first matching armed spec; returns
        ``None`` when no spec matches or every match is spent.
        """
        for slot, spec in enumerate(self.specs):
            if spec.kind not in TASK_KINDS or self._remaining[slot] <= 0:
                continue
            if spec.task_index is not None and spec.task_index != task_index:
                continue
            self._remaining[slot] -= 1
            incr("faults.injected")
            _log.warning(
                "faults.task_injected",
                kind=spec.kind,
                task_index=task_index,
                remaining=self._remaining[slot],
            )
            return {
                "kind": spec.kind,
                "seconds": spec.seconds,
                "exit_code": spec.exit_code,
            }
        return None

    def write_action(self, path) -> str | None:
        """The write-fault kind for ``path``, or None (consumes budget)."""
        path = pathlib.Path(path)
        for slot, spec in enumerate(self.specs):
            if spec.kind not in WRITE_KINDS or self._remaining[slot] <= 0:
                continue
            if not (
                fnmatch.fnmatch(path.name, spec.path_pattern)
                or fnmatch.fnmatch(str(path), spec.path_pattern)
            ):
                continue
            self._remaining[slot] -= 1
            incr("faults.injected")
            _log.warning(
                "faults.write_injected",
                kind=spec.kind,
                path=str(path),
                remaining=self._remaining[slot],
            )
            return spec.kind
        return None

    def service_action(self, kind: str, site: str) -> FaultSpec | None:
        """The armed spec of ``kind`` striking at ``site``, or None.

        The service consults this with the *specific* kind each
        lifecycle site understands (``reject_burst`` at admission,
        ``service_crash`` after ledger appends, ``job_deadline`` at job
        start), so a plan mixing service kinds never fires one at a
        site that cannot honor it.  Consumes one unit of the first
        matching armed spec.
        """
        if kind not in SERVICE_KINDS:
            raise ValueError(f"not a service fault kind: {kind!r}")
        for slot, spec in enumerate(self.specs):
            if spec.kind != kind or self._remaining[slot] <= 0:
                continue
            if spec.site is not None and not fnmatch.fnmatch(site, spec.site):
                continue
            self._remaining[slot] -= 1
            incr("faults.injected")
            _log.warning(
                "faults.service_injected",
                kind=spec.kind,
                site=site,
                remaining=self._remaining[slot],
            )
            return spec
        return None

    @property
    def exhausted(self) -> bool:
        """True when every spec's budget has been consumed."""
        return all(r <= 0 for r in self._remaining)

    # -- (de)serialisation ------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"specs": [dataclasses.asdict(spec) for spec in self.specs]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        specs = payload.get("specs", payload) if isinstance(payload, dict) \
            else payload
        return cls([FaultSpec(**spec) for spec in specs])


# ----------------------------------------------------------------------
# Process-wide active plan (consulted by the durable-write helper and,
# as a fallback, by executors without an explicit plan).
# ----------------------------------------------------------------------
_active: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Arm ``plan`` process-wide (``None`` disarms)."""
    global _active
    _active = plan


def active_plan() -> FaultPlan | None:
    """The armed process-wide plan, if any."""
    return _active


def clear() -> None:
    """Disarm any process-wide plan."""
    install(None)


def plan_from_env(environ=None) -> FaultPlan | None:
    """The plan described by :data:`ENV_VAR`, or None when unset.

    The value is JSON text, or ``@/path/to/plan.json`` to read a file.
    A malformed value raises ``ValueError`` — a chaos run with a typo'd
    plan must fail loudly, not silently run fault-free.
    """
    environ = environ if environ is not None else os.environ
    raw = environ.get(ENV_VAR)
    if not raw:
        return None
    if raw.startswith("@"):
        raw = pathlib.Path(raw[1:]).read_text()
    try:
        return FaultPlan.from_json(raw)
    except (json.JSONDecodeError, TypeError, KeyError) as exc:
        raise ValueError(f"malformed {ENV_VAR}: {exc}") from exc


def apply_task_action(action: dict | None, in_worker: bool) -> None:
    """Execute an injected task fault at the top of a task body.

    ``worker_crash`` kills the hosting process when running in a pool
    worker (producing a genuine ``BrokenProcessPool`` upstream) and
    raises :class:`FaultInjected` on the inline path, where killing the
    process would take the caller down with it.  ``task_hang`` and
    ``task_slow`` sleep for the spec's duration — a hang is simply a
    sleep longer than the retry policy's timeout.
    """
    if action is None:
        return
    kind = action["kind"]
    if kind == "worker_crash":
        if in_worker:
            os._exit(int(action.get("exit_code", 13)))
        raise FaultInjected("injected task crash (inline)")
    if kind in ("task_hang", "task_slow"):
        time.sleep(float(action.get("seconds", 0.25)))
        return
    raise ValueError(f"unknown task fault kind {kind!r}")
