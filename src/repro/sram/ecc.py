"""SEC-DED error-correcting code and its yield model.

Column redundancy (the paper's repair resource) and ECC are the two
classic yield-enhancement knobs for embedded SRAM; this module provides
the ECC side so the two can be compared at equal overhead:

* :class:`HammingSecDed` — a real extended-Hamming encoder/decoder
  (single-error correction, double-error detection), vectorised over
  words;
* :func:`word_failure_probability` / :func:`memory_failure_with_ecc` —
  the statistical model: a SEC-DED word survives one bad cell, so the
  per-word failure is the two-or-more tail of a binomial.

Parametric failures are *hard* (a failing cell fails on every access),
so ECC spends its single correction permanently — which is why the
paper's redundancy+tuning approach wins for parametric yield while ECC
is reserved for soft errors in practice.  The ``ext`` experiment in the
benchmark suite quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats


def _parity_check_matrix(n_data: int) -> tuple[np.ndarray, int]:
    """H matrix (r x n) of a Hamming code covering ``n_data`` data bits.

    Columns are the binary representations of 1..n; positions that are
    powers of two carry parity bits.  Returns (H, r).
    """
    r = 1
    while (1 << r) < n_data + r + 1:
        r += 1
    n = n_data + r
    h = np.zeros((r, n), dtype=np.uint8)
    for position in range(1, n + 1):
        for bit in range(r):
            h[bit, position - 1] = (position >> bit) & 1
    return h, r


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding a block of words.

    Attributes:
        data: corrected data bits, shape (..., k).
        corrected: words where a single error was fixed.
        detected: words with an uncorrectable (double) error.
    """

    data: np.ndarray
    corrected: np.ndarray
    detected: np.ndarray


class HammingSecDed:
    """Extended Hamming code: SEC-DED over ``n_data`` bits per word.

    The default (64 data bits -> 72-bit codeword) is the ubiquitous
    (72, 64) memory ECC: 8 check bits, 12.5% overhead.
    """

    def __init__(self, n_data: int = 64) -> None:
        if n_data < 1:
            raise ValueError(f"n_data must be positive, got {n_data}")
        self.k = n_data
        self._h, self.r = _parity_check_matrix(n_data)
        self.n = self.k + self.r + 1  # +1 overall parity bit (DED)
        powers = {1 << i for i in range(self.r)}
        #: Codeword positions (0-based) of the data bits.
        self.data_positions = np.array(
            [p - 1 for p in range(1, self.k + self.r + 1) if p not in powers],
            dtype=np.intp,
        )
        #: Codeword positions of the Hamming parity bits.
        self.parity_positions = np.array(
            sorted(p - 1 for p in powers), dtype=np.intp
        )

    @property
    def overhead(self) -> float:
        """Check-bit overhead (n - k) / k."""
        return (self.n - self.k) / self.k

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data bits (shape (..., k), 0/1) into codewords (..., n)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] != self.k:
            raise ValueError(
                f"last axis must be {self.k} data bits, got {data.shape[-1]}"
            )
        shape = data.shape[:-1] + (self.n,)
        code = np.zeros(shape, dtype=np.uint8)
        code[..., self.data_positions] = data
        # Hamming parity bits: parity over the covered positions.
        inner = code[..., : self.k + self.r]
        for bit in range(self.r):
            covered = self._h[bit].astype(bool)
            parity = inner[..., covered].sum(axis=-1) % 2
            # The parity position itself is covered; since it is still
            # zero, the computed parity is exactly the required value.
            code[..., self.parity_positions[bit]] = parity
        # Overall parity bit for double-error detection.
        code[..., -1] = code[..., :-1].sum(axis=-1) % 2
        return code

    def decode(self, code: np.ndarray) -> DecodeResult:
        """Decode codewords (..., n); correct singles, flag doubles."""
        code = np.asarray(code, dtype=np.uint8)
        if code.shape[-1] != self.n:
            raise ValueError(
                f"last axis must be {self.n} code bits, got {code.shape[-1]}"
            )
        work = code.copy()
        inner = work[..., : self.k + self.r]
        syndrome = np.zeros(code.shape[:-1], dtype=np.intp)
        for bit in range(self.r):
            covered = self._h[bit].astype(bool)
            parity = inner[..., covered].sum(axis=-1) % 2
            syndrome = syndrome | (parity.astype(np.intp) << bit)
        overall = work.sum(axis=-1) % 2  # includes the extra parity bit

        # Classification:  syndrome != 0 & overall parity wrong -> single
        # error at `syndrome` (1-based position), correctable.  syndrome
        # != 0 & overall parity right -> double error, detected.
        # syndrome == 0 & overall wrong -> error in the extra parity bit.
        # A syndrome pointing beyond the codeword (possible with >= 3
        # errors) is uncorrectable and flagged as detected.
        in_range = syndrome <= self.k + self.r
        single = (syndrome != 0) & (overall == 1) & in_range
        double = ((syndrome != 0) & (overall == 0)) | (
            (syndrome != 0) & (overall == 1) & ~in_range
        )
        if np.any(single):
            index = np.nonzero(single)
            flip = syndrome[index] - 1
            work[index + (flip,)] ^= 1
        return DecodeResult(
            data=work[..., self.data_positions],
            corrected=single,
            detected=double,
        )


def word_failure_probability(p_cell: float, word_bits: int) -> float:
    """P(>= 2 bad cells in a word) — what SEC-DED cannot absorb."""
    if word_bits < 1:
        raise ValueError(f"word_bits must be positive, got {word_bits}")
    return float(sp_stats.binom.sf(1, word_bits, min(max(p_cell, 0.0), 1.0)))


def memory_failure_with_ecc(
    p_cell: float, n_words: int, word_bits: int = 72
) -> float:
    """P(memory fails) with per-word SEC-DED and no other repair.

    The memory fails when *any* word carries two or more hard-failing
    cells.  Evaluated stably through logs for tiny probabilities.
    """
    if n_words < 1:
        raise ValueError(f"n_words must be positive, got {n_words}")
    p_word = word_failure_probability(p_cell, word_bits)
    if p_word >= 1.0:
        return 1.0
    return float(-np.expm1(n_words * np.log1p(-p_word)))
