"""The 8T cell: a read-decoupled alternative to the paper's 6T.

The paper's read failures exist because the 6T cell exposes its '0'
node to the precharged bitline through the access transistor.  The
canonical architectural fix — contemporaneous with the paper — is the
8T cell: a 6T storage core whose wordline port is used only for writes,
plus a two-transistor read buffer (a read-wordline transistor in series
with a driver gated by the storage node).  Reads never disturb the
cell, so the read-failure wall of Fig. 2a disappears; the price is
~30% cell area and a single-ended read.

This module reuses the 6T solvers for the shared mechanisms and adds
the read-buffer physics, so the two topologies can be compared under
identical variation, criteria, and body bias
(:func:`eight_t_failure_probabilities`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.failures.criteria import FailureCriteria
from repro.sram.cell import CellGeometry, SixTCell
from repro.sram.metrics import OperatingConditions, compute_cell_metrics
from repro.sram.solver import bisect_monotone
from repro.stats.montecarlo import MonteCarloResult, probability_of
from repro.stats.sampling import importance_sample_dvt
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters
from repro.technology.variation import RandomDopantFluctuation


@dataclass(frozen=True)
class EightTGeometry:
    """Sizing of the 8T read buffer (the core reuses CellGeometry).

    Attributes:
        w_read_driver: width of the storage-node-gated driver [m].
        w_read_access: width of the read-wordline transistor [m].
    """

    w_read_driver: float = 200e-9
    w_read_access: float = 200e-9

    def __post_init__(self) -> None:
        if self.w_read_driver <= 0 or self.w_read_access <= 0:
            raise ValueError("read-buffer widths must be positive")

    @property
    def area_overhead(self) -> float:
        """Rough area cost vs the 6T core (transistor-count based)."""
        return 2.0 / 6.0


@dataclass(frozen=True)
class EightTCell:
    """An 8T cell population: a 6T core plus a read buffer.

    The core's ``dvt`` samples drive the shared write/hold metrics; the
    buffer transistors get their own RDF deltas.
    """

    core: SixTCell
    buffer: EightTGeometry
    dvt_read_driver: np.ndarray | float = 0.0
    dvt_read_access: np.ndarray | float = 0.0

    @property
    def tech(self) -> TechnologyParameters:
        return self.core.tech

    def read_stack_current(
        self, vdd: float, vbody_n: float = 0.0
    ) -> np.ndarray:
        """Read-bitline discharge current [A] through the buffer stack.

        Both stack devices are on (stored '1' gates the driver, the
        read wordline gates the access device); the current is set by
        the series solution of the intermediate node.
        """
        from repro.devices.factory import make_nmos

        corner = self.core.corner.dvt_inter
        driver = make_nmos(
            self.tech, self.buffer.w_read_driver,
            dvt=corner + np.asarray(self.dvt_read_driver, dtype=float),
        )
        access = make_nmos(
            self.tech, self.buffer.w_read_access,
            dvt=corner + np.asarray(self.dvt_read_access, dtype=float),
        )
        shape = np.broadcast_shapes(
            np.shape(driver.dvt) or (1,), np.shape(access.dvt) or (1,)
        )

        def net(vm: np.ndarray) -> np.ndarray:
            # Current into the intermediate node from the bitline minus
            # the driver pulling it to ground; decreasing in vm.
            i_in = access.current(vg=vdd, vd=vdd, vs=vm, vb=vbody_n)
            i_out = driver.current(vg=vdd, vd=vm, vs=0.0, vb=vbody_n)
            return i_in - i_out

        vm = bisect_monotone(net, 0.0, vdd, shape)
        return np.asarray(
            access.current(vg=vdd, vd=vdd, vs=vm, vb=vbody_n), dtype=float
        )


def sample_eight_t(
    tech: TechnologyParameters,
    rng: np.random.Generator,
    size: int,
    geometry: CellGeometry | None = None,
    buffer: EightTGeometry | None = None,
    corner: ProcessCorner | None = None,
    scale: float = 1.0,
) -> tuple[EightTCell, np.ndarray]:
    """Draw an 8T population; returns (cell, importance weights).

    With ``scale > 1`` the six core deltas come from the sigma-inflated
    proposal (shared likelihood-ratio weights); the buffer deltas are
    sampled plainly — they only affect the access metric, whose
    distribution is comfortably resolved without tail inflation.
    """
    geometry = geometry if geometry is not None else CellGeometry()
    buffer = buffer if buffer is not None else EightTGeometry()
    corner = corner if corner is not None else ProcessCorner(0.0)
    sample = importance_sample_dvt(tech, geometry, rng, size, scale)
    core = SixTCell(tech, geometry, corner, sample.dvt)
    rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
    dvt_driver = rdf.sample(rng, buffer.w_read_driver, tech.length, size)
    dvt_access = rdf.sample(rng, buffer.w_read_access, tech.length, size)
    return (
        EightTCell(core, buffer, dvt_driver, dvt_access),
        sample.weights,
    )


def eight_t_failure_probabilities(
    cell: EightTCell,
    weights: np.ndarray,
    criteria: FailureCriteria,
    conditions: OperatingConditions,
) -> dict[str, MonteCarloResult]:
    """Per-mechanism failure probabilities of the 8T population.

    * read: structurally disturb-free (the storage node is never
      exposed) — reported as exactly zero;
    * write / hold: identical to the 6T core;
    * access: the read-stack current against the same minimum-current
      criterion as the 6T (same bitline budget).
    """
    metrics = compute_cell_metrics(cell.core, conditions)
    i_read = cell.read_stack_current(conditions.vdd, conditions.vbody_n)
    fails = {
        "read": np.zeros(cell.core.population, dtype=bool),
        "write": criteria.write_fails(metrics),
        "access": i_read < criteria.i_access_min,
        "hold": criteria.hold_fails(metrics),
    }
    fails["any"] = (
        fails["read"] | fails["write"] | fails["access"] | fails["hold"]
    )
    return {
        name: probability_of(indicator, weights)
        for name, indicator in fails.items()
    }
