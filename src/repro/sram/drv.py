"""Data retention voltage (DRV) analysis (the paper's reference [9]).

The DRV is the lowest standby supply at which a cell still holds its
data.  Qin et al. (ISQED 2004 — the paper's [9]) minimise standby power
by dropping the supply to just above the *array's* DRV, which is the
max over its cells' DRVs; the paper's hold-failure statistics are the
probabilistic version of the same physics, and its source-biasing
technique is the complementary knob (raise the source instead of
dropping the supply).

:func:`cell_drv` computes each cell's DRV on a supply grid with the
calibrated retention criterion; :func:`array_drv` bootstraps the
max-over-cells statistics that set a safe standby voltage per die.
"""

from __future__ import annotations

import numpy as np

from repro.failures.criteria import FailureCriteria
from repro.sram.cell import SixTCell
from repro.sram.metrics import OperatingConditions, compute_hold_margin


def retention_ok(
    cell: SixTCell,
    vdd_standby: float,
    criteria: FailureCriteria,
    vbody_n: float = 0.0,
) -> np.ndarray:
    """Boolean array: each cell retains data at ``vdd_standby`` [V]."""
    conditions = OperatingConditions(
        vdd=cell.tech.vdd, vdd_standby=vdd_standby, vsb=0.0, vbody_n=vbody_n
    )
    margin = compute_hold_margin(cell, conditions)
    return margin >= criteria.hold_fraction_min * vdd_standby


def cell_drv(
    cell: SixTCell,
    criteria: FailureCriteria,
    vbody_n: float = 0.0,
    v_min: float = 0.05,
    v_max: float | None = None,
    n_levels: int = 25,
) -> np.ndarray:
    """Per-cell data retention voltage [V] on a supply grid.

    Retention is monotone in the standby supply (a cell that holds at V
    also holds at any higher V), so each cell's DRV is the lowest grid
    level at which it retains, resolved to ``(v_max - v_min) /
    (n_levels - 1)``.  Cells that retain even at ``v_min`` report
    ``v_min``; cells failing at every level report ``v_max`` (and
    should worry the designer).  Each level is one vectorised hold
    solve over the whole population.
    """
    v_max = v_max if v_max is not None else cell.tech.vdd
    if v_min >= v_max:
        raise ValueError("v_min must be below v_max")
    if n_levels < 2:
        raise ValueError("n_levels must be at least 2")
    levels = np.linspace(v_min, v_max, n_levels)
    drv = np.full(cell.population, float(v_max))
    # Scan from the top down: the DRV is the last level that retained.
    for level in levels[::-1]:
        ok = np.asarray(
            retention_ok(cell, float(level), criteria, vbody_n)
        ).reshape(-1)
        drv = np.where(ok, level, drv)
        if not ok.any():
            break
    return drv


def array_drv(
    cell_drvs: np.ndarray,
    n_cells: int,
    rng: np.random.Generator,
    n_arrays: int = 1000,
) -> np.ndarray:
    """Sampled array DRVs: max over ``n_cells`` resampled cell DRVs.

    Bootstraps array-level maxima from a cell-level DRV sample — the
    per-die safe standby voltage is set by the worst cell on the die.
    Resampling width is capped at 200k draws per array; beyond that the
    max changes only logarithmically (the DRV tail is exponential).
    """
    if n_cells <= 0 or n_arrays <= 0:
        raise ValueError("n_cells and n_arrays must be positive")
    cell_drvs = np.asarray(cell_drvs, dtype=float)
    if cell_drvs.size == 0:
        raise ValueError("need at least one cell DRV")
    width = int(min(n_cells, 200_000))
    draws = rng.choice(cell_drvs, size=(n_arrays, width))
    return draws.max(axis=1)


def safe_standby_voltage(
    cell_drvs: np.ndarray,
    n_cells: int,
    rng: np.random.Generator,
    guard_band: float = 0.05,
    quantile: float = 0.99,
) -> float:
    """A die-population-safe standby supply [V] (ref [9]'s objective).

    The ``quantile`` of the bootstrapped array-DRV distribution plus a
    ``guard_band`` — the voltage at which at most ``1 - quantile`` of
    dies would lose data in deep standby.
    """
    maxima = array_drv(cell_drvs, n_cells, rng)
    return float(np.quantile(maxima, quantile) + guard_band)
