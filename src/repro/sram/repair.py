"""Redundancy repair allocation.

The yield math in :mod:`repro.failures.memory` only *counts* faulty
columns; a real memory must also decide which spare replaces what.
This module implements the allocators:

* :func:`allocate_columns` — the paper's column-only scheme: any column
  containing a faulty cell is swapped for a spare, first-come
  first-served (order is irrelevant for pure column repair);
* :func:`allocate_rows_and_columns` — the classic greedy must-repair
  algorithm for combined row+column redundancy: lines whose fault count
  exceeds the *other* dimension's remaining spares must be repaired by
  their own dimension; leftover sporadic faults are covered
  greedily.  Exact optimal allocation is NP-complete (Kuo & Fuchs), so
  the greedy allocator is validated against exhaustive search on small
  instances in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np


@dataclass(frozen=True)
class RepairPlan:
    """The outcome of a repair allocation.

    Attributes:
        success: every faulty cell is covered by a replaced line.
        rows: indices of replaced rows.
        columns: indices of replaced columns.
    """

    success: bool
    rows: tuple[int, ...] = field(default=())
    columns: tuple[int, ...] = field(default=())

    def covers(self, fail_map: np.ndarray) -> bool:
        """True when every fault lies on a replaced row or column."""
        remaining = fail_map.copy()
        if self.rows:
            remaining[list(self.rows), :] = False
        if self.columns:
            remaining[:, list(self.columns)] = False
        return not remaining.any()


def allocate_columns(fail_map: np.ndarray, spare_columns: int) -> RepairPlan:
    """Column-only repair (the paper's redundancy model)."""
    if spare_columns < 0:
        raise ValueError("spare_columns must be non-negative")
    faulty = np.nonzero(fail_map.any(axis=0))[0]
    if faulty.size > spare_columns:
        return RepairPlan(success=False, columns=tuple(faulty[:spare_columns]))
    return RepairPlan(success=True, columns=tuple(int(c) for c in faulty))


def allocate_rows_and_columns(
    fail_map: np.ndarray, spare_rows: int, spare_columns: int
) -> RepairPlan:
    """Greedy must-repair allocation for row+column redundancy.

    1. *Must-repair*: a row with more faults than the remaining column
       spares can only be fixed by a row spare (and symmetrically) —
       iterate until stable.
    2. *Sporadic*: remaining faults are isolated; cover them greedily by
       whichever dimension removes the most faults per spare.
    """
    if spare_rows < 0 or spare_columns < 0:
        raise ValueError("spare counts must be non-negative")
    remaining = np.array(fail_map, dtype=bool, copy=True)
    used_rows: list[int] = []
    used_columns: list[int] = []

    changed = True
    while changed:
        changed = False
        col_budget = spare_columns - len(used_columns)
        for r in np.nonzero(remaining.sum(axis=1) > col_budget)[0]:
            if len(used_rows) >= spare_rows:
                return RepairPlan(False, tuple(used_rows), tuple(used_columns))
            used_rows.append(int(r))
            remaining[r, :] = False
            changed = True
        row_budget = spare_rows - len(used_rows)
        for c in np.nonzero(remaining.sum(axis=0) > row_budget)[0]:
            if len(used_columns) >= spare_columns:
                return RepairPlan(False, tuple(used_rows), tuple(used_columns))
            used_columns.append(int(c))
            remaining[:, c] = False
            changed = True

    while remaining.any():
        row_counts = remaining.sum(axis=1)
        col_counts = remaining.sum(axis=0)
        best_row = int(np.argmax(row_counts))
        best_col = int(np.argmax(col_counts))
        can_row = len(used_rows) < spare_rows
        can_col = len(used_columns) < spare_columns
        if not can_row and not can_col:
            return RepairPlan(False, tuple(used_rows), tuple(used_columns))
        take_row = can_row and (
            not can_col or row_counts[best_row] >= col_counts[best_col]
        )
        if take_row:
            used_rows.append(best_row)
            remaining[best_row, :] = False
        else:
            used_columns.append(best_col)
            remaining[:, best_col] = False

    return RepairPlan(True, tuple(used_rows), tuple(used_columns))


def allocate_exhaustive(
    fail_map: np.ndarray, spare_rows: int, spare_columns: int
) -> RepairPlan:
    """Exact allocation by exhaustive search (small instances only).

    Used as the test oracle for the greedy allocator.  Complexity is
    combinatorial in the faulty lines; callers should keep the fail map
    below ~16x16.
    """
    faulty_rows = np.nonzero(fail_map.any(axis=1))[0]
    faulty_cols = np.nonzero(fail_map.any(axis=0))[0]
    for n_rows in range(min(spare_rows, faulty_rows.size) + 1):
        for rows in combinations(faulty_rows, n_rows):
            remaining = fail_map.copy()
            if rows:
                remaining[list(rows), :] = False
            needed = np.nonzero(remaining.any(axis=0))[0]
            if needed.size <= spare_columns:
                return RepairPlan(
                    True, tuple(int(r) for r in rows),
                    tuple(int(c) for c in needed),
                )
    return RepairPlan(False)


def repair_yield_monte_carlo(
    p_cell: float,
    rows: int,
    columns: int,
    spare_rows: int,
    spare_columns: int,
    rng: np.random.Generator,
    trials: int = 2000,
) -> float:
    """Monte-Carlo repairable fraction under row+column redundancy.

    There is no closed form for combined redundancy (allocation is
    NP-complete), so the yield is estimated by sampling fault maps and
    running the greedy allocator.  With ``spare_rows = 0`` this
    converges to the analytic column-only yield (asserted in the test
    suite).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    successes = 0
    for _ in range(trials):
        fail_map = rng.random((rows, columns)) < p_cell
        if not fail_map.any():
            successes += 1
            continue
        plan = allocate_rows_and_columns(fail_map, spare_rows, spare_columns)
        successes += plan.success
    return successes / trials
