"""Leakage decomposition of the 6T cell under body and source bias.

The cell stores '0' at node R (paper Fig. 1): VL = VDD, VR = VSB.  Three
component groups make up the total (paper Section III.F / Fig. 5a):

* **subthreshold** — the off transistors NL (drain at VDD), PR (drain at
  VR) and AXR (bitline into the '0' node).  Reverse body bias suppresses
  the NMOS terms; source bias suppresses them through the raised source
  (body effect), the reduced drain-source voltage (DIBL) and — for the
  access path — a genuinely negative VGS.
* **gate tunnelling** — dominated by the two ON transistors with a full
  oxide drop (NR and PL); essentially insensitive to body bias.
* **junction** — reverse-biased drain junctions (BTBT grows
  exponentially with reverse bias, hence with RBB) and the body diodes
  that conduct under strong forward body bias (the FBB bound).

All functions broadcast over a vectorised cell population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.leakage import gate_leakage, junction_leakage
from repro.sram.cell import SixTCell

ArrayF = np.ndarray


@dataclass(frozen=True)
class LeakageBreakdown:
    """Per-component cell leakage [A], arrays over the population."""

    subthreshold: ArrayF
    gate: ArrayF
    junction: ArrayF

    @property
    def total(self) -> ArrayF:
        """Total cell leakage [A]."""
        return self.subthreshold + self.gate + self.junction

    def scaled(self, factor: float) -> "LeakageBreakdown":
        """All components multiplied by ``factor`` (e.g. cells per array)."""
        return LeakageBreakdown(
            self.subthreshold * factor, self.gate * factor, self.junction * factor
        )


def cell_leakage(
    cell: SixTCell,
    vdd: float | None = None,
    vbody_n: float = 0.0,
    vsb: float = 0.0,
) -> LeakageBreakdown:
    """Leakage components [A] of ``cell`` storing '0' at node R.

    Args:
        cell: cell population (its ``dvt`` arrays set the output shape).
        vdd: supply rail [V]; defaults to the technology's nominal VDD.
        vbody_n: NMOS body terminal voltage [V] (ABB knob).
        vsb: source-line voltage [V] (ASB knob); the '0' node sits at
            VSB in standby.
    """
    tech = cell.tech
    if vdd is None:
        vdd = tech.vdd
    geometry = cell.geometry
    length = geometry.length if geometry.length is not None else tech.length
    ut = cell.device("nl").ut

    nl = cell.device("nl")
    pr = cell.device("pr")
    axr = cell.device("axr")

    # --- subthreshold: off-device channel currents ---------------------
    i_nl = nl.current(vg=vsb, vd=vdd, vs=vsb, vb=vbody_n)
    i_pr = np.abs(pr.current(vg=vdd, vd=vsb, vs=vdd, vb=vdd))
    i_axr = axr.current(vg=0.0, vd=vdd, vs=vsb, vb=vbody_n)
    subthreshold = np.atleast_1d(i_nl + i_pr + np.maximum(i_axr, 0.0))

    # --- gate tunnelling: ON devices with a full oxide drop -------------
    vox = vdd - vsb
    i_gate = gate_leakage(
        tech.nmos, geometry.w_pull_down, length, vox
    ) + gate_leakage(tech.pmos, geometry.w_pull_up, length, vox)
    gate = np.broadcast_to(
        np.atleast_1d(i_gate), subthreshold.shape
    ).astype(float)

    # --- junction: node-side drain junctions + body diodes --------------
    area_pd = tech.junction_area(geometry.w_pull_down)
    area_ax = tech.junction_area(geometry.w_access)
    area_pu = tech.junction_area(geometry.w_pull_up)
    # Node L (at VDD): NL drain and AXL junction, reverse = vdd - vbody.
    j_high = junction_leakage(tech.nmos, area_pd + area_ax, vdd - vbody_n, ut)
    # Node R (at VSB): NR drain and AXR junction; goes *forward* under FBB.
    j_low = junction_leakage(tech.nmos, area_pd + area_ax, vsb - vbody_n, ut)
    # PR drain (at VSB) against the n-well at VDD.
    j_pmos = junction_leakage(tech.pmos, area_pu, vdd - vsb, ut)
    junction = np.broadcast_to(
        np.atleast_1d(np.abs(j_high) + np.abs(j_low) + np.abs(j_pmos)),
        subthreshold.shape,
    ).astype(float)

    return LeakageBreakdown(
        subthreshold=subthreshold, gate=gate, junction=junction
    )


def sample_array_leakage(
    cell_template: SixTCell,
    cells_per_array: int,
    n_arrays: int,
    rng: np.random.Generator,
    vdd: float | None = None,
    vbody_n: float = 0.0,
    vsb: float = 0.0,
    chunk_cells: int = 500_000,
) -> np.ndarray:
    """Total leakage [A] of ``n_arrays`` independent arrays.

    Each array is the exact sum of ``cells_per_array`` independently
    sampled cell leakages — this is what demonstrates the paper's Fig. 3
    central-limit behaviour (cell distributions overlap across corners,
    array distributions separate).  Sampling is chunked to bound memory.
    """
    from repro.sram.cell import sample_cell_dvt  # local import avoids cycle

    if cells_per_array <= 0 or n_arrays <= 0:
        raise ValueError("cells_per_array and n_arrays must be positive")
    arrays_per_chunk = max(1, chunk_cells // cells_per_array)
    totals = np.empty(n_arrays)
    done = 0
    while done < n_arrays:
        count = min(arrays_per_chunk, n_arrays - done)
        dvt = sample_cell_dvt(
            cell_template.tech,
            cell_template.geometry,
            rng,
            size=count * cells_per_array,
        )
        population = cell_template.with_dvt(dvt)
        per_cell = cell_leakage(population, vdd=vdd, vbody_n=vbody_n, vsb=vsb).total
        totals[done : done + count] = per_cell.reshape(
            count, cells_per_array
        ).sum(axis=1)
        done += count
    return totals
