"""Static noise margin (SNM) of the 6T cell.

The canonical SRAM stability metric (Seevinck et al., JSSC 1987): the
SNM is the largest DC noise voltage that, applied in series with both
inverter inputs in the worst-case polarity, still leaves the cell
bistable.  Graphically it is the side of the largest square inscribed
in the smaller lobe of the butterfly curves; numerically this module
uses the *definitional* form directly — bisection on the noise
amplitude with a bistability check — which is robust where the
rotated-coordinate construction struggles (the rotated curves are
multivalued).

Two conditions:

* hold SNM — wordline low (the cell only fights leakage);
* read SNM — wordline high, bitlines precharged: the access transistors
  drag the internal nodes and shrink the lobes.  Read is the critical
  condition — exactly why the paper's read failures dominate low-Vt
  dies and why reverse body bias (which weakens the access path
  relative to the pull-down) recovers them.

The transfer curves are solved once per population on a uniform input
grid; the bistability iteration then runs on cheap vectorised
interpolations, so the whole computation is a few inverter-solve
passes regardless of the noise bisection depth.
"""

from __future__ import annotations

import numpy as np

from repro.sram.cell import SixTCell
from repro.sram.solver import bisect_monotone

#: Input-grid resolution for the transfer curves.
_N_GRID = 129
#: Noise-amplitude bisection steps (resolution vdd/2 / 2^steps).
_BISECTION_STEPS = 14
#: Fixed-point sweeps per bistability check.
_FP_SWEEPS = 60
#: Minimum separation of the two fixed points to call the cell bistable.
_BISTABLE_TOL = 2e-3


def inverter_vtc(
    cell: SixTCell,
    side: str,
    vdd: float,
    vin: np.ndarray,
    read_mode: bool = False,
    vbody_n: float = 0.0,
) -> np.ndarray:
    """Transfer curve of one cell inverter, optionally read-loaded.

    Args:
        cell: cell population.
        side: ``"left"`` (PL/NL driving node L, input = node R) or
            ``"right"`` (PR/NR driving node R, input = node L).
        vdd: supply [V].
        vin: input voltages, shape (m,).
        read_mode: include the access transistor pulling the output
            toward the precharged bitline (wordline high).
        vbody_n: NMOS body bias [V].

    Returns:
        Output voltages of shape (m, n) for a population of n cells.
    """
    if side == "left":
        pu, pd, ax = cell.device("pl"), cell.device("nl"), cell.device("axl")
    elif side == "right":
        pu, pd, ax = cell.device("pr"), cell.device("nr"), cell.device("axr")
    else:
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    n = cell.population
    out = np.empty((len(vin), n))
    for i, v_in in enumerate(np.asarray(vin, dtype=float)):

        def net(v_out: np.ndarray) -> np.ndarray:
            i_up = pu.current(vg=v_in, vd=v_out, vs=vdd, vb=vdd)
            i_down = pd.current(vg=v_in, vd=v_out, vs=0.0, vb=vbody_n)
            total = i_up - i_down
            if read_mode:
                total = total + ax.current(
                    vg=vdd, vd=vdd, vs=v_out, vb=vbody_n
                )
            return total

        out[i] = bisect_monotone(net, 0.0, vdd, (n,))
    return out


def _interp_columns(
    grid_values: np.ndarray, x: np.ndarray, x0: float, dx: float
) -> np.ndarray:
    """Per-column linear interpolation on a uniform grid.

    ``grid_values`` has shape (m, n); ``x`` holds one query point per
    column (shape (n,)); queries clamp to the grid span.
    """
    m = grid_values.shape[0]
    t = np.clip((x - x0) / dx, 0.0, m - 1 - 1e-9)
    index = t.astype(np.intp)
    frac = t - index
    cols = np.arange(grid_values.shape[1])
    return (
        grid_values[index, cols] * (1.0 - frac)
        + grid_values[index + 1, cols] * frac
    )


def butterfly_snm(
    cell: SixTCell,
    vdd: float,
    read_mode: bool = False,
    vbody_n: float = 0.0,
    n_grid: int = _N_GRID,
) -> np.ndarray:
    """Per-cell SNM [V] by bisection on the series noise amplitude.

    For the state (L=1, R=0) the worst-case noise pair raises the input
    of the left inverter and lowers the input of the right one:

        VL = f_left(VR + Vn)        VR = f_right(VL - Vn)

    The cell tolerates ``Vn`` iff this map still has two distinct
    stable fixed points (checked by iterating from both rails).  The
    SNM of the lobe is the critical ``Vn``; the cell SNM is the minimum
    over the two noise polarities (the two lobes).  A cell that is not
    bistable even at Vn = 0 reports 0.
    """
    vin = np.linspace(0.0, vdd, n_grid)
    dx = float(vin[1] - vin[0])
    vtc_left = inverter_vtc(cell, "left", vdd, vin, read_mode, vbody_n)
    vtc_right = inverter_vtc(cell, "right", vdd, vin, read_mode, vbody_n)
    n = cell.population

    def fixed_point(start: float, vn: np.ndarray, sign: float) -> np.ndarray:
        """Iterate the noisy feedback map from VR = ``start``."""
        vr = np.full(n, float(start))
        for _ in range(_FP_SWEEPS):
            vl = _interp_columns(vtc_left, vr + sign * vn, 0.0, dx)
            vr = _interp_columns(vtc_right, vl - sign * vn, 0.0, dx)
        return vr

    def bistable(vn: np.ndarray, sign: float) -> np.ndarray:
        low = fixed_point(0.0, vn, sign)
        high = fixed_point(vdd, vn, sign)
        return (high - low) > _BISTABLE_TOL

    snm = np.full(n, np.inf)
    for sign in (+1.0, -1.0):
        lo = np.zeros(n)            # known bistable (or not even at 0)
        hi = np.full(n, vdd / 2.0)  # assumed flipped
        ok_at_zero = bistable(lo, sign)
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (lo + hi)
            good = bistable(mid, sign)
            lo = np.where(good, mid, lo)
            hi = np.where(good, hi, mid)
        lobe = np.where(ok_at_zero, 0.5 * (lo + hi), 0.0)
        snm = np.minimum(snm, lobe)
    return snm


def hold_snm(cell: SixTCell, vdd: float, vbody_n: float = 0.0) -> np.ndarray:
    """Hold (standby) SNM [V] at supply ``vdd``."""
    return butterfly_snm(cell, vdd, read_mode=False, vbody_n=vbody_n)


def read_snm(cell: SixTCell, vdd: float, vbody_n: float = 0.0) -> np.ndarray:
    """Read SNM [V]: the butterfly with the access transistors engaged."""
    return butterfly_snm(cell, vdd, read_mode=True, vbody_n=vbody_n)
