"""6T SRAM cell and array models.

* :mod:`repro.sram.cell` — cell geometry, per-transistor variation
  samples, and device construction;
* :mod:`repro.sram.solver` — numpy-vectorised DC solvers for the cell's
  read / write / hold problems (the fast path that replaces per-sample
  SPICE runs);
* :mod:`repro.sram.metrics` — the paper's static failure metrics
  (V_READ vs V_TRIPRD, write margin, access current, hold retention);
* :mod:`repro.sram.leakage` — cell leakage decomposition
  (subthreshold / gate / junction) under body and source bias;
* :mod:`repro.sram.array` — array organisation, redundancy, and the
  functional memory array the BIST drives.
"""

from repro.sram.array import ArrayOrganization, FunctionalMemoryArray
from repro.sram.cell import TRANSISTORS, CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.leakage import LeakageBreakdown, cell_leakage
from repro.sram.drv import array_drv, cell_drv, safe_standby_voltage
from repro.sram.eight_t import (
    EightTCell,
    EightTGeometry,
    eight_t_failure_probabilities,
    sample_eight_t,
)
from repro.sram.metrics import CellMetrics, OperatingConditions, compute_cell_metrics
from repro.sram.repair import (
    RepairPlan,
    allocate_columns,
    allocate_rows_and_columns,
)
from repro.sram.snm import butterfly_snm, hold_snm, read_snm
from repro.sram.timing import BitlineModel, access_time, read_cycle_time

__all__ = [
    "CellGeometry",
    "SixTCell",
    "TRANSISTORS",
    "sample_cell_dvt",
    "CellMetrics",
    "OperatingConditions",
    "compute_cell_metrics",
    "LeakageBreakdown",
    "cell_leakage",
    "ArrayOrganization",
    "FunctionalMemoryArray",
    "cell_drv",
    "array_drv",
    "safe_standby_voltage",
    "RepairPlan",
    "allocate_columns",
    "allocate_rows_and_columns",
    "EightTCell",
    "EightTGeometry",
    "sample_eight_t",
    "eight_t_failure_probabilities",
    "butterfly_snm",
    "hold_snm",
    "read_snm",
    "BitlineModel",
    "access_time",
    "read_cycle_time",
]
