"""The 6T SRAM cell: geometry, variation sampling, device construction.

Transistor naming follows the paper's Fig. 1: the cell stores '0' at node
R and '1' at node L.

* ``pl`` / ``pr`` — PMOS pull-ups (sources at VDD);
* ``nl`` / ``nr`` — NMOS pull-downs (sources at the cell source line,
  which sits at VSB under source biasing);
* ``axl`` / ``axr`` — NMOS access transistors (gates on the wordline,
  connecting nodes L/R to bitlines BL/BR).

A :class:`SixTCell` binds a technology card, a geometry and a process
corner; :func:`sample_cell_dvt` draws the per-transistor intra-die Vt
deltas (RDF) for a whole Monte-Carlo population at once, so every method
downstream operates on arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.factory import make_mosfet
from repro.devices.mosfet import MOSFET
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters
from repro.technology.variation import RandomDopantFluctuation

#: Transistor keys in a fixed order (paper Fig. 1 naming).
TRANSISTORS = ("pl", "pr", "nl", "nr", "axl", "axr")

#: Polarity of each transistor.
POLARITY = {
    "pl": "pmos",
    "pr": "pmos",
    "nl": "nmos",
    "nr": "nmos",
    "axl": "nmos",
    "axr": "nmos",
}


@dataclass(frozen=True)
class CellGeometry:
    """Transistor sizing of the 6T cell.

    Defaults give the classic read-stable ratioing (pull-down strongest,
    pull-up weakest) at the predictive 70 nm node.
    """

    #: Pull-down (nl/nr) width [m].
    w_pull_down: float = 200e-9
    #: Access (axl/axr) width [m].
    w_access: float = 140e-9
    #: Pull-up (pl/pr) width [m].
    w_pull_up: float = 100e-9
    #: Channel length [m]; ``None`` means the technology's drawn length.
    length: float | None = None

    def __post_init__(self) -> None:
        for name in ("w_pull_down", "w_access", "w_pull_up"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def width(self, transistor: str) -> float:
        """Channel width [m] of the named transistor."""
        if transistor in ("nl", "nr"):
            return self.w_pull_down
        if transistor in ("axl", "axr"):
            return self.w_access
        if transistor in ("pl", "pr"):
            return self.w_pull_up
        raise KeyError(f"unknown transistor {transistor!r}")

    @property
    def cell_ratio(self) -> float:
        """Pull-down to access strength ratio (read stability knob)."""
        return self.w_pull_down / self.w_access


def sample_cell_dvt(
    tech: TechnologyParameters,
    geometry: CellGeometry,
    rng: np.random.Generator,
    size: int,
    sigma_scale: float = 1.0,
) -> dict[str, np.ndarray]:
    """Draw intra-die Vt deltas [V] for ``size`` independent cells.

    Returns a dict mapping transistor name -> array of shape (size,).
    ``sigma_scale`` inflates every sigma (used by importance sampling).
    """
    rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
    length = geometry.length if geometry.length is not None else tech.length
    samples = {}
    for name in TRANSISTORS:
        sigma = rdf.sigma_vt(geometry.width(name), length, POLARITY[name])
        samples[name] = rng.normal(0.0, sigma_scale * sigma, size=size)
    return samples


def cell_sigma_vt(
    tech: TechnologyParameters, geometry: CellGeometry
) -> dict[str, float]:
    """Per-transistor RDF sigma(Vt) [V] for this geometry."""
    rdf = RandomDopantFluctuation.from_devices(tech.nmos, tech.pmos)
    length = geometry.length if geometry.length is not None else tech.length
    return {
        name: rdf.sigma_vt(geometry.width(name), length, POLARITY[name])
        for name in TRANSISTORS
    }


@dataclass(frozen=True)
class SixTCell:
    """A (vectorised population of) 6T cell(s) at one inter-die corner.

    Attributes:
        tech: technology card.
        geometry: transistor sizing.
        corner: inter-die Vt shift applied to every transistor.
        dvt: per-transistor intra-die Vt deltas; scalars for a nominal
            cell or arrays of a common shape for a Monte-Carlo
            population.
    """

    tech: TechnologyParameters
    geometry: CellGeometry = field(default_factory=CellGeometry)
    corner: ProcessCorner = field(default_factory=ProcessCorner)
    dvt: dict[str, np.ndarray] | None = None

    def device(self, name: str) -> MOSFET:
        """Build the compact-model device for transistor ``name``.

        The device's ``dvt`` combines the inter-die corner shift and this
        cell's intra-die delta.  Positive shifts increase the threshold
        magnitude for both polarities (the paper's high-Vt corner).
        """
        intra = 0.0 if self.dvt is None else self.dvt[name]
        return make_mosfet(
            self.tech,
            POLARITY[name],
            width=self.geometry.width(name),
            length=self.geometry.length,
            dvt=self.corner.dvt_inter + np.asarray(intra, dtype=float),
        )

    def devices(self) -> dict[str, MOSFET]:
        """All six devices keyed by transistor name."""
        return {name: self.device(name) for name in TRANSISTORS}

    @property
    def population(self) -> int:
        """Number of cells in the vectorised population (1 if nominal)."""
        if self.dvt is None:
            return 1
        first = next(iter(self.dvt.values()))
        return int(np.size(first))

    def at_corner(self, corner: ProcessCorner) -> "SixTCell":
        """The same cell population shifted to a different corner."""
        return SixTCell(self.tech, self.geometry, corner, self.dvt)

    def with_dvt(self, dvt: dict[str, np.ndarray]) -> "SixTCell":
        """The same cell with a new set of intra-die deltas."""
        missing = set(TRANSISTORS) - set(dvt)
        if missing:
            raise ValueError(f"dvt missing transistors: {sorted(missing)}")
        return SixTCell(self.tech, self.geometry, self.corner, dvt)
