"""Array timing: bitline discharge, access and cycle time.

Turns the cell-level access current into the array-level quantity a
designer actually budgets: the time for the accessed cell to develop
the sense-amplifier differential on a bitline loaded by every cell in
the column.  This is what makes the access-failure criterion physical
(``T_access <= T_max``  <=>  ``I_access >= C_BL * dV / T_max``) and
what quantifies the *performance* benefit of forward body bias that the
paper trades leakage for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sram.array import ArrayOrganization
from repro.sram.cell import SixTCell
from repro.sram.solver import solve_access_current, solve_write_time


@dataclass(frozen=True)
class BitlineModel:
    """Capacitive load of one bitline.

    Attributes:
        c_cell: drain-junction + wire capacitance per attached cell [F].
        c_fixed: column-end fixed capacitance (sense amp, mux) [F].
        sense_differential: bitline swing the sense amplifier needs [V].
    """

    c_cell: float = 1.5e-15
    c_fixed: float = 10e-15
    sense_differential: float = 0.1

    def capacitance(self, rows: int) -> float:
        """Total bitline capacitance [F] for a column of ``rows`` cells."""
        if rows <= 0:
            raise ValueError(f"rows must be positive, got {rows}")
        return self.c_fixed + rows * self.c_cell


def access_time(
    cell: SixTCell,
    organization: ArrayOrganization,
    vdd: float,
    vbody_n: float = 0.0,
    bitline: BitlineModel | None = None,
) -> np.ndarray:
    """Bitline development time [s] for the accessed cell(s).

    ``T = C_BL * dV_sense / I_access`` with the access current evaluated
    at the self-consistent read-disturb level.  Vectorised over the cell
    population.
    """
    bitline = bitline if bitline is not None else BitlineModel()
    c_bl = bitline.capacitance(organization.rows)
    i_access = solve_access_current(cell, vdd, vbody_n)
    return c_bl * bitline.sense_differential / np.maximum(i_access, 1e-30)


def read_cycle_time(
    cell: SixTCell,
    organization: ArrayOrganization,
    vdd: float,
    vbody_n: float = 0.0,
    bitline: BitlineModel | None = None,
    overhead_fraction: float = 0.6,
) -> np.ndarray:
    """First-order read cycle [s]: bitline development plus periphery.

    The decode/precharge/sense overhead is modelled as a fixed fraction
    of the cycle (``overhead_fraction``), the standard coarse budget for
    a compiled macro: ``T_cycle = T_access / (1 - overhead)``.
    """
    if not 0.0 <= overhead_fraction < 1.0:
        raise ValueError("overhead_fraction must be in [0, 1)")
    t_access = access_time(cell, organization, vdd, vbody_n, bitline)
    return t_access / (1.0 - overhead_fraction)


def write_cycle_time(
    cell: SixTCell,
    vdd: float,
    vbody_n: float = 0.0,
    overhead_fraction: float = 0.6,
) -> np.ndarray:
    """First-order write cycle [s] from the cell flip time."""
    if not 0.0 <= overhead_fraction < 1.0:
        raise ValueError("overhead_fraction must be in [0, 1)")
    t_write = solve_write_time(cell, vdd, vbody_n)
    return t_write / (1.0 - overhead_fraction)
