"""Static failure metrics of the 6T cell (the paper's Section II).

The four parametric failure mechanisms map to four static margins:

* **read**:   ``read_margin  = V_TRIPRD - V_READ``  — the read disturb
  must stay below the flip threshold;
* **write**:  ``write_margin = V_TRIPWR - V_WR``    — the written node
  must be pulled below the opposite inverter's trip point;
* **access**: ``i_access``                          — the bitline
  discharge current sets the access time, so slow cells fail a
  minimum-current criterion;
* **hold**:   ``hold_margin  = V_HOLD_1 - V_HOLD_0`` — the retained
  differential of the standby fixed point.  Leakage through the off
  pull-down droops the '1' node; when the droop approaches the flip
  threshold of the opposite inverter the feedback collapses the
  differential, so this one number captures both of the paper's hold
  mechanisms (leakage droop at the low-Vt corner, the rising trip point
  at the high-Vt corner).

:func:`compute_cell_metrics` evaluates all of them, vectorised over a
Monte-Carlo cell population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability.metrics import incr
from repro.sram.cell import SixTCell
from repro.sram.solver import (
    solve_access_current,
    solve_hold_state,
    solve_hold_trip,
    solve_read_node,
    solve_read_trip,
    solve_write_node,
    solve_write_time,
    solve_write_trip,
)
from repro.technology.parameters import TechnologyParameters


@dataclass(frozen=True)
class OperatingConditions:
    """Bias conditions for metric evaluation.

    Attributes:
        vdd: active-mode supply [V].
        vdd_standby: standby-mode supply [V] (the paper's "lower supply
            voltage" at which hold failures are assessed).
        vsb: source-line bias [V] in standby (the ASB knob).
        vbody_n: NMOS body terminal voltage [V] (the ABB knob; negative
            = reverse body bias, positive = forward body bias).
    """

    vdd: float = 1.0
    vdd_standby: float = 0.3
    vsb: float = 0.0
    vbody_n: float = 0.0

    @classmethod
    def nominal(cls, tech: TechnologyParameters) -> "OperatingConditions":
        """Default conditions: voltage-scaled retention standby.

        The hold metric is assessed at 30% of VDD — the "lower supply
        voltage" standby of the paper's Section II, where data retention
        is genuinely at risk and the leakage-droop / body-bias physics of
        Figs. 2a-2b play out.
        """
        return cls(vdd=tech.vdd, vdd_standby=0.3 * tech.vdd, vsb=0.0, vbody_n=0.0)

    @classmethod
    def source_biased_standby(
        cls, tech: TechnologyParameters, vsb: float = 0.0
    ) -> "OperatingConditions":
        """Conditions for the Section IV source-biasing experiments.

        Source biasing keeps a higher standby supply (80% of VDD here)
        and raises the cell source line instead; the ASB calibration
        sweeps ``vsb`` up to the largest retention-safe value.
        """
        return cls(vdd=tech.vdd, vdd_standby=0.8 * tech.vdd, vsb=vsb, vbody_n=0.0)

    def with_body_bias(self, vbody_n: float) -> "OperatingConditions":
        """Copy with a different NMOS body bias."""
        return OperatingConditions(self.vdd, self.vdd_standby, self.vsb, vbody_n)

    def with_source_bias(self, vsb: float) -> "OperatingConditions":
        """Copy with a different standby source bias."""
        return OperatingConditions(self.vdd, self.vdd_standby, vsb, self.vbody_n)


@dataclass(frozen=True)
class CellMetrics:
    """All static metrics for a cell population (arrays of shape (n,))."""

    v_read: np.ndarray
    v_trip_read: np.ndarray
    v_write: np.ndarray
    v_trip_write: np.ndarray
    t_write: np.ndarray
    i_access: np.ndarray
    v_hold_one: np.ndarray
    v_hold_zero: np.ndarray
    v_trip_hold: np.ndarray
    #: Effective standby rail vdd_standby - vsb [V] (scalar broadcast).
    hold_rail: float

    @property
    def read_margin(self) -> np.ndarray:
        """V_TRIPRD - V_READ [V]; read failure when this is too small."""
        return self.v_trip_read - self.v_read

    @property
    def write_margin(self) -> np.ndarray:
        """V_TRIPWR - V_WR [V]; write failure when this is too small."""
        return self.v_trip_write - self.v_write

    @property
    def hold_margin(self) -> np.ndarray:
        """Retained differential V_HOLD_1 - V_HOLD_0 [V].

        Hold failure when this collapses: the standby fixed point has
        lost (or is about to lose) its bistability.
        """
        return self.v_hold_one - self.v_hold_zero

    @property
    def hold_margin_fraction(self) -> np.ndarray:
        """Retained differential as a fraction of the effective rail.

        Normalising by ``vdd_standby - vsb`` makes one calibrated
        threshold meaningful across retention supplies *and* source-bias
        levels: a healthy cell retains nearly the full rail, and the
        leakage droop / flip collapse shows up as a falling fraction.
        """
        return (self.v_hold_one - self.v_hold_zero) / self.hold_rail


def compute_cell_metrics(
    cell: SixTCell, conditions: OperatingConditions
) -> CellMetrics:
    """Evaluate every static metric for ``cell`` under ``conditions``.

    Read/write/access metrics use the active supply with the body bias
    applied; hold metrics use the standby supply, source bias and body
    bias.  All outputs broadcast to the cell population shape.
    """
    vdd = conditions.vdd
    vb = conditions.vbody_n
    incr("solver.calls", cell.population)
    incr("solver.batches")
    v_read = solve_read_node(cell, vdd, vb)
    v_trip_read = solve_read_trip(cell, vdd, vb)
    v_write = solve_write_node(cell, vdd, vb)
    v_trip_write = solve_write_trip(cell, vdd, vb)
    t_write = solve_write_time(cell, vdd, vb)
    i_access = solve_access_current(cell, vdd, vb)
    v_hold_one, v_hold_zero = solve_hold_state(
        cell, conditions.vdd_standby, conditions.vsb, vb
    )
    v_trip_hold = solve_hold_trip(
        cell, conditions.vdd_standby, conditions.vsb, vb
    )
    return CellMetrics(
        v_read=np.atleast_1d(v_read),
        v_trip_read=np.atleast_1d(v_trip_read),
        v_write=np.atleast_1d(v_write),
        v_trip_write=np.atleast_1d(v_trip_write),
        t_write=np.atleast_1d(t_write),
        i_access=np.atleast_1d(i_access),
        v_hold_one=np.atleast_1d(v_hold_one),
        v_hold_zero=np.atleast_1d(v_hold_zero),
        v_trip_hold=np.atleast_1d(v_trip_hold),
        hold_rail=conditions.vdd_standby - conditions.vsb,
    )


def compute_hold_margin(
    cell: SixTCell, conditions: OperatingConditions
) -> np.ndarray:
    """Hold margin only — the hot path for source-bias calibration."""
    incr("solver.calls", cell.population)
    incr("solver.batches")
    v_hold_one, v_hold_zero = solve_hold_state(
        cell, conditions.vdd_standby, conditions.vsb, conditions.vbody_n
    )
    return np.atleast_1d(v_hold_one - v_hold_zero)
