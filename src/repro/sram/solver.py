"""Vectorised DC solvers for the 6T cell.

Per-sample SPICE is far too slow for the paper's statistics (failure
probabilities down to 1e-5 need >= 1e5 weighted samples per corner).
Fortunately every static cell problem the paper's failure metrics need is
either a *single-node* KCL equation whose net-current function is strictly
decreasing in the node voltage — solved here by vectorised bisection — or
the two-node standby retention problem, solved by a Gauss-Seidel fixed
point over two such monotone single-node solves.

All functions broadcast over the cell population: with `dvt` arrays of
shape (n,) every solve handles the entire Monte-Carlo population in one
pass of numpy operations.  The solutions are cross-validated against the
general-purpose MNA engine (:mod:`repro.circuit`) in the integration
tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sram.cell import SixTCell

#: Bisection iterations; resolves voltages to vdd / 2^30 ~ 1e-9 V.
_BISECT_ITERS = 30
#: Gauss-Seidel sweeps for the two-node hold problem.
_HOLD_SWEEPS = 40
#: Hold fixed-point convergence tolerance [V].
_HOLD_TOL = 1e-7


def bisect_monotone(
    net_current: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    shape: tuple[int, ...],
    iters: int = _BISECT_ITERS,
) -> np.ndarray:
    """Solve ``net_current(v) = 0`` for a strictly decreasing function.

    ``net_current`` must be vectorised and (elementwise) decreasing in
    ``v``; the root is bracketed by ``[lo, hi]``.  If the function has no
    sign change in the bracket the result clamps to the corresponding
    endpoint, which is the physically right answer for rail-clamped
    nodes.
    """
    lo_v = np.full(shape, float(lo))
    hi_v = np.full(shape, float(hi))
    for _ in range(iters):
        mid = 0.5 * (lo_v + hi_v)
        positive = net_current(mid) > 0.0
        lo_v = np.where(positive, mid, lo_v)
        hi_v = np.where(positive, hi_v, mid)
    return 0.5 * (lo_v + hi_v)


def solve_read_node(
    cell: SixTCell, vdd: float, vbody_n: float = 0.0
) -> np.ndarray:
    """V_READ [V]: the '0'-node voltage during a read access.

    Wordline and both bitlines at VDD; the node storing '0' (R) rises to
    the divider voltage of the access transistor (pulling up from the
    precharged bitline) against the pull-down NR (gate at the '1' node,
    assumed to stay at VDD).  This is the paper's V_READ.
    """
    axr = cell.device("axr")
    nr = cell.device("nr")
    shape = np.broadcast_shapes(
        np.shape(axr.dvt) or (1,), np.shape(nr.dvt) or (1,)
    )

    def net(v: np.ndarray) -> np.ndarray:
        i_up = axr.current(vg=vdd, vd=vdd, vs=v, vb=vbody_n)
        i_down = nr.current(vg=vdd, vd=v, vs=0.0, vb=vbody_n)
        return i_up - i_down

    return bisect_monotone(net, 0.0, vdd, shape)


def solve_inverter_trip(
    pull_up,
    pull_down,
    vdd: float,
    vss: float = 0.0,
    vbody_n: float = 0.0,
) -> np.ndarray:
    """Switching threshold VM [V] of a CMOS inverter (vout == vin point).

    ``pull_up`` is a PMOS with source/body at ``vdd``; ``pull_down`` an
    NMOS with source at ``vss`` and body at ``vbody_n``.  VM is where the
    pull-up and pull-down currents balance with input tied to output —
    the standard static trip-point used by the paper's read/write/hold
    failure criteria.
    """
    shape = np.broadcast_shapes(
        np.shape(pull_up.dvt) or (1,), np.shape(pull_down.dvt) or (1,)
    )

    def net(v: np.ndarray) -> np.ndarray:
        i_up = pull_up.current(vg=v, vd=v, vs=vdd, vb=vdd)
        i_down = pull_down.current(vg=v, vd=v, vs=vss, vb=vbody_n)
        return i_up - i_down

    return bisect_monotone(net, vss, vdd, shape)


def solve_read_trip(
    cell: SixTCell, vdd: float, vbody_n: float = 0.0
) -> np.ndarray:
    """V_TRIPRD [V]: trip point of the PL-NL inverter during read.

    The read disturbs node R upward; the cell flips if V_READ exceeds the
    switching threshold of the inverter whose input is node R (PL/NL).
    """
    return solve_inverter_trip(
        cell.device("pl"), cell.device("nl"), vdd, vss=0.0, vbody_n=vbody_n
    )


def solve_write_node(
    cell: SixTCell, vdd: float, vbody_n: float = 0.0
) -> np.ndarray:
    """V_WR [V]: the '1'-node voltage while writing a '0' into it.

    BL is driven to 0 with the wordline high; the access transistor AXL
    fights the pull-up PL (whose gate, node R, is near 0).  A write
    succeeds only if this divider voltage falls below the trip point of
    the other inverter (PR/NR).
    """
    pl = cell.device("pl")
    axl = cell.device("axl")
    shape = np.broadcast_shapes(
        np.shape(pl.dvt) or (1,), np.shape(axl.dvt) or (1,)
    )

    def net(v: np.ndarray) -> np.ndarray:
        i_up = pl.current(vg=0.0, vd=v, vs=vdd, vb=vdd)
        i_down = axl.current(vg=vdd, vd=v, vs=0.0, vb=vbody_n)
        return i_up - i_down

    return bisect_monotone(net, 0.0, vdd, shape)


def solve_write_time(
    cell: SixTCell,
    vdd: float,
    vbody_n: float = 0.0,
    node_capacitance: float = 2e-15,
    n_points: int = 9,
) -> np.ndarray:
    """Write time [s]: discharging the '1' node below the flip threshold.

    During a write-0, the access transistor AXL (bitline at 0) must pull
    node L from VDD down past the PR-NR trip point against the pull-up
    PL before the wordline pulse ends.  The time is the charge integral

        T = C_node * integral_{VM}^{VDD} dV / (I_AXL(V) - I_PL(V))

    evaluated with composite Simpson quadrature, vectorised over the
    population.  This is the mechanism through which reverse body bias
    (which weakens AXL) and the high-Vt corner *increase* write
    failures, matching the paper's Fig. 2.  Where the pull-up ever beats
    the access transistor (a static write failure) the time is infinite.
    """
    if n_points < 3 or n_points % 2 == 0:
        raise ValueError("n_points must be an odd integer >= 3")
    pl = cell.device("pl")
    axl = cell.device("axl")
    v_stop = solve_write_trip(cell, vdd, vbody_n)
    span = vdd - v_stop

    # Composite Simpson weights on [0, 1].
    s = np.linspace(0.0, 1.0, n_points)
    w = np.ones(n_points)
    w[1:-1:2] = 4.0
    w[2:-1:2] = 2.0
    w *= 1.0 / (3.0 * (n_points - 1))

    inv_sum = np.zeros(np.shape(v_stop))
    static_fail = np.zeros(np.shape(v_stop), dtype=bool)
    for sk, wk in zip(s, w):
        v = v_stop + sk * span
        i_down = axl.current(vg=vdd, vd=v, vs=0.0, vb=vbody_n)
        i_up = np.abs(pl.current(vg=0.0, vd=v, vs=vdd, vb=vdd))
        net = i_down - i_up
        static_fail |= net <= 0.0
        inv_sum = inv_sum + wk / np.maximum(net, 1e-30)
    t_write = node_capacitance * span * inv_sum
    return np.where(static_fail, np.inf, t_write)


def solve_write_trip(
    cell: SixTCell, vdd: float, vbody_n: float = 0.0
) -> np.ndarray:
    """V_TRIPWR [V]: trip point of the PR-NR inverter (write criterion)."""
    return solve_inverter_trip(
        cell.device("pr"), cell.device("nr"), vdd, vss=0.0, vbody_n=vbody_n
    )


def solve_access_current(
    cell: SixTCell, vdd: float, vbody_n: float = 0.0
) -> np.ndarray:
    """Bitline discharge current [A] while reading the '0' node.

    Evaluated at the self-consistent read voltage: the current through
    the access transistor equals the pull-down current at V_READ.  The
    access time is ``C_BL * dV_BL / I_access``, so an access failure is a
    *minimum-current* criterion.
    """
    v_read = solve_read_node(cell, vdd, vbody_n)
    axr = cell.device("axr")
    return np.asarray(
        axr.current(vg=vdd, vd=vdd, vs=v_read, vb=vbody_n), dtype=float
    )


def solve_hold_state(
    cell: SixTCell,
    vdd_standby: float,
    vsb: float = 0.0,
    vbody_n: float = 0.0,
    bitline: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Standby node voltages (VL, VR) of a cell storing '1' at L.

    Wordline low, bitlines precharged (``bitline`` defaults to the
    standby supply), cell source line raised to ``vsb``.  The solution is
    a Gauss-Seidel fixed point: each node's KCL is strictly decreasing in
    its own voltage, so each half-step is a vectorised bisection.
    Initialising at the held state (VL = vdd, VR = vsb) makes the
    iteration converge to the *retained* solution when it exists; when
    retention is lost the fixed point collapses toward the flipped /
    degenerate solution, which the hold-margin criterion then flags.
    """
    bl = vdd_standby if bitline is None else bitline
    devices = {
        name: cell.device(name)
        for name in ("pl", "pr", "nl", "nr", "axl", "axr")
    }
    shape = np.broadcast_shapes(
        *(np.shape(d.dvt) or (1,) for d in devices.values())
    )
    n = int(np.prod(shape)) if shape else 1
    # Flatten per-device threshold shifts so the active-set logic below
    # can index them; scalar dvt broadcasts to the population.
    dvt_flat = {
        name: np.broadcast_to(np.asarray(d.dvt, dtype=float), shape).reshape(n)
        for name, d in devices.items()
    }

    def subset_devices(index: np.ndarray) -> dict:
        return {
            name: devices[name].with_dvt(dvt_flat[name][index])
            for name in devices
        }

    def net_l(dev: dict, v: np.ndarray, vr_now: np.ndarray) -> np.ndarray:
        i_pu = dev["pl"].current(vg=vr_now, vd=v, vs=vdd_standby, vb=vdd_standby)
        i_ax = dev["axl"].current(vg=0.0, vd=bl, vs=v, vb=vbody_n)
        i_pd = dev["nl"].current(vg=vr_now, vd=v, vs=vsb, vb=vbody_n)
        return i_pu + i_ax - i_pd

    def net_r(dev: dict, v: np.ndarray, vl_now: np.ndarray) -> np.ndarray:
        i_pu = dev["pr"].current(vg=vl_now, vd=v, vs=vdd_standby, vb=vdd_standby)
        i_ax = dev["axr"].current(vg=0.0, vd=bl, vs=v, vb=vbody_n)
        i_pd = dev["nr"].current(vg=vl_now, vd=v, vs=vsb, vb=vbody_n)
        return i_pu + i_ax - i_pd

    lo = min(0.0, vsb)
    hi = max(vdd_standby, bl)
    vl = np.full(n, float(vdd_standby))
    vr = np.full(n, float(vsb))

    # Gauss-Seidel with an active set: cells whose voltages stop moving
    # drop out of the sweep, so a handful of near-critical stragglers
    # does not force full-population iterations.
    active = np.arange(n)
    dev_active = subset_devices(active)
    for _ in range(_HOLD_SWEEPS):
        vr_a = vr[active]
        vl_new = bisect_monotone(
            lambda v: net_l(dev_active, v, vr_a), lo, hi, active.shape
        )
        vr_new = bisect_monotone(
            lambda v: net_r(dev_active, v, vl_new), lo, hi, active.shape
        )
        moved = np.maximum(
            np.abs(vl_new - vl[active]), np.abs(vr_new - vr[active])
        )
        vl[active] = vl_new
        vr[active] = vr_new
        still = moved > _HOLD_TOL
        if not np.any(still):
            break
        if np.count_nonzero(still) < active.size:
            active = active[still]
            dev_active = subset_devices(active)
    return vl.reshape(shape), vr.reshape(shape)


def solve_hold_trip(
    cell: SixTCell,
    vdd_standby: float,
    vsb: float = 0.0,
    vbody_n: float = 0.0,
) -> np.ndarray:
    """Trip point [V] of the PR-NR inverter under standby rails.

    The cell loses its '1' at node L when VL droops below this threshold
    (the PR/NR inverter then flips node R high and the feedback completes
    the data loss).  Under source bias the pull-down source sits at VSB,
    which raises the trip point — one of the two mechanisms by which
    source biasing erodes hold margin.
    """
    return solve_inverter_trip(
        cell.device("pr"), cell.device("nr"), vdd_standby, vss=vsb,
        vbody_n=vbody_n,
    )
