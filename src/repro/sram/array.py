"""Array organisation, redundancy, and the functional memory array.

:class:`ArrayOrganization` captures how a memory of a given capacity is
organised into rows and columns and how many *redundant* columns are
available for repair — the quantity the paper's yield equations and the
BIST calibration both revolve around.

:class:`FunctionalMemoryArray` is a behavioural memory whose faults come
from the same cell physics as the statistical analysis: every cell gets
its own RDF threshold-voltage sample, and read / write / retention
operations consult the static margins against the calibrated failure
criteria.  This is the device-under-test that the BIST engine
(:mod:`repro.core.source_bias`) exercises with March tests during
self-adaptive source-bias calibration.

Data-orientation convention: a stored ``1`` means node L holds '1' (the
configuration all the solver metrics are formulated for); a stored ``0``
is the mirrored configuration, evaluated by swapping the left/right
transistor roles of each cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # runtime use is duck-typed to avoid an import cycle
    from repro.failures.criteria import FailureCriteria

from repro.sram.cell import SixTCell, sample_cell_dvt
from repro.sram.metrics import (
    OperatingConditions,
    compute_cell_metrics,
    compute_hold_margin,
)
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters

#: Mapping that mirrors a cell left<->right (data-0 orientation).
_MIRROR = {
    "pl": "pr", "pr": "pl",
    "nl": "nr", "nr": "nl",
    "axl": "axr", "axr": "axl",
}


@dataclass(frozen=True)
class ArrayOrganization:
    """Rows x columns organisation with column redundancy.

    Attributes:
        rows: wordlines.
        columns: data columns.
        redundant_columns: spare columns available for repair.
    """

    rows: int
    columns: int
    redundant_columns: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError("rows and columns must be positive")
        if self.redundant_columns < 0:
            raise ValueError("redundant_columns must be non-negative")

    @property
    def n_cells(self) -> int:
        """Data cells (excluding redundancy)."""
        return self.rows * self.columns

    @property
    def capacity_bytes(self) -> int:
        """Data capacity in bytes."""
        return self.n_cells // 8

    @classmethod
    def from_capacity(
        cls,
        capacity_bytes: int,
        rows: int = 256,
        redundancy_fraction: float = 0.05,
    ) -> "ArrayOrganization":
        """Organise ``capacity_bytes`` of storage into ``rows`` wordlines.

        ``redundancy_fraction`` is the paper's column-redundancy knob
        (5% in the ASB experiments).
        """
        n_cells = capacity_bytes * 8
        if n_cells % rows != 0:
            raise ValueError(
                f"{capacity_bytes} bytes does not divide into {rows} rows"
            )
        columns = n_cells // rows
        redundant = max(1, round(columns * redundancy_fraction))
        return cls(rows=rows, columns=columns, redundant_columns=redundant)

    def __str__(self) -> str:
        kb = self.capacity_bytes / 1024
        return (
            f"{kb:g}KB ({self.rows}x{self.columns} + "
            f"{self.redundant_columns} redundant cols)"
        )


def _mirrored(dvt: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Swap left/right transistor roles (data-0 orientation)."""
    return {name: dvt[_MIRROR[name]] for name in dvt}


class FunctionalMemoryArray:
    """A behavioural SRAM array with physics-derived faults.

    Construction samples an RDF threshold delta for all six transistors
    of every cell.  Static (bias-independent) fault classes — read
    disturb, write failure, access failure — are precomputed at the
    active operating point; retention (hold) faults are computed lazily
    per source-bias value and cached, because the BIST sweeps VSB.

    Fault semantics during operations:

    * *write failure*: the write does not change the stored bit;
    * *read disturb*: reading a cell flips its content (destructive
      read) and returns the flipped value;
    * *access failure*: the read returns the precharge value ``1``
      regardless of content (sense failure), content is preserved;
    * *retention failure* (at the current VSB): a standby dwell corrupts
      the stored bit to its complement.
    """

    def __init__(
        self,
        tech: TechnologyParameters,
        organization: ArrayOrganization,
        criteria: "FailureCriteria",
        geometry=None,
        corner: ProcessCorner | None = None,
        conditions: OperatingConditions | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        from repro.sram.cell import CellGeometry

        self.tech = tech
        self.organization = organization
        self.criteria = criteria
        self.geometry = geometry if geometry is not None else CellGeometry()
        self.corner = corner if corner is not None else ProcessCorner(0.0)
        self.conditions = (
            conditions if conditions is not None else OperatingConditions.nominal(tech)
        )
        rng = rng if rng is not None else np.random.default_rng(0)

        self.total_columns = organization.columns + organization.redundant_columns
        self.shape = (organization.rows, self.total_columns)
        n = organization.rows * self.total_columns
        self._dvt = sample_cell_dvt(tech, self.geometry, rng, n)
        self._cell_d1 = SixTCell(tech, self.geometry, self.corner, self._dvt)
        self._cell_d0 = SixTCell(
            tech, self.geometry, self.corner, _mirrored(self._dvt)
        )
        #: Stored data, shape (rows, total_columns).
        self.data = np.zeros(self.shape, dtype=bool)

        self._static_faults = self._compute_static_faults()
        self._retention_cache: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Fault precomputation
    # ------------------------------------------------------------------
    def _compute_static_faults(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Per-orientation static fault maps at the active corner/bias."""
        faults: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        per_orientation = []
        for cell in (self._cell_d1, self._cell_d0):
            metrics = compute_cell_metrics(cell, self.conditions)
            per_orientation.append(
                {
                    "read": self.criteria.read_fails(metrics).reshape(self.shape),
                    "write": self.criteria.write_fails(metrics).reshape(self.shape),
                    "access": self.criteria.access_fails(metrics).reshape(self.shape),
                }
            )
        for kind in ("read", "write", "access"):
            faults[kind] = (per_orientation[0][kind], per_orientation[1][kind])
        return faults

    def _fault_map(self, kind: str) -> np.ndarray:
        """Fault map of ``kind`` for the *currently stored* orientation."""
        for_d1, for_d0 = self._static_faults[kind]
        return np.where(self.data, for_d1, for_d0)

    def retention_fails(self, vsb: float) -> np.ndarray:
        """Boolean map: cell loses its current data at source bias ``vsb``."""
        key = round(float(vsb), 9)
        if key not in self._retention_cache:
            conditions = self.conditions.with_source_bias(float(vsb))
            rail = conditions.vdd_standby - conditions.vsb
            threshold = self.criteria.hold_fraction_min * rail
            margin_d1 = compute_hold_margin(self._cell_d1, conditions).reshape(
                self.shape
            )
            margin_d0 = compute_hold_margin(self._cell_d0, conditions).reshape(
                self.shape
            )
            self._retention_cache[key] = (
                margin_d1 < threshold,
                margin_d0 < threshold,
            )
        fail_d1, fail_d0 = self._retention_cache[key]
        return np.where(self.data, fail_d1, fail_d0)

    # ------------------------------------------------------------------
    # Behavioural operations (vectorised over the whole array)
    # ------------------------------------------------------------------
    def write_all(self, value: bool | np.ndarray) -> None:
        """Write ``value`` (scalar or full-shape array) to every cell.

        Cells with a write fault for the *target* orientation keep their
        old data.
        """
        target = np.broadcast_to(np.asarray(value, dtype=bool), self.shape)
        fail_d1, fail_d0 = self._static_faults["write"]
        write_fails = np.where(target, fail_d1, fail_d0)
        self.data = np.where(write_fails, self.data, target)

    def read_all(self) -> np.ndarray:
        """Read every cell, applying read-disturb and access faults.

        Returns the observed values (shape ``self.shape``); cell contents
        mutate where read disturbs strike.
        """
        disturbed = self._fault_map("read")
        observed = np.where(disturbed, ~self.data, self.data)
        self.data = np.where(disturbed, ~self.data, self.data)
        access_bad = self._fault_map("access")
        return np.where(access_bad, True, observed)

    def write_row(self, row: int, value: bool | np.ndarray) -> None:
        """Write one wordline; write-faulty cells keep their old data."""
        target = np.broadcast_to(
            np.asarray(value, dtype=bool), (self.total_columns,)
        )
        fail_d1, fail_d0 = self._static_faults["write"]
        write_fails = np.where(target, fail_d1[row], fail_d0[row])
        self.data[row] = np.where(write_fails, self.data[row], target)

    def read_row(self, row: int) -> np.ndarray:
        """Read one wordline with read-disturb and access faults applied."""
        disturbed_d1, disturbed_d0 = self._static_faults["read"]
        disturbed = np.where(self.data[row], disturbed_d1[row], disturbed_d0[row])
        self.data[row] = np.where(disturbed, ~self.data[row], self.data[row])
        observed = self.data[row].copy()
        access_d1, access_d0 = self._static_faults["access"]
        access_bad = np.where(observed, access_d1[row], access_d0[row])
        return np.where(access_bad, True, observed)

    def standby_dwell(self, vsb: float) -> None:
        """Enter standby at source bias ``vsb``: retention faults corrupt."""
        lost = self.retention_fails(vsb)
        self.data = np.where(lost, ~self.data, self.data)

    def column_of(self, flat_index: int) -> int:
        """Column index of a flat cell index (row-major layout)."""
        return flat_index % self.total_columns
