"""Cell failure probability estimation (the paper's [3] methodology).

:class:`CellFailureAnalyzer` estimates, for any inter-die corner and any
body/source-bias point, the probability that a cell fails each of the
four parametric mechanisms under intra-die RDF variation.  Rare
probabilities are resolved by a pluggable sampling strategy (the
``sampler=`` knob): the historical sigma-scaled importance sampling
(:mod:`repro.stats.sampling`), or the adaptive rare-event engine
(:mod:`repro.stats.rare_event` — MPFP-seeded mean-shift IS and
statistical blockade).  Whatever the strategy, one weighted sample set
yields all four mechanisms plus their union, keeping the per-mechanism
estimates consistent (the union is never smaller than a component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.failures.criteria import FailureCriteria
from repro.observability import diagnostics
from repro.observability.metrics import observe
from repro.observability.tracing import trace
from repro.sram.cell import TRANSISTORS, CellGeometry, SixTCell, cell_sigma_vt
from repro.sram.metrics import (
    OperatingConditions,
    compute_cell_metrics,
    compute_hold_margin,
)
from repro.stats.montecarlo import MonteCarloResult, probability_of
from repro.stats.rare_event import SAMPLER_NAMES, make_sampler
from repro.stats.sampling import importance_sample_dvt
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters

if TYPE_CHECKING:  # pragma: no cover - hint-only import
    from repro.parallel.executor import ParallelExecutor

#: Mechanism names in presentation order.
MECHANISMS = ("read", "write", "access", "hold")

#: Largest cell batch handed to the vectorised solvers in one call —
#: bounds the peak working set of a margins evaluation (each cell
#: carries ~10 float64 intermediate arrays through the bisections)
#: without giving up vectorisation.
SOLVE_CHUNK = 16_384


def _chunked(
    z: np.ndarray, evaluate, mechanisms: tuple[str, ...]
) -> dict[str, np.ndarray]:
    """Evaluate ``z`` through ``evaluate`` in vectorised chunks."""
    n = z.shape[0]
    if n <= SOLVE_CHUNK:
        return evaluate(z)
    parts = [
        evaluate(z[start: start + SOLVE_CHUNK])
        for start in range(0, n, SOLVE_CHUNK)
    ]
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in mechanisms
    }


class _CellProblem:
    """The four-mechanism cell margins as a sampler-facing problem.

    Margins replicate the :class:`FailureCriteria` predicates exactly
    (``margin < 0`` iff the predicate fires), so the strategy samplers
    classify identically to the legacy path.
    """

    dims = len(TRANSISTORS)
    mechanisms = MECHANISMS

    def __init__(
        self,
        analyzer: "CellFailureAnalyzer",
        corner: ProcessCorner,
        conditions: OperatingConditions,
    ) -> None:
        self._analyzer = analyzer
        self._corner = corner
        self._conditions = conditions
        self._sigmas = cell_sigma_vt(analyzer.tech, analyzer.geometry)

    def _dvt(self, z: np.ndarray) -> dict[str, np.ndarray]:
        return {
            name: z[:, i] * self._sigmas[name]
            for i, name in enumerate(TRANSISTORS)
        }

    def margins(self, z: np.ndarray) -> dict[str, np.ndarray]:
        analyzer = self._analyzer

        def evaluate(chunk: np.ndarray) -> dict[str, np.ndarray]:
            cell = SixTCell(
                analyzer.tech,
                analyzer.geometry,
                self._corner,
                self._dvt(chunk),
            )
            with trace("solve"):
                metrics = compute_cell_metrics(cell, self._conditions)
            criteria = analyzer.criteria
            t_write = np.where(
                np.isfinite(metrics.t_write), metrics.t_write, 1e6
            )
            return {
                "read": metrics.read_margin - criteria.delta_read,
                "write": criteria.t_write_max - t_write,
                "access": metrics.i_access - criteria.i_access_min,
                "hold": (
                    metrics.hold_margin_fraction - criteria.hold_fraction_min
                ),
            }

        return _chunked(np.atleast_2d(z), evaluate, self.mechanisms)

    def direction_seeds(self) -> dict[str, np.ndarray]:
        return self._analyzer._direction_seeds(self._conditions)


class _HoldProblem:
    """The hold margin alone (the ASB surface's hot path)."""

    dims = len(TRANSISTORS)
    mechanisms = ("hold",)

    def __init__(
        self,
        analyzer: "CellFailureAnalyzer",
        corner: ProcessCorner,
        conditions: OperatingConditions,
    ) -> None:
        self._analyzer = analyzer
        self._corner = corner
        self._conditions = conditions
        self._sigmas = cell_sigma_vt(analyzer.tech, analyzer.geometry)
        rail = conditions.vdd_standby - conditions.vsb
        self._threshold = analyzer.criteria.hold_fraction_min * rail

    def margins(self, z: np.ndarray) -> dict[str, np.ndarray]:
        analyzer = self._analyzer

        def evaluate(chunk: np.ndarray) -> dict[str, np.ndarray]:
            dvt = {
                name: chunk[:, i] * self._sigmas[name]
                for i, name in enumerate(TRANSISTORS)
            }
            cell = SixTCell(
                analyzer.tech, analyzer.geometry, self._corner, dvt
            )
            with trace("solve"):
                margin = compute_hold_margin(cell, self._conditions)
            return {"hold": margin - self._threshold}

        return _chunked(np.atleast_2d(z), evaluate, self.mechanisms)

    def direction_seeds(self) -> dict[str, np.ndarray]:
        # FORM cannot represent the cliff-like hold limit state; the
        # adaptive sampler's cross-entropy pilot update takes over.
        return {}


def _failure_point(task) -> "FailureProbabilities":
    """Worker entry point: one full failure estimate (picklable)."""
    analyzer, corner, conditions = task
    return analyzer.failure_probabilities(corner, conditions)


def _hold_point(task) -> MonteCarloResult:
    """Worker entry point: one hold-only estimate (picklable)."""
    analyzer, corner, conditions = task
    return analyzer.hold_failure_probability(corner, conditions)


@dataclass(frozen=True)
class FailureProbabilities:
    """Per-mechanism cell failure probabilities at one (corner, bias)."""

    read: MonteCarloResult
    write: MonteCarloResult
    access: MonteCarloResult
    hold: MonteCarloResult
    any: MonteCarloResult

    def __getitem__(self, mechanism: str) -> MonteCarloResult:
        if mechanism not in MECHANISMS + ("any",):
            raise KeyError(f"unknown mechanism {mechanism!r}")
        return getattr(self, mechanism)

    def as_dict(self) -> dict[str, float]:
        """Point estimates keyed by mechanism (plus ``any``)."""
        return {name: self[name].estimate for name in MECHANISMS + ("any",)}


class CellFailureAnalyzer:
    """Estimates cell failure probabilities under RDF variation.

    Args:
        tech: technology card.
        criteria: calibrated failure thresholds.
        geometry: cell geometry (defaults to the standard cell).
        conditions: baseline operating conditions; per-call overrides
            are provided via the ``conditions`` argument of
            :meth:`failure_probabilities`.
        n_samples: solver-call budget per estimate (for the legacy
            fixed-scale path this is simply the weighted sample count).
        scale: importance-sampling sigma inflation (1.0 = plain MC).
            ``None`` with ``sampler="scaled"`` auto-tunes the inflation
            from a pilot batch; for ``adaptive-is``/``blockade`` it
            sets the exploration/proposal width (None = default 2.0).
        seed: base RNG seed; each (corner, bias) estimate derives its
            own stream so results are reproducible yet independent.
        sampler: rare-event sampling strategy — one of
            :data:`repro.stats.rare_event.SAMPLER_NAMES`.  The default
            ``"scaled"`` with an explicit ``scale`` reproduces the
            historical estimator bit for bit.
    """

    def __init__(
        self,
        tech: TechnologyParameters,
        criteria: FailureCriteria,
        geometry: CellGeometry | None = None,
        conditions: OperatingConditions | None = None,
        n_samples: int = 60_000,
        scale: float | None = 2.0,
        seed: int = 7,
        sampler: str = "scaled",
    ) -> None:
        if sampler not in SAMPLER_NAMES:
            raise ValueError(
                f"unknown sampler {sampler!r}; "
                f"known: {', '.join(SAMPLER_NAMES)}"
            )
        self.tech = tech
        self.criteria = criteria
        self.geometry = geometry if geometry is not None else CellGeometry()
        self.conditions = (
            conditions if conditions is not None else OperatingConditions.nominal(tech)
        )
        self.n_samples = n_samples
        self.scale = scale
        self.seed = seed
        self.sampler = sampler
        #: MPFP direction seeds memoised per bias point — computed once
        #: per (conditions) key and shipped to workers inside the task
        #: pickle (the search is deterministic, so a worker recomputing
        #: it lazily produces the identical seeds).
        self._seed_memo: dict[tuple, dict[str, np.ndarray]] = {}

    @property
    def _legacy_path(self) -> bool:
        """True when the historical single-stage sampler applies.

        ``scaled`` with an explicit scale and ``plain`` go through the
        original :func:`importance_sample_dvt` code path so existing
        results stay bit-identical; the strategy engine handles
        auto-tuned ``scaled``, ``adaptive-is`` and ``blockade``.
        """
        return (
            self.sampler == "plain"
            or (self.sampler == "scaled" and self.scale is not None)
        )

    def sampler_fingerprint(self) -> dict:
        """The sampling-strategy part of cache fingerprints."""
        return {"sampler": self.sampler, "scale": self.scale}

    def _direction_seeds(
        self, conditions: OperatingConditions
    ) -> dict[str, np.ndarray]:
        """Memoised MPFP seeds for one bias point (nominal corner).

        The failure *directions* drift only slowly with the inter-die
        corner, so one FORM search per bias point — amortised over a
        whole table grid — seeds every corner's proposal; the pilot
        cross-entropy update re-centres per corner where the pilot
        actually observes failures.
        """
        key = (
            round(conditions.vdd, 9),
            round(conditions.vdd_standby, 9),
            round(conditions.vsb, 9),
            round(conditions.vbody_n, 9),
        )
        memo = self.__dict__.setdefault("_seed_memo", {})
        if key not in memo:
            from repro.failures.mpfp import MpfpEstimator

            estimator = MpfpEstimator(
                self.tech, self.criteria, self.geometry, conditions
            )
            with trace("analysis.mpfp_seeds"):
                memo[key] = estimator.direction_seeds(ProcessCorner(0.0))
        return memo[key]

    def _seed_for(
        self, corner: ProcessCorner, conditions: OperatingConditions
    ) -> np.random.SeedSequence:
        """Per-(corner, bias) seed, stable across processes.

        Each key field is rounded to nanovolt resolution and folded into
        the :class:`~numpy.random.SeedSequence` entropy directly — no
        ``hash()`` in the loop, so the derivation is collision-resistant
        over the full field width and identical in every worker process,
        which the parallel engine's determinism guarantee depends on.
        """

        def word(value: float) -> int:
            return int(round(value * 1e9)) & 0xFFFFFFFFFFFFFFFF

        return np.random.SeedSequence(
            entropy=[
                self.seed,
                word(corner.dvt_inter),
                word(conditions.vbody_n),
                word(conditions.vsb),
                word(conditions.vdd),
                word(conditions.vdd_standby),
            ]
        )

    def _rng_for(
        self, corner: ProcessCorner, conditions: OperatingConditions
    ) -> np.random.Generator:
        return np.random.default_rng(self._seed_for(corner, conditions))

    def failure_probabilities(
        self,
        corner: ProcessCorner,
        conditions: OperatingConditions | None = None,
    ) -> FailureProbabilities:
        """Estimate all mechanism probabilities at ``corner``.

        Args:
            corner: the die's inter-die Vt shift.
            conditions: bias overrides; defaults to the analyzer's
                baseline conditions.
        """
        conditions = conditions if conditions is not None else self.conditions
        with trace("analysis.point"):
            if not self._legacy_path:
                problem = _CellProblem(self, corner, conditions)
                strategy = make_sampler(self.sampler, self.scale)
                out = strategy.sample(
                    problem, self._seed_for(corner, conditions), self.n_samples
                )
                observe("analysis.solver_calls", out.n_solved)
                results = {
                    name: probability_of(out.fails[name], out.weights)
                    for name in MECHANISMS + ("any",)
                }
                for name, result in results.items():
                    diagnostics.record(f"analysis.{name}", result)
                return FailureProbabilities(**results)
            rng = self._rng_for(corner, conditions)
            scale = 1.0 if self.sampler == "plain" else self.scale
            with trace("sample"):
                sample = importance_sample_dvt(
                    self.tech, self.geometry, rng, self.n_samples, scale
                )
            with trace("solve"):
                cell = SixTCell(self.tech, self.geometry, corner, sample.dvt)
                metrics = compute_cell_metrics(cell, conditions)
            fails = {}
            for name, predicate in (
                ("read", self.criteria.read_fails),
                ("write", self.criteria.write_fails),
                ("access", self.criteria.access_fails),
                ("hold", self.criteria.hold_fails),
            ):
                with trace(f"classify.{name}"):
                    fails[name] = predicate(metrics)
            fails["any"] = (
                fails["read"] | fails["write"] | fails["access"] | fails["hold"]
            )
            observe("analysis.solver_calls", sample.n_samples)
            results = {
                name: probability_of(indicator, sample.weights)
                for name, indicator in fails.items()
            }
            for name, result in results.items():
                diagnostics.record(f"analysis.{name}", result)
            return FailureProbabilities(**results)

    def failure_probabilities_batch(
        self,
        corners: Sequence[ProcessCorner],
        conditions_list: Sequence[OperatingConditions | None] | None = None,
        executor: "ParallelExecutor | None" = None,
    ) -> list[FailureProbabilities]:
        """:meth:`failure_probabilities` over a whole sweep at once.

        Args:
            corners: evaluation corners, one per sweep point.
            conditions_list: per-point bias overrides (same length as
                ``corners``); None applies the analyzer baseline to
                every point.
            executor: fan-out engine; None (or ``workers=1``) evaluates
                inline.  Because every point derives its RNG stream
                from its own (corner, bias) key via :meth:`_seed_for`,
                the results are bit-identical at any worker count.
        """
        if conditions_list is None:
            conditions_list = [None] * len(corners)
        if len(conditions_list) != len(corners):
            raise ValueError(
                f"conditions_list has {len(conditions_list)} entries "
                f"for {len(corners)} corners"
            )
        if self.sampler == "adaptive-is":
            # Warm the MPFP seed memo for every distinct bias point
            # *before* fan-out: the seeds ride to the workers inside
            # the pickled analyzer, so the (one-off) FORM search runs
            # once per table build instead of once per worker.
            for conditions in conditions_list:
                self._direction_seeds(
                    conditions if conditions is not None else self.conditions
                )
        tasks = [
            (self, corner, conditions)
            for corner, conditions in zip(corners, conditions_list)
        ]
        if executor is None:
            return [_failure_point(task) for task in tasks]
        return executor.map(_failure_point, tasks)

    def hold_failure_probability_batch(
        self,
        corners: Sequence[ProcessCorner],
        conditions_list: Sequence[OperatingConditions | None] | None = None,
        executor: "ParallelExecutor | None" = None,
    ) -> list[MonteCarloResult]:
        """:meth:`hold_failure_probability` over a whole sweep at once.

        Same fan-out and determinism contract as
        :meth:`failure_probabilities_batch`; this is the hot path of
        the ASB (corner, VSB) surface build.
        """
        if conditions_list is None:
            conditions_list = [None] * len(corners)
        if len(conditions_list) != len(corners):
            raise ValueError(
                f"conditions_list has {len(conditions_list)} entries "
                f"for {len(corners)} corners"
            )
        tasks = [
            (self, corner, conditions)
            for corner, conditions in zip(corners, conditions_list)
        ]
        if executor is None:
            return [_hold_point(task) for task in tasks]
        return executor.map(_hold_point, tasks)

    def hold_failure_probability(
        self,
        corner: ProcessCorner,
        conditions: OperatingConditions | None = None,
    ) -> MonteCarloResult:
        """Hold-mechanism probability only (hot path for ASB sweeps)."""
        conditions = conditions if conditions is not None else self.conditions
        with trace("analysis.hold_point"):
            if not self._legacy_path:
                problem = _HoldProblem(self, corner, conditions)
                strategy = make_sampler(self.sampler, self.scale)
                out = strategy.sample(
                    problem, self._seed_for(corner, conditions), self.n_samples
                )
                observe("analysis.solver_calls", out.n_solved)
                result = probability_of(out.fails["hold"], out.weights)
                diagnostics.record("analysis.hold", result)
                return result
            rng = self._rng_for(corner, conditions)
            scale = 1.0 if self.sampler == "plain" else self.scale
            with trace("sample"):
                sample = importance_sample_dvt(
                    self.tech, self.geometry, rng, self.n_samples, scale
                )
            with trace("solve"):
                cell = SixTCell(self.tech, self.geometry, corner, sample.dvt)
                margin = compute_hold_margin(cell, conditions)
            rail = conditions.vdd_standby - conditions.vsb
            threshold = self.criteria.hold_fraction_min * rail
            observe("analysis.solver_calls", sample.n_samples)
            result = probability_of(margin < threshold, sample.weights)
            diagnostics.record("analysis.hold", result)
            return result
