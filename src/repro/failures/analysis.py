"""Cell failure probability estimation (the paper's [3] methodology).

:class:`CellFailureAnalyzer` estimates, for any inter-die corner and any
body/source-bias point, the probability that a cell fails each of the
four parametric mechanisms under intra-die RDF variation.  Rare
probabilities are resolved with sigma-scaled importance sampling
(:mod:`repro.stats.sampling`); the same weighted sample set yields all
four mechanisms plus their union, keeping the per-mechanism estimates
consistent (the union is never smaller than a component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.failures.criteria import FailureCriteria
from repro.observability import diagnostics
from repro.observability.tracing import trace
from repro.sram.cell import CellGeometry, SixTCell
from repro.sram.metrics import OperatingConditions, compute_cell_metrics
from repro.stats.montecarlo import MonteCarloResult, probability_of
from repro.stats.sampling import importance_sample_dvt
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters

if TYPE_CHECKING:  # pragma: no cover - hint-only import
    from repro.parallel.executor import ParallelExecutor

#: Mechanism names in presentation order.
MECHANISMS = ("read", "write", "access", "hold")


def _failure_point(task) -> "FailureProbabilities":
    """Worker entry point: one full failure estimate (picklable)."""
    analyzer, corner, conditions = task
    return analyzer.failure_probabilities(corner, conditions)


def _hold_point(task) -> MonteCarloResult:
    """Worker entry point: one hold-only estimate (picklable)."""
    analyzer, corner, conditions = task
    return analyzer.hold_failure_probability(corner, conditions)


@dataclass(frozen=True)
class FailureProbabilities:
    """Per-mechanism cell failure probabilities at one (corner, bias)."""

    read: MonteCarloResult
    write: MonteCarloResult
    access: MonteCarloResult
    hold: MonteCarloResult
    any: MonteCarloResult

    def __getitem__(self, mechanism: str) -> MonteCarloResult:
        if mechanism not in MECHANISMS + ("any",):
            raise KeyError(f"unknown mechanism {mechanism!r}")
        return getattr(self, mechanism)

    def as_dict(self) -> dict[str, float]:
        """Point estimates keyed by mechanism (plus ``any``)."""
        return {name: self[name].estimate for name in MECHANISMS + ("any",)}


class CellFailureAnalyzer:
    """Estimates cell failure probabilities under RDF variation.

    Args:
        tech: technology card.
        criteria: calibrated failure thresholds.
        geometry: cell geometry (defaults to the standard cell).
        conditions: baseline operating conditions; per-call overrides
            are provided via the ``conditions`` argument of
            :meth:`failure_probabilities`.
        n_samples: weighted samples per estimate.
        scale: importance-sampling sigma inflation (1.0 = plain MC).
        seed: base RNG seed; each (corner, bias) estimate derives its
            own stream so results are reproducible yet independent.
    """

    def __init__(
        self,
        tech: TechnologyParameters,
        criteria: FailureCriteria,
        geometry: CellGeometry | None = None,
        conditions: OperatingConditions | None = None,
        n_samples: int = 60_000,
        scale: float = 2.0,
        seed: int = 7,
    ) -> None:
        self.tech = tech
        self.criteria = criteria
        self.geometry = geometry if geometry is not None else CellGeometry()
        self.conditions = (
            conditions if conditions is not None else OperatingConditions.nominal(tech)
        )
        self.n_samples = n_samples
        self.scale = scale
        self.seed = seed

    def _seed_for(
        self, corner: ProcessCorner, conditions: OperatingConditions
    ) -> np.random.SeedSequence:
        """Per-(corner, bias) seed, stable across processes.

        Each key field is rounded to nanovolt resolution and folded into
        the :class:`~numpy.random.SeedSequence` entropy directly — no
        ``hash()`` in the loop, so the derivation is collision-resistant
        over the full field width and identical in every worker process,
        which the parallel engine's determinism guarantee depends on.
        """

        def word(value: float) -> int:
            return int(round(value * 1e9)) & 0xFFFFFFFFFFFFFFFF

        return np.random.SeedSequence(
            entropy=[
                self.seed,
                word(corner.dvt_inter),
                word(conditions.vbody_n),
                word(conditions.vsb),
                word(conditions.vdd),
                word(conditions.vdd_standby),
            ]
        )

    def _rng_for(
        self, corner: ProcessCorner, conditions: OperatingConditions
    ) -> np.random.Generator:
        return np.random.default_rng(self._seed_for(corner, conditions))

    def failure_probabilities(
        self,
        corner: ProcessCorner,
        conditions: OperatingConditions | None = None,
    ) -> FailureProbabilities:
        """Estimate all mechanism probabilities at ``corner``.

        Args:
            corner: the die's inter-die Vt shift.
            conditions: bias overrides; defaults to the analyzer's
                baseline conditions.
        """
        conditions = conditions if conditions is not None else self.conditions
        with trace("analysis.point"):
            rng = self._rng_for(corner, conditions)
            with trace("sample"):
                sample = importance_sample_dvt(
                    self.tech, self.geometry, rng, self.n_samples, self.scale
                )
            with trace("solve"):
                cell = SixTCell(self.tech, self.geometry, corner, sample.dvt)
                metrics = compute_cell_metrics(cell, conditions)
            fails = {}
            for name, predicate in (
                ("read", self.criteria.read_fails),
                ("write", self.criteria.write_fails),
                ("access", self.criteria.access_fails),
                ("hold", self.criteria.hold_fails),
            ):
                with trace(f"classify.{name}"):
                    fails[name] = predicate(metrics)
            fails["any"] = (
                fails["read"] | fails["write"] | fails["access"] | fails["hold"]
            )
            results = {
                name: probability_of(indicator, sample.weights)
                for name, indicator in fails.items()
            }
            for name, result in results.items():
                diagnostics.record(f"analysis.{name}", result)
            return FailureProbabilities(**results)

    def failure_probabilities_batch(
        self,
        corners: Sequence[ProcessCorner],
        conditions_list: Sequence[OperatingConditions | None] | None = None,
        executor: "ParallelExecutor | None" = None,
    ) -> list[FailureProbabilities]:
        """:meth:`failure_probabilities` over a whole sweep at once.

        Args:
            corners: evaluation corners, one per sweep point.
            conditions_list: per-point bias overrides (same length as
                ``corners``); None applies the analyzer baseline to
                every point.
            executor: fan-out engine; None (or ``workers=1``) evaluates
                inline.  Because every point derives its RNG stream
                from its own (corner, bias) key via :meth:`_seed_for`,
                the results are bit-identical at any worker count.
        """
        if conditions_list is None:
            conditions_list = [None] * len(corners)
        if len(conditions_list) != len(corners):
            raise ValueError(
                f"conditions_list has {len(conditions_list)} entries "
                f"for {len(corners)} corners"
            )
        tasks = [
            (self, corner, conditions)
            for corner, conditions in zip(corners, conditions_list)
        ]
        if executor is None:
            return [_failure_point(task) for task in tasks]
        return executor.map(_failure_point, tasks)

    def hold_failure_probability_batch(
        self,
        corners: Sequence[ProcessCorner],
        conditions_list: Sequence[OperatingConditions | None] | None = None,
        executor: "ParallelExecutor | None" = None,
    ) -> list[MonteCarloResult]:
        """:meth:`hold_failure_probability` over a whole sweep at once.

        Same fan-out and determinism contract as
        :meth:`failure_probabilities_batch`; this is the hot path of
        the ASB (corner, VSB) surface build.
        """
        if conditions_list is None:
            conditions_list = [None] * len(corners)
        if len(conditions_list) != len(corners):
            raise ValueError(
                f"conditions_list has {len(conditions_list)} entries "
                f"for {len(corners)} corners"
            )
        tasks = [
            (self, corner, conditions)
            for corner, conditions in zip(corners, conditions_list)
        ]
        if executor is None:
            return [_hold_point(task) for task in tasks]
        return executor.map(_hold_point, tasks)

    def hold_failure_probability(
        self,
        corner: ProcessCorner,
        conditions: OperatingConditions | None = None,
    ) -> MonteCarloResult:
        """Hold-mechanism probability only (hot path for ASB sweeps)."""
        from repro.sram.metrics import compute_hold_margin

        conditions = conditions if conditions is not None else self.conditions
        with trace("analysis.hold_point"):
            rng = self._rng_for(corner, conditions)
            with trace("sample"):
                sample = importance_sample_dvt(
                    self.tech, self.geometry, rng, self.n_samples, self.scale
                )
            with trace("solve"):
                cell = SixTCell(self.tech, self.geometry, corner, sample.dvt)
                margin = compute_hold_margin(cell, conditions)
            rail = conditions.vdd_standby - conditions.vsb
            threshold = self.criteria.hold_fraction_min * rail
            result = probability_of(margin < threshold, sample.weights)
            diagnostics.record("analysis.hold", result)
            return result
